/root/repo/target/release/examples/climate_archive-4cc58c2e8c360a6e.d: examples/climate_archive.rs

/root/repo/target/release/examples/climate_archive-4cc58c2e8c360a6e: examples/climate_archive.rs

examples/climate_archive.rs:
