/root/repo/target/release/examples/rasql_shell-272e97d502fb5fd7.d: examples/rasql_shell.rs

/root/repo/target/release/examples/rasql_shell-272e97d502fb5fd7: examples/rasql_shell.rs

examples/rasql_shell.rs:
