/root/repo/target/release/examples/rasql_shell-7c835a0d2fe552b1.d: examples/rasql_shell.rs

/root/repo/target/release/examples/rasql_shell-7c835a0d2fe552b1: examples/rasql_shell.rs

examples/rasql_shell.rs:
