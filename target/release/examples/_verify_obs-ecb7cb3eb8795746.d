/root/repo/target/release/examples/_verify_obs-ecb7cb3eb8795746.d: examples/_verify_obs.rs

/root/repo/target/release/examples/_verify_obs-ecb7cb3eb8795746: examples/_verify_obs.rs

examples/_verify_obs.rs:
