/root/repo/target/release/examples/quickstart-568af35b4d522b87.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-568af35b4d522b87: examples/quickstart.rs

examples/quickstart.rs:
