/root/repo/target/release/examples/rasql_shell-cba297d1c0d3fc8d.d: examples/rasql_shell.rs

/root/repo/target/release/examples/rasql_shell-cba297d1c0d3fc8d: examples/rasql_shell.rs

examples/rasql_shell.rs:
