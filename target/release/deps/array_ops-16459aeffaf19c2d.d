/root/repo/target/release/deps/array_ops-16459aeffaf19c2d.d: crates/bench/benches/array_ops.rs

/root/repo/target/release/deps/array_ops-16459aeffaf19c2d: crates/bench/benches/array_ops.rs

crates/bench/benches/array_ops.rs:
