/root/repo/target/release/deps/heaven_prof-0ff83530577473c1.d: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

/root/repo/target/release/deps/heaven_prof-0ff83530577473c1: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

crates/prof/src/lib.rs:
crates/prof/src/flame.rs:
crates/prof/src/json.rs:
crates/prof/src/tail.rs:
crates/prof/src/timeline.rs:
crates/prof/src/trace.rs:
