/root/repo/target/release/deps/heaven_workload-db418858d4f0fa0d.d: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

/root/repo/target/release/deps/libheaven_workload-db418858d4f0fa0d.rlib: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

/root/repo/target/release/deps/libheaven_workload-db418858d4f0fa0d.rmeta: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

crates/workload/src/lib.rs:
crates/workload/src/data.rs:
crates/workload/src/queries.rs:
