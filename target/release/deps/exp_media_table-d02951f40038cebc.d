/root/repo/target/release/deps/exp_media_table-d02951f40038cebc.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/release/deps/exp_media_table-d02951f40038cebc: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
