/root/repo/target/release/deps/exp_media_table-e5150a45489a3fee.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/release/deps/exp_media_table-e5150a45489a3fee: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
