/root/repo/target/release/deps/alloc_free-324fe70ed8b456bb.d: crates/obs/tests/alloc_free.rs

/root/repo/target/release/deps/alloc_free-324fe70ed8b456bb: crates/obs/tests/alloc_free.rs

crates/obs/tests/alloc_free.rs:
