/root/repo/target/release/deps/exp_retrieval-65232bf19057c02d.d: crates/bench/src/bin/exp_retrieval.rs

/root/repo/target/release/deps/exp_retrieval-65232bf19057c02d: crates/bench/src/bin/exp_retrieval.rs

crates/bench/src/bin/exp_retrieval.rs:
