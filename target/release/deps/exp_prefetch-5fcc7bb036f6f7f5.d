/root/repo/target/release/deps/exp_prefetch-5fcc7bb036f6f7f5.d: crates/bench/src/bin/exp_prefetch.rs

/root/repo/target/release/deps/exp_prefetch-5fcc7bb036f6f7f5: crates/bench/src/bin/exp_prefetch.rs

crates/bench/src/bin/exp_prefetch.rs:
