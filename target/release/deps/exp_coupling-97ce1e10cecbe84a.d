/root/repo/target/release/deps/exp_coupling-97ce1e10cecbe84a.d: crates/bench/src/bin/exp_coupling.rs

/root/repo/target/release/deps/exp_coupling-97ce1e10cecbe84a: crates/bench/src/bin/exp_coupling.rs

crates/bench/src/bin/exp_coupling.rs:
