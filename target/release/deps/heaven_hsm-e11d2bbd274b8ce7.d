/root/repo/target/release/deps/heaven_hsm-e11d2bbd274b8ce7.d: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

/root/repo/target/release/deps/libheaven_hsm-e11d2bbd274b8ce7.rlib: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

/root/repo/target/release/deps/libheaven_hsm-e11d2bbd274b8ce7.rmeta: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

crates/hsm/src/lib.rs:
crates/hsm/src/catalog.rs:
crates/hsm/src/direct.rs:
crates/hsm/src/disk.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/policy.rs:
