/root/repo/target/release/deps/exp_caching-ae1be57a5d0bbc1f.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/release/deps/exp_caching-ae1be57a5d0bbc1f: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
