/root/repo/target/release/deps/heaven_workload-3432d35f71e3fa36.d: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

/root/repo/target/release/deps/libheaven_workload-3432d35f71e3fa36.rlib: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

/root/repo/target/release/deps/libheaven_workload-3432d35f71e3fa36.rmeta: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

crates/workload/src/lib.rs:
crates/workload/src/data.rs:
crates/workload/src/queries.rs:
