/root/repo/target/release/deps/exp_precomp-f409510ddd5e7a7e.d: crates/bench/src/bin/exp_precomp.rs

/root/repo/target/release/deps/exp_precomp-f409510ddd5e7a7e: crates/bench/src/bin/exp_precomp.rs

crates/bench/src/bin/exp_precomp.rs:
