/root/repo/target/release/deps/exp_supertile_size-4b8d9ba256668af5.d: crates/bench/src/bin/exp_supertile_size.rs

/root/repo/target/release/deps/exp_supertile_size-4b8d9ba256668af5: crates/bench/src/bin/exp_supertile_size.rs

crates/bench/src/bin/exp_supertile_size.rs:
