/root/repo/target/release/deps/exp_caching-fef8cbbf1d5730ff.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/release/deps/exp_caching-fef8cbbf1d5730ff: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
