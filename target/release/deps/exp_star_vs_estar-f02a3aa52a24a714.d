/root/repo/target/release/deps/exp_star_vs_estar-f02a3aa52a24a714.d: crates/bench/src/bin/exp_star_vs_estar.rs

/root/repo/target/release/deps/exp_star_vs_estar-f02a3aa52a24a714: crates/bench/src/bin/exp_star_vs_estar.rs

crates/bench/src/bin/exp_star_vs_estar.rs:
