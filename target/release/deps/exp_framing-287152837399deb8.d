/root/repo/target/release/deps/exp_framing-287152837399deb8.d: crates/bench/src/bin/exp_framing.rs

/root/repo/target/release/deps/exp_framing-287152837399deb8: crates/bench/src/bin/exp_framing.rs

crates/bench/src/bin/exp_framing.rs:
