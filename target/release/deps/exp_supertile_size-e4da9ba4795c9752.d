/root/repo/target/release/deps/exp_supertile_size-e4da9ba4795c9752.d: crates/bench/src/bin/exp_supertile_size.rs

/root/repo/target/release/deps/exp_supertile_size-e4da9ba4795c9752: crates/bench/src/bin/exp_supertile_size.rs

crates/bench/src/bin/exp_supertile_size.rs:
