/root/repo/target/release/deps/materialize-e9aca6037a6788b3.d: crates/bench/benches/materialize.rs

/root/repo/target/release/deps/materialize-e9aca6037a6788b3: crates/bench/benches/materialize.rs

crates/bench/benches/materialize.rs:
