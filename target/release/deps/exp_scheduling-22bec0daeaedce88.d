/root/repo/target/release/deps/exp_scheduling-22bec0daeaedce88.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/release/deps/exp_scheduling-22bec0daeaedce88: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
