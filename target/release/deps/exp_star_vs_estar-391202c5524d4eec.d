/root/repo/target/release/deps/exp_star_vs_estar-391202c5524d4eec.d: crates/bench/src/bin/exp_star_vs_estar.rs

/root/repo/target/release/deps/exp_star_vs_estar-391202c5524d4eec: crates/bench/src/bin/exp_star_vs_estar.rs

crates/bench/src/bin/exp_star_vs_estar.rs:
