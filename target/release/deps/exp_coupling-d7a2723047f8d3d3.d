/root/repo/target/release/deps/exp_coupling-d7a2723047f8d3d3.d: crates/bench/src/bin/exp_coupling.rs

/root/repo/target/release/deps/exp_coupling-d7a2723047f8d3d3: crates/bench/src/bin/exp_coupling.rs

crates/bench/src/bin/exp_coupling.rs:
