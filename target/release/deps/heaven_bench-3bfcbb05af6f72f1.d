/root/repo/target/release/deps/heaven_bench-3bfcbb05af6f72f1.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libheaven_bench-3bfcbb05af6f72f1.rlib: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libheaven_bench-3bfcbb05af6f72f1.rmeta: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
