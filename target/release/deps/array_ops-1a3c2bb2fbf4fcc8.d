/root/repo/target/release/deps/array_ops-1a3c2bb2fbf4fcc8.d: crates/bench/benches/array_ops.rs

/root/repo/target/release/deps/array_ops-1a3c2bb2fbf4fcc8: crates/bench/benches/array_ops.rs

crates/bench/benches/array_ops.rs:
