/root/repo/target/release/deps/heaven-3f53e820e5ed1d30.d: src/lib.rs

/root/repo/target/release/deps/heaven-3f53e820e5ed1d30: src/lib.rs

src/lib.rs:
