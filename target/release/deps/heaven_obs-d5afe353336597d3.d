/root/repo/target/release/deps/heaven_obs-d5afe353336597d3.d: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/heaven_obs-d5afe353336597d3: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/breakdown.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
