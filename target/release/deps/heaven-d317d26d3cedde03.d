/root/repo/target/release/deps/heaven-d317d26d3cedde03.d: src/lib.rs

/root/repo/target/release/deps/heaven-d317d26d3cedde03: src/lib.rs

src/lib.rs:
