/root/repo/target/release/deps/codec-2d2459a65e9fd97c.d: crates/bench/benches/codec.rs

/root/repo/target/release/deps/codec-2d2459a65e9fd97c: crates/bench/benches/codec.rs

crates/bench/benches/codec.rs:
