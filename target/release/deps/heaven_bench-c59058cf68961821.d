/root/repo/target/release/deps/heaven_bench-c59058cf68961821.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libheaven_bench-c59058cf68961821.rlib: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libheaven_bench-c59058cf68961821.rmeta: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
