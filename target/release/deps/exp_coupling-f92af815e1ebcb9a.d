/root/repo/target/release/deps/exp_coupling-f92af815e1ebcb9a.d: crates/bench/src/bin/exp_coupling.rs

/root/repo/target/release/deps/exp_coupling-f92af815e1ebcb9a: crates/bench/src/bin/exp_coupling.rs

crates/bench/src/bin/exp_coupling.rs:
