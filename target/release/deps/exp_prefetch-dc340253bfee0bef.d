/root/repo/target/release/deps/exp_prefetch-dc340253bfee0bef.d: crates/bench/src/bin/exp_prefetch.rs

/root/repo/target/release/deps/exp_prefetch-dc340253bfee0bef: crates/bench/src/bin/exp_prefetch.rs

crates/bench/src/bin/exp_prefetch.rs:
