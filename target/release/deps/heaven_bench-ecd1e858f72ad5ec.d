/root/repo/target/release/deps/heaven_bench-ecd1e858f72ad5ec.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/release/deps/heaven_bench-ecd1e858f72ad5ec: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
