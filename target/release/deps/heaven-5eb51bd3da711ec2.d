/root/repo/target/release/deps/heaven-5eb51bd3da711ec2.d: src/lib.rs

/root/repo/target/release/deps/libheaven-5eb51bd3da711ec2.rlib: src/lib.rs

/root/repo/target/release/deps/libheaven-5eb51bd3da711ec2.rmeta: src/lib.rs

src/lib.rs:
