/root/repo/target/release/deps/exp_media_table-b9c1ec83841e9ea5.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/release/deps/exp_media_table-b9c1ec83841e9ea5: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
