/root/repo/target/release/deps/exp_retrieval-09bf58a4b5b1f39b.d: crates/bench/src/bin/exp_retrieval.rs

/root/repo/target/release/deps/exp_retrieval-09bf58a4b5b1f39b: crates/bench/src/bin/exp_retrieval.rs

crates/bench/src/bin/exp_retrieval.rs:
