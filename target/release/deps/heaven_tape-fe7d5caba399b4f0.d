/root/repo/target/release/deps/heaven_tape-fe7d5caba399b4f0.d: crates/tape/src/lib.rs crates/tape/src/clock.rs crates/tape/src/error.rs crates/tape/src/library.rs crates/tape/src/media.rs crates/tape/src/profile.rs crates/tape/src/stats.rs

/root/repo/target/release/deps/libheaven_tape-fe7d5caba399b4f0.rlib: crates/tape/src/lib.rs crates/tape/src/clock.rs crates/tape/src/error.rs crates/tape/src/library.rs crates/tape/src/media.rs crates/tape/src/profile.rs crates/tape/src/stats.rs

/root/repo/target/release/deps/libheaven_tape-fe7d5caba399b4f0.rmeta: crates/tape/src/lib.rs crates/tape/src/clock.rs crates/tape/src/error.rs crates/tape/src/library.rs crates/tape/src/media.rs crates/tape/src/profile.rs crates/tape/src/stats.rs

crates/tape/src/lib.rs:
crates/tape/src/clock.rs:
crates/tape/src/error.rs:
crates/tape/src/library.rs:
crates/tape/src/media.rs:
crates/tape/src/profile.rs:
crates/tape/src/stats.rs:
