/root/repo/target/release/deps/heaven_prof-886758221e917992.d: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

/root/repo/target/release/deps/libheaven_prof-886758221e917992.rlib: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

/root/repo/target/release/deps/libheaven_prof-886758221e917992.rmeta: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

crates/prof/src/lib.rs:
crates/prof/src/flame.rs:
crates/prof/src/json.rs:
crates/prof/src/tail.rs:
crates/prof/src/timeline.rs:
crates/prof/src/trace.rs:
