/root/repo/target/release/deps/exp_retrieval-c842f3fa3c98e557.d: crates/bench/src/bin/exp_retrieval.rs

/root/repo/target/release/deps/exp_retrieval-c842f3fa3c98e557: crates/bench/src/bin/exp_retrieval.rs

crates/bench/src/bin/exp_retrieval.rs:
