/root/repo/target/release/deps/exp_export-3192f2743a9d8c16.d: crates/bench/src/bin/exp_export.rs

/root/repo/target/release/deps/exp_export-3192f2743a9d8c16: crates/bench/src/bin/exp_export.rs

crates/bench/src/bin/exp_export.rs:
