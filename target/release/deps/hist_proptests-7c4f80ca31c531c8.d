/root/repo/target/release/deps/hist_proptests-7c4f80ca31c531c8.d: crates/obs/tests/hist_proptests.rs

/root/repo/target/release/deps/hist_proptests-7c4f80ca31c531c8: crates/obs/tests/hist_proptests.rs

crates/obs/tests/hist_proptests.rs:
