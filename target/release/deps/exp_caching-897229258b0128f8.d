/root/repo/target/release/deps/exp_caching-897229258b0128f8.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/release/deps/exp_caching-897229258b0128f8: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
