/root/repo/target/release/deps/exp_framing-c869e67f23bc0cc9.d: crates/bench/src/bin/exp_framing.rs

/root/repo/target/release/deps/exp_framing-c869e67f23bc0cc9: crates/bench/src/bin/exp_framing.rs

crates/bench/src/bin/exp_framing.rs:
