/root/repo/target/release/deps/cache-5358bd89abe854b6.d: crates/bench/benches/cache.rs

/root/repo/target/release/deps/cache-5358bd89abe854b6: crates/bench/benches/cache.rs

crates/bench/benches/cache.rs:
