/root/repo/target/release/deps/heaven_obs-06bcb3b2427ebf22.d: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sym.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/heaven_obs-06bcb3b2427ebf22: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sym.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/breakdown.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sym.rs:
crates/obs/src/trace.rs:
