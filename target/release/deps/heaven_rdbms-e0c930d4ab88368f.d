/root/repo/target/release/deps/heaven_rdbms-e0c930d4ab88368f.d: crates/rdbms/src/lib.rs crates/rdbms/src/blob.rs crates/rdbms/src/btree.rs crates/rdbms/src/buffer.rs crates/rdbms/src/db.rs crates/rdbms/src/disk.rs crates/rdbms/src/error.rs crates/rdbms/src/page.rs crates/rdbms/src/table.rs crates/rdbms/src/wal.rs

/root/repo/target/release/deps/libheaven_rdbms-e0c930d4ab88368f.rlib: crates/rdbms/src/lib.rs crates/rdbms/src/blob.rs crates/rdbms/src/btree.rs crates/rdbms/src/buffer.rs crates/rdbms/src/db.rs crates/rdbms/src/disk.rs crates/rdbms/src/error.rs crates/rdbms/src/page.rs crates/rdbms/src/table.rs crates/rdbms/src/wal.rs

/root/repo/target/release/deps/libheaven_rdbms-e0c930d4ab88368f.rmeta: crates/rdbms/src/lib.rs crates/rdbms/src/blob.rs crates/rdbms/src/btree.rs crates/rdbms/src/buffer.rs crates/rdbms/src/db.rs crates/rdbms/src/disk.rs crates/rdbms/src/error.rs crates/rdbms/src/page.rs crates/rdbms/src/table.rs crates/rdbms/src/wal.rs

crates/rdbms/src/lib.rs:
crates/rdbms/src/blob.rs:
crates/rdbms/src/btree.rs:
crates/rdbms/src/buffer.rs:
crates/rdbms/src/db.rs:
crates/rdbms/src/disk.rs:
crates/rdbms/src/error.rs:
crates/rdbms/src/page.rs:
crates/rdbms/src/table.rs:
crates/rdbms/src/wal.rs:
