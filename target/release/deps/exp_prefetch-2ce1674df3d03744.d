/root/repo/target/release/deps/exp_prefetch-2ce1674df3d03744.d: crates/bench/src/bin/exp_prefetch.rs

/root/repo/target/release/deps/exp_prefetch-2ce1674df3d03744: crates/bench/src/bin/exp_prefetch.rs

crates/bench/src/bin/exp_prefetch.rs:
