/root/repo/target/release/deps/exp_scheduling-ec938655df0aa8ac.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/release/deps/exp_scheduling-ec938655df0aa8ac: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
