/root/repo/target/release/deps/query_language-e8c56f4b88b82b06.d: crates/bench/benches/query_language.rs

/root/repo/target/release/deps/query_language-e8c56f4b88b82b06: crates/bench/benches/query_language.rs

crates/bench/benches/query_language.rs:
