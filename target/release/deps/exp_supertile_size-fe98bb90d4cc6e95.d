/root/repo/target/release/deps/exp_supertile_size-fe98bb90d4cc6e95.d: crates/bench/src/bin/exp_supertile_size.rs

/root/repo/target/release/deps/exp_supertile_size-fe98bb90d4cc6e95: crates/bench/src/bin/exp_supertile_size.rs

crates/bench/src/bin/exp_supertile_size.rs:
