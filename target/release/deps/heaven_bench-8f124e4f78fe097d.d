/root/repo/target/release/deps/heaven_bench-8f124e4f78fe097d.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libheaven_bench-8f124e4f78fe097d.rlib: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libheaven_bench-8f124e4f78fe097d.rmeta: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
