/root/repo/target/release/deps/clustering-fb8fb7c7c58f7f58.d: crates/bench/benches/clustering.rs

/root/repo/target/release/deps/clustering-fb8fb7c7c58f7f58: crates/bench/benches/clustering.rs

crates/bench/benches/clustering.rs:
