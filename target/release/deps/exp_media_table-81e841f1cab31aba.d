/root/repo/target/release/deps/exp_media_table-81e841f1cab31aba.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/release/deps/exp_media_table-81e841f1cab31aba: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
