/root/repo/target/release/deps/exp_precomp-d1f0f07769426da2.d: crates/bench/src/bin/exp_precomp.rs

/root/repo/target/release/deps/exp_precomp-d1f0f07769426da2: crates/bench/src/bin/exp_precomp.rs

crates/bench/src/bin/exp_precomp.rs:
