/root/repo/target/release/deps/exp_coupling-800acd852ad998db.d: crates/bench/src/bin/exp_coupling.rs

/root/repo/target/release/deps/exp_coupling-800acd852ad998db: crates/bench/src/bin/exp_coupling.rs

crates/bench/src/bin/exp_coupling.rs:
