/root/repo/target/release/deps/exp_star_vs_estar-84f875940faf806f.d: crates/bench/src/bin/exp_star_vs_estar.rs

/root/repo/target/release/deps/exp_star_vs_estar-84f875940faf806f: crates/bench/src/bin/exp_star_vs_estar.rs

crates/bench/src/bin/exp_star_vs_estar.rs:
