/root/repo/target/release/deps/exp_scheduling-5a4d3c9297d579ef.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/release/deps/exp_scheduling-5a4d3c9297d579ef: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
