/root/repo/target/release/deps/exp_export-195c0eae55f9054d.d: crates/bench/src/bin/exp_export.rs

/root/repo/target/release/deps/exp_export-195c0eae55f9054d: crates/bench/src/bin/exp_export.rs

crates/bench/src/bin/exp_export.rs:
