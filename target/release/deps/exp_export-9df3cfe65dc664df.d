/root/repo/target/release/deps/exp_export-9df3cfe65dc664df.d: crates/bench/src/bin/exp_export.rs

/root/repo/target/release/deps/exp_export-9df3cfe65dc664df: crates/bench/src/bin/exp_export.rs

crates/bench/src/bin/exp_export.rs:
