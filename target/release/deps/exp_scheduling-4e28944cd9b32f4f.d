/root/repo/target/release/deps/exp_scheduling-4e28944cd9b32f4f.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/release/deps/exp_scheduling-4e28944cd9b32f4f: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
