/root/repo/target/release/deps/heaven_hsm-f87e410b1ce9782e.d: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

/root/repo/target/release/deps/libheaven_hsm-f87e410b1ce9782e.rlib: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

/root/repo/target/release/deps/libheaven_hsm-f87e410b1ce9782e.rmeta: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

crates/hsm/src/lib.rs:
crates/hsm/src/catalog.rs:
crates/hsm/src/direct.rs:
crates/hsm/src/disk.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/policy.rs:
