/root/repo/target/release/deps/scheduler-195beb0868b1f82f.d: crates/bench/benches/scheduler.rs

/root/repo/target/release/deps/scheduler-195beb0868b1f82f: crates/bench/benches/scheduler.rs

crates/bench/benches/scheduler.rs:
