/root/repo/target/release/deps/heaven_tape-9fadd3e4c9cd17aa.d: crates/tape/src/lib.rs crates/tape/src/clock.rs crates/tape/src/error.rs crates/tape/src/library.rs crates/tape/src/media.rs crates/tape/src/profile.rs crates/tape/src/stats.rs

/root/repo/target/release/deps/libheaven_tape-9fadd3e4c9cd17aa.rlib: crates/tape/src/lib.rs crates/tape/src/clock.rs crates/tape/src/error.rs crates/tape/src/library.rs crates/tape/src/media.rs crates/tape/src/profile.rs crates/tape/src/stats.rs

/root/repo/target/release/deps/libheaven_tape-9fadd3e4c9cd17aa.rmeta: crates/tape/src/lib.rs crates/tape/src/clock.rs crates/tape/src/error.rs crates/tape/src/library.rs crates/tape/src/media.rs crates/tape/src/profile.rs crates/tape/src/stats.rs

crates/tape/src/lib.rs:
crates/tape/src/clock.rs:
crates/tape/src/error.rs:
crates/tape/src/library.rs:
crates/tape/src/media.rs:
crates/tape/src/profile.rs:
crates/tape/src/stats.rs:
