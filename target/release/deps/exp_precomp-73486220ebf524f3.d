/root/repo/target/release/deps/exp_precomp-73486220ebf524f3.d: crates/bench/src/bin/exp_precomp.rs

/root/repo/target/release/deps/exp_precomp-73486220ebf524f3: crates/bench/src/bin/exp_precomp.rs

crates/bench/src/bin/exp_precomp.rs:
