/root/repo/target/release/deps/codec-b4000c41fcfd298c.d: crates/bench/benches/codec.rs

/root/repo/target/release/deps/codec-b4000c41fcfd298c: crates/bench/benches/codec.rs

crates/bench/benches/codec.rs:
