/root/repo/target/release/deps/heaven-3ed1d97063b2de83.d: src/lib.rs

/root/repo/target/release/deps/libheaven-3ed1d97063b2de83.rlib: src/lib.rs

/root/repo/target/release/deps/libheaven-3ed1d97063b2de83.rmeta: src/lib.rs

src/lib.rs:
