/root/repo/target/release/deps/heaven-9468fb3461bbdac3.d: src/lib.rs

/root/repo/target/release/deps/libheaven-9468fb3461bbdac3.rlib: src/lib.rs

/root/repo/target/release/deps/libheaven-9468fb3461bbdac3.rmeta: src/lib.rs

src/lib.rs:
