/root/repo/target/release/deps/exp_framing-74353eb87f212a9d.d: crates/bench/src/bin/exp_framing.rs

/root/repo/target/release/deps/exp_framing-74353eb87f212a9d: crates/bench/src/bin/exp_framing.rs

crates/bench/src/bin/exp_framing.rs:
