/root/repo/target/release/deps/heaven_arraydb-f48b9a53902f7aaa.d: crates/arraydb/src/lib.rs crates/arraydb/src/error.rs crates/arraydb/src/provider.rs crates/arraydb/src/ql/mod.rs crates/arraydb/src/ql/ast.rs crates/arraydb/src/ql/exec.rs crates/arraydb/src/ql/lexer.rs crates/arraydb/src/ql/parser.rs crates/arraydb/src/schema.rs crates/arraydb/src/storage.rs

/root/repo/target/release/deps/libheaven_arraydb-f48b9a53902f7aaa.rlib: crates/arraydb/src/lib.rs crates/arraydb/src/error.rs crates/arraydb/src/provider.rs crates/arraydb/src/ql/mod.rs crates/arraydb/src/ql/ast.rs crates/arraydb/src/ql/exec.rs crates/arraydb/src/ql/lexer.rs crates/arraydb/src/ql/parser.rs crates/arraydb/src/schema.rs crates/arraydb/src/storage.rs

/root/repo/target/release/deps/libheaven_arraydb-f48b9a53902f7aaa.rmeta: crates/arraydb/src/lib.rs crates/arraydb/src/error.rs crates/arraydb/src/provider.rs crates/arraydb/src/ql/mod.rs crates/arraydb/src/ql/ast.rs crates/arraydb/src/ql/exec.rs crates/arraydb/src/ql/lexer.rs crates/arraydb/src/ql/parser.rs crates/arraydb/src/schema.rs crates/arraydb/src/storage.rs

crates/arraydb/src/lib.rs:
crates/arraydb/src/error.rs:
crates/arraydb/src/provider.rs:
crates/arraydb/src/ql/mod.rs:
crates/arraydb/src/ql/ast.rs:
crates/arraydb/src/ql/exec.rs:
crates/arraydb/src/ql/lexer.rs:
crates/arraydb/src/ql/parser.rs:
crates/arraydb/src/schema.rs:
crates/arraydb/src/storage.rs:
