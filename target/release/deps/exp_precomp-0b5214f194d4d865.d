/root/repo/target/release/deps/exp_precomp-0b5214f194d4d865.d: crates/bench/src/bin/exp_precomp.rs

/root/repo/target/release/deps/exp_precomp-0b5214f194d4d865: crates/bench/src/bin/exp_precomp.rs

crates/bench/src/bin/exp_precomp.rs:
