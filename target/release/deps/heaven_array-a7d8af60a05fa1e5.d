/root/repo/target/release/deps/heaven_array-a7d8af60a05fa1e5.d: crates/array/src/lib.rs crates/array/src/codec.rs crates/array/src/domain.rs crates/array/src/error.rs crates/array/src/frame.rs crates/array/src/index.rs crates/array/src/mdd.rs crates/array/src/ops.rs crates/array/src/order.rs crates/array/src/tile.rs crates/array/src/tiling.rs crates/array/src/value.rs

/root/repo/target/release/deps/libheaven_array-a7d8af60a05fa1e5.rlib: crates/array/src/lib.rs crates/array/src/codec.rs crates/array/src/domain.rs crates/array/src/error.rs crates/array/src/frame.rs crates/array/src/index.rs crates/array/src/mdd.rs crates/array/src/ops.rs crates/array/src/order.rs crates/array/src/tile.rs crates/array/src/tiling.rs crates/array/src/value.rs

/root/repo/target/release/deps/libheaven_array-a7d8af60a05fa1e5.rmeta: crates/array/src/lib.rs crates/array/src/codec.rs crates/array/src/domain.rs crates/array/src/error.rs crates/array/src/frame.rs crates/array/src/index.rs crates/array/src/mdd.rs crates/array/src/ops.rs crates/array/src/order.rs crates/array/src/tile.rs crates/array/src/tiling.rs crates/array/src/value.rs

crates/array/src/lib.rs:
crates/array/src/codec.rs:
crates/array/src/domain.rs:
crates/array/src/error.rs:
crates/array/src/frame.rs:
crates/array/src/index.rs:
crates/array/src/mdd.rs:
crates/array/src/ops.rs:
crates/array/src/order.rs:
crates/array/src/tile.rs:
crates/array/src/tiling.rs:
crates/array/src/value.rs:
