/root/repo/target/release/deps/exp_framing-dd55e719bd0c41ef.d: crates/bench/src/bin/exp_framing.rs

/root/repo/target/release/deps/exp_framing-dd55e719bd0c41ef: crates/bench/src/bin/exp_framing.rs

crates/bench/src/bin/exp_framing.rs:
