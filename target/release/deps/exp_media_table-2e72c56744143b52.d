/root/repo/target/release/deps/exp_media_table-2e72c56744143b52.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/release/deps/exp_media_table-2e72c56744143b52: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
