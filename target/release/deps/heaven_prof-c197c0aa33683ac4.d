/root/repo/target/release/deps/heaven_prof-c197c0aa33683ac4.d: crates/prof/src/main.rs

/root/repo/target/release/deps/heaven_prof-c197c0aa33683ac4: crates/prof/src/main.rs

crates/prof/src/main.rs:
