/root/repo/target/release/deps/heaven-d9e12a0c49968d87.d: src/lib.rs

/root/repo/target/release/deps/libheaven-d9e12a0c49968d87.rlib: src/lib.rs

/root/repo/target/release/deps/libheaven-d9e12a0c49968d87.rmeta: src/lib.rs

src/lib.rs:
