/root/repo/target/release/deps/exp_supertile_size-3bfb8cf45a99076a.d: crates/bench/src/bin/exp_supertile_size.rs

/root/repo/target/release/deps/exp_supertile_size-3bfb8cf45a99076a: crates/bench/src/bin/exp_supertile_size.rs

crates/bench/src/bin/exp_supertile_size.rs:
