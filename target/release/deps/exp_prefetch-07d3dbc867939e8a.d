/root/repo/target/release/deps/exp_prefetch-07d3dbc867939e8a.d: crates/bench/src/bin/exp_prefetch.rs

/root/repo/target/release/deps/exp_prefetch-07d3dbc867939e8a: crates/bench/src/bin/exp_prefetch.rs

crates/bench/src/bin/exp_prefetch.rs:
