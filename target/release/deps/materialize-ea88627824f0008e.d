/root/repo/target/release/deps/materialize-ea88627824f0008e.d: crates/bench/benches/materialize.rs

/root/repo/target/release/deps/materialize-ea88627824f0008e: crates/bench/benches/materialize.rs

crates/bench/benches/materialize.rs:
