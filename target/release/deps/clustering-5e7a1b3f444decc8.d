/root/repo/target/release/deps/clustering-5e7a1b3f444decc8.d: crates/bench/benches/clustering.rs

/root/repo/target/release/deps/clustering-5e7a1b3f444decc8: crates/bench/benches/clustering.rs

crates/bench/benches/clustering.rs:
