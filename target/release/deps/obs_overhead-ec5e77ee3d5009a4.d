/root/repo/target/release/deps/obs_overhead-ec5e77ee3d5009a4.d: crates/bench/benches/obs_overhead.rs

/root/repo/target/release/deps/obs_overhead-ec5e77ee3d5009a4: crates/bench/benches/obs_overhead.rs

crates/bench/benches/obs_overhead.rs:
