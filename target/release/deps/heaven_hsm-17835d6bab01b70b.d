/root/repo/target/release/deps/heaven_hsm-17835d6bab01b70b.d: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

/root/repo/target/release/deps/heaven_hsm-17835d6bab01b70b: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

crates/hsm/src/lib.rs:
crates/hsm/src/catalog.rs:
crates/hsm/src/direct.rs:
crates/hsm/src/disk.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/policy.rs:
