/root/repo/target/release/deps/heaven_obs-6e49f02908ed1b4b.d: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sym.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libheaven_obs-6e49f02908ed1b4b.rlib: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sym.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libheaven_obs-6e49f02908ed1b4b.rmeta: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sym.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/breakdown.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sym.rs:
crates/obs/src/trace.rs:
