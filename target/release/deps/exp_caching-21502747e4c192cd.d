/root/repo/target/release/deps/exp_caching-21502747e4c192cd.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/release/deps/exp_caching-21502747e4c192cd: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
