/root/repo/target/release/deps/scheduler-f18c4a5e79448f3b.d: crates/bench/benches/scheduler.rs

/root/repo/target/release/deps/scheduler-f18c4a5e79448f3b: crates/bench/benches/scheduler.rs

crates/bench/benches/scheduler.rs:
