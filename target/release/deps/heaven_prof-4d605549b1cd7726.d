/root/repo/target/release/deps/heaven_prof-4d605549b1cd7726.d: crates/prof/src/main.rs

/root/repo/target/release/deps/heaven_prof-4d605549b1cd7726: crates/prof/src/main.rs

crates/prof/src/main.rs:
