/root/repo/target/release/deps/cache-d35aa46f9386b769.d: crates/bench/benches/cache.rs

/root/repo/target/release/deps/cache-d35aa46f9386b769: crates/bench/benches/cache.rs

crates/bench/benches/cache.rs:
