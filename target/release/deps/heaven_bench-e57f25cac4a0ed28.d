/root/repo/target/release/deps/heaven_bench-e57f25cac4a0ed28.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/release/deps/heaven_bench-e57f25cac4a0ed28: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
