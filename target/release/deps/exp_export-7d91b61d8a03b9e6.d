/root/repo/target/release/deps/exp_export-7d91b61d8a03b9e6.d: crates/bench/src/bin/exp_export.rs

/root/repo/target/release/deps/exp_export-7d91b61d8a03b9e6: crates/bench/src/bin/exp_export.rs

crates/bench/src/bin/exp_export.rs:
