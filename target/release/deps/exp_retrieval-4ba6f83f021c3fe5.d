/root/repo/target/release/deps/exp_retrieval-4ba6f83f021c3fe5.d: crates/bench/src/bin/exp_retrieval.rs

/root/repo/target/release/deps/exp_retrieval-4ba6f83f021c3fe5: crates/bench/src/bin/exp_retrieval.rs

crates/bench/src/bin/exp_retrieval.rs:
