/root/repo/target/release/deps/query_language-d9a18e168deeea88.d: crates/bench/benches/query_language.rs

/root/repo/target/release/deps/query_language-d9a18e168deeea88: crates/bench/benches/query_language.rs

crates/bench/benches/query_language.rs:
