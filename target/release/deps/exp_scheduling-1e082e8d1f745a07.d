/root/repo/target/release/deps/exp_scheduling-1e082e8d1f745a07.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/release/deps/exp_scheduling-1e082e8d1f745a07: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
