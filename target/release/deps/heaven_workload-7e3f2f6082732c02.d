/root/repo/target/release/deps/heaven_workload-7e3f2f6082732c02.d: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

/root/repo/target/release/deps/heaven_workload-7e3f2f6082732c02: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

crates/workload/src/lib.rs:
crates/workload/src/data.rs:
crates/workload/src/queries.rs:
