/root/repo/target/release/deps/exp_star_vs_estar-a6dbaa0b91f2c54f.d: crates/bench/src/bin/exp_star_vs_estar.rs

/root/repo/target/release/deps/exp_star_vs_estar-a6dbaa0b91f2c54f: crates/bench/src/bin/exp_star_vs_estar.rs

crates/bench/src/bin/exp_star_vs_estar.rs:
