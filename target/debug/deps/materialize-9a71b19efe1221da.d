/root/repo/target/debug/deps/materialize-9a71b19efe1221da.d: crates/bench/benches/materialize.rs Cargo.toml

/root/repo/target/debug/deps/libmaterialize-9a71b19efe1221da.rmeta: crates/bench/benches/materialize.rs Cargo.toml

crates/bench/benches/materialize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
