/root/repo/target/debug/deps/heaven_prof-284827b6c895f9e2.d: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

/root/repo/target/debug/deps/heaven_prof-284827b6c895f9e2: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

crates/prof/src/lib.rs:
crates/prof/src/flame.rs:
crates/prof/src/json.rs:
crates/prof/src/tail.rs:
crates/prof/src/timeline.rs:
crates/prof/src/trace.rs:
