/root/repo/target/debug/deps/heaven-ff2e9e0c881ee01f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libheaven-ff2e9e0c881ee01f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
