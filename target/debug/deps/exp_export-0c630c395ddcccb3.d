/root/repo/target/debug/deps/exp_export-0c630c395ddcccb3.d: crates/bench/src/bin/exp_export.rs Cargo.toml

/root/repo/target/debug/deps/libexp_export-0c630c395ddcccb3.rmeta: crates/bench/src/bin/exp_export.rs Cargo.toml

crates/bench/src/bin/exp_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
