/root/repo/target/debug/deps/heaven_bench-054def661c4ec3e1.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_bench-054def661c4ec3e1.rmeta: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
