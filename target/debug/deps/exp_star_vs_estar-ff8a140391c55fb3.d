/root/repo/target/debug/deps/exp_star_vs_estar-ff8a140391c55fb3.d: crates/bench/src/bin/exp_star_vs_estar.rs

/root/repo/target/debug/deps/exp_star_vs_estar-ff8a140391c55fb3: crates/bench/src/bin/exp_star_vs_estar.rs

crates/bench/src/bin/exp_star_vs_estar.rs:
