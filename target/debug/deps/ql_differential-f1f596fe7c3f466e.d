/root/repo/target/debug/deps/ql_differential-f1f596fe7c3f466e.d: crates/arraydb/tests/ql_differential.rs

/root/repo/target/debug/deps/ql_differential-f1f596fe7c3f466e: crates/arraydb/tests/ql_differential.rs

crates/arraydb/tests/ql_differential.rs:
