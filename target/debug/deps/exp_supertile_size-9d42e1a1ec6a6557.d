/root/repo/target/debug/deps/exp_supertile_size-9d42e1a1ec6a6557.d: crates/bench/src/bin/exp_supertile_size.rs

/root/repo/target/debug/deps/exp_supertile_size-9d42e1a1ec6a6557: crates/bench/src/bin/exp_supertile_size.rs

crates/bench/src/bin/exp_supertile_size.rs:
