/root/repo/target/debug/deps/heaven_roundtrip-b591669442df0013.d: crates/core/tests/heaven_roundtrip.rs

/root/repo/target/debug/deps/heaven_roundtrip-b591669442df0013: crates/core/tests/heaven_roundtrip.rs

crates/core/tests/heaven_roundtrip.rs:
