/root/repo/target/debug/deps/exp_export-2970a811dc9e3013.d: crates/bench/src/bin/exp_export.rs

/root/repo/target/debug/deps/exp_export-2970a811dc9e3013: crates/bench/src/bin/exp_export.rs

crates/bench/src/bin/exp_export.rs:
