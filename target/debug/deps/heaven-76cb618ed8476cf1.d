/root/repo/target/debug/deps/heaven-76cb618ed8476cf1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libheaven-76cb618ed8476cf1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
