/root/repo/target/debug/deps/alloc_free-b936967abc4637fa.d: crates/obs/tests/alloc_free.rs Cargo.toml

/root/repo/target/debug/deps/liballoc_free-b936967abc4637fa.rmeta: crates/obs/tests/alloc_free.rs Cargo.toml

crates/obs/tests/alloc_free.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
