/root/repo/target/debug/deps/exp_framing-818a0e3379f341d6.d: crates/bench/src/bin/exp_framing.rs

/root/repo/target/debug/deps/libexp_framing-818a0e3379f341d6.rmeta: crates/bench/src/bin/exp_framing.rs

crates/bench/src/bin/exp_framing.rs:
