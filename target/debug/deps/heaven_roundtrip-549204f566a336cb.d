/root/repo/target/debug/deps/heaven_roundtrip-549204f566a336cb.d: crates/core/tests/heaven_roundtrip.rs

/root/repo/target/debug/deps/heaven_roundtrip-549204f566a336cb: crates/core/tests/heaven_roundtrip.rs

crates/core/tests/heaven_roundtrip.rs:
