/root/repo/target/debug/deps/cache-cc6519f8e0156b7b.d: crates/bench/benches/cache.rs Cargo.toml

/root/repo/target/debug/deps/libcache-cc6519f8e0156b7b.rmeta: crates/bench/benches/cache.rs Cargo.toml

crates/bench/benches/cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
