/root/repo/target/debug/deps/sampled_trace-d0fd8b17dd36555b.d: crates/prof/tests/sampled_trace.rs Cargo.toml

/root/repo/target/debug/deps/libsampled_trace-d0fd8b17dd36555b.rmeta: crates/prof/tests/sampled_trace.rs Cargo.toml

crates/prof/tests/sampled_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
