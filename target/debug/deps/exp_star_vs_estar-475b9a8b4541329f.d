/root/repo/target/debug/deps/exp_star_vs_estar-475b9a8b4541329f.d: crates/bench/src/bin/exp_star_vs_estar.rs

/root/repo/target/debug/deps/exp_star_vs_estar-475b9a8b4541329f: crates/bench/src/bin/exp_star_vs_estar.rs

crates/bench/src/bin/exp_star_vs_estar.rs:
