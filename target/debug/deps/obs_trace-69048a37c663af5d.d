/root/repo/target/debug/deps/obs_trace-69048a37c663af5d.d: tests/obs_trace.rs Cargo.toml

/root/repo/target/debug/deps/libobs_trace-69048a37c663af5d.rmeta: tests/obs_trace.rs Cargo.toml

tests/obs_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
