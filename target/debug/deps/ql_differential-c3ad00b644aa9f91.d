/root/repo/target/debug/deps/ql_differential-c3ad00b644aa9f91.d: crates/arraydb/tests/ql_differential.rs

/root/repo/target/debug/deps/ql_differential-c3ad00b644aa9f91: crates/arraydb/tests/ql_differential.rs

crates/arraydb/tests/ql_differential.rs:
