/root/repo/target/debug/deps/heaven_workload-a341843501ca89bf.d: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

/root/repo/target/debug/deps/heaven_workload-a341843501ca89bf: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

crates/workload/src/lib.rs:
crates/workload/src/data.rs:
crates/workload/src/queries.rs:
