/root/repo/target/debug/deps/trace_alloc-38482b6da106df39.d: tests/trace_alloc.rs

/root/repo/target/debug/deps/trace_alloc-38482b6da106df39: tests/trace_alloc.rs

tests/trace_alloc.rs:
