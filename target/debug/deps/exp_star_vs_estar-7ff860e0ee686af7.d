/root/repo/target/debug/deps/exp_star_vs_estar-7ff860e0ee686af7.d: crates/bench/src/bin/exp_star_vs_estar.rs

/root/repo/target/debug/deps/libexp_star_vs_estar-7ff860e0ee686af7.rmeta: crates/bench/src/bin/exp_star_vs_estar.rs

crates/bench/src/bin/exp_star_vs_estar.rs:
