/root/repo/target/debug/deps/exp_caching-46e8f9bd0bfb6caa.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/debug/deps/exp_caching-46e8f9bd0bfb6caa: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
