/root/repo/target/debug/deps/exp_scheduling-fa7ebeceb5f8923b.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/debug/deps/exp_scheduling-fa7ebeceb5f8923b: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
