/root/repo/target/debug/deps/heaven_bench-fed9e48856c1f940.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/heaven_bench-fed9e48856c1f940: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
