/root/repo/target/debug/deps/exp_supertile_size-bbbdcfa11ea3f79b.d: crates/bench/src/bin/exp_supertile_size.rs

/root/repo/target/debug/deps/exp_supertile_size-bbbdcfa11ea3f79b: crates/bench/src/bin/exp_supertile_size.rs

crates/bench/src/bin/exp_supertile_size.rs:
