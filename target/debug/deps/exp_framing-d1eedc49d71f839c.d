/root/repo/target/debug/deps/exp_framing-d1eedc49d71f839c.d: crates/bench/src/bin/exp_framing.rs

/root/repo/target/debug/deps/exp_framing-d1eedc49d71f839c: crates/bench/src/bin/exp_framing.rs

crates/bench/src/bin/exp_framing.rs:
