/root/repo/target/debug/deps/exp_export-6e49b063a6d68c83.d: crates/bench/src/bin/exp_export.rs

/root/repo/target/debug/deps/exp_export-6e49b063a6d68c83: crates/bench/src/bin/exp_export.rs

crates/bench/src/bin/exp_export.rs:
