/root/repo/target/debug/deps/exp_coupling-b349bdff1dbd1b7b.d: crates/bench/src/bin/exp_coupling.rs

/root/repo/target/debug/deps/exp_coupling-b349bdff1dbd1b7b: crates/bench/src/bin/exp_coupling.rs

crates/bench/src/bin/exp_coupling.rs:
