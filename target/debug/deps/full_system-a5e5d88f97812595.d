/root/repo/target/debug/deps/full_system-a5e5d88f97812595.d: tests/full_system.rs

/root/repo/target/debug/deps/full_system-a5e5d88f97812595: tests/full_system.rs

tests/full_system.rs:
