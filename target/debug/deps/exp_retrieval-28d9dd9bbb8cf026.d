/root/repo/target/debug/deps/exp_retrieval-28d9dd9bbb8cf026.d: crates/bench/src/bin/exp_retrieval.rs

/root/repo/target/debug/deps/exp_retrieval-28d9dd9bbb8cf026: crates/bench/src/bin/exp_retrieval.rs

crates/bench/src/bin/exp_retrieval.rs:
