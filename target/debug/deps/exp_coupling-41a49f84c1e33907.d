/root/repo/target/debug/deps/exp_coupling-41a49f84c1e33907.d: crates/bench/src/bin/exp_coupling.rs

/root/repo/target/debug/deps/exp_coupling-41a49f84c1e33907: crates/bench/src/bin/exp_coupling.rs

crates/bench/src/bin/exp_coupling.rs:
