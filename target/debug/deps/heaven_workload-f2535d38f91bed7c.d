/root/repo/target/debug/deps/heaven_workload-f2535d38f91bed7c.d: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_workload-f2535d38f91bed7c.rmeta: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/data.rs:
crates/workload/src/queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
