/root/repo/target/debug/deps/heaven_bench-f02c94a4a309ae82.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libheaven_bench-f02c94a4a309ae82.rlib: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libheaven_bench-f02c94a4a309ae82.rmeta: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
