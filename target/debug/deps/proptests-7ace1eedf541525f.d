/root/repo/target/debug/deps/proptests-7ace1eedf541525f.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7ace1eedf541525f: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
