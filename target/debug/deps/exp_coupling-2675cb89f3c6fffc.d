/root/repo/target/debug/deps/exp_coupling-2675cb89f3c6fffc.d: crates/bench/src/bin/exp_coupling.rs

/root/repo/target/debug/deps/exp_coupling-2675cb89f3c6fffc: crates/bench/src/bin/exp_coupling.rs

crates/bench/src/bin/exp_coupling.rs:
