/root/repo/target/debug/deps/exp_framing-38b092cb7c0c588a.d: crates/bench/src/bin/exp_framing.rs

/root/repo/target/debug/deps/exp_framing-38b092cb7c0c588a: crates/bench/src/bin/exp_framing.rs

crates/bench/src/bin/exp_framing.rs:
