/root/repo/target/debug/deps/exp_caching-9f36969c88ad843f.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/debug/deps/exp_caching-9f36969c88ad843f: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
