/root/repo/target/debug/deps/heaven_prof-8d65cd371f1a6e37.d: crates/prof/src/main.rs

/root/repo/target/debug/deps/heaven_prof-8d65cd371f1a6e37: crates/prof/src/main.rs

crates/prof/src/main.rs:
