/root/repo/target/debug/deps/exp_retrieval-96e00b00536535d3.d: crates/bench/src/bin/exp_retrieval.rs

/root/repo/target/debug/deps/exp_retrieval-96e00b00536535d3: crates/bench/src/bin/exp_retrieval.rs

crates/bench/src/bin/exp_retrieval.rs:
