/root/repo/target/debug/deps/proptests-9fc42eeb23d11fc6.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9fc42eeb23d11fc6: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
