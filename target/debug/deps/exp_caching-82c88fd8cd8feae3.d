/root/repo/target/debug/deps/exp_caching-82c88fd8cd8feae3.d: crates/bench/src/bin/exp_caching.rs Cargo.toml

/root/repo/target/debug/deps/libexp_caching-82c88fd8cd8feae3.rmeta: crates/bench/src/bin/exp_caching.rs Cargo.toml

crates/bench/src/bin/exp_caching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
