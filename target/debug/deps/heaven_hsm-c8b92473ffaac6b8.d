/root/repo/target/debug/deps/heaven_hsm-c8b92473ffaac6b8.d: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

/root/repo/target/debug/deps/libheaven_hsm-c8b92473ffaac6b8.rmeta: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

crates/hsm/src/lib.rs:
crates/hsm/src/catalog.rs:
crates/hsm/src/direct.rs:
crates/hsm/src/disk.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/policy.rs:
