/root/repo/target/debug/deps/exp_star_vs_estar-b3869d8b1459a0f3.d: crates/bench/src/bin/exp_star_vs_estar.rs

/root/repo/target/debug/deps/libexp_star_vs_estar-b3869d8b1459a0f3.rmeta: crates/bench/src/bin/exp_star_vs_estar.rs

crates/bench/src/bin/exp_star_vs_estar.rs:
