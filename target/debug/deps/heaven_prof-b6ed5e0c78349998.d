/root/repo/target/debug/deps/heaven_prof-b6ed5e0c78349998.d: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

/root/repo/target/debug/deps/heaven_prof-b6ed5e0c78349998: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

crates/prof/src/lib.rs:
crates/prof/src/flame.rs:
crates/prof/src/json.rs:
crates/prof/src/tail.rs:
crates/prof/src/timeline.rs:
crates/prof/src/trace.rs:
