/root/repo/target/debug/deps/exp_export-9aa0525920751d59.d: crates/bench/src/bin/exp_export.rs

/root/repo/target/debug/deps/exp_export-9aa0525920751d59: crates/bench/src/bin/exp_export.rs

crates/bench/src/bin/exp_export.rs:
