/root/repo/target/debug/deps/exp_star_vs_estar-6b19a4e9ca5d0c92.d: crates/bench/src/bin/exp_star_vs_estar.rs

/root/repo/target/debug/deps/exp_star_vs_estar-6b19a4e9ca5d0c92: crates/bench/src/bin/exp_star_vs_estar.rs

crates/bench/src/bin/exp_star_vs_estar.rs:
