/root/repo/target/debug/deps/real_trace-fbee5b797be66c6c.d: crates/prof/tests/real_trace.rs

/root/repo/target/debug/deps/libreal_trace-fbee5b797be66c6c.rmeta: crates/prof/tests/real_trace.rs

crates/prof/tests/real_trace.rs:
