/root/repo/target/debug/deps/scheduler-457e04cc15d81579.d: crates/bench/benches/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libscheduler-457e04cc15d81579.rmeta: crates/bench/benches/scheduler.rs Cargo.toml

crates/bench/benches/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
