/root/repo/target/debug/deps/exp_framing-263de6372f99a4e8.d: crates/bench/src/bin/exp_framing.rs

/root/repo/target/debug/deps/libexp_framing-263de6372f99a4e8.rmeta: crates/bench/src/bin/exp_framing.rs

crates/bench/src/bin/exp_framing.rs:
