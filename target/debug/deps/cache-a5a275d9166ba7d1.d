/root/repo/target/debug/deps/cache-a5a275d9166ba7d1.d: crates/bench/benches/cache.rs Cargo.toml

/root/repo/target/debug/deps/libcache-a5a275d9166ba7d1.rmeta: crates/bench/benches/cache.rs Cargo.toml

crates/bench/benches/cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
