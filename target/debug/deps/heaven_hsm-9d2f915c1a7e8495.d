/root/repo/target/debug/deps/heaven_hsm-9d2f915c1a7e8495.d: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

/root/repo/target/debug/deps/heaven_hsm-9d2f915c1a7e8495: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

crates/hsm/src/lib.rs:
crates/hsm/src/catalog.rs:
crates/hsm/src/direct.rs:
crates/hsm/src/disk.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/policy.rs:
