/root/repo/target/debug/deps/array_ops-a6692cadd5643a05.d: crates/bench/benches/array_ops.rs Cargo.toml

/root/repo/target/debug/deps/libarray_ops-a6692cadd5643a05.rmeta: crates/bench/benches/array_ops.rs Cargo.toml

crates/bench/benches/array_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
