/root/repo/target/debug/deps/exp_supertile_size-62f5b200d329c594.d: crates/bench/src/bin/exp_supertile_size.rs

/root/repo/target/debug/deps/exp_supertile_size-62f5b200d329c594: crates/bench/src/bin/exp_supertile_size.rs

crates/bench/src/bin/exp_supertile_size.rs:
