/root/repo/target/debug/deps/exp_framing-0a9884f24aa497bb.d: crates/bench/src/bin/exp_framing.rs

/root/repo/target/debug/deps/exp_framing-0a9884f24aa497bb: crates/bench/src/bin/exp_framing.rs

crates/bench/src/bin/exp_framing.rs:
