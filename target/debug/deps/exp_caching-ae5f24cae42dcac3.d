/root/repo/target/debug/deps/exp_caching-ae5f24cae42dcac3.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/debug/deps/exp_caching-ae5f24cae42dcac3: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
