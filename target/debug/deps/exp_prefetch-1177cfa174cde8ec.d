/root/repo/target/debug/deps/exp_prefetch-1177cfa174cde8ec.d: crates/bench/src/bin/exp_prefetch.rs

/root/repo/target/debug/deps/exp_prefetch-1177cfa174cde8ec: crates/bench/src/bin/exp_prefetch.rs

crates/bench/src/bin/exp_prefetch.rs:
