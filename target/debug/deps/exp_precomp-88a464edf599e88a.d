/root/repo/target/debug/deps/exp_precomp-88a464edf599e88a.d: crates/bench/src/bin/exp_precomp.rs Cargo.toml

/root/repo/target/debug/deps/libexp_precomp-88a464edf599e88a.rmeta: crates/bench/src/bin/exp_precomp.rs Cargo.toml

crates/bench/src/bin/exp_precomp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
