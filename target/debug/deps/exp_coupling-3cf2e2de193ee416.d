/root/repo/target/debug/deps/exp_coupling-3cf2e2de193ee416.d: crates/bench/src/bin/exp_coupling.rs

/root/repo/target/debug/deps/exp_coupling-3cf2e2de193ee416: crates/bench/src/bin/exp_coupling.rs

crates/bench/src/bin/exp_coupling.rs:
