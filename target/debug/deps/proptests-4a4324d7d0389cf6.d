/root/repo/target/debug/deps/proptests-4a4324d7d0389cf6.d: crates/rdbms/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-4a4324d7d0389cf6.rmeta: crates/rdbms/tests/proptests.rs Cargo.toml

crates/rdbms/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
