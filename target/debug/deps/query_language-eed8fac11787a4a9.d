/root/repo/target/debug/deps/query_language-eed8fac11787a4a9.d: crates/bench/benches/query_language.rs Cargo.toml

/root/repo/target/debug/deps/libquery_language-eed8fac11787a4a9.rmeta: crates/bench/benches/query_language.rs Cargo.toml

crates/bench/benches/query_language.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
