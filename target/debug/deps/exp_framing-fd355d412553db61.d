/root/repo/target/debug/deps/exp_framing-fd355d412553db61.d: crates/bench/src/bin/exp_framing.rs Cargo.toml

/root/repo/target/debug/deps/libexp_framing-fd355d412553db61.rmeta: crates/bench/src/bin/exp_framing.rs Cargo.toml

crates/bench/src/bin/exp_framing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
