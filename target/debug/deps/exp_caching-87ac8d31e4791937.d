/root/repo/target/debug/deps/exp_caching-87ac8d31e4791937.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/debug/deps/exp_caching-87ac8d31e4791937: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
