/root/repo/target/debug/deps/heaven_workload-4165885d1da410bb.d: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

/root/repo/target/debug/deps/libheaven_workload-4165885d1da410bb.rmeta: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

crates/workload/src/lib.rs:
crates/workload/src/data.rs:
crates/workload/src/queries.rs:
