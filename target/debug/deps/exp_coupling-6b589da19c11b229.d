/root/repo/target/debug/deps/exp_coupling-6b589da19c11b229.d: crates/bench/src/bin/exp_coupling.rs

/root/repo/target/debug/deps/libexp_coupling-6b589da19c11b229.rmeta: crates/bench/src/bin/exp_coupling.rs

crates/bench/src/bin/exp_coupling.rs:
