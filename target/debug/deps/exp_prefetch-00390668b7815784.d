/root/repo/target/debug/deps/exp_prefetch-00390668b7815784.d: crates/bench/src/bin/exp_prefetch.rs

/root/repo/target/debug/deps/exp_prefetch-00390668b7815784: crates/bench/src/bin/exp_prefetch.rs

crates/bench/src/bin/exp_prefetch.rs:
