/root/repo/target/debug/deps/exp_coupling-deecf4ce38035e0c.d: crates/bench/src/bin/exp_coupling.rs

/root/repo/target/debug/deps/exp_coupling-deecf4ce38035e0c: crates/bench/src/bin/exp_coupling.rs

crates/bench/src/bin/exp_coupling.rs:
