/root/repo/target/debug/deps/exp_supertile_size-f6696cd3b5f93457.d: crates/bench/src/bin/exp_supertile_size.rs

/root/repo/target/debug/deps/libexp_supertile_size-f6696cd3b5f93457.rmeta: crates/bench/src/bin/exp_supertile_size.rs

crates/bench/src/bin/exp_supertile_size.rs:
