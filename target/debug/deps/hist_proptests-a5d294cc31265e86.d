/root/repo/target/debug/deps/hist_proptests-a5d294cc31265e86.d: crates/obs/tests/hist_proptests.rs

/root/repo/target/debug/deps/hist_proptests-a5d294cc31265e86: crates/obs/tests/hist_proptests.rs

crates/obs/tests/hist_proptests.rs:
