/root/repo/target/debug/deps/full_system-6e434e6e4b45167c.d: tests/full_system.rs Cargo.toml

/root/repo/target/debug/deps/libfull_system-6e434e6e4b45167c.rmeta: tests/full_system.rs Cargo.toml

tests/full_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
