/root/repo/target/debug/deps/exp_star_vs_estar-247ed24c57d3d045.d: crates/bench/src/bin/exp_star_vs_estar.rs

/root/repo/target/debug/deps/exp_star_vs_estar-247ed24c57d3d045: crates/bench/src/bin/exp_star_vs_estar.rs

crates/bench/src/bin/exp_star_vs_estar.rs:
