/root/repo/target/debug/deps/real_trace-f434ed728474dae5.d: crates/prof/tests/real_trace.rs Cargo.toml

/root/repo/target/debug/deps/libreal_trace-f434ed728474dae5.rmeta: crates/prof/tests/real_trace.rs Cargo.toml

crates/prof/tests/real_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
