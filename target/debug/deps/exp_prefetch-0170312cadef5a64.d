/root/repo/target/debug/deps/exp_prefetch-0170312cadef5a64.d: crates/bench/src/bin/exp_prefetch.rs

/root/repo/target/debug/deps/exp_prefetch-0170312cadef5a64: crates/bench/src/bin/exp_prefetch.rs

crates/bench/src/bin/exp_prefetch.rs:
