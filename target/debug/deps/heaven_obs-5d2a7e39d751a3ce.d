/root/repo/target/debug/deps/heaven_obs-5d2a7e39d751a3ce.d: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sym.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libheaven_obs-5d2a7e39d751a3ce.rlib: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sym.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libheaven_obs-5d2a7e39d751a3ce.rmeta: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sym.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/breakdown.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sym.rs:
crates/obs/src/trace.rs:
