/root/repo/target/debug/deps/exp_retrieval-bf7d3fa322bd54fb.d: crates/bench/src/bin/exp_retrieval.rs Cargo.toml

/root/repo/target/debug/deps/libexp_retrieval-bf7d3fa322bd54fb.rmeta: crates/bench/src/bin/exp_retrieval.rs Cargo.toml

crates/bench/src/bin/exp_retrieval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
