/root/repo/target/debug/deps/proptests-c809034fc6569e08.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c809034fc6569e08: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
