/root/repo/target/debug/deps/clustering-b2424e7f9a8490cc.d: crates/bench/benches/clustering.rs

/root/repo/target/debug/deps/clustering-b2424e7f9a8490cc: crates/bench/benches/clustering.rs

crates/bench/benches/clustering.rs:
