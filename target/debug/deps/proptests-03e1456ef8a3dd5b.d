/root/repo/target/debug/deps/proptests-03e1456ef8a3dd5b.d: crates/array/tests/proptests.rs

/root/repo/target/debug/deps/proptests-03e1456ef8a3dd5b: crates/array/tests/proptests.rs

crates/array/tests/proptests.rs:
