/root/repo/target/debug/deps/ql_differential-9608f6acf7dfb9b7.d: crates/arraydb/tests/ql_differential.rs

/root/repo/target/debug/deps/ql_differential-9608f6acf7dfb9b7: crates/arraydb/tests/ql_differential.rs

crates/arraydb/tests/ql_differential.rs:
