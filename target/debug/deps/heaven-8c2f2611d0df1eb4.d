/root/repo/target/debug/deps/heaven-8c2f2611d0df1eb4.d: src/lib.rs

/root/repo/target/debug/deps/heaven-8c2f2611d0df1eb4: src/lib.rs

src/lib.rs:
