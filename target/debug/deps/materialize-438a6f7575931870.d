/root/repo/target/debug/deps/materialize-438a6f7575931870.d: crates/bench/benches/materialize.rs Cargo.toml

/root/repo/target/debug/deps/libmaterialize-438a6f7575931870.rmeta: crates/bench/benches/materialize.rs Cargo.toml

crates/bench/benches/materialize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
