/root/repo/target/debug/deps/heaven_roundtrip-9bfb6ebca05f7fd2.d: crates/core/tests/heaven_roundtrip.rs

/root/repo/target/debug/deps/heaven_roundtrip-9bfb6ebca05f7fd2: crates/core/tests/heaven_roundtrip.rs

crates/core/tests/heaven_roundtrip.rs:
