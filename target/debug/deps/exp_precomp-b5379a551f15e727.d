/root/repo/target/debug/deps/exp_precomp-b5379a551f15e727.d: crates/bench/src/bin/exp_precomp.rs

/root/repo/target/debug/deps/exp_precomp-b5379a551f15e727: crates/bench/src/bin/exp_precomp.rs

crates/bench/src/bin/exp_precomp.rs:
