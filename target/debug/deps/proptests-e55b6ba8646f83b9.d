/root/repo/target/debug/deps/proptests-e55b6ba8646f83b9.d: crates/hsm/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e55b6ba8646f83b9: crates/hsm/tests/proptests.rs

crates/hsm/tests/proptests.rs:
