/root/repo/target/debug/deps/exp_star_vs_estar-6f4bf0d0d84c4867.d: crates/bench/src/bin/exp_star_vs_estar.rs Cargo.toml

/root/repo/target/debug/deps/libexp_star_vs_estar-6f4bf0d0d84c4867.rmeta: crates/bench/src/bin/exp_star_vs_estar.rs Cargo.toml

crates/bench/src/bin/exp_star_vs_estar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
