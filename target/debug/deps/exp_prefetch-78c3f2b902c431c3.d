/root/repo/target/debug/deps/exp_prefetch-78c3f2b902c431c3.d: crates/bench/src/bin/exp_prefetch.rs

/root/repo/target/debug/deps/exp_prefetch-78c3f2b902c431c3: crates/bench/src/bin/exp_prefetch.rs

crates/bench/src/bin/exp_prefetch.rs:
