/root/repo/target/debug/deps/exp_prefetch-60e3eacf1ecadf5b.d: crates/bench/src/bin/exp_prefetch.rs

/root/repo/target/debug/deps/exp_prefetch-60e3eacf1ecadf5b: crates/bench/src/bin/exp_prefetch.rs

crates/bench/src/bin/exp_prefetch.rs:
