/root/repo/target/debug/deps/exp_prefetch-b00c7540832e907c.d: crates/bench/src/bin/exp_prefetch.rs Cargo.toml

/root/repo/target/debug/deps/libexp_prefetch-b00c7540832e907c.rmeta: crates/bench/src/bin/exp_prefetch.rs Cargo.toml

crates/bench/src/bin/exp_prefetch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
