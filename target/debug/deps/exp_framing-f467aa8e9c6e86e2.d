/root/repo/target/debug/deps/exp_framing-f467aa8e9c6e86e2.d: crates/bench/src/bin/exp_framing.rs Cargo.toml

/root/repo/target/debug/deps/libexp_framing-f467aa8e9c6e86e2.rmeta: crates/bench/src/bin/exp_framing.rs Cargo.toml

crates/bench/src/bin/exp_framing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
