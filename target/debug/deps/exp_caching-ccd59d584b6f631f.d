/root/repo/target/debug/deps/exp_caching-ccd59d584b6f631f.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/debug/deps/exp_caching-ccd59d584b6f631f: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
