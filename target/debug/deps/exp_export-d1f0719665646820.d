/root/repo/target/debug/deps/exp_export-d1f0719665646820.d: crates/bench/src/bin/exp_export.rs Cargo.toml

/root/repo/target/debug/deps/libexp_export-d1f0719665646820.rmeta: crates/bench/src/bin/exp_export.rs Cargo.toml

crates/bench/src/bin/exp_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
