/root/repo/target/debug/deps/exp_retrieval-c39b08d6f5b9b1ae.d: crates/bench/src/bin/exp_retrieval.rs Cargo.toml

/root/repo/target/debug/deps/libexp_retrieval-c39b08d6f5b9b1ae.rmeta: crates/bench/src/bin/exp_retrieval.rs Cargo.toml

crates/bench/src/bin/exp_retrieval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
