/root/repo/target/debug/deps/scheduler-918333667c7afd73.d: crates/bench/benches/scheduler.rs

/root/repo/target/debug/deps/libscheduler-918333667c7afd73.rmeta: crates/bench/benches/scheduler.rs

crates/bench/benches/scheduler.rs:
