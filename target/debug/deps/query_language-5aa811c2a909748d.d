/root/repo/target/debug/deps/query_language-5aa811c2a909748d.d: crates/bench/benches/query_language.rs Cargo.toml

/root/repo/target/debug/deps/libquery_language-5aa811c2a909748d.rmeta: crates/bench/benches/query_language.rs Cargo.toml

crates/bench/benches/query_language.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
