/root/repo/target/debug/deps/zero_copy-28ce76330526852d.d: crates/core/tests/zero_copy.rs

/root/repo/target/debug/deps/zero_copy-28ce76330526852d: crates/core/tests/zero_copy.rs

crates/core/tests/zero_copy.rs:
