/root/repo/target/debug/deps/hist_proptests-4c5f2f6d88e8c860.d: crates/obs/tests/hist_proptests.rs

/root/repo/target/debug/deps/libhist_proptests-4c5f2f6d88e8c860.rmeta: crates/obs/tests/hist_proptests.rs

crates/obs/tests/hist_proptests.rs:
