/root/repo/target/debug/deps/heaven_bench-c81c6118930ee466.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libheaven_bench-c81c6118930ee466.rlib: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libheaven_bench-c81c6118930ee466.rmeta: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
