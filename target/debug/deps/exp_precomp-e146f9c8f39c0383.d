/root/repo/target/debug/deps/exp_precomp-e146f9c8f39c0383.d: crates/bench/src/bin/exp_precomp.rs

/root/repo/target/debug/deps/exp_precomp-e146f9c8f39c0383: crates/bench/src/bin/exp_precomp.rs

crates/bench/src/bin/exp_precomp.rs:
