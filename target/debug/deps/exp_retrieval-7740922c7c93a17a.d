/root/repo/target/debug/deps/exp_retrieval-7740922c7c93a17a.d: crates/bench/src/bin/exp_retrieval.rs

/root/repo/target/debug/deps/exp_retrieval-7740922c7c93a17a: crates/bench/src/bin/exp_retrieval.rs

crates/bench/src/bin/exp_retrieval.rs:
