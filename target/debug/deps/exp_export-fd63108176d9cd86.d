/root/repo/target/debug/deps/exp_export-fd63108176d9cd86.d: crates/bench/src/bin/exp_export.rs

/root/repo/target/debug/deps/exp_export-fd63108176d9cd86: crates/bench/src/bin/exp_export.rs

crates/bench/src/bin/exp_export.rs:
