/root/repo/target/debug/deps/heaven_rdbms-08326775705e33c3.d: crates/rdbms/src/lib.rs crates/rdbms/src/blob.rs crates/rdbms/src/btree.rs crates/rdbms/src/buffer.rs crates/rdbms/src/db.rs crates/rdbms/src/disk.rs crates/rdbms/src/error.rs crates/rdbms/src/page.rs crates/rdbms/src/table.rs crates/rdbms/src/wal.rs

/root/repo/target/debug/deps/libheaven_rdbms-08326775705e33c3.rmeta: crates/rdbms/src/lib.rs crates/rdbms/src/blob.rs crates/rdbms/src/btree.rs crates/rdbms/src/buffer.rs crates/rdbms/src/db.rs crates/rdbms/src/disk.rs crates/rdbms/src/error.rs crates/rdbms/src/page.rs crates/rdbms/src/table.rs crates/rdbms/src/wal.rs

crates/rdbms/src/lib.rs:
crates/rdbms/src/blob.rs:
crates/rdbms/src/btree.rs:
crates/rdbms/src/buffer.rs:
crates/rdbms/src/db.rs:
crates/rdbms/src/disk.rs:
crates/rdbms/src/error.rs:
crates/rdbms/src/page.rs:
crates/rdbms/src/table.rs:
crates/rdbms/src/wal.rs:
