/root/repo/target/debug/deps/exp_coupling-afaa23a5e6aa5596.d: crates/bench/src/bin/exp_coupling.rs Cargo.toml

/root/repo/target/debug/deps/libexp_coupling-afaa23a5e6aa5596.rmeta: crates/bench/src/bin/exp_coupling.rs Cargo.toml

crates/bench/src/bin/exp_coupling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
