/root/repo/target/debug/deps/exp_precomp-678b803b168ef83b.d: crates/bench/src/bin/exp_precomp.rs

/root/repo/target/debug/deps/exp_precomp-678b803b168ef83b: crates/bench/src/bin/exp_precomp.rs

crates/bench/src/bin/exp_precomp.rs:
