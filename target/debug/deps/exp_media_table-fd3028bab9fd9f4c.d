/root/repo/target/debug/deps/exp_media_table-fd3028bab9fd9f4c.d: crates/bench/src/bin/exp_media_table.rs Cargo.toml

/root/repo/target/debug/deps/libexp_media_table-fd3028bab9fd9f4c.rmeta: crates/bench/src/bin/exp_media_table.rs Cargo.toml

crates/bench/src/bin/exp_media_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
