/root/repo/target/debug/deps/exp_prefetch-ad0087666e75b0ed.d: crates/bench/src/bin/exp_prefetch.rs

/root/repo/target/debug/deps/exp_prefetch-ad0087666e75b0ed: crates/bench/src/bin/exp_prefetch.rs

crates/bench/src/bin/exp_prefetch.rs:
