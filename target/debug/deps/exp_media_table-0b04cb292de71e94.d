/root/repo/target/debug/deps/exp_media_table-0b04cb292de71e94.d: crates/bench/src/bin/exp_media_table.rs Cargo.toml

/root/repo/target/debug/deps/libexp_media_table-0b04cb292de71e94.rmeta: crates/bench/src/bin/exp_media_table.rs Cargo.toml

crates/bench/src/bin/exp_media_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
