/root/repo/target/debug/deps/exp_prefetch-ae21dcebe0ed06e2.d: crates/bench/src/bin/exp_prefetch.rs

/root/repo/target/debug/deps/libexp_prefetch-ae21dcebe0ed06e2.rmeta: crates/bench/src/bin/exp_prefetch.rs

crates/bench/src/bin/exp_prefetch.rs:
