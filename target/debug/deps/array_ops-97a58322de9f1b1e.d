/root/repo/target/debug/deps/array_ops-97a58322de9f1b1e.d: crates/bench/benches/array_ops.rs

/root/repo/target/debug/deps/array_ops-97a58322de9f1b1e: crates/bench/benches/array_ops.rs

crates/bench/benches/array_ops.rs:
