/root/repo/target/debug/deps/heaven_core-4db74d9ef4ca1709.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/catalog.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/estar.rs crates/core/src/export.rs crates/core/src/maintenance.rs crates/core/src/persist.rs crates/core/src/precomp.rs crates/core/src/report.rs crates/core/src/scheduler.rs crates/core/src/sizing.rs crates/core/src/star.rs crates/core/src/supertile.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libheaven_core-4db74d9ef4ca1709.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/catalog.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/estar.rs crates/core/src/export.rs crates/core/src/maintenance.rs crates/core/src/persist.rs crates/core/src/precomp.rs crates/core/src/report.rs crates/core/src/scheduler.rs crates/core/src/sizing.rs crates/core/src/star.rs crates/core/src/supertile.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/catalog.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/estar.rs:
crates/core/src/export.rs:
crates/core/src/maintenance.rs:
crates/core/src/persist.rs:
crates/core/src/precomp.rs:
crates/core/src/report.rs:
crates/core/src/scheduler.rs:
crates/core/src/sizing.rs:
crates/core/src/star.rs:
crates/core/src/supertile.rs:
crates/core/src/system.rs:
