/root/repo/target/debug/deps/exp_star_vs_estar-33562dd93d78b082.d: crates/bench/src/bin/exp_star_vs_estar.rs

/root/repo/target/debug/deps/exp_star_vs_estar-33562dd93d78b082: crates/bench/src/bin/exp_star_vs_estar.rs

crates/bench/src/bin/exp_star_vs_estar.rs:
