/root/repo/target/debug/deps/array_ops-bc375ab846690f1e.d: crates/bench/benches/array_ops.rs Cargo.toml

/root/repo/target/debug/deps/libarray_ops-bc375ab846690f1e.rmeta: crates/bench/benches/array_ops.rs Cargo.toml

crates/bench/benches/array_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
