/root/repo/target/debug/deps/proptests-56d563235979d81f.d: crates/hsm/tests/proptests.rs

/root/repo/target/debug/deps/proptests-56d563235979d81f: crates/hsm/tests/proptests.rs

crates/hsm/tests/proptests.rs:
