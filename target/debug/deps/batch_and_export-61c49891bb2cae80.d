/root/repo/target/debug/deps/batch_and_export-61c49891bb2cae80.d: crates/core/tests/batch_and_export.rs

/root/repo/target/debug/deps/batch_and_export-61c49891bb2cae80: crates/core/tests/batch_and_export.rs

crates/core/tests/batch_and_export.rs:
