/root/repo/target/debug/deps/cache-80389e3324f61b10.d: crates/bench/benches/cache.rs Cargo.toml

/root/repo/target/debug/deps/libcache-80389e3324f61b10.rmeta: crates/bench/benches/cache.rs Cargo.toml

crates/bench/benches/cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
