/root/repo/target/debug/deps/observability-89bc89f478081fe6.d: crates/core/tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-89bc89f478081fe6.rmeta: crates/core/tests/observability.rs Cargo.toml

crates/core/tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
