/root/repo/target/debug/deps/heaven_roundtrip-2f93d4a21bf447cb.d: crates/core/tests/heaven_roundtrip.rs

/root/repo/target/debug/deps/heaven_roundtrip-2f93d4a21bf447cb: crates/core/tests/heaven_roundtrip.rs

crates/core/tests/heaven_roundtrip.rs:
