/root/repo/target/debug/deps/proptests-51f09a271cf8b599.d: crates/hsm/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-51f09a271cf8b599.rmeta: crates/hsm/tests/proptests.rs Cargo.toml

crates/hsm/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
