/root/repo/target/debug/deps/exp_scheduling-fcf190be27348336.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/debug/deps/exp_scheduling-fcf190be27348336: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
