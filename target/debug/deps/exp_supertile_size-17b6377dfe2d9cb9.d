/root/repo/target/debug/deps/exp_supertile_size-17b6377dfe2d9cb9.d: crates/bench/src/bin/exp_supertile_size.rs

/root/repo/target/debug/deps/exp_supertile_size-17b6377dfe2d9cb9: crates/bench/src/bin/exp_supertile_size.rs

crates/bench/src/bin/exp_supertile_size.rs:
