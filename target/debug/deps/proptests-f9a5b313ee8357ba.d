/root/repo/target/debug/deps/proptests-f9a5b313ee8357ba.d: crates/hsm/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f9a5b313ee8357ba: crates/hsm/tests/proptests.rs

crates/hsm/tests/proptests.rs:
