/root/repo/target/debug/deps/exp_prefetch-edb7dafeca66f041.d: crates/bench/src/bin/exp_prefetch.rs Cargo.toml

/root/repo/target/debug/deps/libexp_prefetch-edb7dafeca66f041.rmeta: crates/bench/src/bin/exp_prefetch.rs Cargo.toml

crates/bench/src/bin/exp_prefetch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
