/root/repo/target/debug/deps/exp_coupling-e8ece4cf5868d854.d: crates/bench/src/bin/exp_coupling.rs

/root/repo/target/debug/deps/exp_coupling-e8ece4cf5868d854: crates/bench/src/bin/exp_coupling.rs

crates/bench/src/bin/exp_coupling.rs:
