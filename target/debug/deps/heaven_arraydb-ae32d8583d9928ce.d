/root/repo/target/debug/deps/heaven_arraydb-ae32d8583d9928ce.d: crates/arraydb/src/lib.rs crates/arraydb/src/error.rs crates/arraydb/src/provider.rs crates/arraydb/src/ql/mod.rs crates/arraydb/src/ql/ast.rs crates/arraydb/src/ql/exec.rs crates/arraydb/src/ql/lexer.rs crates/arraydb/src/ql/parser.rs crates/arraydb/src/schema.rs crates/arraydb/src/storage.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_arraydb-ae32d8583d9928ce.rmeta: crates/arraydb/src/lib.rs crates/arraydb/src/error.rs crates/arraydb/src/provider.rs crates/arraydb/src/ql/mod.rs crates/arraydb/src/ql/ast.rs crates/arraydb/src/ql/exec.rs crates/arraydb/src/ql/lexer.rs crates/arraydb/src/ql/parser.rs crates/arraydb/src/schema.rs crates/arraydb/src/storage.rs Cargo.toml

crates/arraydb/src/lib.rs:
crates/arraydb/src/error.rs:
crates/arraydb/src/provider.rs:
crates/arraydb/src/ql/mod.rs:
crates/arraydb/src/ql/ast.rs:
crates/arraydb/src/ql/exec.rs:
crates/arraydb/src/ql/lexer.rs:
crates/arraydb/src/ql/parser.rs:
crates/arraydb/src/schema.rs:
crates/arraydb/src/storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
