/root/repo/target/debug/deps/exp_export-85f8d3788fa453de.d: crates/bench/src/bin/exp_export.rs

/root/repo/target/debug/deps/libexp_export-85f8d3788fa453de.rmeta: crates/bench/src/bin/exp_export.rs

crates/bench/src/bin/exp_export.rs:
