/root/repo/target/debug/deps/exp_precomp-fe3294e25fbfeb4f.d: crates/bench/src/bin/exp_precomp.rs

/root/repo/target/debug/deps/exp_precomp-fe3294e25fbfeb4f: crates/bench/src/bin/exp_precomp.rs

crates/bench/src/bin/exp_precomp.rs:
