/root/repo/target/debug/deps/exp_precomp-c577f0bf26d77ef5.d: crates/bench/src/bin/exp_precomp.rs Cargo.toml

/root/repo/target/debug/deps/libexp_precomp-c577f0bf26d77ef5.rmeta: crates/bench/src/bin/exp_precomp.rs Cargo.toml

crates/bench/src/bin/exp_precomp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
