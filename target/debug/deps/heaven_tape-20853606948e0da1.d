/root/repo/target/debug/deps/heaven_tape-20853606948e0da1.d: crates/tape/src/lib.rs crates/tape/src/clock.rs crates/tape/src/error.rs crates/tape/src/library.rs crates/tape/src/media.rs crates/tape/src/profile.rs crates/tape/src/stats.rs

/root/repo/target/debug/deps/libheaven_tape-20853606948e0da1.rmeta: crates/tape/src/lib.rs crates/tape/src/clock.rs crates/tape/src/error.rs crates/tape/src/library.rs crates/tape/src/media.rs crates/tape/src/profile.rs crates/tape/src/stats.rs

crates/tape/src/lib.rs:
crates/tape/src/clock.rs:
crates/tape/src/error.rs:
crates/tape/src/library.rs:
crates/tape/src/media.rs:
crates/tape/src/profile.rs:
crates/tape/src/stats.rs:
