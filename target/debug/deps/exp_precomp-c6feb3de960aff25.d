/root/repo/target/debug/deps/exp_precomp-c6feb3de960aff25.d: crates/bench/src/bin/exp_precomp.rs

/root/repo/target/debug/deps/exp_precomp-c6feb3de960aff25: crates/bench/src/bin/exp_precomp.rs

crates/bench/src/bin/exp_precomp.rs:
