/root/repo/target/debug/deps/array_ops-3ea7ca3b0829641b.d: crates/bench/benches/array_ops.rs Cargo.toml

/root/repo/target/debug/deps/libarray_ops-3ea7ca3b0829641b.rmeta: crates/bench/benches/array_ops.rs Cargo.toml

crates/bench/benches/array_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
