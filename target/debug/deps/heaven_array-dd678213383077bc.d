/root/repo/target/debug/deps/heaven_array-dd678213383077bc.d: crates/array/src/lib.rs crates/array/src/codec.rs crates/array/src/domain.rs crates/array/src/error.rs crates/array/src/frame.rs crates/array/src/index.rs crates/array/src/mdd.rs crates/array/src/ops.rs crates/array/src/order.rs crates/array/src/tile.rs crates/array/src/tiling.rs crates/array/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_array-dd678213383077bc.rmeta: crates/array/src/lib.rs crates/array/src/codec.rs crates/array/src/domain.rs crates/array/src/error.rs crates/array/src/frame.rs crates/array/src/index.rs crates/array/src/mdd.rs crates/array/src/ops.rs crates/array/src/order.rs crates/array/src/tile.rs crates/array/src/tiling.rs crates/array/src/value.rs Cargo.toml

crates/array/src/lib.rs:
crates/array/src/codec.rs:
crates/array/src/domain.rs:
crates/array/src/error.rs:
crates/array/src/frame.rs:
crates/array/src/index.rs:
crates/array/src/mdd.rs:
crates/array/src/ops.rs:
crates/array/src/order.rs:
crates/array/src/tile.rs:
crates/array/src/tiling.rs:
crates/array/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
