/root/repo/target/debug/deps/obs_trace-fa6edc9740b9ac2e.d: tests/obs_trace.rs

/root/repo/target/debug/deps/obs_trace-fa6edc9740b9ac2e: tests/obs_trace.rs

tests/obs_trace.rs:
