/root/repo/target/debug/deps/codec-f4dd58e2805aac34.d: crates/bench/benches/codec.rs

/root/repo/target/debug/deps/libcodec-f4dd58e2805aac34.rmeta: crates/bench/benches/codec.rs

crates/bench/benches/codec.rs:
