/root/repo/target/debug/deps/exp_prefetch-b8fcf10d27ec8ab5.d: crates/bench/src/bin/exp_prefetch.rs

/root/repo/target/debug/deps/exp_prefetch-b8fcf10d27ec8ab5: crates/bench/src/bin/exp_prefetch.rs

crates/bench/src/bin/exp_prefetch.rs:
