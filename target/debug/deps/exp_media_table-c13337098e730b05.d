/root/repo/target/debug/deps/exp_media_table-c13337098e730b05.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/debug/deps/exp_media_table-c13337098e730b05: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
