/root/repo/target/debug/deps/heaven_hsm-2b410c724f130b8d.d: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

/root/repo/target/debug/deps/libheaven_hsm-2b410c724f130b8d.rlib: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

/root/repo/target/debug/deps/libheaven_hsm-2b410c724f130b8d.rmeta: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

crates/hsm/src/lib.rs:
crates/hsm/src/catalog.rs:
crates/hsm/src/direct.rs:
crates/hsm/src/disk.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/policy.rs:
