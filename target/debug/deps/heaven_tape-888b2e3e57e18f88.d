/root/repo/target/debug/deps/heaven_tape-888b2e3e57e18f88.d: crates/tape/src/lib.rs crates/tape/src/clock.rs crates/tape/src/error.rs crates/tape/src/library.rs crates/tape/src/media.rs crates/tape/src/profile.rs crates/tape/src/stats.rs

/root/repo/target/debug/deps/libheaven_tape-888b2e3e57e18f88.rmeta: crates/tape/src/lib.rs crates/tape/src/clock.rs crates/tape/src/error.rs crates/tape/src/library.rs crates/tape/src/media.rs crates/tape/src/profile.rs crates/tape/src/stats.rs

crates/tape/src/lib.rs:
crates/tape/src/clock.rs:
crates/tape/src/error.rs:
crates/tape/src/library.rs:
crates/tape/src/media.rs:
crates/tape/src/profile.rs:
crates/tape/src/stats.rs:
