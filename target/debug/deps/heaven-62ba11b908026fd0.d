/root/repo/target/debug/deps/heaven-62ba11b908026fd0.d: src/lib.rs

/root/repo/target/debug/deps/libheaven-62ba11b908026fd0.rlib: src/lib.rs

/root/repo/target/debug/deps/libheaven-62ba11b908026fd0.rmeta: src/lib.rs

src/lib.rs:
