/root/repo/target/debug/deps/heaven_prof-fc0e062f7b2c2721.d: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

/root/repo/target/debug/deps/libheaven_prof-fc0e062f7b2c2721.rmeta: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

crates/prof/src/lib.rs:
crates/prof/src/flame.rs:
crates/prof/src/json.rs:
crates/prof/src/tail.rs:
crates/prof/src/timeline.rs:
crates/prof/src/trace.rs:
