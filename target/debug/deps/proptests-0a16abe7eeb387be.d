/root/repo/target/debug/deps/proptests-0a16abe7eeb387be.d: crates/rdbms/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-0a16abe7eeb387be.rmeta: crates/rdbms/tests/proptests.rs Cargo.toml

crates/rdbms/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
