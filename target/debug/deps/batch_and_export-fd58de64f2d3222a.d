/root/repo/target/debug/deps/batch_and_export-fd58de64f2d3222a.d: crates/core/tests/batch_and_export.rs Cargo.toml

/root/repo/target/debug/deps/libbatch_and_export-fd58de64f2d3222a.rmeta: crates/core/tests/batch_and_export.rs Cargo.toml

crates/core/tests/batch_and_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
