/root/repo/target/debug/deps/heaven_bench-6ca290410487a767.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/heaven_bench-6ca290410487a767: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
