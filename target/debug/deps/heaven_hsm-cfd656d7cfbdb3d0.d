/root/repo/target/debug/deps/heaven_hsm-cfd656d7cfbdb3d0.d: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

/root/repo/target/debug/deps/libheaven_hsm-cfd656d7cfbdb3d0.rmeta: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

crates/hsm/src/lib.rs:
crates/hsm/src/catalog.rs:
crates/hsm/src/direct.rs:
crates/hsm/src/disk.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/policy.rs:
