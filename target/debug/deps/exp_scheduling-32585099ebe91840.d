/root/repo/target/debug/deps/exp_scheduling-32585099ebe91840.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/debug/deps/libexp_scheduling-32585099ebe91840.rmeta: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
