/root/repo/target/debug/deps/exp_scheduling-84dea51f20230a20.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/debug/deps/exp_scheduling-84dea51f20230a20: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
