/root/repo/target/debug/deps/exp_precomp-c807e4adf6c2100f.d: crates/bench/src/bin/exp_precomp.rs

/root/repo/target/debug/deps/libexp_precomp-c807e4adf6c2100f.rmeta: crates/bench/src/bin/exp_precomp.rs

crates/bench/src/bin/exp_precomp.rs:
