/root/repo/target/debug/deps/proptests-2a3c14c5b72c6805.d: crates/array/tests/proptests.rs

/root/repo/target/debug/deps/proptests-2a3c14c5b72c6805: crates/array/tests/proptests.rs

crates/array/tests/proptests.rs:
