/root/repo/target/debug/deps/query_language-cb3ac888d1db5a56.d: crates/bench/benches/query_language.rs Cargo.toml

/root/repo/target/debug/deps/libquery_language-cb3ac888d1db5a56.rmeta: crates/bench/benches/query_language.rs Cargo.toml

crates/bench/benches/query_language.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
