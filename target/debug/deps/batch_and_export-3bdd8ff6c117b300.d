/root/repo/target/debug/deps/batch_and_export-3bdd8ff6c117b300.d: crates/core/tests/batch_and_export.rs

/root/repo/target/debug/deps/libbatch_and_export-3bdd8ff6c117b300.rmeta: crates/core/tests/batch_and_export.rs

crates/core/tests/batch_and_export.rs:
