/root/repo/target/debug/deps/heaven_prof-d851cadab775e086.d: crates/prof/src/main.rs

/root/repo/target/debug/deps/heaven_prof-d851cadab775e086: crates/prof/src/main.rs

crates/prof/src/main.rs:
