/root/repo/target/debug/deps/heaven_rdbms-06d9d133217a056e.d: crates/rdbms/src/lib.rs crates/rdbms/src/blob.rs crates/rdbms/src/btree.rs crates/rdbms/src/buffer.rs crates/rdbms/src/db.rs crates/rdbms/src/disk.rs crates/rdbms/src/error.rs crates/rdbms/src/page.rs crates/rdbms/src/table.rs crates/rdbms/src/wal.rs

/root/repo/target/debug/deps/heaven_rdbms-06d9d133217a056e: crates/rdbms/src/lib.rs crates/rdbms/src/blob.rs crates/rdbms/src/btree.rs crates/rdbms/src/buffer.rs crates/rdbms/src/db.rs crates/rdbms/src/disk.rs crates/rdbms/src/error.rs crates/rdbms/src/page.rs crates/rdbms/src/table.rs crates/rdbms/src/wal.rs

crates/rdbms/src/lib.rs:
crates/rdbms/src/blob.rs:
crates/rdbms/src/btree.rs:
crates/rdbms/src/buffer.rs:
crates/rdbms/src/db.rs:
crates/rdbms/src/disk.rs:
crates/rdbms/src/error.rs:
crates/rdbms/src/page.rs:
crates/rdbms/src/table.rs:
crates/rdbms/src/wal.rs:
