/root/repo/target/debug/deps/full_system-d43be8909fef34d8.d: tests/full_system.rs Cargo.toml

/root/repo/target/debug/deps/libfull_system-d43be8909fef34d8.rmeta: tests/full_system.rs Cargo.toml

tests/full_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
