/root/repo/target/debug/deps/proptests-6517f600190d12c0.d: crates/rdbms/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6517f600190d12c0: crates/rdbms/tests/proptests.rs

crates/rdbms/tests/proptests.rs:
