/root/repo/target/debug/deps/full_system-358d6c6f54271f82.d: tests/full_system.rs

/root/repo/target/debug/deps/full_system-358d6c6f54271f82: tests/full_system.rs

tests/full_system.rs:
