/root/repo/target/debug/deps/exp_export-70ae8148008b8801.d: crates/bench/src/bin/exp_export.rs

/root/repo/target/debug/deps/exp_export-70ae8148008b8801: crates/bench/src/bin/exp_export.rs

crates/bench/src/bin/exp_export.rs:
