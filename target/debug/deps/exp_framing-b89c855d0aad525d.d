/root/repo/target/debug/deps/exp_framing-b89c855d0aad525d.d: crates/bench/src/bin/exp_framing.rs Cargo.toml

/root/repo/target/debug/deps/libexp_framing-b89c855d0aad525d.rmeta: crates/bench/src/bin/exp_framing.rs Cargo.toml

crates/bench/src/bin/exp_framing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
