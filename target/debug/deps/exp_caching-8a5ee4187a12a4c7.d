/root/repo/target/debug/deps/exp_caching-8a5ee4187a12a4c7.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/debug/deps/exp_caching-8a5ee4187a12a4c7: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
