/root/repo/target/debug/deps/exp_scheduling-5d4532392dcfcd75.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/debug/deps/libexp_scheduling-5d4532392dcfcd75.rmeta: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
