/root/repo/target/debug/deps/exp_caching-08a29deacd890ae2.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/debug/deps/libexp_caching-08a29deacd890ae2.rmeta: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
