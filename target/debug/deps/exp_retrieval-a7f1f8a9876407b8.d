/root/repo/target/debug/deps/exp_retrieval-a7f1f8a9876407b8.d: crates/bench/src/bin/exp_retrieval.rs

/root/repo/target/debug/deps/libexp_retrieval-a7f1f8a9876407b8.rmeta: crates/bench/src/bin/exp_retrieval.rs

crates/bench/src/bin/exp_retrieval.rs:
