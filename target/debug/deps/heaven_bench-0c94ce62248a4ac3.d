/root/repo/target/debug/deps/heaven_bench-0c94ce62248a4ac3.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libheaven_bench-0c94ce62248a4ac3.rlib: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libheaven_bench-0c94ce62248a4ac3.rmeta: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
