/root/repo/target/debug/deps/heaven_obs-c3c6ea2633441a00.d: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sym.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_obs-c3c6ea2633441a00.rmeta: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sym.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/breakdown.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sym.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
