/root/repo/target/debug/deps/heaven_arraydb-c0f5fe54cd158d0d.d: crates/arraydb/src/lib.rs crates/arraydb/src/error.rs crates/arraydb/src/provider.rs crates/arraydb/src/ql/mod.rs crates/arraydb/src/ql/ast.rs crates/arraydb/src/ql/exec.rs crates/arraydb/src/ql/lexer.rs crates/arraydb/src/ql/parser.rs crates/arraydb/src/schema.rs crates/arraydb/src/storage.rs

/root/repo/target/debug/deps/libheaven_arraydb-c0f5fe54cd158d0d.rlib: crates/arraydb/src/lib.rs crates/arraydb/src/error.rs crates/arraydb/src/provider.rs crates/arraydb/src/ql/mod.rs crates/arraydb/src/ql/ast.rs crates/arraydb/src/ql/exec.rs crates/arraydb/src/ql/lexer.rs crates/arraydb/src/ql/parser.rs crates/arraydb/src/schema.rs crates/arraydb/src/storage.rs

/root/repo/target/debug/deps/libheaven_arraydb-c0f5fe54cd158d0d.rmeta: crates/arraydb/src/lib.rs crates/arraydb/src/error.rs crates/arraydb/src/provider.rs crates/arraydb/src/ql/mod.rs crates/arraydb/src/ql/ast.rs crates/arraydb/src/ql/exec.rs crates/arraydb/src/ql/lexer.rs crates/arraydb/src/ql/parser.rs crates/arraydb/src/schema.rs crates/arraydb/src/storage.rs

crates/arraydb/src/lib.rs:
crates/arraydb/src/error.rs:
crates/arraydb/src/provider.rs:
crates/arraydb/src/ql/mod.rs:
crates/arraydb/src/ql/ast.rs:
crates/arraydb/src/ql/exec.rs:
crates/arraydb/src/ql/lexer.rs:
crates/arraydb/src/ql/parser.rs:
crates/arraydb/src/schema.rs:
crates/arraydb/src/storage.rs:
