/root/repo/target/debug/deps/zero_copy-3946e8d29e335a45.d: crates/core/tests/zero_copy.rs

/root/repo/target/debug/deps/libzero_copy-3946e8d29e335a45.rmeta: crates/core/tests/zero_copy.rs

crates/core/tests/zero_copy.rs:
