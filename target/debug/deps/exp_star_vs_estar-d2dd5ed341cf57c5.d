/root/repo/target/debug/deps/exp_star_vs_estar-d2dd5ed341cf57c5.d: crates/bench/src/bin/exp_star_vs_estar.rs

/root/repo/target/debug/deps/exp_star_vs_estar-d2dd5ed341cf57c5: crates/bench/src/bin/exp_star_vs_estar.rs

crates/bench/src/bin/exp_star_vs_estar.rs:
