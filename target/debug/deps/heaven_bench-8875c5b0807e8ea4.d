/root/repo/target/debug/deps/heaven_bench-8875c5b0807e8ea4.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libheaven_bench-8875c5b0807e8ea4.rmeta: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
