/root/repo/target/debug/deps/codec-a5fc2ecded8603db.d: crates/bench/benches/codec.rs

/root/repo/target/debug/deps/codec-a5fc2ecded8603db: crates/bench/benches/codec.rs

crates/bench/benches/codec.rs:
