/root/repo/target/debug/deps/exp_scheduling-06d15f40ad466387.d: crates/bench/src/bin/exp_scheduling.rs Cargo.toml

/root/repo/target/debug/deps/libexp_scheduling-06d15f40ad466387.rmeta: crates/bench/src/bin/exp_scheduling.rs Cargo.toml

crates/bench/src/bin/exp_scheduling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
