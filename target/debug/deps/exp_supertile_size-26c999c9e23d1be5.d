/root/repo/target/debug/deps/exp_supertile_size-26c999c9e23d1be5.d: crates/bench/src/bin/exp_supertile_size.rs

/root/repo/target/debug/deps/exp_supertile_size-26c999c9e23d1be5: crates/bench/src/bin/exp_supertile_size.rs

crates/bench/src/bin/exp_supertile_size.rs:
