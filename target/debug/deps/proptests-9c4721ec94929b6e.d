/root/repo/target/debug/deps/proptests-9c4721ec94929b6e.d: crates/rdbms/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9c4721ec94929b6e: crates/rdbms/tests/proptests.rs

crates/rdbms/tests/proptests.rs:
