/root/repo/target/debug/deps/heaven-faa77ceaca417f57.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libheaven-faa77ceaca417f57.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
