/root/repo/target/debug/deps/exp_supertile_size-f18d305384c75856.d: crates/bench/src/bin/exp_supertile_size.rs

/root/repo/target/debug/deps/exp_supertile_size-f18d305384c75856: crates/bench/src/bin/exp_supertile_size.rs

crates/bench/src/bin/exp_supertile_size.rs:
