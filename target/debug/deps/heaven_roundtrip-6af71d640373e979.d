/root/repo/target/debug/deps/heaven_roundtrip-6af71d640373e979.d: crates/core/tests/heaven_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_roundtrip-6af71d640373e979.rmeta: crates/core/tests/heaven_roundtrip.rs Cargo.toml

crates/core/tests/heaven_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
