/root/repo/target/debug/deps/exp_supertile_size-d1eb1d3816f31c70.d: crates/bench/src/bin/exp_supertile_size.rs Cargo.toml

/root/repo/target/debug/deps/libexp_supertile_size-d1eb1d3816f31c70.rmeta: crates/bench/src/bin/exp_supertile_size.rs Cargo.toml

crates/bench/src/bin/exp_supertile_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
