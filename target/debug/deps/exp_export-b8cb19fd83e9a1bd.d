/root/repo/target/debug/deps/exp_export-b8cb19fd83e9a1bd.d: crates/bench/src/bin/exp_export.rs Cargo.toml

/root/repo/target/debug/deps/libexp_export-b8cb19fd83e9a1bd.rmeta: crates/bench/src/bin/exp_export.rs Cargo.toml

crates/bench/src/bin/exp_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
