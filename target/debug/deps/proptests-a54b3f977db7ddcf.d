/root/repo/target/debug/deps/proptests-a54b3f977db7ddcf.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-a54b3f977db7ddcf.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
