/root/repo/target/debug/deps/exp_media_table-64867a03ef954074.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/debug/deps/exp_media_table-64867a03ef954074: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
