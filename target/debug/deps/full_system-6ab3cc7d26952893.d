/root/repo/target/debug/deps/full_system-6ab3cc7d26952893.d: tests/full_system.rs

/root/repo/target/debug/deps/full_system-6ab3cc7d26952893: tests/full_system.rs

tests/full_system.rs:
