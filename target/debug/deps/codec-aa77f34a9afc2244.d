/root/repo/target/debug/deps/codec-aa77f34a9afc2244.d: crates/bench/benches/codec.rs Cargo.toml

/root/repo/target/debug/deps/libcodec-aa77f34a9afc2244.rmeta: crates/bench/benches/codec.rs Cargo.toml

crates/bench/benches/codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
