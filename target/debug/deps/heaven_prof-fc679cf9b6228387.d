/root/repo/target/debug/deps/heaven_prof-fc679cf9b6228387.d: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

/root/repo/target/debug/deps/libheaven_prof-fc679cf9b6228387.rlib: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

/root/repo/target/debug/deps/libheaven_prof-fc679cf9b6228387.rmeta: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

crates/prof/src/lib.rs:
crates/prof/src/flame.rs:
crates/prof/src/json.rs:
crates/prof/src/tail.rs:
crates/prof/src/timeline.rs:
crates/prof/src/trace.rs:
