/root/repo/target/debug/deps/exp_scheduling-b7bfc3304252d0db.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/debug/deps/exp_scheduling-b7bfc3304252d0db: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
