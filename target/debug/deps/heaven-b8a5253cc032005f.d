/root/repo/target/debug/deps/heaven-b8a5253cc032005f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libheaven-b8a5253cc032005f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
