/root/repo/target/debug/deps/heaven_prof-2ecda5f4d62d1d9b.d: crates/prof/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_prof-2ecda5f4d62d1d9b.rmeta: crates/prof/src/main.rs Cargo.toml

crates/prof/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
