/root/repo/target/debug/deps/heaven-3d015d3148ee9b29.d: src/lib.rs

/root/repo/target/debug/deps/libheaven-3d015d3148ee9b29.rlib: src/lib.rs

/root/repo/target/debug/deps/libheaven-3d015d3148ee9b29.rmeta: src/lib.rs

src/lib.rs:
