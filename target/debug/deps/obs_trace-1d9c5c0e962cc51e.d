/root/repo/target/debug/deps/obs_trace-1d9c5c0e962cc51e.d: tests/obs_trace.rs

/root/repo/target/debug/deps/obs_trace-1d9c5c0e962cc51e: tests/obs_trace.rs

tests/obs_trace.rs:
