/root/repo/target/debug/deps/exp_caching-363f3d6aebd9fc91.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/debug/deps/libexp_caching-363f3d6aebd9fc91.rmeta: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
