/root/repo/target/debug/deps/exp_framing-e9c0787e0366f856.d: crates/bench/src/bin/exp_framing.rs

/root/repo/target/debug/deps/exp_framing-e9c0787e0366f856: crates/bench/src/bin/exp_framing.rs

crates/bench/src/bin/exp_framing.rs:
