/root/repo/target/debug/deps/heaven-49e84c9cde42b0b2.d: src/lib.rs

/root/repo/target/debug/deps/libheaven-49e84c9cde42b0b2.rlib: src/lib.rs

/root/repo/target/debug/deps/libheaven-49e84c9cde42b0b2.rmeta: src/lib.rs

src/lib.rs:
