/root/repo/target/debug/deps/clustering-af4244397ff5c137.d: crates/bench/benches/clustering.rs Cargo.toml

/root/repo/target/debug/deps/libclustering-af4244397ff5c137.rmeta: crates/bench/benches/clustering.rs Cargo.toml

crates/bench/benches/clustering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
