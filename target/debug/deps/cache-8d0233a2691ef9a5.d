/root/repo/target/debug/deps/cache-8d0233a2691ef9a5.d: crates/bench/benches/cache.rs

/root/repo/target/debug/deps/cache-8d0233a2691ef9a5: crates/bench/benches/cache.rs

crates/bench/benches/cache.rs:
