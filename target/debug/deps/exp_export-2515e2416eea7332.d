/root/repo/target/debug/deps/exp_export-2515e2416eea7332.d: crates/bench/src/bin/exp_export.rs

/root/repo/target/debug/deps/exp_export-2515e2416eea7332: crates/bench/src/bin/exp_export.rs

crates/bench/src/bin/exp_export.rs:
