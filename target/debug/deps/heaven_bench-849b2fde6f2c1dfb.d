/root/repo/target/debug/deps/heaven_bench-849b2fde6f2c1dfb.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/heaven_bench-849b2fde6f2c1dfb: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
