/root/repo/target/debug/deps/exp_media_table-f897d0ed5b3bf7de.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/debug/deps/exp_media_table-f897d0ed5b3bf7de: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
