/root/repo/target/debug/deps/heaven_hsm-d469c5b6f796e81c.d: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

/root/repo/target/debug/deps/libheaven_hsm-d469c5b6f796e81c.rlib: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

/root/repo/target/debug/deps/libheaven_hsm-d469c5b6f796e81c.rmeta: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

crates/hsm/src/lib.rs:
crates/hsm/src/catalog.rs:
crates/hsm/src/direct.rs:
crates/hsm/src/disk.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/policy.rs:
