/root/repo/target/debug/deps/exp_precomp-24ab9fa642170f96.d: crates/bench/src/bin/exp_precomp.rs

/root/repo/target/debug/deps/exp_precomp-24ab9fa642170f96: crates/bench/src/bin/exp_precomp.rs

crates/bench/src/bin/exp_precomp.rs:
