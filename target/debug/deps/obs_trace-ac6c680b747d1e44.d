/root/repo/target/debug/deps/obs_trace-ac6c680b747d1e44.d: tests/obs_trace.rs

/root/repo/target/debug/deps/obs_trace-ac6c680b747d1e44: tests/obs_trace.rs

tests/obs_trace.rs:
