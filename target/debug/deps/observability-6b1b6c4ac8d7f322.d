/root/repo/target/debug/deps/observability-6b1b6c4ac8d7f322.d: crates/core/tests/observability.rs

/root/repo/target/debug/deps/libobservability-6b1b6c4ac8d7f322.rmeta: crates/core/tests/observability.rs

crates/core/tests/observability.rs:
