/root/repo/target/debug/deps/exp_scheduling-a7f45830f3c71c48.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/debug/deps/exp_scheduling-a7f45830f3c71c48: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
