/root/repo/target/debug/deps/proptests-4a409a9b9e046ffe.d: crates/array/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-4a409a9b9e046ffe.rmeta: crates/array/tests/proptests.rs

crates/array/tests/proptests.rs:
