/root/repo/target/debug/deps/proptests-cebcb000a04114d4.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-cebcb000a04114d4.rmeta: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
