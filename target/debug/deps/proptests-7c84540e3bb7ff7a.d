/root/repo/target/debug/deps/proptests-7c84540e3bb7ff7a.d: crates/array/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-7c84540e3bb7ff7a.rmeta: crates/array/tests/proptests.rs Cargo.toml

crates/array/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
