/root/repo/target/debug/deps/observability-2573fad6066a5d62.d: crates/core/tests/observability.rs

/root/repo/target/debug/deps/observability-2573fad6066a5d62: crates/core/tests/observability.rs

crates/core/tests/observability.rs:
