/root/repo/target/debug/deps/exp_coupling-e79302fdae0f4af5.d: crates/bench/src/bin/exp_coupling.rs

/root/repo/target/debug/deps/exp_coupling-e79302fdae0f4af5: crates/bench/src/bin/exp_coupling.rs

crates/bench/src/bin/exp_coupling.rs:
