/root/repo/target/debug/deps/exp_precomp-fa873b7a79b23cd2.d: crates/bench/src/bin/exp_precomp.rs Cargo.toml

/root/repo/target/debug/deps/libexp_precomp-fa873b7a79b23cd2.rmeta: crates/bench/src/bin/exp_precomp.rs Cargo.toml

crates/bench/src/bin/exp_precomp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
