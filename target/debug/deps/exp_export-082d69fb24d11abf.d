/root/repo/target/debug/deps/exp_export-082d69fb24d11abf.d: crates/bench/src/bin/exp_export.rs

/root/repo/target/debug/deps/libexp_export-082d69fb24d11abf.rmeta: crates/bench/src/bin/exp_export.rs

crates/bench/src/bin/exp_export.rs:
