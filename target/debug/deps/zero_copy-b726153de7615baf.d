/root/repo/target/debug/deps/zero_copy-b726153de7615baf.d: crates/core/tests/zero_copy.rs Cargo.toml

/root/repo/target/debug/deps/libzero_copy-b726153de7615baf.rmeta: crates/core/tests/zero_copy.rs Cargo.toml

crates/core/tests/zero_copy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
