/root/repo/target/debug/deps/codec-cd02130396404fba.d: crates/bench/benches/codec.rs Cargo.toml

/root/repo/target/debug/deps/libcodec-cd02130396404fba.rmeta: crates/bench/benches/codec.rs Cargo.toml

crates/bench/benches/codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
