/root/repo/target/debug/deps/proptests-460f7ddc445de320.d: crates/hsm/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-460f7ddc445de320.rmeta: crates/hsm/tests/proptests.rs Cargo.toml

crates/hsm/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
