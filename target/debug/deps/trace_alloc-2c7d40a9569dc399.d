/root/repo/target/debug/deps/trace_alloc-2c7d40a9569dc399.d: tests/trace_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_alloc-2c7d40a9569dc399.rmeta: tests/trace_alloc.rs Cargo.toml

tests/trace_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
