/root/repo/target/debug/deps/proptests-6faa737be1906b47.d: crates/hsm/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-6faa737be1906b47.rmeta: crates/hsm/tests/proptests.rs

crates/hsm/tests/proptests.rs:
