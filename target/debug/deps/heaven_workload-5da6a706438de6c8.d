/root/repo/target/debug/deps/heaven_workload-5da6a706438de6c8.d: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

/root/repo/target/debug/deps/libheaven_workload-5da6a706438de6c8.rlib: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

/root/repo/target/debug/deps/libheaven_workload-5da6a706438de6c8.rmeta: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

crates/workload/src/lib.rs:
crates/workload/src/data.rs:
crates/workload/src/queries.rs:
