/root/repo/target/debug/deps/full_system-3abbbed127abec82.d: tests/full_system.rs

/root/repo/target/debug/deps/full_system-3abbbed127abec82: tests/full_system.rs

tests/full_system.rs:
