/root/repo/target/debug/deps/exp_framing-3522a2f46fdcc3f9.d: crates/bench/src/bin/exp_framing.rs

/root/repo/target/debug/deps/exp_framing-3522a2f46fdcc3f9: crates/bench/src/bin/exp_framing.rs

crates/bench/src/bin/exp_framing.rs:
