/root/repo/target/debug/deps/exp_scheduling-46d4d520aeda0e21.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/debug/deps/exp_scheduling-46d4d520aeda0e21: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
