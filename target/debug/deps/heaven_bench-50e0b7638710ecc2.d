/root/repo/target/debug/deps/heaven_bench-50e0b7638710ecc2.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/heaven_bench-50e0b7638710ecc2: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
