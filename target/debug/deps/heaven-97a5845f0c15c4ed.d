/root/repo/target/debug/deps/heaven-97a5845f0c15c4ed.d: src/lib.rs

/root/repo/target/debug/deps/heaven-97a5845f0c15c4ed: src/lib.rs

src/lib.rs:
