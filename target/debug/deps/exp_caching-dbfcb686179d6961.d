/root/repo/target/debug/deps/exp_caching-dbfcb686179d6961.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/debug/deps/exp_caching-dbfcb686179d6961: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
