/root/repo/target/debug/deps/sampled_trace-c547ca484ba4242f.d: crates/prof/tests/sampled_trace.rs

/root/repo/target/debug/deps/sampled_trace-c547ca484ba4242f: crates/prof/tests/sampled_trace.rs

crates/prof/tests/sampled_trace.rs:
