/root/repo/target/debug/deps/heaven_obs-ecf13d87f198d2e6.d: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_obs-ecf13d87f198d2e6.rmeta: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/breakdown.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
