/root/repo/target/debug/deps/heaven_bench-fb968fe9f5e05ef8.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/heaven_bench-fb968fe9f5e05ef8: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
