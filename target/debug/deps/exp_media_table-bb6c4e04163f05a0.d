/root/repo/target/debug/deps/exp_media_table-bb6c4e04163f05a0.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/debug/deps/libexp_media_table-bb6c4e04163f05a0.rmeta: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
