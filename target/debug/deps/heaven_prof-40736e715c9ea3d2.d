/root/repo/target/debug/deps/heaven_prof-40736e715c9ea3d2.d: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_prof-40736e715c9ea3d2.rmeta: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs Cargo.toml

crates/prof/src/lib.rs:
crates/prof/src/flame.rs:
crates/prof/src/json.rs:
crates/prof/src/tail.rs:
crates/prof/src/timeline.rs:
crates/prof/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
