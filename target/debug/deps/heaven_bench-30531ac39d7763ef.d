/root/repo/target/debug/deps/heaven_bench-30531ac39d7763ef.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libheaven_bench-30531ac39d7763ef.rlib: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libheaven_bench-30531ac39d7763ef.rmeta: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
