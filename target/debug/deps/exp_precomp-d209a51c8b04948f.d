/root/repo/target/debug/deps/exp_precomp-d209a51c8b04948f.d: crates/bench/src/bin/exp_precomp.rs

/root/repo/target/debug/deps/libexp_precomp-d209a51c8b04948f.rmeta: crates/bench/src/bin/exp_precomp.rs

crates/bench/src/bin/exp_precomp.rs:
