/root/repo/target/debug/deps/heaven_obs-a66cfe484d975aac.d: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libheaven_obs-a66cfe484d975aac.rmeta: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/breakdown.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
