/root/repo/target/debug/deps/exp_media_table-01df9ff85f144efc.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/debug/deps/exp_media_table-01df9ff85f144efc: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
