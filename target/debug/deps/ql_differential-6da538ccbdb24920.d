/root/repo/target/debug/deps/ql_differential-6da538ccbdb24920.d: crates/arraydb/tests/ql_differential.rs Cargo.toml

/root/repo/target/debug/deps/libql_differential-6da538ccbdb24920.rmeta: crates/arraydb/tests/ql_differential.rs Cargo.toml

crates/arraydb/tests/ql_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
