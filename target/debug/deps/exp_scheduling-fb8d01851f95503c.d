/root/repo/target/debug/deps/exp_scheduling-fb8d01851f95503c.d: crates/bench/src/bin/exp_scheduling.rs Cargo.toml

/root/repo/target/debug/deps/libexp_scheduling-fb8d01851f95503c.rmeta: crates/bench/src/bin/exp_scheduling.rs Cargo.toml

crates/bench/src/bin/exp_scheduling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
