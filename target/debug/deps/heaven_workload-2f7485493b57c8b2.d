/root/repo/target/debug/deps/heaven_workload-2f7485493b57c8b2.d: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

/root/repo/target/debug/deps/heaven_workload-2f7485493b57c8b2: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

crates/workload/src/lib.rs:
crates/workload/src/data.rs:
crates/workload/src/queries.rs:
