/root/repo/target/debug/deps/exp_framing-2fb1813dbaa1a5e9.d: crates/bench/src/bin/exp_framing.rs

/root/repo/target/debug/deps/exp_framing-2fb1813dbaa1a5e9: crates/bench/src/bin/exp_framing.rs

crates/bench/src/bin/exp_framing.rs:
