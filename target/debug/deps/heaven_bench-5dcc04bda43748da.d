/root/repo/target/debug/deps/heaven_bench-5dcc04bda43748da.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libheaven_bench-5dcc04bda43748da.rmeta: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
