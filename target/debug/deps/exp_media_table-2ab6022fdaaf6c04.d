/root/repo/target/debug/deps/exp_media_table-2ab6022fdaaf6c04.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/debug/deps/exp_media_table-2ab6022fdaaf6c04: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
