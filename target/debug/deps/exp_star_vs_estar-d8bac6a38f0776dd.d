/root/repo/target/debug/deps/exp_star_vs_estar-d8bac6a38f0776dd.d: crates/bench/src/bin/exp_star_vs_estar.rs

/root/repo/target/debug/deps/exp_star_vs_estar-d8bac6a38f0776dd: crates/bench/src/bin/exp_star_vs_estar.rs

crates/bench/src/bin/exp_star_vs_estar.rs:
