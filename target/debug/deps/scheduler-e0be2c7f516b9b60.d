/root/repo/target/debug/deps/scheduler-e0be2c7f516b9b60.d: crates/bench/benches/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libscheduler-e0be2c7f516b9b60.rmeta: crates/bench/benches/scheduler.rs Cargo.toml

crates/bench/benches/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
