/root/repo/target/debug/deps/heaven_prof-29daa70a44c596f2.d: crates/prof/src/main.rs

/root/repo/target/debug/deps/libheaven_prof-29daa70a44c596f2.rmeta: crates/prof/src/main.rs

crates/prof/src/main.rs:
