/root/repo/target/debug/deps/heaven-d4b07206fae753a1.d: src/lib.rs

/root/repo/target/debug/deps/libheaven-d4b07206fae753a1.rlib: src/lib.rs

/root/repo/target/debug/deps/libheaven-d4b07206fae753a1.rmeta: src/lib.rs

src/lib.rs:
