/root/repo/target/debug/deps/exp_retrieval-8cab9a74c17ada86.d: crates/bench/src/bin/exp_retrieval.rs Cargo.toml

/root/repo/target/debug/deps/libexp_retrieval-8cab9a74c17ada86.rmeta: crates/bench/src/bin/exp_retrieval.rs Cargo.toml

crates/bench/src/bin/exp_retrieval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
