/root/repo/target/debug/deps/heaven_obs-e1f31896674b701e.d: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libheaven_obs-e1f31896674b701e.rmeta: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/breakdown.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
