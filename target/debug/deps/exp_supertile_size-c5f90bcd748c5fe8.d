/root/repo/target/debug/deps/exp_supertile_size-c5f90bcd748c5fe8.d: crates/bench/src/bin/exp_supertile_size.rs

/root/repo/target/debug/deps/exp_supertile_size-c5f90bcd748c5fe8: crates/bench/src/bin/exp_supertile_size.rs

crates/bench/src/bin/exp_supertile_size.rs:
