/root/repo/target/debug/deps/exp_framing-14655c8d2af9a403.d: crates/bench/src/bin/exp_framing.rs

/root/repo/target/debug/deps/exp_framing-14655c8d2af9a403: crates/bench/src/bin/exp_framing.rs

crates/bench/src/bin/exp_framing.rs:
