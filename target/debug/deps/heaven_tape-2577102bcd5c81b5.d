/root/repo/target/debug/deps/heaven_tape-2577102bcd5c81b5.d: crates/tape/src/lib.rs crates/tape/src/clock.rs crates/tape/src/error.rs crates/tape/src/library.rs crates/tape/src/media.rs crates/tape/src/profile.rs crates/tape/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_tape-2577102bcd5c81b5.rmeta: crates/tape/src/lib.rs crates/tape/src/clock.rs crates/tape/src/error.rs crates/tape/src/library.rs crates/tape/src/media.rs crates/tape/src/profile.rs crates/tape/src/stats.rs Cargo.toml

crates/tape/src/lib.rs:
crates/tape/src/clock.rs:
crates/tape/src/error.rs:
crates/tape/src/library.rs:
crates/tape/src/media.rs:
crates/tape/src/profile.rs:
crates/tape/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
