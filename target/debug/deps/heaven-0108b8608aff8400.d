/root/repo/target/debug/deps/heaven-0108b8608aff8400.d: src/lib.rs

/root/repo/target/debug/deps/libheaven-0108b8608aff8400.rmeta: src/lib.rs

src/lib.rs:
