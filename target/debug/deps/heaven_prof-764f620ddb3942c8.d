/root/repo/target/debug/deps/heaven_prof-764f620ddb3942c8.d: crates/prof/src/main.rs

/root/repo/target/debug/deps/libheaven_prof-764f620ddb3942c8.rmeta: crates/prof/src/main.rs

crates/prof/src/main.rs:
