/root/repo/target/debug/deps/heaven_prof-1ed7c3f241a30f9e.d: crates/prof/src/main.rs

/root/repo/target/debug/deps/heaven_prof-1ed7c3f241a30f9e: crates/prof/src/main.rs

crates/prof/src/main.rs:
