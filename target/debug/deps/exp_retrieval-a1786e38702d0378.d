/root/repo/target/debug/deps/exp_retrieval-a1786e38702d0378.d: crates/bench/src/bin/exp_retrieval.rs

/root/repo/target/debug/deps/exp_retrieval-a1786e38702d0378: crates/bench/src/bin/exp_retrieval.rs

crates/bench/src/bin/exp_retrieval.rs:
