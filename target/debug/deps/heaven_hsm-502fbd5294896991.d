/root/repo/target/debug/deps/heaven_hsm-502fbd5294896991.d: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_hsm-502fbd5294896991.rmeta: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs Cargo.toml

crates/hsm/src/lib.rs:
crates/hsm/src/catalog.rs:
crates/hsm/src/direct.rs:
crates/hsm/src/disk.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
