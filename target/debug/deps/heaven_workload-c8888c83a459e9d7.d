/root/repo/target/debug/deps/heaven_workload-c8888c83a459e9d7.d: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

/root/repo/target/debug/deps/libheaven_workload-c8888c83a459e9d7.rmeta: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

crates/workload/src/lib.rs:
crates/workload/src/data.rs:
crates/workload/src/queries.rs:
