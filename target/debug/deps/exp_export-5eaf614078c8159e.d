/root/repo/target/debug/deps/exp_export-5eaf614078c8159e.d: crates/bench/src/bin/exp_export.rs

/root/repo/target/debug/deps/exp_export-5eaf614078c8159e: crates/bench/src/bin/exp_export.rs

crates/bench/src/bin/exp_export.rs:
