/root/repo/target/debug/deps/exp_export-8b61f77229709d73.d: crates/bench/src/bin/exp_export.rs

/root/repo/target/debug/deps/exp_export-8b61f77229709d73: crates/bench/src/bin/exp_export.rs

crates/bench/src/bin/exp_export.rs:
