/root/repo/target/debug/deps/heaven_prof-a4af0f0903c07aec.d: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

/root/repo/target/debug/deps/libheaven_prof-a4af0f0903c07aec.rmeta: crates/prof/src/lib.rs crates/prof/src/flame.rs crates/prof/src/json.rs crates/prof/src/tail.rs crates/prof/src/timeline.rs crates/prof/src/trace.rs

crates/prof/src/lib.rs:
crates/prof/src/flame.rs:
crates/prof/src/json.rs:
crates/prof/src/tail.rs:
crates/prof/src/timeline.rs:
crates/prof/src/trace.rs:
