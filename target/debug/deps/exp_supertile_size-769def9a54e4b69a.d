/root/repo/target/debug/deps/exp_supertile_size-769def9a54e4b69a.d: crates/bench/src/bin/exp_supertile_size.rs

/root/repo/target/debug/deps/exp_supertile_size-769def9a54e4b69a: crates/bench/src/bin/exp_supertile_size.rs

crates/bench/src/bin/exp_supertile_size.rs:
