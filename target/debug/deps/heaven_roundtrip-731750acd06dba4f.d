/root/repo/target/debug/deps/heaven_roundtrip-731750acd06dba4f.d: crates/core/tests/heaven_roundtrip.rs

/root/repo/target/debug/deps/libheaven_roundtrip-731750acd06dba4f.rmeta: crates/core/tests/heaven_roundtrip.rs

crates/core/tests/heaven_roundtrip.rs:
