/root/repo/target/debug/deps/obs_overhead-2d65048a90faab1d.d: crates/bench/benches/obs_overhead.rs

/root/repo/target/debug/deps/libobs_overhead-2d65048a90faab1d.rmeta: crates/bench/benches/obs_overhead.rs

crates/bench/benches/obs_overhead.rs:
