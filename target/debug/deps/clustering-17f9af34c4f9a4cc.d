/root/repo/target/debug/deps/clustering-17f9af34c4f9a4cc.d: crates/bench/benches/clustering.rs Cargo.toml

/root/repo/target/debug/deps/libclustering-17f9af34c4f9a4cc.rmeta: crates/bench/benches/clustering.rs Cargo.toml

crates/bench/benches/clustering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
