/root/repo/target/debug/deps/exp_supertile_size-5352118857f7d77f.d: crates/bench/src/bin/exp_supertile_size.rs

/root/repo/target/debug/deps/libexp_supertile_size-5352118857f7d77f.rmeta: crates/bench/src/bin/exp_supertile_size.rs

crates/bench/src/bin/exp_supertile_size.rs:
