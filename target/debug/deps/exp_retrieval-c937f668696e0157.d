/root/repo/target/debug/deps/exp_retrieval-c937f668696e0157.d: crates/bench/src/bin/exp_retrieval.rs

/root/repo/target/debug/deps/exp_retrieval-c937f668696e0157: crates/bench/src/bin/exp_retrieval.rs

crates/bench/src/bin/exp_retrieval.rs:
