/root/repo/target/debug/deps/materialize-6024404ee4ab8f6c.d: crates/bench/benches/materialize.rs

/root/repo/target/debug/deps/libmaterialize-6024404ee4ab8f6c.rmeta: crates/bench/benches/materialize.rs

crates/bench/benches/materialize.rs:
