/root/repo/target/debug/deps/exp_coupling-1f1bce64a64a6c6d.d: crates/bench/src/bin/exp_coupling.rs

/root/repo/target/debug/deps/exp_coupling-1f1bce64a64a6c6d: crates/bench/src/bin/exp_coupling.rs

crates/bench/src/bin/exp_coupling.rs:
