/root/repo/target/debug/deps/alloc_free-74b7e0d309d71b73.d: crates/obs/tests/alloc_free.rs

/root/repo/target/debug/deps/alloc_free-74b7e0d309d71b73: crates/obs/tests/alloc_free.rs

crates/obs/tests/alloc_free.rs:
