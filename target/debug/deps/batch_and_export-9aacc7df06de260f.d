/root/repo/target/debug/deps/batch_and_export-9aacc7df06de260f.d: crates/core/tests/batch_and_export.rs

/root/repo/target/debug/deps/batch_and_export-9aacc7df06de260f: crates/core/tests/batch_and_export.rs

crates/core/tests/batch_and_export.rs:
