/root/repo/target/debug/deps/heaven_rdbms-171b00bce35a67f6.d: crates/rdbms/src/lib.rs crates/rdbms/src/blob.rs crates/rdbms/src/btree.rs crates/rdbms/src/buffer.rs crates/rdbms/src/db.rs crates/rdbms/src/disk.rs crates/rdbms/src/error.rs crates/rdbms/src/page.rs crates/rdbms/src/table.rs crates/rdbms/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_rdbms-171b00bce35a67f6.rmeta: crates/rdbms/src/lib.rs crates/rdbms/src/blob.rs crates/rdbms/src/btree.rs crates/rdbms/src/buffer.rs crates/rdbms/src/db.rs crates/rdbms/src/disk.rs crates/rdbms/src/error.rs crates/rdbms/src/page.rs crates/rdbms/src/table.rs crates/rdbms/src/wal.rs Cargo.toml

crates/rdbms/src/lib.rs:
crates/rdbms/src/blob.rs:
crates/rdbms/src/btree.rs:
crates/rdbms/src/buffer.rs:
crates/rdbms/src/db.rs:
crates/rdbms/src/disk.rs:
crates/rdbms/src/error.rs:
crates/rdbms/src/page.rs:
crates/rdbms/src/table.rs:
crates/rdbms/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
