/root/repo/target/debug/deps/exp_media_table-334b39617303df1e.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/debug/deps/exp_media_table-334b39617303df1e: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
