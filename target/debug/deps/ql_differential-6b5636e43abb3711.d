/root/repo/target/debug/deps/ql_differential-6b5636e43abb3711.d: crates/arraydb/tests/ql_differential.rs

/root/repo/target/debug/deps/libql_differential-6b5636e43abb3711.rmeta: crates/arraydb/tests/ql_differential.rs

crates/arraydb/tests/ql_differential.rs:
