/root/repo/target/debug/deps/proptests-bdbe8fbd8fb93171.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-bdbe8fbd8fb93171.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
