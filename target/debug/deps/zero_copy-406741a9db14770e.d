/root/repo/target/debug/deps/zero_copy-406741a9db14770e.d: crates/core/tests/zero_copy.rs

/root/repo/target/debug/deps/zero_copy-406741a9db14770e: crates/core/tests/zero_copy.rs

crates/core/tests/zero_copy.rs:
