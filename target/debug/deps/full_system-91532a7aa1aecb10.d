/root/repo/target/debug/deps/full_system-91532a7aa1aecb10.d: tests/full_system.rs

/root/repo/target/debug/deps/libfull_system-91532a7aa1aecb10.rmeta: tests/full_system.rs

tests/full_system.rs:
