/root/repo/target/debug/deps/exp_media_table-e41ef618e944c941.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/debug/deps/exp_media_table-e41ef618e944c941: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
