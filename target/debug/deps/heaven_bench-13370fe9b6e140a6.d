/root/repo/target/debug/deps/heaven_bench-13370fe9b6e140a6.d: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libheaven_bench-13370fe9b6e140a6.rlib: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libheaven_bench-13370fe9b6e140a6.rmeta: crates/bench/src/lib.rs crates/bench/src/phantom.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phantom.rs:
crates/bench/src/table.rs:
