/root/repo/target/debug/deps/exp_retrieval-ae4f76393e4bf076.d: crates/bench/src/bin/exp_retrieval.rs

/root/repo/target/debug/deps/exp_retrieval-ae4f76393e4bf076: crates/bench/src/bin/exp_retrieval.rs

crates/bench/src/bin/exp_retrieval.rs:
