/root/repo/target/debug/deps/proptests-10a2601d0f8d7d40.d: crates/rdbms/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-10a2601d0f8d7d40.rmeta: crates/rdbms/tests/proptests.rs

crates/rdbms/tests/proptests.rs:
