/root/repo/target/debug/deps/exp_framing-9fd247497d92d783.d: crates/bench/src/bin/exp_framing.rs

/root/repo/target/debug/deps/exp_framing-9fd247497d92d783: crates/bench/src/bin/exp_framing.rs

crates/bench/src/bin/exp_framing.rs:
