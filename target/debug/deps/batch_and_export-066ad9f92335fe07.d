/root/repo/target/debug/deps/batch_and_export-066ad9f92335fe07.d: crates/core/tests/batch_and_export.rs Cargo.toml

/root/repo/target/debug/deps/libbatch_and_export-066ad9f92335fe07.rmeta: crates/core/tests/batch_and_export.rs Cargo.toml

crates/core/tests/batch_and_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
