/root/repo/target/debug/deps/cache-77c2efbf3bea6f85.d: crates/bench/benches/cache.rs

/root/repo/target/debug/deps/libcache-77c2efbf3bea6f85.rmeta: crates/bench/benches/cache.rs

crates/bench/benches/cache.rs:
