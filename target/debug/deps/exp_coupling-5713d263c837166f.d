/root/repo/target/debug/deps/exp_coupling-5713d263c837166f.d: crates/bench/src/bin/exp_coupling.rs

/root/repo/target/debug/deps/libexp_coupling-5713d263c837166f.rmeta: crates/bench/src/bin/exp_coupling.rs

crates/bench/src/bin/exp_coupling.rs:
