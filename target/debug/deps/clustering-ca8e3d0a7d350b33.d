/root/repo/target/debug/deps/clustering-ca8e3d0a7d350b33.d: crates/bench/benches/clustering.rs

/root/repo/target/debug/deps/libclustering-ca8e3d0a7d350b33.rmeta: crates/bench/benches/clustering.rs

crates/bench/benches/clustering.rs:
