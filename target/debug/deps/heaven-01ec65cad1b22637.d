/root/repo/target/debug/deps/heaven-01ec65cad1b22637.d: src/lib.rs

/root/repo/target/debug/deps/libheaven-01ec65cad1b22637.rmeta: src/lib.rs

src/lib.rs:
