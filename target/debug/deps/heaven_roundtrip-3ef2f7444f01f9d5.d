/root/repo/target/debug/deps/heaven_roundtrip-3ef2f7444f01f9d5.d: crates/core/tests/heaven_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_roundtrip-3ef2f7444f01f9d5.rmeta: crates/core/tests/heaven_roundtrip.rs Cargo.toml

crates/core/tests/heaven_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
