/root/repo/target/debug/deps/query_language-9acfa5d4311b9cdd.d: crates/bench/benches/query_language.rs

/root/repo/target/debug/deps/libquery_language-9acfa5d4311b9cdd.rmeta: crates/bench/benches/query_language.rs

crates/bench/benches/query_language.rs:
