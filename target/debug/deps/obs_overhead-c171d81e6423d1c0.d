/root/repo/target/debug/deps/obs_overhead-c171d81e6423d1c0.d: crates/bench/benches/obs_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libobs_overhead-c171d81e6423d1c0.rmeta: crates/bench/benches/obs_overhead.rs Cargo.toml

crates/bench/benches/obs_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
