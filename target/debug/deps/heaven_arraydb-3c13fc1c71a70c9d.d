/root/repo/target/debug/deps/heaven_arraydb-3c13fc1c71a70c9d.d: crates/arraydb/src/lib.rs crates/arraydb/src/error.rs crates/arraydb/src/provider.rs crates/arraydb/src/ql/mod.rs crates/arraydb/src/ql/ast.rs crates/arraydb/src/ql/exec.rs crates/arraydb/src/ql/lexer.rs crates/arraydb/src/ql/parser.rs crates/arraydb/src/schema.rs crates/arraydb/src/storage.rs

/root/repo/target/debug/deps/libheaven_arraydb-3c13fc1c71a70c9d.rmeta: crates/arraydb/src/lib.rs crates/arraydb/src/error.rs crates/arraydb/src/provider.rs crates/arraydb/src/ql/mod.rs crates/arraydb/src/ql/ast.rs crates/arraydb/src/ql/exec.rs crates/arraydb/src/ql/lexer.rs crates/arraydb/src/ql/parser.rs crates/arraydb/src/schema.rs crates/arraydb/src/storage.rs

crates/arraydb/src/lib.rs:
crates/arraydb/src/error.rs:
crates/arraydb/src/provider.rs:
crates/arraydb/src/ql/mod.rs:
crates/arraydb/src/ql/ast.rs:
crates/arraydb/src/ql/exec.rs:
crates/arraydb/src/ql/lexer.rs:
crates/arraydb/src/ql/parser.rs:
crates/arraydb/src/schema.rs:
crates/arraydb/src/storage.rs:
