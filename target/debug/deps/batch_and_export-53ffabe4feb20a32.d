/root/repo/target/debug/deps/batch_and_export-53ffabe4feb20a32.d: crates/core/tests/batch_and_export.rs

/root/repo/target/debug/deps/batch_and_export-53ffabe4feb20a32: crates/core/tests/batch_and_export.rs

crates/core/tests/batch_and_export.rs:
