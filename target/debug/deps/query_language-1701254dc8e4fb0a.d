/root/repo/target/debug/deps/query_language-1701254dc8e4fb0a.d: crates/bench/benches/query_language.rs

/root/repo/target/debug/deps/query_language-1701254dc8e4fb0a: crates/bench/benches/query_language.rs

crates/bench/benches/query_language.rs:
