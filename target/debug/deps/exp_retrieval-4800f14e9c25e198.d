/root/repo/target/debug/deps/exp_retrieval-4800f14e9c25e198.d: crates/bench/src/bin/exp_retrieval.rs

/root/repo/target/debug/deps/libexp_retrieval-4800f14e9c25e198.rmeta: crates/bench/src/bin/exp_retrieval.rs

crates/bench/src/bin/exp_retrieval.rs:
