/root/repo/target/debug/deps/heaven_hsm-f8a9588f9a3d6d78.d: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

/root/repo/target/debug/deps/heaven_hsm-f8a9588f9a3d6d78: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs

crates/hsm/src/lib.rs:
crates/hsm/src/catalog.rs:
crates/hsm/src/direct.rs:
crates/hsm/src/disk.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/policy.rs:
