/root/repo/target/debug/deps/proptests-c53367fb1636c43e.d: crates/rdbms/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c53367fb1636c43e: crates/rdbms/tests/proptests.rs

crates/rdbms/tests/proptests.rs:
