/root/repo/target/debug/deps/exp_export-2f33b2942fa2729d.d: crates/bench/src/bin/exp_export.rs Cargo.toml

/root/repo/target/debug/deps/libexp_export-2f33b2942fa2729d.rmeta: crates/bench/src/bin/exp_export.rs Cargo.toml

crates/bench/src/bin/exp_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
