/root/repo/target/debug/deps/exp_retrieval-e18b2898e75bef64.d: crates/bench/src/bin/exp_retrieval.rs Cargo.toml

/root/repo/target/debug/deps/libexp_retrieval-e18b2898e75bef64.rmeta: crates/bench/src/bin/exp_retrieval.rs Cargo.toml

crates/bench/src/bin/exp_retrieval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
