/root/repo/target/debug/deps/exp_star_vs_estar-f7c64978e3251bb7.d: crates/bench/src/bin/exp_star_vs_estar.rs

/root/repo/target/debug/deps/exp_star_vs_estar-f7c64978e3251bb7: crates/bench/src/bin/exp_star_vs_estar.rs

crates/bench/src/bin/exp_star_vs_estar.rs:
