/root/repo/target/debug/deps/exp_prefetch-4cda572498a92d31.d: crates/bench/src/bin/exp_prefetch.rs

/root/repo/target/debug/deps/exp_prefetch-4cda572498a92d31: crates/bench/src/bin/exp_prefetch.rs

crates/bench/src/bin/exp_prefetch.rs:
