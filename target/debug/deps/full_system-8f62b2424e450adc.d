/root/repo/target/debug/deps/full_system-8f62b2424e450adc.d: tests/full_system.rs

/root/repo/target/debug/deps/full_system-8f62b2424e450adc: tests/full_system.rs

tests/full_system.rs:
