/root/repo/target/debug/deps/exp_prefetch-cfdc4a859afc5062.d: crates/bench/src/bin/exp_prefetch.rs

/root/repo/target/debug/deps/libexp_prefetch-cfdc4a859afc5062.rmeta: crates/bench/src/bin/exp_prefetch.rs

crates/bench/src/bin/exp_prefetch.rs:
