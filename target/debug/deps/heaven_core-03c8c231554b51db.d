/root/repo/target/debug/deps/heaven_core-03c8c231554b51db.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/catalog.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/estar.rs crates/core/src/export.rs crates/core/src/maintenance.rs crates/core/src/persist.rs crates/core/src/precomp.rs crates/core/src/report.rs crates/core/src/scheduler.rs crates/core/src/sizing.rs crates/core/src/star.rs crates/core/src/supertile.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_core-03c8c231554b51db.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/catalog.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/estar.rs crates/core/src/export.rs crates/core/src/maintenance.rs crates/core/src/persist.rs crates/core/src/precomp.rs crates/core/src/report.rs crates/core/src/scheduler.rs crates/core/src/sizing.rs crates/core/src/star.rs crates/core/src/supertile.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/catalog.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/estar.rs:
crates/core/src/export.rs:
crates/core/src/maintenance.rs:
crates/core/src/persist.rs:
crates/core/src/precomp.rs:
crates/core/src/report.rs:
crates/core/src/scheduler.rs:
crates/core/src/sizing.rs:
crates/core/src/star.rs:
crates/core/src/supertile.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
