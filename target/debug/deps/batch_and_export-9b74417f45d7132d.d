/root/repo/target/debug/deps/batch_and_export-9b74417f45d7132d.d: crates/core/tests/batch_and_export.rs

/root/repo/target/debug/deps/batch_and_export-9b74417f45d7132d: crates/core/tests/batch_and_export.rs

crates/core/tests/batch_and_export.rs:
