/root/repo/target/debug/deps/exp_media_table-220e7e63d22492d7.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/debug/deps/exp_media_table-220e7e63d22492d7: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
