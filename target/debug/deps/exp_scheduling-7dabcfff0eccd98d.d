/root/repo/target/debug/deps/exp_scheduling-7dabcfff0eccd98d.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/debug/deps/exp_scheduling-7dabcfff0eccd98d: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
