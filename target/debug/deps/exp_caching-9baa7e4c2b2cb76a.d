/root/repo/target/debug/deps/exp_caching-9baa7e4c2b2cb76a.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/debug/deps/exp_caching-9baa7e4c2b2cb76a: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
