/root/repo/target/debug/deps/proptests-8778c132f7362b9c.d: crates/array/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-8778c132f7362b9c.rmeta: crates/array/tests/proptests.rs Cargo.toml

crates/array/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
