/root/repo/target/debug/deps/heaven_hsm-c6987c6bb0e2a261.d: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_hsm-c6987c6bb0e2a261.rmeta: crates/hsm/src/lib.rs crates/hsm/src/catalog.rs crates/hsm/src/direct.rs crates/hsm/src/disk.rs crates/hsm/src/error.rs crates/hsm/src/hsm.rs crates/hsm/src/policy.rs Cargo.toml

crates/hsm/src/lib.rs:
crates/hsm/src/catalog.rs:
crates/hsm/src/direct.rs:
crates/hsm/src/disk.rs:
crates/hsm/src/error.rs:
crates/hsm/src/hsm.rs:
crates/hsm/src/policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
