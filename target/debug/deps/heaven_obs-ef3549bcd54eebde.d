/root/repo/target/debug/deps/heaven_obs-ef3549bcd54eebde.d: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/heaven_obs-ef3549bcd54eebde: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/breakdown.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
