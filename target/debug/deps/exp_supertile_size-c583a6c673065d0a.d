/root/repo/target/debug/deps/exp_supertile_size-c583a6c673065d0a.d: crates/bench/src/bin/exp_supertile_size.rs Cargo.toml

/root/repo/target/debug/deps/libexp_supertile_size-c583a6c673065d0a.rmeta: crates/bench/src/bin/exp_supertile_size.rs Cargo.toml

crates/bench/src/bin/exp_supertile_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
