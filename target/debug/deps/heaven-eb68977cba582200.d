/root/repo/target/debug/deps/heaven-eb68977cba582200.d: src/lib.rs

/root/repo/target/debug/deps/heaven-eb68977cba582200: src/lib.rs

src/lib.rs:
