/root/repo/target/debug/deps/exp_precomp-d9323a47b853272d.d: crates/bench/src/bin/exp_precomp.rs

/root/repo/target/debug/deps/exp_precomp-d9323a47b853272d: crates/bench/src/bin/exp_precomp.rs

crates/bench/src/bin/exp_precomp.rs:
