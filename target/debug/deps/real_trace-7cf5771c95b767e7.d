/root/repo/target/debug/deps/real_trace-7cf5771c95b767e7.d: crates/prof/tests/real_trace.rs

/root/repo/target/debug/deps/real_trace-7cf5771c95b767e7: crates/prof/tests/real_trace.rs

crates/prof/tests/real_trace.rs:
