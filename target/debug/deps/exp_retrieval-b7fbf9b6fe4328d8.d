/root/repo/target/debug/deps/exp_retrieval-b7fbf9b6fe4328d8.d: crates/bench/src/bin/exp_retrieval.rs

/root/repo/target/debug/deps/exp_retrieval-b7fbf9b6fe4328d8: crates/bench/src/bin/exp_retrieval.rs

crates/bench/src/bin/exp_retrieval.rs:
