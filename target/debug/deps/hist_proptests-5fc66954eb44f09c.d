/root/repo/target/debug/deps/hist_proptests-5fc66954eb44f09c.d: crates/obs/tests/hist_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libhist_proptests-5fc66954eb44f09c.rmeta: crates/obs/tests/hist_proptests.rs Cargo.toml

crates/obs/tests/hist_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
