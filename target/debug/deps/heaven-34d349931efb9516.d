/root/repo/target/debug/deps/heaven-34d349931efb9516.d: src/lib.rs

/root/repo/target/debug/deps/heaven-34d349931efb9516: src/lib.rs

src/lib.rs:
