/root/repo/target/debug/deps/heaven-f3e59ea70da8decc.d: src/lib.rs

/root/repo/target/debug/deps/heaven-f3e59ea70da8decc: src/lib.rs

src/lib.rs:
