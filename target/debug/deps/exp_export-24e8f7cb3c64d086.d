/root/repo/target/debug/deps/exp_export-24e8f7cb3c64d086.d: crates/bench/src/bin/exp_export.rs Cargo.toml

/root/repo/target/debug/deps/libexp_export-24e8f7cb3c64d086.rmeta: crates/bench/src/bin/exp_export.rs Cargo.toml

crates/bench/src/bin/exp_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
