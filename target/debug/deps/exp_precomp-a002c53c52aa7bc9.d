/root/repo/target/debug/deps/exp_precomp-a002c53c52aa7bc9.d: crates/bench/src/bin/exp_precomp.rs Cargo.toml

/root/repo/target/debug/deps/libexp_precomp-a002c53c52aa7bc9.rmeta: crates/bench/src/bin/exp_precomp.rs Cargo.toml

crates/bench/src/bin/exp_precomp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
