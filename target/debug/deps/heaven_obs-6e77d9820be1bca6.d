/root/repo/target/debug/deps/heaven_obs-6e77d9820be1bca6.d: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sym.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/heaven_obs-6e77d9820be1bca6: crates/obs/src/lib.rs crates/obs/src/breakdown.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/sym.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/breakdown.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/sym.rs:
crates/obs/src/trace.rs:
