/root/repo/target/debug/deps/heaven_tape-fc6a16b7a1387238.d: crates/tape/src/lib.rs crates/tape/src/clock.rs crates/tape/src/error.rs crates/tape/src/library.rs crates/tape/src/media.rs crates/tape/src/profile.rs crates/tape/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libheaven_tape-fc6a16b7a1387238.rmeta: crates/tape/src/lib.rs crates/tape/src/clock.rs crates/tape/src/error.rs crates/tape/src/library.rs crates/tape/src/media.rs crates/tape/src/profile.rs crates/tape/src/stats.rs Cargo.toml

crates/tape/src/lib.rs:
crates/tape/src/clock.rs:
crates/tape/src/error.rs:
crates/tape/src/library.rs:
crates/tape/src/media.rs:
crates/tape/src/profile.rs:
crates/tape/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
