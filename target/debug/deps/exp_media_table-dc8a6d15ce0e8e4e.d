/root/repo/target/debug/deps/exp_media_table-dc8a6d15ce0e8e4e.d: crates/bench/src/bin/exp_media_table.rs

/root/repo/target/debug/deps/libexp_media_table-dc8a6d15ce0e8e4e.rmeta: crates/bench/src/bin/exp_media_table.rs

crates/bench/src/bin/exp_media_table.rs:
