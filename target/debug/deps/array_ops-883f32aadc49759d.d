/root/repo/target/debug/deps/array_ops-883f32aadc49759d.d: crates/bench/benches/array_ops.rs

/root/repo/target/debug/deps/libarray_ops-883f32aadc49759d.rmeta: crates/bench/benches/array_ops.rs

crates/bench/benches/array_ops.rs:
