/root/repo/target/debug/deps/exp_prefetch-d221ba0087df84ab.d: crates/bench/src/bin/exp_prefetch.rs Cargo.toml

/root/repo/target/debug/deps/libexp_prefetch-d221ba0087df84ab.rmeta: crates/bench/src/bin/exp_prefetch.rs Cargo.toml

crates/bench/src/bin/exp_prefetch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
