/root/repo/target/debug/deps/ql_differential-9e4d0e4d82a2086e.d: crates/arraydb/tests/ql_differential.rs

/root/repo/target/debug/deps/ql_differential-9e4d0e4d82a2086e: crates/arraydb/tests/ql_differential.rs

crates/arraydb/tests/ql_differential.rs:
