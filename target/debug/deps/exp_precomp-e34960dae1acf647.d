/root/repo/target/debug/deps/exp_precomp-e34960dae1acf647.d: crates/bench/src/bin/exp_precomp.rs

/root/repo/target/debug/deps/exp_precomp-e34960dae1acf647: crates/bench/src/bin/exp_precomp.rs

crates/bench/src/bin/exp_precomp.rs:
