/root/repo/target/debug/deps/heaven_array-07cc124bc9f25a07.d: crates/array/src/lib.rs crates/array/src/codec.rs crates/array/src/domain.rs crates/array/src/error.rs crates/array/src/frame.rs crates/array/src/index.rs crates/array/src/mdd.rs crates/array/src/ops.rs crates/array/src/order.rs crates/array/src/tile.rs crates/array/src/tiling.rs crates/array/src/value.rs

/root/repo/target/debug/deps/libheaven_array-07cc124bc9f25a07.rmeta: crates/array/src/lib.rs crates/array/src/codec.rs crates/array/src/domain.rs crates/array/src/error.rs crates/array/src/frame.rs crates/array/src/index.rs crates/array/src/mdd.rs crates/array/src/ops.rs crates/array/src/order.rs crates/array/src/tile.rs crates/array/src/tiling.rs crates/array/src/value.rs

crates/array/src/lib.rs:
crates/array/src/codec.rs:
crates/array/src/domain.rs:
crates/array/src/error.rs:
crates/array/src/frame.rs:
crates/array/src/index.rs:
crates/array/src/mdd.rs:
crates/array/src/ops.rs:
crates/array/src/order.rs:
crates/array/src/tile.rs:
crates/array/src/tiling.rs:
crates/array/src/value.rs:
