/root/repo/target/debug/deps/exp_scheduling-858f9d615812e778.d: crates/bench/src/bin/exp_scheduling.rs

/root/repo/target/debug/deps/exp_scheduling-858f9d615812e778: crates/bench/src/bin/exp_scheduling.rs

crates/bench/src/bin/exp_scheduling.rs:
