/root/repo/target/debug/deps/heaven-79e46436c24d3d42.d: src/lib.rs

/root/repo/target/debug/deps/libheaven-79e46436c24d3d42.rlib: src/lib.rs

/root/repo/target/debug/deps/libheaven-79e46436c24d3d42.rmeta: src/lib.rs

src/lib.rs:
