/root/repo/target/debug/deps/exp_retrieval-1335ceb1705bb7e9.d: crates/bench/src/bin/exp_retrieval.rs

/root/repo/target/debug/deps/exp_retrieval-1335ceb1705bb7e9: crates/bench/src/bin/exp_retrieval.rs

crates/bench/src/bin/exp_retrieval.rs:
