/root/repo/target/debug/deps/heaven_workload-7b1f47cb43ffac94.d: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

/root/repo/target/debug/deps/libheaven_workload-7b1f47cb43ffac94.rlib: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

/root/repo/target/debug/deps/libheaven_workload-7b1f47cb43ffac94.rmeta: crates/workload/src/lib.rs crates/workload/src/data.rs crates/workload/src/queries.rs

crates/workload/src/lib.rs:
crates/workload/src/data.rs:
crates/workload/src/queries.rs:
