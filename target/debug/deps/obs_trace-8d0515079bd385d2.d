/root/repo/target/debug/deps/obs_trace-8d0515079bd385d2.d: tests/obs_trace.rs

/root/repo/target/debug/deps/libobs_trace-8d0515079bd385d2.rmeta: tests/obs_trace.rs

tests/obs_trace.rs:
