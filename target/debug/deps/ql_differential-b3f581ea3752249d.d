/root/repo/target/debug/deps/ql_differential-b3f581ea3752249d.d: crates/arraydb/tests/ql_differential.rs Cargo.toml

/root/repo/target/debug/deps/libql_differential-b3f581ea3752249d.rmeta: crates/arraydb/tests/ql_differential.rs Cargo.toml

crates/arraydb/tests/ql_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
