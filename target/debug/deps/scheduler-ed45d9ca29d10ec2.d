/root/repo/target/debug/deps/scheduler-ed45d9ca29d10ec2.d: crates/bench/benches/scheduler.rs

/root/repo/target/debug/deps/scheduler-ed45d9ca29d10ec2: crates/bench/benches/scheduler.rs

crates/bench/benches/scheduler.rs:
