/root/repo/target/debug/deps/codec-23df3631c16066e3.d: crates/bench/benches/codec.rs Cargo.toml

/root/repo/target/debug/deps/libcodec-23df3631c16066e3.rmeta: crates/bench/benches/codec.rs Cargo.toml

crates/bench/benches/codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
