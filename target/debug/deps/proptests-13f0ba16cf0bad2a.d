/root/repo/target/debug/deps/proptests-13f0ba16cf0bad2a.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-13f0ba16cf0bad2a: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
