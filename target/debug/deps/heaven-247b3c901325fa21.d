/root/repo/target/debug/deps/heaven-247b3c901325fa21.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libheaven-247b3c901325fa21.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
