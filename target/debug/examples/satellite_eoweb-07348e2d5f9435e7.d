/root/repo/target/debug/examples/satellite_eoweb-07348e2d5f9435e7.d: examples/satellite_eoweb.rs

/root/repo/target/debug/examples/libsatellite_eoweb-07348e2d5f9435e7.rmeta: examples/satellite_eoweb.rs

examples/satellite_eoweb.rs:
