/root/repo/target/debug/examples/satellite_eoweb-683f18386cf7f0a8.d: examples/satellite_eoweb.rs

/root/repo/target/debug/examples/satellite_eoweb-683f18386cf7f0a8: examples/satellite_eoweb.rs

examples/satellite_eoweb.rs:
