/root/repo/target/debug/examples/satellite_eoweb-fce8804fb31bcf14.d: examples/satellite_eoweb.rs Cargo.toml

/root/repo/target/debug/examples/libsatellite_eoweb-fce8804fb31bcf14.rmeta: examples/satellite_eoweb.rs Cargo.toml

examples/satellite_eoweb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
