/root/repo/target/debug/examples/archive_maintenance-ef48fadcfc1e2126.d: examples/archive_maintenance.rs

/root/repo/target/debug/examples/archive_maintenance-ef48fadcfc1e2126: examples/archive_maintenance.rs

examples/archive_maintenance.rs:
