/root/repo/target/debug/examples/rasql_shell-a7f52e1fcf6ad8e9.d: examples/rasql_shell.rs

/root/repo/target/debug/examples/rasql_shell-a7f52e1fcf6ad8e9: examples/rasql_shell.rs

examples/rasql_shell.rs:
