/root/repo/target/debug/examples/quickstart-7514ac0e72cd7707.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7514ac0e72cd7707: examples/quickstart.rs

examples/quickstart.rs:
