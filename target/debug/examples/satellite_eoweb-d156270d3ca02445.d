/root/repo/target/debug/examples/satellite_eoweb-d156270d3ca02445.d: examples/satellite_eoweb.rs

/root/repo/target/debug/examples/satellite_eoweb-d156270d3ca02445: examples/satellite_eoweb.rs

examples/satellite_eoweb.rs:
