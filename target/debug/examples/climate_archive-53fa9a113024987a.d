/root/repo/target/debug/examples/climate_archive-53fa9a113024987a.d: examples/climate_archive.rs

/root/repo/target/debug/examples/climate_archive-53fa9a113024987a: examples/climate_archive.rs

examples/climate_archive.rs:
