/root/repo/target/debug/examples/satellite_eoweb-1728b110df09abdf.d: examples/satellite_eoweb.rs

/root/repo/target/debug/examples/satellite_eoweb-1728b110df09abdf: examples/satellite_eoweb.rs

examples/satellite_eoweb.rs:
