/root/repo/target/debug/examples/rasql_shell-9ced38b18aaccb97.d: examples/rasql_shell.rs

/root/repo/target/debug/examples/rasql_shell-9ced38b18aaccb97: examples/rasql_shell.rs

examples/rasql_shell.rs:
