/root/repo/target/debug/examples/rasql_shell-0802624bf0b45e2f.d: examples/rasql_shell.rs

/root/repo/target/debug/examples/rasql_shell-0802624bf0b45e2f: examples/rasql_shell.rs

examples/rasql_shell.rs:
