/root/repo/target/debug/examples/archive_maintenance-fa0160b1302df2fa.d: examples/archive_maintenance.rs

/root/repo/target/debug/examples/archive_maintenance-fa0160b1302df2fa: examples/archive_maintenance.rs

examples/archive_maintenance.rs:
