/root/repo/target/debug/examples/archive_maintenance-7dbc6552d4dc6d78.d: examples/archive_maintenance.rs

/root/repo/target/debug/examples/archive_maintenance-7dbc6552d4dc6d78: examples/archive_maintenance.rs

examples/archive_maintenance.rs:
