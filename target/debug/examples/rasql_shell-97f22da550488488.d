/root/repo/target/debug/examples/rasql_shell-97f22da550488488.d: examples/rasql_shell.rs

/root/repo/target/debug/examples/rasql_shell-97f22da550488488: examples/rasql_shell.rs

examples/rasql_shell.rs:
