/root/repo/target/debug/examples/climate_archive-4e5118433937b25e.d: examples/climate_archive.rs

/root/repo/target/debug/examples/climate_archive-4e5118433937b25e: examples/climate_archive.rs

examples/climate_archive.rs:
