/root/repo/target/debug/examples/climate_archive-9fd54d8aee1f89f2.d: examples/climate_archive.rs

/root/repo/target/debug/examples/climate_archive-9fd54d8aee1f89f2: examples/climate_archive.rs

examples/climate_archive.rs:
