/root/repo/target/debug/examples/rasql_shell-a14619fe9ab7e0f9.d: examples/rasql_shell.rs Cargo.toml

/root/repo/target/debug/examples/librasql_shell-a14619fe9ab7e0f9.rmeta: examples/rasql_shell.rs Cargo.toml

examples/rasql_shell.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
