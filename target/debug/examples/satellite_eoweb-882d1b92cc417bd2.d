/root/repo/target/debug/examples/satellite_eoweb-882d1b92cc417bd2.d: examples/satellite_eoweb.rs Cargo.toml

/root/repo/target/debug/examples/libsatellite_eoweb-882d1b92cc417bd2.rmeta: examples/satellite_eoweb.rs Cargo.toml

examples/satellite_eoweb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
