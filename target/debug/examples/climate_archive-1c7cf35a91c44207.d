/root/repo/target/debug/examples/climate_archive-1c7cf35a91c44207.d: examples/climate_archive.rs Cargo.toml

/root/repo/target/debug/examples/libclimate_archive-1c7cf35a91c44207.rmeta: examples/climate_archive.rs Cargo.toml

examples/climate_archive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
