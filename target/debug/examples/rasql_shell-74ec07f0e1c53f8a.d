/root/repo/target/debug/examples/rasql_shell-74ec07f0e1c53f8a.d: examples/rasql_shell.rs

/root/repo/target/debug/examples/rasql_shell-74ec07f0e1c53f8a: examples/rasql_shell.rs

examples/rasql_shell.rs:
