/root/repo/target/debug/examples/climate_archive-165d76682f808b34.d: examples/climate_archive.rs

/root/repo/target/debug/examples/climate_archive-165d76682f808b34: examples/climate_archive.rs

examples/climate_archive.rs:
