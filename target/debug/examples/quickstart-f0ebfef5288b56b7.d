/root/repo/target/debug/examples/quickstart-f0ebfef5288b56b7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f0ebfef5288b56b7: examples/quickstart.rs

examples/quickstart.rs:
