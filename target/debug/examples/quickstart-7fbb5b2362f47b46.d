/root/repo/target/debug/examples/quickstart-7fbb5b2362f47b46.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7fbb5b2362f47b46: examples/quickstart.rs

examples/quickstart.rs:
