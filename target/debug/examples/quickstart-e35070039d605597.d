/root/repo/target/debug/examples/quickstart-e35070039d605597.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e35070039d605597: examples/quickstart.rs

examples/quickstart.rs:
