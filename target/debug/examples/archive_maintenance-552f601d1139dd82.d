/root/repo/target/debug/examples/archive_maintenance-552f601d1139dd82.d: examples/archive_maintenance.rs

/root/repo/target/debug/examples/archive_maintenance-552f601d1139dd82: examples/archive_maintenance.rs

examples/archive_maintenance.rs:
