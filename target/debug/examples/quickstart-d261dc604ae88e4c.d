/root/repo/target/debug/examples/quickstart-d261dc604ae88e4c.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-d261dc604ae88e4c.rmeta: examples/quickstart.rs

examples/quickstart.rs:
