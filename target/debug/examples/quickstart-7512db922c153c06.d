/root/repo/target/debug/examples/quickstart-7512db922c153c06.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-7512db922c153c06.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
