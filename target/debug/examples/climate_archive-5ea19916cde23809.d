/root/repo/target/debug/examples/climate_archive-5ea19916cde23809.d: examples/climate_archive.rs Cargo.toml

/root/repo/target/debug/examples/libclimate_archive-5ea19916cde23809.rmeta: examples/climate_archive.rs Cargo.toml

examples/climate_archive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
