/root/repo/target/debug/examples/climate_archive-f99ddc398a7c459f.d: examples/climate_archive.rs

/root/repo/target/debug/examples/libclimate_archive-f99ddc398a7c459f.rmeta: examples/climate_archive.rs

examples/climate_archive.rs:
