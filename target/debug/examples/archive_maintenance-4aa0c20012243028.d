/root/repo/target/debug/examples/archive_maintenance-4aa0c20012243028.d: examples/archive_maintenance.rs Cargo.toml

/root/repo/target/debug/examples/libarchive_maintenance-4aa0c20012243028.rmeta: examples/archive_maintenance.rs Cargo.toml

examples/archive_maintenance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
