/root/repo/target/debug/examples/archive_maintenance-16c3d31bd21b682a.d: examples/archive_maintenance.rs

/root/repo/target/debug/examples/libarchive_maintenance-16c3d31bd21b682a.rmeta: examples/archive_maintenance.rs

examples/archive_maintenance.rs:
