/root/repo/target/debug/examples/quickstart-3641f725577d93d4.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-3641f725577d93d4.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
