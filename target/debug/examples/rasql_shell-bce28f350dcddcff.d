/root/repo/target/debug/examples/rasql_shell-bce28f350dcddcff.d: examples/rasql_shell.rs

/root/repo/target/debug/examples/librasql_shell-bce28f350dcddcff.rmeta: examples/rasql_shell.rs

examples/rasql_shell.rs:
