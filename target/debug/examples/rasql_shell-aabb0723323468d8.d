/root/repo/target/debug/examples/rasql_shell-aabb0723323468d8.d: examples/rasql_shell.rs Cargo.toml

/root/repo/target/debug/examples/librasql_shell-aabb0723323468d8.rmeta: examples/rasql_shell.rs Cargo.toml

examples/rasql_shell.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
