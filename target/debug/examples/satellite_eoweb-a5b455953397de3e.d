/root/repo/target/debug/examples/satellite_eoweb-a5b455953397de3e.d: examples/satellite_eoweb.rs

/root/repo/target/debug/examples/satellite_eoweb-a5b455953397de3e: examples/satellite_eoweb.rs

examples/satellite_eoweb.rs:
