/root/repo/target/debug/examples/rasql_shell-7ddf431609a99e7e.d: examples/rasql_shell.rs Cargo.toml

/root/repo/target/debug/examples/librasql_shell-7ddf431609a99e7e.rmeta: examples/rasql_shell.rs Cargo.toml

examples/rasql_shell.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
