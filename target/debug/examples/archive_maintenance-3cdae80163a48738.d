/root/repo/target/debug/examples/archive_maintenance-3cdae80163a48738.d: examples/archive_maintenance.rs

/root/repo/target/debug/examples/archive_maintenance-3cdae80163a48738: examples/archive_maintenance.rs

examples/archive_maintenance.rs:
