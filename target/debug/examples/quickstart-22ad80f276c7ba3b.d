/root/repo/target/debug/examples/quickstart-22ad80f276c7ba3b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-22ad80f276c7ba3b: examples/quickstart.rs

examples/quickstart.rs:
