/root/repo/target/debug/examples/climate_archive-c8d850b66ec39a3b.d: examples/climate_archive.rs

/root/repo/target/debug/examples/climate_archive-c8d850b66ec39a3b: examples/climate_archive.rs

examples/climate_archive.rs:
