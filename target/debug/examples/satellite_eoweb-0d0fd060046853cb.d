/root/repo/target/debug/examples/satellite_eoweb-0d0fd060046853cb.d: examples/satellite_eoweb.rs

/root/repo/target/debug/examples/satellite_eoweb-0d0fd060046853cb: examples/satellite_eoweb.rs

examples/satellite_eoweb.rs:
