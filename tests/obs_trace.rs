//! Trace-layer integration tests: the span trees emitted while real
//! queries run must be well-nested, and simulated time must be conserved
//! down the tree (children never account for more time than their
//! parent). Also checks the JSONL sink end-to-end: a cold query's trace
//! file must cover the tape events (mount, locate, transfer) inside the
//! query's span.

use std::collections::HashMap;

use heaven::array::{CellType, Minterval, Tiling};
use heaven::core::{ExportMode, Heaven, HeavenConfig};
use heaven::obs::{check_well_nested, Field, RecordKind, SpanId, TraceConfig, TraceRecord};
use heaven::tape::DeviceProfile;
use heaven::workload::climate_field;
use proptest::prelude::*;

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

/// A 64x64 climate field archived as TCT super-tiles, caches cleared, so
/// the first fetch is cold (tape traffic under the query span).
fn archived_heaven(trace: TraceConfig) -> (Heaven, u64) {
    let mut heaven = heaven::open(
        DeviceProfile::ibm3590(),
        1,
        HeavenConfig {
            supertile_bytes: Some(8 << 10),
            trace,
            ..HeavenConfig::default()
        },
    );
    heaven
        .arraydb_mut()
        .create_collection("c", CellType::F32, 2)
        .unwrap();
    let field = climate_field(mi(&[(0, 63), (0, 63)]), 17);
    let oid = heaven
        .arraydb_mut()
        .insert_object(
            "c",
            &field,
            Tiling::Regular {
                tile_shape: vec![16, 16],
            },
        )
        .unwrap();
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    (heaven, oid)
}

/// One reconstructed span: name, closing duration, parent.
struct Span {
    name: &'static str,
    dur_s: f64,
    parent: Option<SpanId>,
}

/// Rebuild the span forest from a record stream (requires that the ring
/// did not overflow, i.e. every `SpanEnd` has its `SpanStart`).
fn collect_spans(recs: &[TraceRecord]) -> HashMap<SpanId, Span> {
    let mut spans = HashMap::new();
    for rec in recs {
        match rec.kind {
            RecordKind::SpanStart => {
                spans.insert(
                    rec.span,
                    Span {
                        name: rec.name,
                        dur_s: f64::NAN,
                        parent: rec.parent,
                    },
                );
            }
            RecordKind::SpanEnd => {
                let dur = rec
                    .fields
                    .iter()
                    .find_map(|(k, v)| match (k, v) {
                        (&"dur_s", Field::F64(d)) => Some(*d),
                        _ => None,
                    })
                    .expect("span_end carries dur_s");
                spans.get_mut(&rec.span).expect("end after start").dur_s = dur;
            }
            // Links are edges between spans, not time containers.
            RecordKind::Event | RecordKind::Link => {}
        }
    }
    spans
}

/// For every closed span, the direct children's durations must sum to at
/// most the parent's duration: simulated time is conserved down the tree.
fn assert_children_fit(spans: &HashMap<SpanId, Span>) {
    let mut child_sum: HashMap<SpanId, f64> = HashMap::new();
    for span in spans.values() {
        if let Some(p) = span.parent {
            assert!(
                !span.dur_s.is_nan(),
                "span {} left open at end of trace",
                span.name
            );
            *child_sum.entry(p).or_default() += span.dur_s;
        }
    }
    for (id, sum) in child_sum {
        let parent = &spans[&id];
        assert!(
            sum <= parent.dur_s + 1e-9,
            "children of span {} ({}) sum to {sum} s > parent's {} s",
            id,
            parent.name,
            parent.dur_s
        );
    }
}

/// Walk `span`'s ancestor chain looking for a span named `name`.
fn has_ancestor(spans: &HashMap<SpanId, Span>, mut span: SpanId, name: &str) -> bool {
    loop {
        let Some(s) = spans.get(&span) else {
            return false;
        };
        if s.name == name {
            return true;
        }
        match s.parent {
            Some(p) => span = p,
            None => return false,
        }
    }
}

#[test]
fn cold_query_trace_is_well_nested_with_tape_events_under_the_query() {
    let (mut heaven, oid) = archived_heaven(TraceConfig::ring(1 << 16));
    heaven.occupy_drives().unwrap(); // force a media exchange

    // A region past the start of the tape, so the drive must locate
    // (zero-cost locates emit no event).
    heaven
        .fetch_region_hierarchical(oid, &mi(&[(32, 63), (32, 63)]))
        .unwrap();

    let recs = heaven.trace().records();
    let depth = check_well_nested(&recs).expect("trace must be well-nested");
    assert!(
        depth >= 3,
        "expected query > fetch_region > st_fetch, got depth {depth}"
    );
    assert_eq!(
        heaven.trace().open_spans(),
        0,
        "all spans closed after the query"
    );

    let spans = collect_spans(&recs);
    assert_children_fit(&spans);

    // The tape events of the cold fetch must hang inside the query span.
    for name in ["tape.mount", "tape.locate", "tape.transfer"] {
        let covered = recs.iter().any(|r| {
            r.kind == RecordKind::Event
                && r.name == name
                && r.parent.is_some_and(|p| has_ancestor(&spans, p, "query"))
        });
        assert!(covered, "no {name} event under a query span");
    }
    // And the root of that subtree is the auto-bracketed query span.
    let root = spans
        .values()
        .find(|s| s.name == "query" && s.parent.is_none())
        .expect("root query span");
    assert!(root.dur_s > 0.0, "cold query advanced simulated time");
}

#[test]
fn jsonl_sink_captures_the_full_cold_query_trace() {
    let path = std::env::temp_dir().join(format!("heaven_trace_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let (mut heaven, oid) = archived_heaven(TraceConfig::jsonl(path.clone()));
    heaven.occupy_drives().unwrap();
    heaven
        .fetch_region_hierarchical(oid, &mi(&[(32, 63), (32, 63)]))
        .unwrap();
    // The JSONL sink drains in batches: flush the tail before reading.
    heaven.trace().flush();
    let recs = heaven.trace().records();
    check_well_nested(&recs).expect("mirrored trace well-nested");

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), recs.len(), "one JSONL line per record");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line: {line}"
        );
    }
    for name in [
        "\"name\":\"query\"",
        "\"name\":\"heaven.fetch_region\"",
        "\"name\":\"heaven.st_fetch\"",
        "\"name\":\"tape.mount\"",
        "\"name\":\"tape.locate\"",
        "\"name\":\"tape.transfer\"",
    ] {
        assert!(
            lines.iter().any(|l| l.contains(name)),
            "JSONL trace missing {name}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// A run killed mid-query (panic with the query bracket still open) must
/// leave a parseable JSONL prefix behind: the bus drains and flushes its
/// pending records when it is dropped during unwinding.
#[test]
fn aborted_run_leaves_a_parseable_jsonl_prefix() {
    let path =
        std::env::temp_dir().join(format!("heaven_trace_abort_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    // Silence the expected panic's backtrace in test output.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let (mut heaven, oid) = archived_heaven(TraceConfig::jsonl(path.clone()));
        heaven
            .fetch_region_hierarchical(oid, &mi(&[(0, 31), (0, 31)]))
            .unwrap();
        // Die inside an open query bracket, with no flush anywhere.
        heaven.begin_query("doomed");
        heaven
            .fetch_region_hierarchical(oid, &mi(&[(32, 63), (32, 63)]))
            .unwrap();
        panic!("simulated crash mid-query");
    }));
    std::panic::set_hook(prev_hook);
    assert!(result.is_err(), "the workload must have panicked");

    let text = std::fs::read_to_string(&path).expect("trace file exists after the crash");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() > 10,
        "the drop-flush preserved the trace prefix ({} lines)",
        lines.len()
    );
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line: {line}"
        );
    }
    // The completed first query made it to the file...
    assert!(lines.iter().any(|l| l.contains("\"name\":\"query\"")));
    // ...and so did records from the in-flight doomed query.
    assert!(text.contains("doomed"), "records up to the crash are kept");
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any sequence of region queries (mixed cold and warm, interleaved
    /// with cache flushes) yields a well-nested trace whose child spans
    /// never account for more simulated time than their parents, and
    /// every query's breakdown levels sum to its observed SimClock delta.
    fn query_span_trees_stay_well_nested(
        queries in prop::collection::vec(
            (0i64..48, 1i64..16, 0i64..48, 1i64..16, any::<bool>()),
            1..5,
        ),
    ) {
        let (mut heaven, oid) = archived_heaven(TraceConfig::ring(1 << 16));
        for (x0, dx, y0, dy, flush) in queries {
            if flush {
                heaven.clear_caches();
            }
            let region = mi(&[
                (x0, (x0 + dx).min(63)),
                (y0, (y0 + dy).min(63)),
            ]);
            let t0 = heaven.clock().now_s();
            heaven.fetch_region_hierarchical(oid, &region).unwrap();
            let dt = heaven.clock().now_s() - t0;
            let b = heaven.last_query_breakdown().expect("auto-bracketed query");
            prop_assert!(
                (b.total_s - dt).abs() < 1e-9,
                "breakdown total {} != clock delta {dt}", b.total_s
            );
            prop_assert!(
                (b.levels_sum_s() - b.total_s).abs() < 1e-6,
                "levels sum {} != total {}", b.levels_sum_s(), b.total_s
            );
        }
        let recs = heaven.trace().records();
        let depth = check_well_nested(&recs)
            .map_err(TestCaseError::fail)?;
        prop_assert!(depth >= 2);
        prop_assert_eq!(heaven.trace().open_spans(), 0);
        assert_children_fit(&collect_spans(&recs));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Head/tail sampling never breaks well-nestedness: a sampled-out
    /// query disappears as a whole subtree (or is promoted as a whole
    /// when slow), so whatever remains is still a well-nested forest
    /// with exactly the expected number of query spans.
    fn sampled_query_traces_stay_well_nested(
        n in 1u64..6,
        keep_all_slow in any::<bool>(),
        queries in prop::collection::vec(
            (0i64..48, 1i64..16, 0i64..48, 1i64..16, any::<bool>()),
            1..6,
        ),
    ) {
        let mut trace = TraceConfig::ring(1 << 16).with_sample(n);
        if keep_all_slow {
            // Every sampled-out query qualifies as "slow": the tail
            // capture path must promote whole subtrees in order.
            trace = trace.with_keep_slow(0.0);
        }
        let (mut heaven, oid) = archived_heaven(trace);
        for &(x0, dx, y0, dy, flush) in &queries {
            if flush {
                heaven.clear_caches();
            }
            let region = mi(&[
                (x0, (x0 + dx).min(63)),
                (y0, (y0 + dy).min(63)),
            ]);
            heaven.fetch_region_hierarchical(oid, &region).unwrap();
        }
        let recs = heaven.trace().records();
        check_well_nested(&recs).map_err(TestCaseError::fail)?;
        prop_assert_eq!(heaven.trace().open_spans(), 0);
        assert_children_fit(&collect_spans(&recs));
        let kept = recs
            .iter()
            .filter(|r| r.kind == RecordKind::SpanStart && r.name == "query")
            .count();
        let expected = if keep_all_slow {
            queries.len() // head-kept + promoted slow = everything
        } else {
            queries.len().div_ceil(n as usize) // every n-th query
        };
        prop_assert_eq!(kept, expected, "n={} queries={}", n, queries.len());
    }
}
