//! Workspace integration tests: the whole stack from query text to tape
//! and back, plus the HSM-vs-HEAVEN comparison the evaluation is built on.

use heaven::array::{CellType, Condenser, MDArray, Minterval, Point, Tiling};
use heaven::arraydb::run;
use heaven::core::{AccessPattern, ClusteringStrategy, ExportMode, HeavenConfig};
use heaven::hsm::{HsmSystem, StagingDisk, WatermarkPolicy};
use heaven::tape::{DeviceProfile, DiskProfile, SimClock, TapeLibrary, WritePayload};
use heaven::workload::{climate_field, selectivity_queries};

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

#[test]
fn heaven_beats_hsm_on_selective_access_same_data() {
    // The core comparison (E4 vs E5) on real data: identical object, one
    // archived as a whole file behind an HSM, one archived as super-tiles
    // behind HEAVEN. A selective query must cost HEAVEN far less tape
    // traffic and simulated time.
    let domain = mi(&[(0, 127), (0, 127)]);
    let field = climate_field(domain, 3);
    let object_bytes = field.size_bytes();

    // -- HSM path: one file, whole-file staging.
    let clock = SimClock::new();
    let disk = StagingDisk::new(DiskProfile::scsi2003(), 1 << 30, clock.clone());
    let lib = TapeLibrary::new(DeviceProfile::dlt7000(), 1, clock.clone());
    let mut hsm = HsmSystem::new(disk, lib, WatermarkPolicy::default());
    hsm.archive("field", WritePayload::real(field.bytes().to_vec()))
        .unwrap();
    let t0 = clock.now_s();
    // Ask for ~1.5 % of the object.
    let row_bytes = 128 * 4;
    hsm.read_range("field", 0, 2 * row_bytes).unwrap();
    let hsm_time = clock.now_s() - t0;
    let hsm_tape_bytes = hsm.tape_stats().bytes_read;
    assert_eq!(hsm_tape_bytes, object_bytes, "HSM stages the whole file");

    // -- HEAVEN path: same data as super-tiles.
    let mut heaven = heaven::open(
        DeviceProfile::dlt7000(),
        1,
        HeavenConfig {
            supertile_bytes: Some(8 << 10),
            ..HeavenConfig::default()
        },
    );
    heaven
        .arraydb_mut()
        .create_collection("c", CellType::F32, 2)
        .unwrap();
    let oid = heaven
        .arraydb_mut()
        .insert_object(
            "c",
            &field,
            Tiling::Regular {
                tile_shape: vec![16, 16],
            },
        )
        .unwrap();
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    heaven.occupy_drives().unwrap(); // force a cold mount like the HSM run
    let clock2 = heaven.clock();
    let t0 = clock2.now_s();
    let sub = heaven
        .fetch_region_hierarchical(oid, &mi(&[(0, 1), (0, 127)]))
        .unwrap();
    let heaven_time = clock2.now_s() - t0;
    // At this (deliberately small) scale both paths are mount-dominated,
    // so the meaningful comparison is tape *traffic*: the HSM staged the
    // whole object, HEAVEN read only the super-tiles under the two rows.
    // (Paper-scale timing is exp_retrieval's job.)
    assert!(
        heaven.stats().st_tape_bytes < hsm_tape_bytes / 2,
        "HEAVEN moved {} of HSM's {} bytes",
        heaven.stats().st_tape_bytes,
        hsm_tape_bytes
    );
    assert!(heaven_time > 0.0 && hsm_time > 0.0);
    // and the data is right
    for p in sub.domain().iter_points() {
        assert_eq!(sub.get_f64(&p).unwrap(), field.get_f64(&p).unwrap());
    }
}

#[test]
fn multi_object_queries_across_mixed_hierarchy() {
    // Three objects: one on disk, two archived. One query sweeps all of
    // them transparently.
    let mut heaven = heaven::open(
        DeviceProfile::ibm3590(),
        2,
        HeavenConfig {
            supertile_bytes: Some(64 << 10),
            ..HeavenConfig::default()
        },
    );
    heaven
        .arraydb_mut()
        .create_collection("runs", CellType::F32, 2)
        .unwrap();
    let domain = mi(&[(0, 63), (0, 63)]);
    let mut oids = Vec::new();
    for k in 0..3u64 {
        let arr = MDArray::generate(domain.clone(), CellType::F32, |p| {
            (k * 1000) as f64 + (p.coord(0) + p.coord(1)) as f64
        });
        oids.push(
            heaven
                .arraydb_mut()
                .insert_object(
                    "runs",
                    &arr,
                    Tiling::Regular {
                        tile_shape: vec![16, 16],
                    },
                )
                .unwrap(),
        );
    }
    heaven.export_object(oids[1], ExportMode::Tct).unwrap();
    heaven.export_object(oids[2], ExportMode::Naive).unwrap();
    heaven.clear_caches();
    let rs = run(
        &mut heaven,
        "select avg_cells(r[10:20, 10:20]) from runs as r",
    )
    .unwrap();
    assert_eq!(rs.len(), 3);
    let base = rs[0].value.as_scalar().unwrap();
    assert!((rs[1].value.as_scalar().unwrap() - base - 1000.0).abs() < 1e-3);
    assert!((rs[2].value.as_scalar().unwrap() - base - 2000.0).abs() < 1e-3);
}

#[test]
fn estar_clustering_reduces_fetches_for_declared_pattern() {
    // Two identical archives; one clustered for slice access, one cubic.
    // Slice queries must touch fewer super-tiles on the tuned archive.
    let domain = mi(&[(0, 63), (0, 63)]);
    let field = climate_field(domain, 9);
    let mut touched = Vec::new();
    for clustering in [
        ClusteringStrategy::EStar(AccessPattern::Uniform),
        ClusteringStrategy::EStar(AccessPattern::SliceDominant { axis: 1 }),
    ] {
        let mut heaven = heaven::open(
            DeviceProfile::ibm3590(),
            1,
            HeavenConfig {
                supertile_bytes: Some(8 << 10),
                clustering,
                ..HeavenConfig::default()
            },
        );
        heaven
            .arraydb_mut()
            .create_collection("c", CellType::F32, 2)
            .unwrap();
        let oid = heaven
            .arraydb_mut()
            .insert_object(
                "c",
                &field,
                Tiling::Regular {
                    tile_shape: vec![8, 8],
                },
            )
            .unwrap();
        heaven.export_object(oid, ExportMode::Tct).unwrap();
        heaven.clear_caches();
        // slice queries fixing axis 1
        for col in [5i64, 25, 45, 60] {
            heaven
                .fetch_region_hierarchical(oid, &mi(&[(0, 63), (col, col)]))
                .unwrap();
            heaven.clear_caches();
        }
        touched.push(heaven.stats().st_tape_fetches);
    }
    assert!(
        touched[1] < touched[0],
        "slice-tuned archive fetched {} STs, cubic fetched {}",
        touched[1],
        touched[0]
    );
}

#[test]
fn archived_data_survives_rdbms_crash_recovery() {
    // The DBMS crashes after export; WAL recovery plus catalog rebuild
    // restores the disk side. (HEAVEN's in-memory super-tile catalog is
    // per-session state; tiles on disk must come back intact.)
    let mut heaven = heaven::open(
        DeviceProfile::ibm3590(),
        1,
        HeavenConfig {
            supertile_bytes: Some(64 << 10),
            ..HeavenConfig::default()
        },
    );
    heaven
        .arraydb_mut()
        .create_collection("c", CellType::I32, 2)
        .unwrap();
    let domain = mi(&[(0, 31), (0, 31)]);
    let arr = MDArray::generate(domain.clone(), CellType::I32, |p| {
        (p.coord(0) * 32 + p.coord(1)) as f64
    });
    let oid = heaven
        .arraydb_mut()
        .insert_object(
            "c",
            &arr,
            Tiling::Regular {
                tile_shape: vec![16, 16],
            },
        )
        .unwrap();
    // crash the base RDBMS and recover
    heaven.arraydb_mut().database_mut().crash();
    heaven.arraydb_mut().database_mut().recover().unwrap();
    heaven.arraydb_mut().rebuild_catalogs().unwrap();
    // all tiles readable; data identical
    let back = heaven.fetch_region_hierarchical(oid, &domain).unwrap();
    assert_eq!(back, arr);
}

#[test]
fn selectivity_sweep_monotonically_increases_heaven_cost() {
    // More selective queries must never cost more tape traffic.
    let domain = mi(&[(0, 127), (0, 127)]);
    let field = climate_field(domain.clone(), 4);
    let mut last_bytes = 0u64;
    for &sel in &[0.01f64, 0.1, 0.5, 1.0] {
        let mut heaven = heaven::open(
            DeviceProfile::ibm3590(),
            1,
            HeavenConfig {
                supertile_bytes: Some(16 << 10),
                ..HeavenConfig::default()
            },
        );
        heaven
            .arraydb_mut()
            .create_collection("c", CellType::F32, 2)
            .unwrap();
        let oid = heaven
            .arraydb_mut()
            .insert_object(
                "c",
                &field,
                Tiling::Regular {
                    tile_shape: vec![16, 16],
                },
            )
            .unwrap();
        heaven.export_object(oid, ExportMode::Tct).unwrap();
        heaven.clear_caches();
        let q = selectivity_queries(&domain, sel, 1, 5).pop().unwrap();
        heaven.fetch_region_hierarchical(oid, &q).unwrap();
        let bytes = heaven.stats().st_tape_bytes;
        assert!(
            bytes >= last_bytes,
            "selectivity {sel} fetched {bytes} < previous {last_bytes}"
        );
        last_bytes = bytes;
    }
}

#[test]
fn query_breakdown_levels_sum_to_simclock_delta_cold_then_warm() {
    // Cold fetch over an archived object: the breakdown must attribute
    // the whole SimClock delta to the hierarchy levels, tape-dominated.
    // A warm re-fetch of the same region must show no tape traffic.
    let mut heaven = heaven::open(
        DeviceProfile::ibm3590(),
        1,
        HeavenConfig {
            supertile_bytes: Some(8 << 10),
            ..HeavenConfig::default()
        },
    );
    heaven
        .arraydb_mut()
        .create_collection("c", CellType::F32, 2)
        .unwrap();
    let domain = mi(&[(0, 63), (0, 63)]);
    let field = climate_field(domain, 13);
    let oid = heaven
        .arraydb_mut()
        .insert_object(
            "c",
            &field,
            Tiling::Regular {
                tile_shape: vec![16, 16],
            },
        )
        .unwrap();
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    heaven.occupy_drives().unwrap(); // cold: force a media exchange

    // The region sits in a super-tile past the start of the tape, so the
    // cold path pays exchange AND locate AND transfer time.
    let region = mi(&[(32, 63), (32, 63)]);
    let clock = heaven.clock();
    let t0 = clock.now_s();
    heaven.fetch_region_hierarchical(oid, &region).unwrap();
    let cold_dt = clock.now_s() - t0;
    let cold = heaven.last_query_breakdown().unwrap().clone();
    assert!(
        (cold.total_s - cold_dt).abs() < 1e-9,
        "total != clock delta"
    );
    assert!(
        (cold.levels_sum_s() - cold.total_s).abs() < 1e-6,
        "levels sum {} != total {}",
        cold.levels_sum_s(),
        cold.total_s
    );
    // Per-level times are nonzero where the cold path must have spent
    // simulated time: exchange, locate, transfer — and unattributed time
    // is negligible.
    assert!(cold.total_s > 0.0);
    assert!(cold.tape_exchange_s > 0.0, "no exchange time: {cold}");
    assert!(cold.tape_locate_s > 0.0, "no locate time: {cold}");
    assert!(cold.tape_transfer_s > 0.0, "no transfer time: {cold}");
    assert!(cold.media_exchanges >= 1);
    assert!(cold.tape_fetches >= 1);
    assert!(cold.tape_bytes > 0);
    assert!(
        cold.other_s < 0.01 * cold.total_s + 1e-9,
        "unattributed time {} of {}",
        cold.other_s,
        cold.total_s
    );

    // Warm: same region again, no tape involvement.
    let t1 = clock.now_s();
    heaven.fetch_region_hierarchical(oid, &region).unwrap();
    let warm_dt = clock.now_s() - t1;
    let warm = heaven.last_query_breakdown().unwrap().clone();
    assert!((warm.total_s - warm_dt).abs() < 1e-9);
    assert!((warm.levels_sum_s() - warm.total_s).abs() < 1e-6);
    assert_eq!(warm.tape_fetches, 0, "warm fetch went to tape: {warm}");
    assert_eq!(warm.tape_bytes, 0);
    assert_eq!(warm.media_exchanges, 0);
    assert!(warm.tape_s() < 1e-12);
    assert!(warm.total_s < cold.total_s, "warm not cheaper than cold");
    assert!(
        warm.mem_hits + warm.disk_cache_hits > 0,
        "warm fetch hit no cache: {warm}"
    );
}

#[test]
fn rasql_select_over_archive_produces_breakdown_and_trace() {
    // The acceptance scenario: a cold RasQL SELECT over an archived
    // object, with tracing on, yields a per-query breakdown whose levels
    // sum to the SimClock delta and a span tree covering the tape events.
    let mut heaven = heaven::open(
        DeviceProfile::dlt7000(),
        1,
        HeavenConfig {
            supertile_bytes: Some(8 << 10),
            trace: heaven::obs::TraceConfig::ring(1 << 16),
            ..HeavenConfig::default()
        },
    );
    heaven
        .arraydb_mut()
        .create_collection("c", CellType::F32, 2)
        .unwrap();
    let domain = mi(&[(0, 63), (0, 63)]);
    let field = climate_field(domain, 29);
    let oid = heaven
        .arraydb_mut()
        .insert_object(
            "c",
            &field,
            Tiling::Regular {
                tile_shape: vec![16, 16],
            },
        )
        .unwrap();
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    let _ = oid;

    let clock = heaven.clock();
    let t0 = clock.now_s();
    let rs = run(&mut heaven, "select avg_cells(c[0:31, 0:31]) from c as c").unwrap();
    let dt = clock.now_s() - t0;
    assert_eq!(rs.len(), 1);

    let b = heaven.last_query_breakdown().unwrap();
    assert!(b.label.contains("select"), "label: {}", b.label);
    assert!(b.total_s > 0.0 && (b.total_s - dt).abs() < 1e-9);
    assert!((b.levels_sum_s() - b.total_s).abs() < 1e-6);
    assert!(b.tape_transfer_s > 0.0, "cold select read no tape: {b}");

    let recs = heaven.trace().records();
    heaven::obs::check_well_nested(&recs).expect("well-nested query trace");
    for name in ["query", "heaven.st_fetch", "tape.locate", "tape.transfer"] {
        assert!(recs.iter().any(|r| r.name == name), "trace missing {name}");
    }
}

#[test]
fn condenser_precomputation_is_numerically_exact() {
    let domain = mi(&[(0, 47), (0, 47)]);
    let field = climate_field(domain, 11);
    let expected_avg = Condenser::Avg.eval(&field).unwrap();
    let expected_max = Condenser::Max.eval(&field).unwrap();
    let mut heaven = heaven::open(
        DeviceProfile::dlt7000(),
        1,
        HeavenConfig {
            supertile_bytes: Some(16 << 10),
            precompute: vec![Condenser::Avg, Condenser::Max],
            ..HeavenConfig::default()
        },
    );
    heaven
        .arraydb_mut()
        .create_collection("c", CellType::F32, 2)
        .unwrap();
    let oid = heaven
        .arraydb_mut()
        .insert_object(
            "c",
            &field,
            Tiling::Regular {
                tile_shape: vec![16, 16],
            },
        )
        .unwrap();
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    let rs = run(&mut heaven, "select avg_cells(c[0:47,0:47]) from c as c").unwrap();
    assert!((rs[0].value.as_scalar().unwrap() - expected_avg).abs() < 1e-6);
    let rs = run(&mut heaven, "select max_cells(c[0:47,0:47]) from c as c").unwrap();
    assert!((rs[0].value.as_scalar().unwrap() - expected_max).abs() < 1e-6);
    assert!(heaven.precomp_stats().combine_hits >= 2);
    assert_eq!(heaven.stats().st_tape_fetches, 0, "no tape needed");
    let _ = Point::new(vec![0]);
}

#[test]
fn archive_catalog_survives_full_restart() {
    // Export, checkpoint, crash the RDBMS, recover, rebuild BOTH catalogs
    // (DBMS + HEAVEN's persistent super-tile catalog): archived data on
    // tape must be reachable again, and dead space must be recomputed.
    let mut heaven = heaven::open(
        DeviceProfile::dlt7000(),
        1,
        HeavenConfig {
            supertile_bytes: Some(8 << 10),
            ..HeavenConfig::default()
        },
    );
    heaven
        .arraydb_mut()
        .create_collection("c", CellType::F32, 2)
        .unwrap();
    let domain = mi(&[(0, 63), (0, 63)]);
    let field = climate_field(domain.clone(), 21);
    let oid = heaven
        .arraydb_mut()
        .insert_object(
            "c",
            &field,
            Tiling::Regular {
                tile_shape: vec![16, 16],
            },
        )
        .unwrap();
    let report = heaven.export_object(oid, ExportMode::Tct).unwrap();
    // make one super-tile dead (update rewrites it)
    let patch = MDArray::generate(mi(&[(0, 3), (0, 3)]), CellType::F32, |_| -5.0);
    heaven.update_region(oid, &patch).unwrap();
    heaven.arraydb_mut().database_mut().checkpoint().unwrap();

    // --- simulated server restart ---
    heaven.arraydb_mut().database_mut().crash();
    heaven.arraydb_mut().database_mut().recover().unwrap();
    heaven.arraydb_mut().rebuild_catalogs().unwrap();
    heaven.rebuild_archive_catalog().unwrap();

    // catalog state restored
    assert_eq!(
        heaven.catalog().object_supertiles(oid).len(),
        report.supertiles
    );
    // dead space recomputed from live vs used bytes
    let medium = report.media[0];
    assert!(heaven.dead_bytes_on(medium) > 0);

    // archived data retrievable; includes the update
    let back = heaven.fetch_region_hierarchical(oid, &domain).unwrap();
    assert_eq!(back.get_f64(&Point::new(vec![0, 0])).unwrap(), -5.0);
    assert_eq!(
        back.get_f64(&Point::new(vec![30, 30])).unwrap(),
        field.get_f64(&Point::new(vec![30, 30])).unwrap()
    );
}
