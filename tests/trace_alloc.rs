//! End-to-end allocation parity: turning the ring trace sink on must not
//! add heap allocations to a warm query — the record→sink path is
//! allocation-free, and every call-site field is either numeric, static,
//! or inlined (`Field::dyn_str`).
//!
//! One test per file: the counting global allocator is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use heaven::array::{CellType, Minterval, Tiling};
use heaven::core::{ExportMode, HeavenConfig};
use heaven::obs::TraceConfig;
use heaven::tape::DeviceProfile;
use heaven::workload::climate_field;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

/// Allocations across 64 warm bracketed queries under `trace`.
fn warm_query_allocs(trace: TraceConfig) -> u64 {
    let mut heaven = heaven::open(
        DeviceProfile::ibm3590(),
        1,
        HeavenConfig {
            supertile_bytes: Some(8 << 10),
            trace,
            ..HeavenConfig::default()
        },
    );
    heaven
        .arraydb_mut()
        .create_collection("c", CellType::F32, 2)
        .unwrap();
    let field = climate_field(mi(&[(0, 63), (0, 63)]), 17);
    let oid = heaven
        .arraydb_mut()
        .insert_object(
            "c",
            &field,
            Tiling::Regular {
                tile_shape: vec![16, 16],
            },
        )
        .unwrap();
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    let region = mi(&[(16, 47), (16, 47)]);
    // Warm-up pass: stage the super-tiles, fill caches, intern names.
    for _ in 0..4 {
        heaven.fetch_region_hierarchical(oid, &region).unwrap();
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..64 {
        heaven.begin_query("bench");
        heaven.fetch_region_hierarchical(oid, &region).unwrap();
        heaven.end_query().unwrap();
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn ring_trace_adds_no_allocations_to_warm_queries() {
    let off = warm_query_allocs(TraceConfig::off());
    let ring = warm_query_allocs(TraceConfig::ring(1 << 14));
    assert_eq!(
        ring, off,
        "ring tracing changed the warm-query allocation count \
         (off: {off}, ring: {ring} allocations per 64 queries)"
    );
}
