//! Paper-style table printing for the experiment binaries.
//!
//! Every experiment binary accepts a `--json <path>` flag; when present,
//! [`Table::emit`] additionally writes the machine-readable form
//! (`{"title", "headers", "rows"}`) to that path. Binaries with a live
//! [`MetricsRegistry`] also accept `--prom <path>`, which dumps the
//! registry in Prometheus text exposition format via
//! [`emit_prometheus`].

use heaven_obs::json::write_str;
use heaven_obs::MetricsRegistry;
use std::path::{Path, PathBuf};

/// A simple aligned text table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{c:>w$} | ", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        out.push_str(&"-".repeat(sep));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Serialize as one JSON object: `{"title", "headers", "rows"}` with
    /// rows as arrays of strings (the rendered cells).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"title\":");
        write_str(&mut out, &self.title);
        out.push_str(",\"headers\":[");
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, h);
        }
        out.push_str("],\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, c) in r.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_str(&mut out, c);
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    /// Write the JSON form to `path` (with a trailing newline).
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }

    /// Print to stdout and honor the `--json <path>` command-line flag.
    pub fn emit(&self) {
        self.print();
        if let Some(path) = json_arg() {
            match self.write_json(&path) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("cannot write {}: {e}", path.display()),
            }
        }
    }
}

/// The path given with `--json <path>` on the command line, if any.
pub fn json_arg() -> Option<PathBuf> {
    flag_arg("--json")
}

/// The path given with `--prom <path>` on the command line, if any.
pub fn prom_arg() -> Option<PathBuf> {
    flag_arg("--prom")
}

fn flag_arg(flag: &str) -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next().map(PathBuf::from);
        }
        if let Some(p) = a.strip_prefix(flag).and_then(|rest| rest.strip_prefix('=')) {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Honor the `--prom <path>` flag: write `registry` in Prometheus text
/// exposition format to the given path, if the flag is present.
pub fn emit_prometheus(registry: &MetricsRegistry) {
    if let Some(path) = prom_arg() {
        match std::fs::write(&path, registry.render_prometheus()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}

/// Format seconds human-readably.
pub fn fmt_s(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.2} h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{s:.1} s")
    }
}

/// Format bytes human-readably.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-header"));
        assert_eq!(s.matches('\n').count(), 6);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn json_form_is_well_formed() {
        let mut t = Table::new("E\"x\"", &["col a", "col b"]);
        t.row(&["1".into(), "two\nlines".into()]);
        let j = t.to_json();
        assert!(j.starts_with("{\"title\":\"E\\\"x\\\"\""));
        assert!(j.contains("\"headers\":[\"col a\",\"col b\"]"));
        assert!(j.contains("\"rows\":[[\"1\",\"two\\nlines\"]]"));
        assert!(j.ends_with("]}"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_s(5.0), "5.0 s");
        assert_eq!(fmt_s(120.0), "2.0 min");
        assert_eq!(fmt_s(7200.0), "2.00 h");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MB");
        assert_eq!(fmt_bytes(5 << 30), "5.00 GB");
    }
}
