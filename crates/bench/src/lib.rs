#![warn(missing_docs)]
//! # heaven-bench — the experiment harness
//!
//! One binary per table/figure of the evaluation (Chapter 4 plus the
//! technique-specific measurements of Chapter 3); see DESIGN.md §3 for the
//! experiment index and EXPERIMENTS.md for recorded results.
//!
//! Two experiment scales are used:
//!
//! * **real-data scale** — full `Heaven` systems with actual cell data
//!   (megabytes), exercising every code path end-to-end;
//! * **paper scale** — [`PhantomArchive`]: objects of hundreds of
//!   gigabytes whose *geometry* (tile grids, super-tile partitions, media
//!   placement) is exact but whose payloads are phantom, so the simulated
//!   access times match the paper's data volumes without host memory.

pub mod phantom;
pub mod table;

pub use phantom::{PhantomArchive, PhantomObject};
pub use table::{emit_prometheus, json_arg, prom_arg, Table};
