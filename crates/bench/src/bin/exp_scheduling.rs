//! E7 — Query scheduling (paper §3.5.3).
//!
//! A batch of queries over many objects spread across many media is
//! executed (a) in arrival order and (b) after HEAVEN's scheduling
//! (group by medium, mounted first, ascending offsets). Metrics: media
//! exchanges and total simulated time, for 1 and 2 drives.

use heaven_array::{CellType, LinearOrder, Minterval};
use heaven_bench::table::fmt_s;
use heaven_bench::{emit_prometheus, PhantomArchive, Table};
use heaven_core::ClusteringStrategy;
use heaven_obs::MetricsRegistry;
use heaven_tape::DeviceProfile;
use heaven_workload::selectivity_queries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OBJECTS: usize = 16;
const BATCH: usize = 32;

fn build(drives: usize, registry: &MetricsRegistry) -> PhantomArchive {
    // 16 x 4 GB objects on IBM3590 (10 GB media): ~2 objects per medium,
    // 8 media. Tiles 8 MB, super-tiles 256 MB.
    let domains: Vec<Minterval> = (0..OBJECTS)
        .map(|_| Minterval::new(&[(0, 1023), (0, 1023), (0, 1023)]).unwrap())
        .collect();
    PhantomArchive::build_with_registry(
        DeviceProfile::ibm3590(),
        drives,
        &domains,
        CellType::F32,
        &[128, 128, 128],
        256 << 20,
        ClusteringStrategy::Star(LinearOrder::Hilbert),
        registry,
    )
}

fn make_batch(seed: u64) -> Vec<(usize, Minterval)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let domain = Minterval::new(&[(0, 1023), (0, 1023), (0, 1023)]).unwrap();
    (0..BATCH)
        .map(|i| {
            let obj = rng.gen_range(0..OBJECTS);
            let q = selectivity_queries(&domain, 0.02, 1, seed * 1000 + i as u64)
                .pop()
                .expect("one query");
            (obj, q)
        })
        .collect()
}

fn main() {
    let mut t = Table::new(
        "E7: batch of 32 queries over 16 objects / 8 media (IBM3590)",
        &["drives", "order", "exchanges", "total time", "vs naive"],
    );
    let registry = MetricsRegistry::new();
    for &drives in &[1usize, 2] {
        let batch = make_batch(5);
        let mut naive_time = 0.0;
        for (scheduled, label) in [(false, "arrival"), (true, "scheduled")] {
            let mut archive = build(drives, &registry);
            let mounts_before = archive.stats().mounts;
            let (time, _bytes, _sts) = archive.fetch_batch(&batch, scheduled);
            let exchanges = archive.stats().mounts - mounts_before;
            if !scheduled {
                naive_time = time;
            }
            t.row(&[
                format!("{drives}"),
                label.to_string(),
                format!("{exchanges}"),
                fmt_s(time),
                if scheduled {
                    format!("{:.1}x faster", naive_time / time)
                } else {
                    "-".into()
                },
            ]);
        }
    }
    t.emit();
    emit_prometheus(&registry);
    println!(
        "\nShape check (paper §3.5.3): scheduling collapses the media\n\
         exchanges of an interleaved batch to ~one mount per medium and\n\
         shortens intra-medium seeks (ascending offsets), a multiple in\n\
         total time; a second drive helps both but the scheduled order\n\
         stays ahead.\n"
    );
}
