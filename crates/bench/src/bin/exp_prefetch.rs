//! E13 — Prefetching (paper §3.6).
//!
//! A sequential analysis sweep (a scientist processing an archived object
//! slab by slab) under three prefetch policies. Prefetch I/O is
//! *overlappable background work*: while the scientist analyses slab *n*,
//! HEAVEN stages the super-tiles of slabs *n+1..n+k* into the disk cache.
//! Reported: mean **foreground** response per query (total minus
//! overlapped prefetch time) and the tape traffic split.

use heaven_array::{CellType, Minterval, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_bench::table::{fmt_bytes, fmt_s};
use heaven_bench::{emit_prometheus, Table};
use heaven_core::{
    AccessPattern, ClusteringStrategy, ExportMode, Heaven, HeavenConfig, PrefetchPolicy,
};
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, DiskProfile, SimClock, TapeLibrary};
use heaven_workload::climate_field;

fn build(policy: PrefetchPolicy) -> (Heaven, u64) {
    let clock = SimClock::new();
    let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 2048);
    let mut adb = ArrayDb::create(db).expect("db");
    adb.create_collection("era", CellType::F32, 3)
        .expect("collection");
    // 96 months x 48 x 48
    let dom = Minterval::new(&[(0, 95), (0, 47), (0, 47)]).unwrap();
    let arr = climate_field(dom, 17);
    let oid = adb
        .insert_object(
            "era",
            &arr,
            Tiling::Regular {
                tile_shape: vec![8, 24, 24],
            },
        )
        .expect("insert");
    let lib = TapeLibrary::new(DeviceProfile::dlt7000(), 1, clock);
    let mut heaven = Heaven::new(
        adb,
        lib,
        HeavenConfig {
            // one super-tile per time slab: 4 tiles x ~18.6 KB
            supertile_bytes: Some(80 << 10),
            clustering: ClusteringStrategy::EStar(AccessPattern::SliceDominant { axis: 0 }),
            prefetch: policy,
            ..HeavenConfig::default()
        },
    );
    heaven.export_object(oid, ExportMode::Tct).expect("export");
    heaven.clear_caches();
    heaven.occupy_drives().expect("cold drives");
    (heaven, oid)
}

fn main() {
    let mut t = Table::new(
        "E13: sequential slab sweep with prefetching (DLT7000, 12 slabs)",
        &[
            "policy",
            "foreground/query",
            "background prefetch",
            "tape bytes",
            "vs none",
        ],
    );
    let mut base = 0.0;
    let mut last_registry = None;
    for (name, policy) in [
        ("none", PrefetchPolicy::None),
        ("next-1", PrefetchPolicy::NextInOrder(1)),
        ("next-3", PrefetchPolicy::NextInOrder(3)),
    ] {
        let (mut heaven, oid) = build(policy);
        let clock = heaven.clock();
        let mut foreground = 0.0;
        let queries = 12;
        for slab in 0..queries {
            let t0 = clock.now_s();
            let pf0 = heaven.stats().prefetch_s;
            let lo = slab * 8;
            heaven
                .fetch_region_hierarchical(
                    oid,
                    &Minterval::new(&[(lo, lo + 7), (0, 47), (0, 47)]).unwrap(),
                )
                .expect("query");
            let total = clock.now_s() - t0;
            let prefetch = heaven.stats().prefetch_s - pf0;
            foreground += total - prefetch;
            // The library is shared: between two analysis steps another
            // user's job takes the drive, so the next tape access pays a
            // full remount. This is the latency prefetching hides — the
            // prefetched successors already sit in the disk cache.
            heaven.occupy_drives().expect("interfering user");
        }
        let mean_fg = foreground / queries as f64;
        if policy == PrefetchPolicy::None {
            base = mean_fg;
        }
        t.row(&[
            name.to_string(),
            fmt_s(mean_fg),
            fmt_s(heaven.stats().prefetch_s),
            fmt_bytes(heaven.tape_stats().bytes_read),
            format!("{:.1}x", base / mean_fg),
        ]);
        last_registry = Some(heaven.metrics().clone());
    }
    t.emit();
    if let Some(registry) = &last_registry {
        emit_prometheus(registry);
    }
    println!(
        "\nShape check (paper §3.6): with sequential access and cluster-order\n\
         prefetching, successor super-tiles are already in the disk cache when\n\
         the next query arrives — the foreground response collapses to cache\n\
         reads while the tape streams ahead in the background. Total tape\n\
         traffic is unchanged (the same super-tiles move either way).\n"
    );
}
