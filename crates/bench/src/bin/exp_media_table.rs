//! E1 — Tertiary-media characteristics table (paper §2.2.2, Tab. 2.x).
//!
//! Regenerates the background chapter's device-comparison table from the
//! calibrated profiles, including the derived quantities the paper
//! discusses: mean access time, full-object read time, and the
//! disk-vs-tape positioning gap (10³–10⁴×).

use heaven_bench::table::{fmt_bytes, fmt_s};
use heaven_bench::Table;
use heaven_tape::{DeviceProfile, DiskProfile};

fn main() {
    let disk = DiskProfile::scsi2003();
    let mut t = Table::new(
        "E1: tertiary storage media characteristics (paper §2.2)",
        &[
            "device",
            "capacity",
            "exchange",
            "mean locate",
            "transfer",
            "read 1 GB cold",
            "locate vs disk",
        ],
    );
    for p in DeviceProfile::all() {
        let cold_1gb = p.mount_time_s() + p.avg_locate_s + p.transfer_time_s(1 << 30);
        t.row(&[
            p.name.to_string(),
            fmt_bytes(p.media_capacity),
            fmt_s(p.exchange_s),
            fmt_s(p.avg_locate_s),
            format!("{:.1} MB/s", p.transfer_bps / (1 << 20) as f64),
            fmt_s(cold_1gb),
            format!("{:.0}x", p.avg_locate_s / disk.seek_s),
        ]);
    }
    t.row(&[
        "SCSI disk".into(),
        "-".into(),
        "-".into(),
        fmt_s(disk.seek_s),
        format!("{:.1} MB/s", disk.transfer_bps / (1 << 20) as f64),
        fmt_s(disk.access_time_s(1 << 30)),
        "1x".into(),
    ]);
    t.emit();
    println!(
        "\nPaper claim check: tape exchange 12-40 s, mean locate 27-95 s, tape\n\
         transfer ~= disk/2, disk positioning 10^3-10^4 x faster.\n"
    );
}
