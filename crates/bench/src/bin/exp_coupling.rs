//! E12 (ablation) — TS attachment modes (paper §3.1.1 vs §3.1.2).
//!
//! HEAVEN can couple to tertiary storage two ways:
//!
//! * **via an HSM** (§3.1.1): each super-tile is a *file*; the HSM stages
//!   it through its disk cache. Simple, but every fetch pays an extra
//!   disk write + read, and the client cannot order fetches by media
//!   position (the HSM hides placement).
//! * **direct drive attachment** (§3.1.2): HEAVEN controls placement and
//!   reads blocks straight off the medium, scheduling by offset.
//!
//! Both are compared against the classic whole-object-file HSM baseline.

use heaven_array::{CellType, LinearOrder, Minterval};
use heaven_bench::table::{fmt_bytes, fmt_s};
use heaven_bench::{emit_prometheus, PhantomArchive, Table};
use heaven_core::ClusteringStrategy;
use heaven_hsm::{HsmSystem, StagingDisk, WatermarkPolicy};
use heaven_obs::{MetricsRegistry, TraceBus};
use heaven_tape::{DeviceProfile, DiskProfile, SimClock, TapeLibrary, WritePayload};
use heaven_workload::selectivity_queries;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const SELECTIVITY: f64 = 0.02;
const QUERIES: usize = 8;

fn domain() -> Minterval {
    // 8 GB object
    Minterval::new(&[(0, 1023), (0, 1023), (0, 2047)]).unwrap()
}

/// Classic baseline: the whole object is one HSM file.
fn run_wholefile(registry: &MetricsRegistry) -> (f64, u64) {
    let clock = SimClock::new();
    let disk = StagingDisk::new(DiskProfile::scsi2003(), 32 << 30, clock.clone());
    let lib = TapeLibrary::new(DeviceProfile::dlt7000(), 1, clock.clone());
    let mut hsm = HsmSystem::new(disk, lib, WatermarkPolicy::default());
    hsm.attach_obs(registry, TraceBus::noop());
    let bytes = domain().cell_count() * 4;
    hsm.archive("obj", WritePayload::Phantom(bytes)).unwrap();
    let mut total = 0.0;
    let mut moved = 0u64;
    for (i, _q) in selectivity_queries(&domain(), SELECTIVITY, QUERIES, 3)
        .iter()
        .enumerate()
    {
        let t0 = clock.now_s();
        let before = hsm.tape_stats().bytes_read;
        hsm.read_range("obj", i as u64 * 4096, 4096).unwrap();
        total += clock.now_s() - t0;
        moved += hsm.tape_stats().bytes_read - before;
        hsm.purge_staged("obj");
    }
    (total / QUERIES as f64, moved / QUERIES as u64)
}

/// HEAVEN over an HSM: one file per super-tile, staged through the cache,
/// fetch order decided without placement knowledge (file-name order).
fn run_heaven_over_hsm(registry: &MetricsRegistry) -> (f64, u64) {
    let clock = SimClock::new();
    let disk = StagingDisk::new(DiskProfile::scsi2003(), 32 << 30, clock.clone());
    let lib = TapeLibrary::new(DeviceProfile::dlt7000(), 1, clock.clone());
    let mut hsm = HsmSystem::new(disk, lib, WatermarkPolicy::default());
    hsm.attach_obs(registry, TraceBus::noop());
    // Layout identical to the direct archive: reuse the geometry.
    let geometry = PhantomArchive::build(
        DeviceProfile::dlt7000(),
        1,
        std::slice::from_ref(&domain()),
        CellType::F32,
        &[128, 128, 128],
        256 << 20,
        ClusteringStrategy::Star(LinearOrder::Hilbert),
    );
    let obj = &geometry.objects[0];
    for (gi, g) in obj.groups.iter().enumerate() {
        let len: u64 = g.iter().map(|&i| obj.tiles[i].bytes).sum();
        hsm.archive(&format!("st{gi:05}"), WritePayload::Phantom(len))
            .unwrap();
    }
    let mut total = 0.0;
    let mut moved = 0u64;
    let mut rng = StdRng::seed_from_u64(77);
    for q in selectivity_queries(&domain(), SELECTIVITY, QUERIES, 3) {
        let mut touched = obj.groups_touching(&q);
        // The HSM hides media positions: fetch order is whatever the
        // application produces (modelled as shuffled).
        touched.shuffle(&mut rng);
        let t0 = clock.now_s();
        let before = hsm.tape_stats().bytes_read;
        for gi in &touched {
            hsm.read(&format!("st{gi:05}")).unwrap();
        }
        total += clock.now_s() - t0;
        moved += hsm.tape_stats().bytes_read - before;
        for gi in &touched {
            hsm.purge_staged(&format!("st{gi:05}"));
        }
    }
    (total / QUERIES as f64, moved / QUERIES as u64)
}

/// HEAVEN with direct attachment: scheduled block reads.
fn run_heaven_direct(registry: &MetricsRegistry) -> (f64, u64) {
    let mut archive = PhantomArchive::build_with_registry(
        DeviceProfile::dlt7000(),
        1,
        std::slice::from_ref(&domain()),
        CellType::F32,
        &[128, 128, 128],
        256 << 20,
        ClusteringStrategy::Star(LinearOrder::Hilbert),
        registry,
    );
    let mut total = 0.0;
    let mut moved = 0u64;
    for q in selectivity_queries(&domain(), SELECTIVITY, QUERIES, 3) {
        let (t, b, _) = archive.fetch_query(0, &q, true);
        total += t;
        moved += b;
    }
    (total / QUERIES as f64, moved / QUERIES as u64)
}

fn main() {
    let mut t = Table::new(
        "E12 (ablation): TS attachment modes, 8 GB object, 2% queries (DLT7000)",
        &[
            "coupling",
            "mean tape traffic",
            "mean time",
            "vs whole-file",
        ],
    );
    let registry = MetricsRegistry::new();
    let (t_whole, b_whole) = run_wholefile(&registry);
    let (t_hsm, b_hsm) = run_heaven_over_hsm(&registry);
    let (t_direct, b_direct) = run_heaven_direct(&registry);
    for (name, time, bytes) in [
        ("whole-object HSM file", t_whole, b_whole),
        ("HEAVEN over HSM (ST files)", t_hsm, b_hsm),
        ("HEAVEN direct attachment", t_direct, b_direct),
    ] {
        t.row(&[
            name.to_string(),
            fmt_bytes(bytes),
            fmt_s(time),
            format!("{:.1}x", t_whole / time),
        ]);
    }
    t.emit();
    emit_prometheus(&registry);
    println!(
        "\nShape check (paper §3.1): super-tiles already buy the big win even\n\
         through an HSM; the direct attachment adds another chunk by\n\
         scheduling block reads in media order and skipping the staging\n\
         detour through the disk cache.\n"
    );
}
