//! E10 — Precomputed operation results (paper §3.9).
//!
//! Condenser queries (averages, sums) over archived objects, three ways:
//! cold (stage super-tiles, aggregate), warm exact-match (the same query
//! repeated), and combined-from-partials (per-tile aggregates recorded at
//! export time answer whole-tile-aligned regions without touching tape).
//! Real data end-to-end.

use heaven_array::{CellType, Condenser, Minterval, Tiling};
use heaven_arraydb::{run, ArrayDb};
use heaven_bench::table::fmt_s;
use heaven_bench::{emit_prometheus, Table};
use heaven_core::{ExportMode, Heaven, HeavenConfig};
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, DiskProfile, SimClock, TapeLibrary};
use heaven_workload::climate_field;

fn setup(precompute: bool) -> Heaven {
    let clock = SimClock::new();
    let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 8192);
    let mut adb = ArrayDb::create(db).expect("db");
    adb.create_collection("climate", CellType::F32, 3)
        .expect("collection");
    let dom = Minterval::new(&[(0, 95), (0, 95), (0, 95)]).unwrap();
    let arr = climate_field(dom, 5);
    let oid = adb
        .insert_object(
            "climate",
            &arr,
            Tiling::Regular {
                tile_shape: vec![32, 32, 32],
            },
        )
        .expect("insert");
    let lib = TapeLibrary::new(DeviceProfile::dlt7000(), 1, clock);
    let config = HeavenConfig {
        supertile_bytes: Some(1 << 20),
        precompute: if precompute {
            vec![Condenser::Avg, Condenser::Sum, Condenser::Max]
        } else {
            vec![]
        },
        ..HeavenConfig::default()
    };
    let mut heaven = Heaven::new(adb, lib, config);
    heaven.export_object(oid, ExportMode::Tct).expect("export");
    heaven.clear_caches();
    // Model an idle shared archive: another user's medium sits in the
    // drive, so a cold query pays the full exchange + locate.
    heaven.occupy_drives().expect("scratch mount");
    heaven
}

fn timed_query(heaven: &mut Heaven, q: &str) -> (f64, f64) {
    let clock = heaven.clock();
    let t0 = clock.now_s();
    let rs = run(heaven, q).expect("query");
    let v = rs[0].value.as_scalar().expect("scalar");
    (clock.now_s() - t0, v)
}

fn main() {
    let queries = [
        (
            "avg, whole object",
            "select avg_cells(c[0:95,0:95,0:95]) from climate as c",
        ),
        (
            "max, tile-aligned half",
            "select max_cells(c[0:95,0:95,0:31]) from climate as c",
        ),
        (
            "sum, tile-aligned block",
            "select add_cells(c[0:31,0:63,0:63]) from climate as c",
        ),
    ];
    let mut t = Table::new(
        "E10: condenser queries over an archived object (real data, DLT7000)",
        &[
            "query",
            "cold (no catalog)",
            "catalog (partials)",
            "repeat (exact)",
            "gain",
        ],
    );
    let mut last_registry = None;
    for (name, q) in &queries {
        // Cold system without precompute: every query stages from tape.
        let mut cold = setup(false);
        let (t_cold, v_cold) = timed_query(&mut cold, q);
        last_registry = Some(cold.metrics().clone());
        // System with per-tile partials recorded at export.
        let mut warm = setup(true);
        let (t_cat, v_cat) = timed_query(&mut warm, q);
        assert!(
            (v_cold - v_cat).abs() < 1e-3 * v_cold.abs().max(1.0),
            "{name}: {v_cold} vs {v_cat}"
        );
        // Repeat on the cold system: exact-match memo recorded by the
        // first execution.
        let (t_repeat, _) = timed_query(&mut cold, q);
        t.row(&[
            name.to_string(),
            fmt_s(t_cold),
            fmt_s(t_cat),
            fmt_s(t_repeat),
            if t_cat < 1e-3 {
                "no tape at all".into()
            } else {
                format!("{:.0}x", t_cold / t_cat)
            },
        ]);
    }
    t.emit();
    if let Some(registry) = &last_registry {
        emit_prometheus(registry);
    }
    println!(
        "\nShape check (paper §3.9): tile-aligned condensers served from the\n\
         precomputed catalog avoid tape entirely — queries that pay a full\n\
         mount + locate + transfer when cold return instantly; repeated\n\
         queries hit the exact-match memo likewise.\n"
    );
}
