//! E9 — Object Framing (paper §3.8).
//!
//! Before framing, a user needing an L-shaped or shell-shaped region had
//! to request its bounding box. Framing fetches only the super-tiles the
//! frame actually touches. Metrics per frame workload: super-tiles
//! fetched, bytes moved, simulated time — frame vs. bounding box.

use heaven_array::{CellType, LinearOrder, Minterval};
use heaven_bench::table::{fmt_bytes, fmt_s};
use heaven_bench::{emit_prometheus, PhantomArchive, Table};
use heaven_core::{ClusteringStrategy, FetchRequest};
use heaven_obs::MetricsRegistry;
use heaven_tape::DeviceProfile;
use heaven_workload::framing_workloads;

fn main() {
    // 16 GB 2-D mosaic (64k x 64k octet cells), 16 MB tiles, 256 MB STs.
    let domain = Minterval::new(&[(0, 65_535), (0, 65_535)]).unwrap();
    let workloads = framing_workloads(&domain);
    let registry = MetricsRegistry::new();

    let mut t = Table::new(
        "E9: Object Framing vs bounding-box fetch (16 GB satellite mosaic, DLT7000)",
        &[
            "frame",
            "frame cells",
            "mode",
            "STs",
            "bytes moved",
            "time",
            "saving",
        ],
    );
    for (name, frame) in &workloads {
        let bbox = frame.bounding_box().expect("non-empty frame");
        let mut results = Vec::new();
        for (mode, use_frame) in [("frame", true), ("bbox", false)] {
            let mut archive = PhantomArchive::build_with_registry(
                DeviceProfile::dlt7000(),
                1,
                std::slice::from_ref(&domain),
                CellType::U8,
                &[4096, 4096], // 16 MB octet tiles
                256 << 20,
                ClusteringStrategy::Star(LinearOrder::Hilbert),
                &registry,
            );
            let obj = &archive.objects[0];
            let touched: Vec<usize> = obj
                .groups
                .iter()
                .enumerate()
                .filter(|(_, g)| {
                    g.iter().any(|&i| {
                        let d = &obj.tiles[i].domain;
                        if use_frame {
                            frame.touches(d)
                        } else {
                            bbox.intersects(d)
                        }
                    })
                })
                .map(|(gi, _)| gi)
                .collect();
            let reqs: Vec<FetchRequest> = touched
                .iter()
                .map(|&gi| FetchRequest {
                    st: gi as u64,
                    addr: archive.objects[0].addrs[gi],
                })
                .collect();
            let clock = archive.clock();
            let t0 = clock.now_s();
            let mut bytes = 0u64;
            let order = heaven_core::schedule(&reqs, &[]);
            for r in &order {
                archive.store.read(r.addr).expect("read");
                bytes += r.addr.len;
            }
            results.push((mode, order.len(), bytes, clock.now_s() - t0));
        }
        let bbox_time = results[1].3;
        for (mode, sts, bytes, time) in results {
            t.row(&[
                name.to_string(),
                fmt_bytes(frame.cell_count()),
                mode.to_string(),
                format!("{sts}"),
                fmt_bytes(bytes),
                fmt_s(time),
                if mode == "frame" {
                    format!("{:.1}x less time", bbox_time / time)
                } else {
                    "-".into()
                },
            ]);
        }
    }
    t.emit();
    emit_prometheus(&registry);
    println!(
        "\nShape check (paper §3.8): complex frames (L-shapes, shells,\n\
         scattered boxes) whose bounding boxes cover most of the object are\n\
         served with a fraction of the tape traffic — the win equals the\n\
         bbox-to-frame area ratio at super-tile granularity.\n"
    );
}
