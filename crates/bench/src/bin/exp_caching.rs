//! E8 — Cache eviction strategies (paper §3.7.3).
//!
//! A hot-region query workload (80 % of queries inside 20 % of the data)
//! runs against the disk super-tile cache under each eviction policy.
//! Metrics: hit ratio and mean response time, for several cache sizes
//! relative to the working set.

use heaven_array::{CellType, LinearOrder, Minterval};
use heaven_bench::table::{fmt_bytes, fmt_s};
use heaven_bench::{emit_prometheus, PhantomArchive, Table};
use heaven_core::{ClusteringStrategy, EvictionPolicy, SuperTileCache};
use heaven_obs::MetricsRegistry;
use heaven_tape::DeviceProfile;
use heaven_workload::hot_region_queries;

const QUERIES: usize = 120;

fn main() {
    // One 16 GB object, 8 MB tiles, 128 MB super-tiles.
    let domain = Minterval::new(&[(0, 2047), (0, 2047), (0, 1023)]).unwrap();
    let queries = hot_region_queries(&domain, 0.005, QUERIES, 0.8, 99);
    let registry = MetricsRegistry::new();

    let mut t = Table::new(
        "E8: eviction strategies under a hot-region workload (16 GB object, 128 MB STs)",
        &[
            "cache size",
            "policy",
            "hit ratio",
            "tape fetches",
            "mean response",
        ],
    );
    for &cache_frac in &[0.05f64, 0.15, 0.40] {
        let object_bytes = domain.cell_count() * 4;
        let cache_bytes = (object_bytes as f64 * cache_frac) as u64;
        for policy in EvictionPolicy::all() {
            // fresh archive per run: identical layout, cold drives
            let mut archive = PhantomArchive::build_with_registry(
                DeviceProfile::dlt7000(),
                1,
                std::slice::from_ref(&domain),
                CellType::F32,
                &[128, 128, 128],
                128 << 20,
                ClusteringStrategy::Star(LinearOrder::Hilbert),
                &registry,
            );
            // Phantom cache entries: sizes accounted, no bytes held.
            let cache = SuperTileCache::new(cache_bytes, policy, None);
            let clock = archive.clock();
            let mut total_s = 0.0;
            let mut tape_fetches = 0u64;
            for q in &queries {
                let touched = archive.objects[0].groups_touching(q);
                let t0 = clock.now_s();
                for gi in touched {
                    let st_id = gi as u64;
                    let addr = archive.objects[0].addrs[gi];
                    if cache.get(st_id).is_some() {
                        continue;
                    }
                    archive.store.read(addr).expect("read");
                    tape_fetches += 1;
                    let refetch = archive.store.estimate_read_s(addr);
                    cache.put_phantom(st_id, addr.len, refetch);
                }
                total_s += clock.now_s() - t0;
            }
            t.row(&[
                format!("{} ({:.0}%)", fmt_bytes(cache_bytes), cache_frac * 100.0),
                cache.policy().name().to_string(),
                format!("{:.2}", cache.stats().hit_ratio()),
                format!("{tape_fetches}"),
                fmt_s(total_s / QUERIES as f64),
            ]);
        }
    }
    t.emit();
    emit_prometheus(&registry);
    println!(
        "\nShape check (paper §3.7): caching pays off dramatically under\n\
         locality; LRU/LFU beat FIFO; the cost-aware policy wins on mean\n\
         response when refetch costs differ (deep-on-tape blocks are kept);\n\
         all policies converge as the cache approaches the working set.\n"
    );
}
