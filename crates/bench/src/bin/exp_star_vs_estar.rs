//! E11 — STAR vs eSTAR clustering quality (paper §3.3.2–3.3.3).
//!
//! For a 3-D object and three access patterns (cubic, directional along
//! the time axis, slice-dominant), measures the mean number of super-tiles
//! and bytes a query touches under (a) STAR with row-major order, (b) STAR
//! with Hilbert order, and (c) eSTAR tuned to the pattern. Pure placement
//! geometry — the metric that drives tape time.

use heaven_array::{CellType, LinearOrder, Minterval, Tile, Tiling};
use heaven_bench::table::fmt_bytes;
use heaven_bench::Table;
use heaven_core::{
    bytes_touched, estar_partition, groups_touched, star_partition, AccessPattern, TileInfo,
};
use heaven_workload::{directional_queries, selectivity_queries, slice_queries};

fn build_tiles(domain: &Minterval) -> (Vec<TileInfo>, Vec<u64>) {
    let tiling = Tiling::Regular {
        tile_shape: vec![64, 64, 64], // 1 MB f32 tiles
    };
    let domains = tiling.tile_domains(domain, CellType::F32).unwrap();
    let (grid, shape) = tiling.tile_grid(domain, CellType::F32).unwrap();
    let tiles = domains
        .into_iter()
        .zip(grid)
        .enumerate()
        .map(|(i, (d, gc))| TileInfo {
            id: i as u64,
            domain: d.clone(),
            bytes: Tile::header_len(3) as u64 + d.cell_count() * 4,
            grid: gc,
        })
        .collect();
    (tiles, shape)
}

fn main() {
    // 4 GB object: 1024^3 f32.
    let domain = Minterval::new(&[(0, 1023), (0, 1023), (0, 1023)]).unwrap();
    let (tiles, shape) = build_tiles(&domain);
    let target = 64 << 20; // 64 MB super-tiles = 64 tiles

    let workloads: Vec<(&str, Vec<Minterval>, AccessPattern)> = vec![
        (
            "cubic 2%",
            selectivity_queries(&domain, 0.02, 12, 31),
            AccessPattern::Uniform,
        ),
        (
            "directional (runs along axis 0)",
            directional_queries(&domain, 0, 0.02, 12, 32),
            AccessPattern::Directional { axis: 0 },
        ),
        (
            "slices (fix axis 2)",
            slice_queries(&domain, 2, 12, 33),
            AccessPattern::SliceDominant { axis: 2 },
        ),
    ];

    let mut t = Table::new(
        "E11: super-tiles touched per query, STAR orders vs pattern-aware eSTAR\n\
         (4 GB object, 1 MB tiles, 64 MB super-tiles)",
        &["workload", "strategy", "mean STs/query", "mean bytes/query"],
    );
    for (wname, queries, pattern) in &workloads {
        let strategies: Vec<(String, Vec<Vec<usize>>)> = vec![
            (
                "STAR row-major".into(),
                star_partition(&tiles, &shape, target, LinearOrder::RowMajor),
            ),
            (
                "STAR Hilbert".into(),
                star_partition(&tiles, &shape, target, LinearOrder::Hilbert),
            ),
            (
                format!("eSTAR ({pattern:?})"),
                estar_partition(&tiles, &shape, target, *pattern),
            ),
        ];
        for (sname, partition) in strategies {
            let mut sts = 0usize;
            let mut bytes = 0u64;
            for q in queries {
                sts += groups_touched(&tiles, &partition, q);
                bytes += bytes_touched(&tiles, &partition, q);
            }
            t.row(&[
                wname.to_string(),
                sname,
                format!("{:.1}", sts as f64 / queries.len() as f64),
                fmt_bytes(bytes / queries.len() as u64),
            ]);
        }
    }
    t.emit();
    println!(
        "\nShape check (paper §3.3): Hilbert STAR beats row-major on cubic\n\
         queries; pattern-aware eSTAR wins its own workload class (often by a\n\
         multiple), because super-tiles are shaped like the queries.\n"
    );
}
