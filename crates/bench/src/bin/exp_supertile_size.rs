//! E6 — Automatic super-tile size adaptation (paper §3.3.4).
//!
//! Sweeps the super-tile size over 16 MB – 2 GB for a fixed query workload
//! (1 % selectivity on a 32 GB object) and measures the mean simulated
//! retrieval time. The curve is U-shaped: small super-tiles pay a locate
//! per block, large ones transfer wasted bytes. The sizing model's
//! prediction is printed for comparison.

use heaven_array::{CellType, LinearOrder, Minterval};
use heaven_bench::table::{fmt_bytes, fmt_s};
use heaven_bench::{emit_prometheus, PhantomArchive, Table};
use heaven_core::{optimal_supertile_size, ClusteringStrategy};
use heaven_obs::MetricsRegistry;
use heaven_tape::DeviceProfile;
use heaven_workload::selectivity_queries;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    // 32 GB object: 2048 x 2048 x 2048 f32.
    let domain = Minterval::new(&[(0, 2047), (0, 2047), (0, 2047)]).unwrap();
    let profile = DeviceProfile::dlt7000();
    let selectivity = 0.01; // ~330 MB useful per query
    let queries = selectivity_queries(&domain, selectivity, 8, 21);
    let query_bytes = (domain.cell_count() as f64 * 4.0 * selectivity) as u64;

    let mut t = Table::new(
        "E6: mean retrieval time vs super-tile size (32 GB object, 1% queries, DLT7000)",
        &[
            "super-tile size",
            "super-tiles",
            "mean fetched",
            "scheduled sweep",
            "general access",
        ],
    );
    let registry = MetricsRegistry::new();
    let mut best = (0u64, f64::INFINITY);
    for &st_mb in &[16u64, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
        let st_bytes = st_mb << 20;
        let mut archive = PhantomArchive::build_with_registry(
            profile,
            1,
            std::slice::from_ref(&domain),
            CellType::F32,
            &[128, 128, 128], // 8 MB tiles
            st_bytes,
            ClusteringStrategy::Star(LinearOrder::Hilbert),
            &registry,
        );
        let n_sts = archive.objects[0].groups.len();
        // (a) best case: one perfectly scheduled sweep per query
        let mut sweep_s = 0.0;
        let mut total_bytes = 0u64;
        for q in &queries {
            let (s, b, _) = archive.fetch_query(0, q, true);
            sweep_s += s;
            total_bytes += b;
        }
        // (b) general access: requests interleaved with other users, i.e.
        // each super-tile access pays an independent locate (random order).
        let mut rng = StdRng::seed_from_u64(4242);
        let mut general_s = 0.0;
        for q in &queries {
            let mut reqs = archive.fetch_requests(0, q);
            reqs.shuffle(&mut rng);
            let (s, _) = archive.execute_order(&reqs);
            general_s += s;
        }
        let mean_general = general_s / queries.len() as f64;
        if mean_general < best.1 {
            best = (st_bytes, mean_general);
        }
        t.row(&[
            fmt_bytes(st_bytes),
            format!("{n_sts}"),
            fmt_bytes(total_bytes / queries.len() as u64),
            fmt_s(sweep_s / queries.len() as f64),
            fmt_s(mean_general),
        ]);
    }
    t.emit();
    emit_prometheus(&registry);
    let predicted = optimal_supertile_size(&profile, query_bytes);
    println!(
        "\nMeasured optimum (general access): {} (mean {}).\nSizing-model prediction for {} useful bytes/query: {}.",
        fmt_bytes(best.0),
        fmt_s(best.1),
        fmt_bytes(query_bytes),
        fmt_bytes(predicted),
    );
    println!(
        "Shape check (paper §3.3.4): under general (interleaved) access the\n\
         curve is U-shaped — small super-tiles pay a locate per block, large\n\
         ones transfer waste — and the automatic size adaptation picks a size\n\
         whose cost is within ~1.3x of the measured optimum (the bottom of\n\
         the U is flat). A perfectly scheduled\n\
         single-user sweep flattens the left side of the U, which is exactly\n\
         why HEAVEN also schedules (E7).\n"
    );
}
