//! E2 + E3 — Data export (paper §4.3).
//!
//! Compares the standard RasDaMan export path (§4.3.1: synchronous,
//! tile-at-a-time, one tape block per tile) against the decoupled TCT
//! export (§4.3.2: super-tiles via eSTAR, intra-/inter-super-tile
//! clustering, DBMS reads overlapping tape writes) over a sweep of object
//! sizes. Real cell data end-to-end; device: DLT7000.

use heaven_array::{CellType, Minterval, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_bench::table::{fmt_bytes, fmt_s};
use heaven_bench::{emit_prometheus, Table};
use heaven_core::{AccessPattern, ClusteringStrategy, ExportMode, Heaven, HeavenConfig};
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, DiskProfile, SimClock, TapeLibrary};
use heaven_workload::climate_field;

/// Build a Heaven holding one freshly inserted climate object of roughly
/// `edge^3` f32 cells, tiled into ~`tile_edge^3` tiles.
fn heaven_with_object(edge: i64, tile_edge: u64, st_bytes: u64) -> (Heaven, u64) {
    let clock = SimClock::new();
    // a realistic buffer pool (4 MB) — archive objects do not fit, so
    // export pays real secondary-storage reads like a production system
    let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 512);
    let mut adb = ArrayDb::create(db).expect("db");
    adb.create_collection("climate", CellType::F32, 3)
        .expect("collection");
    let dom = Minterval::new(&[(0, edge - 1), (0, edge - 1), (0, edge - 1)]).unwrap();
    let arr = climate_field(dom, 42);
    let oid = adb
        .insert_object(
            "climate",
            &arr,
            Tiling::Regular {
                tile_shape: vec![tile_edge; 3],
            },
        )
        .expect("insert");
    let lib = TapeLibrary::new(DeviceProfile::dlt7000(), 1, clock);
    let config = HeavenConfig {
        supertile_bytes: Some(st_bytes),
        clustering: ClusteringStrategy::EStar(AccessPattern::Uniform),
        ..HeavenConfig::default()
    };
    (Heaven::new(adb, lib, config), oid)
}

fn main() {
    // Object edge sweep: 64^3..192^3 f32 = 1 MB .. 27 MB real data.
    // Tile 32^3 = 128 KB; super-tile = 8 tiles = 1 MB.
    // (Scaled 1:64 from the paper's 8 MB tiles / 256 MB super-tiles; the
    // tile:super-tile:object ratios are preserved.)
    let mut t = Table::new(
        "E2/E3: export time, RasDaMan tile-at-a-time vs decoupled TCT (DLT7000)",
        &[
            "object",
            "tiles",
            "super-tiles",
            "naive export",
            "TCT export",
            "speedup",
        ],
    );
    let mut last_registry = None;
    for &edge in &[64i64, 96, 128, 160, 192] {
        let st_bytes = 1 << 20;
        // Naive run.
        let (mut h1, oid1) = heaven_with_object(edge, 32, st_bytes);
        let naive = h1
            .export_object(oid1, ExportMode::Naive)
            .expect("naive export");
        // TCT run (fresh system; identical data).
        let (mut h2, oid2) = heaven_with_object(edge, 32, st_bytes);
        let tct = h2.export_object(oid2, ExportMode::Tct).expect("tct export");
        last_registry = Some(h2.metrics().clone());
        t.row(&[
            fmt_bytes(naive.bytes),
            format!("{}", naive.supertiles),
            format!("{}", tct.supertiles),
            fmt_s(naive.elapsed_s),
            fmt_s(tct.pipelined_s),
            format!("{:.1}x", naive.elapsed_s / tct.pipelined_s),
        ]);
    }
    t.emit();
    if let Some(registry) = &last_registry {
        emit_prometheus(registry);
    }
    println!(
        "\nShape check (paper §4.3): the decoupled, clustered TCT export is a\n\
         multiple faster than tile-at-a-time export; the gap grows with the\n\
         number of tiles (per-block tape sync dominates the naive path).\n"
    );
}
