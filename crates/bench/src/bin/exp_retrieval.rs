//! E4 + E5 — Data retrieval (paper §4.4), paper-scale.
//!
//! E4 (§4.4.1): retrieval through the TS system alone — the HSM's file
//! granularity forces the *whole object file* to be staged for any range
//! query. E5 (§4.4.2): retrieval through HEAVEN — only the super-tiles
//! touching the query are read. Sweep over query selectivity; the paper's
//! motivating observation (§1.1) is that scientists use only 1–10 % of
//! requested data.
//!
//! Paper scale via phantom payloads: 4 objects x 8 GB, tiles 8 MB,
//! super-tiles 256 MB, DLT7000.

use heaven_array::{CellType, LinearOrder, Minterval};
use heaven_bench::table::{fmt_bytes, fmt_s};
use heaven_bench::{emit_prometheus, PhantomArchive, Table};
use heaven_core::ClusteringStrategy;
use heaven_hsm::{HsmSystem, StagingDisk, WatermarkPolicy};
use heaven_obs::{MetricsRegistry, TraceBus};
use heaven_tape::{DeviceProfile, DiskProfile, SimClock, TapeLibrary, WritePayload};
use heaven_workload::selectivity_queries;

/// 8 GB object: 1024 x 1024 x 2048 f32.
fn object_domains(n: usize) -> Vec<Minterval> {
    (0..n)
        .map(|_| Minterval::new(&[(0, 1023), (0, 1023), (0, 2047)]).unwrap())
        .collect()
}

const OBJECTS: usize = 4;
const QUERIES_PER_POINT: usize = 6;

fn run_hsm(selectivity: f64, seed: u64, registry: &MetricsRegistry) -> (f64, u64) {
    // Whole-object files in a classic HSM with a 16 GB staging disk.
    let clock = SimClock::new();
    let disk = StagingDisk::new(DiskProfile::scsi2003(), 16 << 30, clock.clone());
    let lib = TapeLibrary::new(DeviceProfile::dlt7000(), 1, clock.clone());
    let mut hsm = HsmSystem::new(disk, lib, WatermarkPolicy::default());
    hsm.attach_obs(registry, TraceBus::noop());
    let domains = object_domains(OBJECTS);
    for (i, d) in domains.iter().enumerate() {
        let bytes = d.cell_count() * CellType::F32.size_bytes() as u64;
        hsm.archive(&format!("obj{i}"), WritePayload::Phantom(bytes))
            .expect("archive");
    }
    let mut total_s = 0.0;
    let mut total_bytes = 0;
    let mut qi = 0;
    for (i, d) in domains.iter().enumerate() {
        for q in selectivity_queries(d, selectivity, QUERIES_PER_POINT / OBJECTS + 1, seed + qi) {
            qi += 1;
            if qi as usize > QUERIES_PER_POINT {
                break;
            }
            let need = q.cell_count() * 4;
            let before = clock.now_s();
            let read_before = hsm.tape_stats().bytes_read;
            // HSM can only address whole files: any byte range stages the
            // full object first.
            hsm.read_range(&format!("obj{i}"), 0, need.min(1 << 20))
                .expect("read");
            total_s += clock.now_s() - before;
            total_bytes += hsm.tape_stats().bytes_read - read_before;
            // purge the staged copy so every query is cold (the paper's
            // TS-retrieval measurement is cold per request)
            hsm.purge_staged(&format!("obj{i}"));
        }
    }
    (
        total_s / QUERIES_PER_POINT as f64,
        total_bytes / QUERIES_PER_POINT as u64,
    )
}

fn run_heaven(selectivity: f64, seed: u64, registry: &MetricsRegistry) -> (f64, u64, usize) {
    let domains = object_domains(OBJECTS);
    let mut archive = PhantomArchive::build_with_registry(
        DeviceProfile::dlt7000(),
        1,
        &domains,
        CellType::F32,
        &[128, 128, 128], // 128^3 f32 = 8 MB tiles
        256 << 20,
        ClusteringStrategy::Star(LinearOrder::Hilbert),
        registry,
    );
    let mut total_s = 0.0;
    let mut total_bytes = 0;
    let mut total_sts = 0;
    let mut qi = 0u64;
    'outer: for (i, dom) in domains.iter().enumerate() {
        for q in selectivity_queries(dom, selectivity, QUERIES_PER_POINT / OBJECTS + 1, seed + qi) {
            qi += 1;
            if qi as usize > QUERIES_PER_POINT {
                break 'outer;
            }
            let (t, b, sts) = archive.fetch_query(i, &q, true);
            total_s += t;
            total_bytes += b;
            total_sts += sts;
        }
    }
    (
        total_s / QUERIES_PER_POINT as f64,
        total_bytes / QUERIES_PER_POINT as u64,
        total_sts / QUERIES_PER_POINT,
    )
}

fn main() {
    let mut t = Table::new(
        "E4/E5: retrieval time vs selectivity, HSM file staging vs HEAVEN super-tiles\n\
         (4 x 8 GB objects, 8 MB tiles, 256 MB super-tiles, DLT7000)",
        &[
            "selectivity",
            "useful data",
            "HSM staged",
            "HSM time",
            "HEAVEN read",
            "HEAVEN STs",
            "HEAVEN time",
            "speedup",
        ],
    );
    let object_bytes: u64 = 8 << 30;
    let registry = MetricsRegistry::new();
    for &sel in &[0.001f64, 0.01, 0.05, 0.10, 0.25, 1.0] {
        let (hsm_s, hsm_bytes) = run_hsm(sel, 7, &registry);
        let (heaven_s, heaven_bytes, sts) = run_heaven(sel, 7, &registry);
        t.row(&[
            format!("{:.1}%", sel * 100.0),
            fmt_bytes((object_bytes as f64 * sel) as u64),
            fmt_bytes(hsm_bytes),
            fmt_s(hsm_s),
            fmt_bytes(heaven_bytes),
            format!("{sts}"),
            fmt_s(heaven_s),
            format!("{:.1}x", hsm_s / heaven_s),
        ]);
    }
    t.emit();
    emit_prometheus(&registry);
    println!(
        "\nShape check (paper §4.4): at the 1-10% selectivities scientists\n\
         actually use, HEAVEN is an order of magnitude faster because the HSM\n\
         must stage the full 8 GB file for every request; the two paths\n\
         converge as selectivity approaches 100%.\n"
    );
}
