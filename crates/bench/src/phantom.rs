//! Paper-scale archives with phantom payloads.
//!
//! A [`PhantomArchive`] lays out objects of arbitrary (paper-scale) size on
//! the tape simulator exactly as HEAVEN's export would — tile grids,
//! STAR/eSTAR super-tile partitions, intra-/inter-super-tile clustering,
//! media placement — but writes phantom (size-only) blocks. Access-time
//! experiments then measure real simulated costs over hundreds of
//! gigabytes without allocating host memory.

use heaven_array::{CellType, Minterval, Tile, TileId, Tiling};
use heaven_core::{
    count_exchanges, estar_partition, schedule, star_partition, ClusteringStrategy, FetchRequest,
    TileInfo,
};
use heaven_hsm::{BlockAddress, DirectStore};
use heaven_obs::{MetricsRegistry, TraceBus};
use heaven_tape::{DeviceProfile, SimClock, TapeLibrary, TapeStats, WritePayload};

/// One phantom object: geometry plus super-tile placement.
#[derive(Debug)]
pub struct PhantomObject {
    /// The object's domain.
    pub domain: Minterval,
    /// Tile geometry.
    pub tiles: Vec<TileInfo>,
    /// Super-tile groups (indices into `tiles`).
    pub groups: Vec<Vec<usize>>,
    /// Block address of each group, parallel to `groups`.
    pub addrs: Vec<BlockAddress>,
}

impl PhantomObject {
    /// Indices of groups whose members intersect `query`.
    pub fn groups_touching(&self, query: &Minterval) -> Vec<usize> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.iter().any(|&i| self.tiles[i].domain.intersects(query)))
            .map(|(gi, _)| gi)
            .collect()
    }

    /// Total object size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.tiles.iter().map(|t| t.bytes).sum()
    }
}

/// A tape archive of phantom objects.
#[derive(Debug)]
pub struct PhantomArchive {
    /// The placement-aware store over the library.
    pub store: DirectStore,
    /// The archived objects.
    pub objects: Vec<PhantomObject>,
    /// Shared metrics registry the tape library reports into.
    registry: MetricsRegistry,
}

impl PhantomArchive {
    /// Build an archive: each object in `domains` is tiled with
    /// `tile_shape`, partitioned into super-tiles of `st_target` bytes via
    /// `strategy`, and written in cluster order.
    pub fn build(
        profile: DeviceProfile,
        drives: usize,
        domains: &[Minterval],
        cell: CellType,
        tile_shape: &[u64],
        st_target: u64,
        strategy: ClusteringStrategy,
    ) -> PhantomArchive {
        Self::build_with_registry(
            profile,
            drives,
            domains,
            cell,
            tile_shape,
            st_target,
            strategy,
            &MetricsRegistry::new(),
        )
    }

    /// Like [`PhantomArchive::build`], but report into an existing shared
    /// registry, so experiments that build a fresh archive per
    /// configuration accumulate one set of metrics for the whole run.
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_registry(
        profile: DeviceProfile,
        drives: usize,
        domains: &[Minterval],
        cell: CellType,
        tile_shape: &[u64],
        st_target: u64,
        strategy: ClusteringStrategy,
        registry: &MetricsRegistry,
    ) -> PhantomArchive {
        let registry = registry.clone();
        let clock = SimClock::new();
        let mut lib = TapeLibrary::new(profile, drives, clock);
        lib.attach_obs(&registry, TraceBus::noop());
        let mut store = DirectStore::new(lib);
        let mut objects = Vec::with_capacity(domains.len());
        let mut next_tile: TileId = 1;
        for domain in domains {
            let tiling = Tiling::Regular {
                tile_shape: tile_shape.to_vec(),
            };
            let tile_domains = tiling.tile_domains(domain, cell).expect("valid tiling");
            let (grid, grid_shape) = tiling.tile_grid(domain, cell).expect("valid tiling");
            let tiles: Vec<TileInfo> = tile_domains
                .into_iter()
                .zip(grid)
                .map(|(d, gc)| {
                    let bytes = Tile::header_len(domain.dim()) as u64
                        + d.cell_count() * cell.size_bytes() as u64;
                    let info = TileInfo {
                        id: next_tile,
                        domain: d,
                        bytes,
                        grid: gc,
                    };
                    next_tile += 1;
                    info
                })
                .collect();
            let groups = match strategy {
                ClusteringStrategy::Star(order) => {
                    star_partition(&tiles, &grid_shape, st_target, order)
                }
                ClusteringStrategy::EStar(pattern) => {
                    estar_partition(&tiles, &grid_shape, st_target, pattern)
                }
            };
            let addrs: Vec<BlockAddress> = groups
                .iter()
                .map(|g| {
                    let len: u64 = g.iter().map(|&i| tiles[i].bytes).sum();
                    store
                        .append(WritePayload::Phantom(len))
                        .expect("phantom write")
                })
                .collect();
            objects.push(PhantomObject {
                domain: domain.clone(),
                tiles,
                groups,
                addrs,
            });
        }
        PhantomArchive {
            store,
            objects,
            registry,
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> SimClock {
        self.store.clock()
    }

    /// The metrics registry the tape library reports into (histograms
    /// and counters for every simulated device operation).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Tape statistics.
    pub fn stats(&self) -> TapeStats {
        self.store.stats()
    }

    /// The fetch requests a query would issue against one object.
    pub fn fetch_requests(&self, obj: usize, query: &Minterval) -> Vec<FetchRequest> {
        let o = &self.objects[obj];
        o.groups_touching(query)
            .into_iter()
            .map(|gi| FetchRequest {
                st: (obj * 1_000_000 + gi) as u64,
                addr: o.addrs[gi],
            })
            .collect()
    }

    /// Execute an explicit fetch order, returning `(elapsed simulated
    /// seconds, bytes fetched)`.
    pub fn execute_order(&mut self, order: &[FetchRequest]) -> (f64, u64) {
        let clock = self.clock();
        let t0 = clock.now_s();
        let mut bytes = 0;
        for r in order {
            self.store.read(r.addr).expect("phantom read");
            bytes += r.addr.len;
        }
        (clock.now_s() - t0, bytes)
    }

    /// Execute one query against one object: fetch all touching
    /// super-tiles (scheduled), returning `(elapsed simulated seconds,
    /// bytes fetched, super-tiles fetched)`.
    pub fn fetch_query(
        &mut self,
        obj: usize,
        query: &Minterval,
        scheduled: bool,
    ) -> (f64, u64, usize) {
        let reqs: Vec<FetchRequest> = {
            let o = &self.objects[obj];
            o.groups_touching(query)
                .into_iter()
                .map(|gi| FetchRequest {
                    st: (obj * 1_000_000 + gi) as u64,
                    addr: o.addrs[gi],
                })
                .collect()
        };
        self.execute(reqs, scheduled)
    }

    /// Execute a batch of `(object, query)` pairs as one scheduling unit.
    pub fn fetch_batch(
        &mut self,
        batch: &[(usize, Minterval)],
        scheduled: bool,
    ) -> (f64, u64, usize) {
        let mut reqs = Vec::new();
        for &(obj, ref q) in batch {
            let o = &self.objects[obj];
            for gi in o.groups_touching(q) {
                reqs.push(FetchRequest {
                    st: (obj * 1_000_000 + gi) as u64,
                    addr: o.addrs[gi],
                });
            }
        }
        self.execute(reqs, scheduled)
    }

    fn execute(&mut self, reqs: Vec<FetchRequest>, scheduled: bool) -> (f64, u64, usize) {
        let order = if scheduled {
            let mounted = self.store.library().mounted_media();
            schedule(&reqs, &mounted)
        } else {
            // deduplicate but keep request order (unscheduled baseline)
            let mut seen = std::collections::HashSet::new();
            reqs.into_iter().filter(|r| seen.insert(r.st)).collect()
        };
        let clock = self.clock();
        let t0 = clock.now_s();
        let mut bytes = 0;
        for r in &order {
            self.store.read(r.addr).expect("phantom read");
            bytes += r.addr.len;
        }
        (clock.now_s() - t0, bytes, order.len())
    }

    /// Predicted exchanges for a request order (no side effects).
    pub fn predict_exchanges(&self, reqs: &[FetchRequest], scheduled: bool) -> u64 {
        let order = if scheduled {
            schedule(reqs, &self.store.library().mounted_media())
        } else {
            reqs.to_vec()
        };
        count_exchanges(
            &order,
            self.store.library().drive_count(),
            &self.store.library().mounted_media(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heaven_array::LinearOrder;

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    fn build_small() -> PhantomArchive {
        // 2 objects of 1 GB each (f32 512^3 / 2), tiles 128^3 (8 MB),
        // super-tiles 64 MB.
        let domains = vec![
            mi(&[(0, 511), (0, 511), (0, 255)]),
            mi(&[(0, 511), (0, 511), (0, 255)]),
        ];
        PhantomArchive::build(
            DeviceProfile::ibm3590(),
            1,
            &domains,
            CellType::F32,
            &[128, 128, 128],
            64 << 20,
            ClusteringStrategy::Star(LinearOrder::Hilbert),
        )
    }

    #[test]
    fn archive_geometry_is_consistent() {
        let a = build_small();
        for o in &a.objects {
            assert_eq!(o.groups.len(), o.addrs.len());
            let grouped: usize = o.groups.iter().map(|g| g.len()).sum();
            assert_eq!(grouped, o.tiles.len());
            // 512*512*256 f32 = 256 MB... tiles clipped at 256-edge axis
            assert!(o.size_bytes() > 200 << 20);
        }
    }

    #[test]
    fn small_queries_touch_few_supertiles() {
        let mut a = build_small();
        let (t, bytes, sts) = a.fetch_query(0, &mi(&[(0, 99), (0, 99), (0, 99)]), true);
        assert!(t > 0.0);
        assert!(bytes > 0);
        assert!(sts >= 1);
        let total = a.objects[0].groups.len();
        assert!(sts < total);
    }

    #[test]
    fn scheduled_batch_is_not_slower() {
        let batch: Vec<(usize, Minterval)> = (0..6)
            .map(|i| {
                (
                    i % 2,
                    mi(&[(i as i64 * 50, i as i64 * 50 + 120), (0, 200), (0, 200)]),
                )
            })
            .collect();
        let mut a1 = build_small();
        let (t_naive, b1, _) = a1.fetch_batch(&batch, false);
        let mut a2 = build_small();
        let (t_sched, b2, _) = a2.fetch_batch(&batch, true);
        assert_eq!(b1, b2);
        assert!(t_sched <= t_naive + 1e-6, "{t_sched} vs {t_naive}");
    }
}
