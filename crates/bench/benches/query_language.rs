//! Benchmarks of the query language: lexing/parsing and end-to-end
//! execution against an in-memory array database.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heaven_array::{CellType, MDArray, Minterval, Tiling};
use heaven_arraydb::ql::{parse_query, run};
use heaven_arraydb::ArrayDb;

fn bench_parse(c: &mut Criterion) {
    let queries = [
        "select t[0:99, 10:19] from temps as t",
        "select avg_cells(t[0:99,0:99] * 2 + 1) from temps as t",
        r"select add_cells(t[0:99,0:99 \ 10:89,10:89]) from temps as t",
        "select count_cells(t[0:9,0:9 | 20:29,0:9 | 40:49,0:9] >= 273) from temps as t",
    ];
    c.bench_function("ql/parse 4 queries", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(parse_query(q).unwrap());
            }
        })
    });
}

fn bench_execute(c: &mut Criterion) {
    let mut adb = ArrayDb::for_tests();
    adb.create_collection("temps", CellType::F32, 2).unwrap();
    let dom = Minterval::new(&[(0, 255), (0, 255)]).unwrap();
    let arr = MDArray::generate(dom, CellType::F32, |p| {
        (p.coord(0) * 256 + p.coord(1)) as f64
    });
    adb.insert_object(
        "temps",
        &arr,
        Tiling::Regular {
            tile_shape: vec![64, 64],
        },
    )
    .unwrap();
    c.bench_function("ql/execute trim 64x64", |b| {
        b.iter(|| black_box(run(&mut adb, "select t[64:127, 64:127] from temps as t").unwrap()))
    });
    c.bench_function("ql/execute condenser over trim", |b| {
        b.iter(|| {
            black_box(
                run(
                    &mut adb,
                    "select avg_cells(t[0:127, 0:127]) from temps as t",
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_parse, bench_execute);
criterion_main!(benches);
