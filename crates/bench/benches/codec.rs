//! Wire-codec throughput: GiB/s per codec per data class, the fast
//! word-at-a-time RLE against the scalar baseline it replaced, and the
//! cost of the adaptive probe on incompressible payloads.
//!
//! Four payload classes cover the archive spectrum:
//!
//! * **constant** — one repeated byte (run-heavy; masks, fill regions)
//! * **classified** — blocky label runs (segmentation rasters)
//! * **ramp_i32** — smoothly increasing 4-byte cells (coordinates,
//!   timestamps; runs appear only after the byte shuffle)
//! * **random** — seeded noise (sensor data past its entropy floor;
//!   incompressible, must stay on the raw pass-through)
//!
//! Pass `--json <path>` to write machine-readable results.

use std::time::Instant;

use bytes::Bytes;
use heaven_array::codec::{self, baseline};
use heaven_array::{decode_wire, encode_wire, Codec, CodecPolicy};

/// Payload size per class: big enough for stable GiB/s, small enough
/// for a CI smoke run.
const PAYLOAD: usize = 8 << 20;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    state.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

struct Class {
    name: &'static str,
    cell_size: usize,
    data: Bytes,
}

fn classes() -> Vec<Class> {
    let constant = vec![42u8; PAYLOAD];
    let classified = {
        let mut out = Vec::with_capacity(PAYLOAD);
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        while out.len() < PAYLOAD {
            let w = xorshift(&mut s);
            let run = 1 + (w % 96) as usize;
            let label = (w >> 32) as u8;
            out.extend(std::iter::repeat_n(label, run.min(PAYLOAD - out.len())));
        }
        out
    };
    let ramp_i32 = {
        let mut out = Vec::with_capacity(PAYLOAD);
        for i in 0..(PAYLOAD / 4) as i32 {
            out.extend_from_slice(&(i / 7).to_le_bytes());
        }
        out
    };
    let random = {
        let mut out = Vec::with_capacity(PAYLOAD);
        let mut s = 0xdead_beef_cafe_f00du64;
        while out.len() < PAYLOAD {
            out.extend_from_slice(&xorshift(&mut s).to_le_bytes());
        }
        out.truncate(PAYLOAD);
        out
    };
    vec![
        Class {
            name: "constant",
            cell_size: 1,
            data: Bytes::from(constant),
        },
        Class {
            name: "classified",
            cell_size: 1,
            data: Bytes::from(classified),
        },
        Class {
            name: "ramp_i32",
            cell_size: 4,
            data: Bytes::from(ramp_i32),
        },
        Class {
            name: "random",
            cell_size: 8,
            data: Bytes::from(random),
        },
    ]
}

/// Average wall nanoseconds per call (one warm-up, then a timed loop).
fn time_ns<F: FnMut()>(mut f: F) -> u64 {
    f();
    let iters: u32 = 10;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (start.elapsed().as_nanos() / iters as u128) as u64
}

fn gib_s(bytes: usize, ns: u64) -> f64 {
    if ns == 0 {
        return f64::INFINITY;
    }
    bytes as f64 * 1e9 / ns as f64 / (1u64 << 30) as f64
}

struct CodecRow {
    codec: Codec,
    wire_len: usize,
    encode_ns: u64,
    decode_ns: u64,
}

fn bench_codec(data: &Bytes, cell_size: usize, forced: Codec) -> CodecRow {
    let policy = CodecPolicy {
        forced: Some(forced),
        ..CodecPolicy::default()
    };
    let (wire, used) = encode_wire(data, cell_size, &policy);
    let encode_ns = time_ns(|| {
        std::hint::black_box(encode_wire(data, cell_size, &policy));
    });
    let expected = data.len() as u64;
    let decode_ns = time_ns(|| {
        std::hint::black_box(decode_wire(&wire, expected).unwrap());
    });
    CodecRow {
        codec: used,
        wire_len: wire.len(),
        encode_ns,
        decode_ns,
    }
}

/// Textbook scalar RLE decode: one output byte per loop iteration, no
/// slice fills. This is the reference the "RLE decode speedup" number is
/// against; the *seed* decoder (`codec::baseline`, timed separately
/// below) already fills runs slice-at-a-time and sits close to the
/// machine's memset bandwidth on run-heavy data.
fn scalar_rle_decompress(input: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut i = 0;
    while i < input.len() {
        let tag = input[i];
        i += 1;
        if tag < 128 {
            let len = tag as usize + 1;
            if i + len > input.len() {
                return None;
            }
            for k in 0..len {
                out.push(input[i + k]);
            }
            i += len;
        } else {
            let b = *input.get(i)?;
            i += 1;
            for _ in 0..(tag as usize - 128) + 2 {
                out.push(b);
            }
        }
    }
    Some(out)
}

struct ClassResult {
    name: &'static str,
    cell_size: usize,
    baseline_encode_ns: u64,
    baseline_decode_ns: u64,
    scalar_decode_ns: u64,
    fast_encode_ns: u64,
    fast_decode_ns: u64,
    rows: Vec<CodecRow>,
    adaptive: CodecRow,
}

fn bench_class(c: &Class) -> ClassResult {
    // Seed codec and scalar reference vs the word-at-a-time RLE, over
    // bare streams (no frame) so the comparison is codec against codec.
    let legacy = baseline::rle_compress(&c.data);
    let baseline_encode_ns = time_ns(|| {
        std::hint::black_box(baseline::rle_compress(&c.data));
    });
    let baseline_decode_ns = time_ns(|| {
        std::hint::black_box(baseline::rle_decompress(&legacy).unwrap());
    });
    let scalar_decode_ns = time_ns(|| {
        std::hint::black_box(scalar_rle_decompress(&legacy).unwrap());
    });
    let fast_encode_ns = time_ns(|| {
        std::hint::black_box(codec::rle_compress(&c.data));
    });
    let fast_decode_ns = time_ns(|| {
        std::hint::black_box(codec::rle_decompress(&legacy).unwrap());
    });

    let rows = vec![
        bench_codec(&c.data, c.cell_size, Codec::Raw),
        bench_codec(&c.data, c.cell_size, Codec::Rle),
        bench_codec(&c.data, c.cell_size, Codec::ShuffleRle),
    ];
    // Adaptive: probe + selected codec, the production encode path.
    let adaptive = {
        let policy = CodecPolicy::default();
        let (wire, used) = encode_wire(&c.data, c.cell_size, &policy);
        let encode_ns = time_ns(|| {
            std::hint::black_box(encode_wire(&c.data, c.cell_size, &policy));
        });
        let expected = c.data.len() as u64;
        let decode_ns = time_ns(|| {
            std::hint::black_box(decode_wire(&wire, expected).unwrap());
        });
        CodecRow {
            codec: used,
            wire_len: wire.len(),
            encode_ns,
            decode_ns,
        }
    };
    ClassResult {
        name: c.name,
        cell_size: c.cell_size,
        baseline_encode_ns,
        baseline_decode_ns,
        scalar_decode_ns,
        fast_encode_ns,
        fast_decode_ns,
        rows,
        adaptive,
    }
}

fn main() {
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = args.next();
        }
    }

    // Memcpy reference: what a pure pass-through with one copy would cost.
    let noise = classes().pop().unwrap().data;
    let memcpy_ns = time_ns(|| {
        std::hint::black_box(noise.to_vec());
    });

    let results: Vec<ClassResult> = classes().iter().map(bench_class).collect();

    for r in &results {
        println!(
            "codec/{:<10} seed rle {:>6.2}/{:>6.2} GiB/s  scalar dec {:>6.2} GiB/s  \
             fast rle {:>6.2}/{:>6.2} GiB/s (dec {:.1}x scalar, {:.2}x seed)",
            r.name,
            gib_s(PAYLOAD, r.baseline_encode_ns),
            gib_s(PAYLOAD, r.baseline_decode_ns),
            gib_s(PAYLOAD, r.scalar_decode_ns),
            gib_s(PAYLOAD, r.fast_encode_ns),
            gib_s(PAYLOAD, r.fast_decode_ns),
            r.scalar_decode_ns as f64 / r.fast_decode_ns.max(1) as f64,
            r.baseline_decode_ns as f64 / r.fast_decode_ns.max(1) as f64,
        );
        for row in &r.rows {
            println!(
                "codec/{:<10}   forced {:<11} ratio {:>5.3}  enc {:>7.2} GiB/s  dec {:>7.2} GiB/s",
                r.name,
                row.codec.name(),
                row.wire_len as f64 / PAYLOAD as f64,
                gib_s(PAYLOAD, row.encode_ns),
                gib_s(PAYLOAD, row.decode_ns),
            );
        }
        println!(
            "codec/{:<10}   adaptive -> {:<11} ratio {:>5.3}  enc {:>7.2} GiB/s  dec {:>7.2} GiB/s",
            r.name,
            r.adaptive.codec.name(),
            r.adaptive.wire_len as f64 / PAYLOAD as f64,
            gib_s(PAYLOAD, r.adaptive.encode_ns),
            gib_s(PAYLOAD, r.adaptive.decode_ns),
        );
    }
    let random = results.iter().find(|r| r.name == "random").unwrap();
    let overhead_pct = random.adaptive.encode_ns as f64 / memcpy_ns.max(1) as f64 * 100.0;
    println!(
        "codec/adaptive probe on random: {} ns vs {} ns memcpy ({:.3}% of one copy)",
        random.adaptive.encode_ns, memcpy_ns, overhead_pct
    );

    if let Some(path) = json_path {
        let mut out = String::from("{\n  \"bench\": \"codec\",\n");
        out.push_str(&format!("  \"payload_bytes\": {PAYLOAD},\n"));
        out.push_str(
            "  \"baseline\": \"seed codec kept verbatim as codec::baseline; \
             rle_decode_speedup is vs a byte-at-a-time scalar decode, \
             seed_rle_decode_speedup vs the seed (whose run fills were \
             already slice-level, i.e. near memset bandwidth)\",\n",
        );
        out.push_str(&format!(
            "  \"memcpy_gib_s\": {:.3},\n",
            gib_s(PAYLOAD, memcpy_ns)
        ));
        out.push_str(&format!(
            "  \"adaptive_raw_overhead_vs_memcpy_pct\": {overhead_pct:.4},\n"
        ));
        out.push_str("  \"classes\": [\n");
        for (i, r) in results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"class\": \"{}\", \"cell_size\": {}, \
                 \"seed_rle_encode_gib_s\": {:.3}, \"seed_rle_decode_gib_s\": {:.3}, \
                 \"scalar_rle_decode_gib_s\": {:.3}, \
                 \"rle_encode_gib_s\": {:.3}, \"rle_decode_gib_s\": {:.3}, \
                 \"rle_encode_speedup\": {:.2}, \"rle_decode_speedup\": {:.2}, \
                 \"seed_rle_decode_speedup\": {:.2}, \"codecs\": [",
                r.name,
                r.cell_size,
                gib_s(PAYLOAD, r.baseline_encode_ns),
                gib_s(PAYLOAD, r.baseline_decode_ns),
                gib_s(PAYLOAD, r.scalar_decode_ns),
                gib_s(PAYLOAD, r.fast_encode_ns),
                gib_s(PAYLOAD, r.fast_decode_ns),
                r.baseline_encode_ns as f64 / r.fast_encode_ns.max(1) as f64,
                r.scalar_decode_ns as f64 / r.fast_decode_ns.max(1) as f64,
                r.baseline_decode_ns as f64 / r.fast_decode_ns.max(1) as f64,
            ));
            for (j, row) in r.rows.iter().chain([&r.adaptive]).enumerate() {
                out.push_str(&format!(
                    "{}{{\"mode\": \"{}\", \"codec\": \"{}\", \"ratio\": {:.4}, \
                     \"encode_gib_s\": {:.3}, \"decode_gib_s\": {:.3}}}",
                    if j == 0 { "" } else { ", " },
                    if j < 3 { "forced" } else { "adaptive" },
                    row.codec.name(),
                    row.wire_len as f64 / PAYLOAD as f64,
                    gib_s(PAYLOAD, row.encode_ns),
                    gib_s(PAYLOAD, row.decode_ns),
                ));
            }
            out.push_str(&format!(
                "]}}{}\n",
                if i + 1 < results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).unwrap();
        println!("wrote {path}");
    }
}
