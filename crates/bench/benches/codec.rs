//! Benchmarks of the tile and super-tile binary codecs — the CPU work the
//! decoupled TCT thread performs during export.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heaven_array::{CellType, MDArray, Minterval, Tile};
use heaven_core::{decode_member, encode_supertile};

fn make_tiles(n: usize, edge: i64) -> Vec<Tile> {
    (0..n)
        .map(|i| {
            let lo = i as i64 * edge;
            let dom = Minterval::new(&[(lo, lo + edge - 1), (0, edge - 1)]).unwrap();
            Tile::new(
                i as u64,
                1,
                MDArray::generate(dom, CellType::F32, |p| (p.coord(0) ^ p.coord(1)) as f64),
            )
        })
        .collect()
}

fn bench_tile_codec(c: &mut Criterion) {
    let tiles = make_tiles(1, 256); // one 256 KB tile
    let enc = tiles[0].encode();
    c.bench_function("codec/tile encode 256KB", |b| {
        b.iter(|| black_box(tiles[0].encode()))
    });
    c.bench_function("codec/tile decode 256KB", |b| {
        b.iter(|| black_box(Tile::decode(&enc).unwrap()))
    });
}

fn bench_supertile_codec(c: &mut Criterion) {
    let tiles = make_tiles(32, 128); // 32 x 64 KB = 2 MB super-tile
    c.bench_function("codec/supertile encode 32 tiles", |b| {
        b.iter(|| black_box(encode_supertile(1, 1, &tiles)))
    });
    let (payload, meta) = encode_supertile(1, 1, &tiles);
    c.bench_function("codec/supertile decode 1 member", |b| {
        b.iter(|| black_box(decode_member(&meta, &payload, 17).unwrap()))
    });
}

criterion_group!(benches, bench_tile_codec, bench_supertile_codec);
criterion_main!(benches);
