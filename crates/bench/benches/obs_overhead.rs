//! Observability overhead: wall-clock cost per query of the trace sinks.
//!
//! The same warm query loop (bracketed `begin_query`/`end_query`, so every
//! query records histograms, breakdowns, and trace spans) runs against the
//! three sink configurations:
//!
//! * **off** — `TraceConfig::off()`: spans are no-ops, only metrics
//!   update,
//! * **ring** — `TraceConfig::ring(..)`: POD records go into the
//!   preallocated seqlock ring,
//! * **ring-sample8** — ring with `sample_1_in_n = 8` head sampling,
//! * **jsonl** — `TraceConfig::jsonl(..)`: records queue in the pending
//!   ring and are serialized to a buffered file in drained batches.
//!
//! Pass `--json <path>` to write machine-readable results
//! (`BENCH_obs_overhead.json` via `scripts/bench_obs.sh`).

use std::time::Instant;

use heaven_array::{CellType, MDArray, Minterval, Point, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_core::{AccessPattern, ClusteringStrategy, ExportMode, Heaven, HeavenConfig};
use heaven_obs::TraceConfig;
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, DiskProfile, SimClock, TapeLibrary};

const QUERIES: u32 = 400;
/// Interleaved repetitions per sink; the fastest is reported. A single
/// 400-query pass lasts ~10 ms, so one sample is at the mercy of CPU
/// frequency scaling — best-of-N over interleaved rounds is stable.
const REPS: u32 = 7;

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

fn cell_value(p: &Point) -> f64 {
    ((p.coord(0) * 31) ^ p.coord(1)) as f64
}

/// A small archived object whose warm queries still cross the whole
/// retrieval path (super-tile decode + patch).
fn build(trace: TraceConfig) -> (Heaven, u64) {
    let clock = SimClock::new();
    let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("bench", CellType::I32, 2).unwrap();
    let region = mi(&[(0, 119), (0, 119)]);
    let arr = MDArray::generate(region, CellType::I32, cell_value);
    let oid = adb
        .insert_object(
            "bench",
            &arr,
            Tiling::Regular {
                tile_shape: vec![30, 30],
            },
        )
        .unwrap();
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 2, clock);
    let config = HeavenConfig {
        supertile_bytes: Some(4 * 30 * 30 * 4),
        clustering: ClusteringStrategy::EStar(AccessPattern::Uniform),
        mem_cache_bytes: 0, // keep the super-tile decode in the loop
        trace,
        ..HeavenConfig::default()
    };
    let mut heaven = Heaven::new(adb, lib, config);
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    (heaven, oid)
}

struct SinkResult {
    sink: &'static str,
    ns_per_query: u64,
    queries_per_s: f64,
}

/// Time `QUERIES` warm bracketed queries once; the first pass (untimed)
/// stages the super-tiles onto the disk cache.
fn one_pass(trace: TraceConfig) -> std::time::Duration {
    let (mut heaven, oid) = build(trace);
    let regions = [
        mi(&[(0, 59), (0, 59)]),
        mi(&[(60, 119), (0, 59)]),
        mi(&[(0, 59), (60, 119)]),
        mi(&[(60, 119), (60, 119)]),
    ];
    for r in &regions {
        heaven.fetch_region_hierarchical(oid, r).unwrap();
    }
    let start = Instant::now();
    for i in 0..QUERIES {
        let r = &regions[i as usize % regions.len()];
        heaven.begin_query("bench");
        std::hint::black_box(heaven.fetch_region_hierarchical(oid, r).unwrap());
        heaven.end_query().unwrap();
    }
    let elapsed = start.elapsed();
    heaven.trace().flush();
    elapsed
}

/// Best-of-`REPS` for one sink (the repetitions are interleaved across
/// sinks by the caller, so slow machine phases hit every sink equally).
fn finish(sink: &'static str, best: std::time::Duration) -> SinkResult {
    SinkResult {
        sink,
        ns_per_query: (best.as_nanos() / QUERIES as u128) as u64,
        queries_per_s: QUERIES as f64 / best.as_secs_f64(),
    }
}

fn main() {
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = args.next();
        }
    }

    let jsonl_path = std::env::temp_dir().join("heaven_obs_overhead_trace.jsonl");
    let sinks: [(&'static str, &dyn Fn() -> TraceConfig); 4] = [
        ("off", &TraceConfig::off),
        ("ring", &|| TraceConfig::ring(1 << 16)),
        ("ring-sample8", &|| {
            TraceConfig::ring(1 << 16).with_sample(8)
        }),
        ("jsonl", &|| TraceConfig::jsonl(jsonl_path.clone())),
    ];
    let mut best = [std::time::Duration::MAX; 4];
    for _ in 0..REPS {
        for (i, (_, mk)) in sinks.iter().enumerate() {
            best[i] = best[i].min(one_pass(mk()));
        }
    }
    let results: Vec<SinkResult> = sinks
        .iter()
        .zip(best)
        .map(|(&(name, _), b)| finish(name, b))
        .collect();
    let baseline_ns = results[0].ns_per_query.max(1);
    for r in &results {
        println!(
            "obs_overhead/{:<12} {:>9} ns/query  {:>10.0} queries/s  ({:+.1}% vs off)",
            r.sink,
            r.ns_per_query,
            r.queries_per_s,
            (r.ns_per_query as f64 / baseline_ns as f64 - 1.0) * 100.0,
        );
    }
    let _ = std::fs::remove_file(&jsonl_path);

    if let Some(path) = json_path {
        let mut out = String::from("{\n  \"bench\": \"obs_overhead\",\n");
        out.push_str(&format!("  \"queries\": {QUERIES},\n"));
        out.push_str(
            "  \"workload\": \"warm bracketed fetch_region_hierarchical over 4 regions\",\n",
        );
        out.push_str("  \"sinks\": [\n");
        for (i, r) in results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"sink\": \"{}\", \"ns_per_query\": {}, \"queries_per_s\": {:.1}, \
                 \"overhead_vs_off\": {:.4}}}{}\n",
                r.sink,
                r.ns_per_query,
                r.queries_per_s,
                r.ns_per_query as f64 / baseline_ns as f64 - 1.0,
                if i + 1 < results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).unwrap();
        println!("wrote {path}");
    }
}
