//! Observability overhead: wall-clock cost per query of the trace sinks.
//!
//! The same warm query loop (bracketed `begin_query`/`end_query`, so every
//! query records histograms, breakdowns, and trace spans) runs against the
//! three sink configurations:
//!
//! * **off** — `TraceConfig::off()`: spans are no-ops, only metrics
//!   update,
//! * **ring** — `TraceConfig::ring(..)`: POD records go into the
//!   preallocated seqlock ring,
//! * **ring-sample8** — ring with `sample_1_in_n = 8` head sampling,
//! * **jsonl** — `TraceConfig::jsonl(..)`: records queue in the pending
//!   ring and are serialized to a buffered file in drained batches.
//!
//! Pass `--json <path>` to write machine-readable results
//! (`BENCH_obs_overhead.json` via `scripts/bench_obs.sh`).

use std::time::Instant;

use heaven_array::{CellType, MDArray, Minterval, Point, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_core::{AccessPattern, ClusteringStrategy, ExportMode, Heaven, HeavenConfig};
use heaven_obs::TraceConfig;
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, DiskProfile, SimClock, TapeLibrary};

const QUERIES: u32 = 400;
/// Interleaved repetitions per sink; each sink reports its fastest pass
/// and `overhead_vs_off` is the ratio of those minima. A single
/// 400-query pass lasts ~7 ms, so on a shared single-vCPU runner any
/// one pass can eat a multi-millisecond scheduling spike — but spikes
/// only ever *inflate* a pass, so the minimum over enough repetitions
/// converges on the clean per-query cost and the ratio of minima on the
/// intrinsic sink overhead. Each system is built once and the timed
/// loops re-run against it, which makes repetitions cheap enough to take
/// many: 120 rotated rounds span several seconds of wall clock, so every
/// sink lands clean passes even through bursty neighbor load. The
/// execution order rotates each round so drift within a round doesn't
/// systematically tax whichever sink runs last.
const REPS: u32 = 120;

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

fn cell_value(p: &Point) -> f64 {
    ((p.coord(0) * 31) ^ p.coord(1)) as f64
}

/// A small archived object whose warm queries still cross the whole
/// retrieval path (super-tile decode + patch).
fn build(trace: TraceConfig) -> (Heaven, u64) {
    let clock = SimClock::new();
    let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("bench", CellType::I32, 2).unwrap();
    let region = mi(&[(0, 119), (0, 119)]);
    let arr = MDArray::generate(region, CellType::I32, cell_value);
    let oid = adb
        .insert_object(
            "bench",
            &arr,
            Tiling::Regular {
                tile_shape: vec![30, 30],
            },
        )
        .unwrap();
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 2, clock);
    let config = HeavenConfig {
        supertile_bytes: Some(4 * 30 * 30 * 4),
        clustering: ClusteringStrategy::EStar(AccessPattern::Uniform),
        mem_cache_bytes: 0, // keep the super-tile decode in the loop
        trace,
        ..HeavenConfig::default()
    };
    let mut heaven = Heaven::new(adb, lib, config);
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    (heaven, oid)
}

struct SinkResult {
    sink: &'static str,
    ns_per_query: u64,
    queries_per_s: f64,
    overhead_vs_off: f64,
}

fn regions() -> [Minterval; 4] {
    [
        mi(&[(0, 59), (0, 59)]),
        mi(&[(60, 119), (0, 59)]),
        mi(&[(0, 59), (60, 119)]),
        mi(&[(60, 119), (60, 119)]),
    ]
}

/// Time `QUERIES` warm bracketed queries against a prebuilt system. The
/// ring wraps and the JSONL file grows across passes, so repeated passes
/// measure the steady-state sink cost, not first-touch setup.
fn one_pass(heaven: &mut Heaven, oid: u64) -> std::time::Duration {
    let regions = regions();
    let start = Instant::now();
    for i in 0..QUERIES {
        let r = &regions[i as usize % regions.len()];
        heaven.begin_query("bench");
        std::hint::black_box(heaven.fetch_region_hierarchical(oid, r).unwrap());
        heaven.end_query().unwrap();
    }
    start.elapsed()
}

fn finish(sink: &'static str, best: std::time::Duration, overhead_vs_off: f64) -> SinkResult {
    SinkResult {
        sink,
        ns_per_query: (best.as_nanos() / QUERIES as u128) as u64,
        queries_per_s: QUERIES as f64 / best.as_secs_f64(),
        overhead_vs_off,
    }
}

fn main() {
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = args.next();
        }
    }

    let jsonl_path = std::env::temp_dir().join("heaven_obs_overhead_trace.jsonl");
    let sinks: [(&'static str, &dyn Fn() -> TraceConfig); 4] = [
        ("off", &TraceConfig::off),
        ("ring", &|| TraceConfig::ring(1 << 13)),
        ("ring-sample8", &|| {
            TraceConfig::ring(1 << 13).with_sample(8)
        }),
        ("jsonl", &|| TraceConfig::jsonl(jsonl_path.clone())),
    ];
    // Build each sink's system once; warm the disk cache with one
    // untimed pass over every region.
    let mut systems: Vec<(Heaven, u64)> = sinks.iter().map(|(_, mk)| build(mk())).collect();
    for (heaven, oid) in &mut systems {
        for r in &regions() {
            heaven.fetch_region_hierarchical(*oid, r).unwrap();
        }
    }
    let mut rounds: Vec<Vec<std::time::Duration>> = Vec::with_capacity(REPS as usize);
    for rep in 0..REPS as usize {
        let mut round = vec![std::time::Duration::ZERO; sinks.len()];
        for pos in 0..sinks.len() {
            let i = (pos + rep) % sinks.len();
            let (heaven, oid) = &mut systems[i];
            round[i] = one_pass(heaven, *oid);
        }
        rounds.push(round);
    }
    for (heaven, _) in &systems {
        heaven.trace().flush();
    }
    let best_off = rounds.iter().map(|r| r[0]).min().unwrap();
    let results: Vec<SinkResult> = sinks
        .iter()
        .enumerate()
        .map(|(i, &(name, _))| {
            let best = rounds.iter().map(|r| r[i]).min().unwrap();
            let overhead = best.as_secs_f64() / best_off.as_secs_f64() - 1.0;
            finish(name, best, overhead)
        })
        .collect();
    for r in &results {
        println!(
            "obs_overhead/{:<12} {:>9} ns/query  {:>10.0} queries/s  ({:+.1}% vs off)",
            r.sink,
            r.ns_per_query,
            r.queries_per_s,
            r.overhead_vs_off * 100.0,
        );
    }
    let _ = std::fs::remove_file(&jsonl_path);

    if let Some(path) = json_path {
        let mut out = String::from("{\n  \"bench\": \"obs_overhead\",\n");
        out.push_str(&format!("  \"queries\": {QUERIES},\n"));
        out.push_str(
            "  \"workload\": \"warm bracketed fetch_region_hierarchical over 4 regions\",\n",
        );
        out.push_str("  \"sinks\": [\n");
        for (i, r) in results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"sink\": \"{}\", \"ns_per_query\": {}, \"queries_per_s\": {:.1}, \
                 \"overhead_vs_off\": {:.4}}}{}\n",
                r.sink,
                r.ns_per_query,
                r.queries_per_s,
                r.overhead_vs_off,
                if i + 1 < results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).unwrap();
        println!("wrote {path}");
    }
}
