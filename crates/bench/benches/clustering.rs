//! Benchmarks of super-tile formation: STAR and eSTAR over realistic tile
//! counts (an 8 GB object has ~1k tiles; a 256 GB object ~32k).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heaven_array::{CellType, LinearOrder, Minterval, Tiling};
use heaven_core::{estar_partition, star_partition, AccessPattern, TileInfo};

fn tile_set(edge: u64) -> (Vec<TileInfo>, Vec<u64>) {
    let hi = (edge * 64 - 1) as i64;
    let dom = Minterval::new(&[(0, hi), (0, hi), (0, hi)]).unwrap();
    let tiling = Tiling::Regular {
        tile_shape: vec![64, 64, 64],
    };
    let domains = tiling.tile_domains(&dom, CellType::F32).unwrap();
    let (grid, shape) = tiling.tile_grid(&dom, CellType::F32).unwrap();
    let tiles = domains
        .into_iter()
        .zip(grid)
        .enumerate()
        .map(|(i, (domain, gc))| TileInfo {
            id: i as u64,
            domain,
            bytes: 1 << 20,
            grid: gc,
        })
        .collect();
    (tiles, shape)
}

fn bench_star(c: &mut Criterion) {
    for edge in [8u64, 16, 32] {
        let (tiles, shape) = tile_set(edge);
        let n = tiles.len();
        c.bench_function(&format!("star/hilbert {n} tiles"), |b| {
            b.iter(|| {
                black_box(star_partition(
                    &tiles,
                    &shape,
                    64 << 20,
                    LinearOrder::Hilbert,
                ))
            })
        });
    }
}

fn bench_estar(c: &mut Criterion) {
    let (tiles, shape) = tile_set(16);
    for pattern in [
        AccessPattern::Uniform,
        AccessPattern::Directional { axis: 2 },
        AccessPattern::SliceDominant { axis: 0 },
    ] {
        c.bench_function(&format!("estar/{pattern:?} 4096 tiles"), |b| {
            b.iter(|| black_box(estar_partition(&tiles, &shape, 64 << 20, pattern)))
        });
    }
}

criterion_group!(benches, bench_star, bench_estar);
criterion_main!(benches);
