//! Microbenchmarks of the array substrate: tiling, linearization orders,
//! trims and condensers. These are the CPU-side hot paths of export and
//! retrieval (the device costs are simulated and excluded here).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heaven_array::{trim, CellType, Condenser, LinearOrder, MDArray, Minterval, Tiling};

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

fn bench_tiling(c: &mut Criterion) {
    let dom = mi(&[(0, 1023), (0, 1023), (0, 1023)]);
    let tiling = Tiling::Regular {
        tile_shape: vec![64, 64, 64],
    };
    c.bench_function("tiling/tile_domains 4096 tiles", |b| {
        b.iter(|| {
            let d = tiling.tile_domains(black_box(&dom), CellType::F32).unwrap();
            black_box(d.len())
        })
    });
}

fn bench_orders(c: &mut Criterion) {
    let shape = [16u64, 16, 16];
    let coords: Vec<Vec<u64>> = {
        let grid = Minterval::with_shape(&shape).unwrap();
        grid.iter_points()
            .map(|p| p.0.iter().map(|&c| c as u64).collect())
            .collect()
    };
    for order in [
        LinearOrder::RowMajor,
        LinearOrder::ZOrder,
        LinearOrder::Hilbert,
    ] {
        c.bench_function(&format!("order/sort 4096 cells {order:?}"), |b| {
            b.iter(|| black_box(order.sort_indices(&coords, &shape)))
        });
    }
}

fn bench_trim_and_condense(c: &mut Criterion) {
    let arr = MDArray::generate(mi(&[(0, 127), (0, 127), (0, 15)]), CellType::F32, |p| {
        (p.coord(0) + p.coord(1) + p.coord(2)) as f64
    });
    c.bench_function("ops/trim 64x64x8 of 128x128x16", |b| {
        b.iter(|| black_box(trim(&arr, &mi(&[(32, 95), (32, 95), (4, 11)])).unwrap()))
    });
    c.bench_function("ops/avg_cells 128x128x16", |b| {
        b.iter(|| black_box(Condenser::Avg.eval(&arr).unwrap()))
    });
}

fn bench_patch(c: &mut Criterion) {
    let src = MDArray::generate(mi(&[(0, 63), (0, 63)]), CellType::F64, |_| 1.0);
    c.bench_function("ops/patch 64x64 into 256x256", |b| {
        b.iter(|| {
            let mut dst = MDArray::zeros(mi(&[(0, 255), (0, 255)]), CellType::F64);
            dst.patch(black_box(&src)).unwrap();
            black_box(dst.size_bytes())
        })
    });
}

criterion_group!(
    benches,
    bench_tiling,
    bench_orders,
    bench_trim_and_condense,
    bench_patch
);
criterion_main!(benches);
