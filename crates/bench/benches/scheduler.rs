//! Benchmarks of the query scheduler over realistic batch sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heaven_core::{count_exchanges, schedule, seek_distance, FetchRequest};
use heaven_hsm::BlockAddress;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn requests(n: usize, media: u64, seed: u64) -> Vec<FetchRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| FetchRequest {
            st: i as u64,
            addr: BlockAddress {
                medium: rng.gen_range(0..media),
                offset: rng.gen_range(0..30u64 << 30),
                len: 256 << 20,
            },
        })
        .collect()
}

fn bench_schedule(c: &mut Criterion) {
    for (n, media) in [(64usize, 8u64), (512, 16), (4096, 64)] {
        let reqs = requests(n, media, 3);
        c.bench_function(&format!("schedule/{n} reqs {media} media"), |b| {
            b.iter(|| black_box(schedule(&reqs, &[0, 1])))
        });
    }
}

fn bench_metrics(c: &mut Criterion) {
    let reqs = requests(1024, 16, 5);
    let order = schedule(&reqs, &[]);
    c.bench_function("schedule/count_exchanges 1024", |b| {
        b.iter(|| black_box(count_exchanges(&order, 2, &[])))
    });
    c.bench_function("schedule/seek_distance 1024", |b| {
        b.iter(|| black_box(seek_distance(&order)))
    });
}

criterion_group!(benches, bench_schedule, bench_metrics);
criterion_main!(benches);
