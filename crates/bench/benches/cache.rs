//! Benchmarks of the cache hierarchy: super-tile cache under each eviction
//! policy, and the memory tile cache.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heaven_array::{CellType, MDArray, Minterval, Tile};
use heaven_core::{EvictionPolicy, SuperTileCache, TileCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_st_cache(c: &mut Criterion) {
    for policy in EvictionPolicy::all() {
        c.bench_function(&format!("st_cache/{} mixed ops", policy.name()), |b| {
            b.iter(|| {
                let cache = SuperTileCache::new(100 << 20, policy, None);
                let mut rng = StdRng::seed_from_u64(1);
                let mut hits = 0u32;
                for i in 0..2000u64 {
                    let st = rng.gen_range(0..200);
                    if cache.get(st).is_some() {
                        hits += 1;
                    } else {
                        cache.put_phantom(st, 1 << 20, (i % 90) as f64);
                    }
                }
                black_box(hits)
            })
        });
    }
}

fn bench_tile_cache(c: &mut Criterion) {
    let dom = Minterval::new(&[(0, 31), (0, 31)]).unwrap();
    let tiles: Vec<Tile> = (0..256u64)
        .map(|i| Tile::new(i, 1, MDArray::zeros(dom.clone(), CellType::F32)))
        .collect();
    c.bench_function("tile_cache/lru mixed ops", |b| {
        b.iter(|| {
            let cache = TileCache::new(128 * 4096);
            let mut rng = StdRng::seed_from_u64(2);
            let mut hits = 0u32;
            for _ in 0..2000 {
                let id = rng.gen_range(0..256u64);
                if cache.get(id).is_some() {
                    hits += 1;
                } else {
                    cache.put(tiles[id as usize].clone());
                }
            }
            black_box(hits)
        })
    });
}

criterion_group!(benches, bench_st_cache, bench_tile_cache);
criterion_main!(benches);
