//! Materialization throughput: how fast a region is assembled from a
//! staged super-tile, cold vs warm, for 1/4/16-tile super-tiles.
//!
//! Two materialization modes are measured over identical payloads:
//!
//! * **owned** — the pre-zero-copy path: the cache hands out a full
//!   payload copy (`to_vec`), every member tile is decoded into its own
//!   allocation, then patched into the result array (three passes over
//!   the data).
//! * **zerocopy** — the current path: the cache hit is a refcount bump,
//!   member decode borrows sub-ranges of the staged buffer, and the only
//!   copy left is the patch into the result array (one pass).
//!
//! On top of the micro pair, the end-to-end `fetch_region_hierarchical`
//! is timed cold (caches cleared each iteration) and warm. Pass
//! `--json <path>` to write machine-readable results.

use std::time::Instant;

use heaven_array::{CellType, MDArray, Minterval, Point, Tile, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_core::{
    decode_member, encode_supertile, AccessPattern, ClusteringStrategy, ExportMode, Heaven,
    HeavenConfig,
};
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, DiskProfile, SimClock, TapeLibrary};

/// Edge of one square tile in cells (256x256 f32 = 256 KiB payload).
const TILE_EDGE: i64 = 256;

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

fn cell_value(p: &Point) -> f64 {
    ((p.coord(0) ^ p.coord(1)) & 0xFFFF) as f64
}

/// A `grid x grid` arrangement of TILE_EDGE-square f32 tiles.
fn make_tiles(grid: i64) -> Vec<Tile> {
    let mut tiles = Vec::new();
    for gy in 0..grid {
        for gx in 0..grid {
            let dom = mi(&[
                (gx * TILE_EDGE, (gx + 1) * TILE_EDGE - 1),
                (gy * TILE_EDGE, (gy + 1) * TILE_EDGE - 1),
            ]);
            tiles.push(Tile::new(
                (gy * grid + gx) as u64 + 1,
                1,
                MDArray::generate(dom, CellType::F32, cell_value),
            ));
        }
    }
    tiles
}

/// Average wall nanoseconds per call (one warm-up, then a timed loop).
fn time_ns<F: FnMut()>(mut f: F) -> u64 {
    f();
    let iters: u32 = 20;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (start.elapsed().as_nanos() / iters as u128) as u64
}

struct ConfigResult {
    tiles: usize,
    payload_bytes: usize,
    owned_ns: u64,
    zerocopy_ns: u64,
    cold_fetch_ns: u64,
    warm_fetch_ns: u64,
}

fn bench_config(grid: i64) -> ConfigResult {
    let tiles = make_tiles(grid);
    let n_tiles = tiles.len();
    let region = mi(&[(0, grid * TILE_EDGE - 1), (0, grid * TILE_EDGE - 1)]);
    let (payload, meta) = encode_supertile(1, 1, &tiles);
    let payload_bytes = payload.len();

    // Pre-change materialization: payload copy out of the cache, owned
    // decode per member, patch into the result.
    let owned_ns = time_ns(|| {
        let staged = payload.to_vec();
        let mut out = MDArray::zeros(region.clone(), CellType::F32);
        for m in &meta.members {
            let start = m.offset as usize;
            let (t, _) = Tile::decode(&staged[start..start + m.len as usize]).unwrap();
            out.patch(&t.data).unwrap();
        }
        std::hint::black_box(out);
    });

    // Current materialization: refcounted cache hit, shared member decode,
    // one patch.
    let zerocopy_ns = time_ns(|| {
        let staged = payload.clone();
        let mut out = MDArray::zeros(region.clone(), CellType::F32);
        for m in &meta.members {
            let t = decode_member(&meta, &staged, m.tile).unwrap();
            out.patch(&t.data).unwrap();
        }
        std::hint::black_box(out);
    });

    // End-to-end fetch through the full hierarchy (simulated devices: the
    // wall clock sees only the real CPU work of the retrieval path).
    let clock = SimClock::new();
    let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("bench", CellType::F32, 2).unwrap();
    let arr = MDArray::generate(region.clone(), CellType::F32, cell_value);
    let oid = adb
        .insert_object(
            "bench",
            &arr,
            Tiling::Regular {
                tile_shape: vec![TILE_EDGE as u64, TILE_EDGE as u64],
            },
        )
        .unwrap();
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 2, clock);
    let tile_encoded = (Tile::header_len(2) + (TILE_EDGE * TILE_EDGE) as usize * 4) as u64;
    let config = HeavenConfig {
        supertile_bytes: Some(n_tiles as u64 * tile_encoded),
        clustering: ClusteringStrategy::EStar(AccessPattern::Uniform),
        mem_cache_bytes: 0, // warm fetches exercise the super-tile decode
        ..HeavenConfig::default()
    };
    let mut heaven = Heaven::new(adb, lib, config);
    let report = heaven.export_object(oid, ExportMode::Tct).unwrap();
    assert_eq!(report.supertiles, 1, "expected a single super-tile");

    let cold_fetch_ns = time_ns(|| {
        heaven.clear_caches();
        std::hint::black_box(heaven.fetch_region_hierarchical(oid, &region).unwrap());
    });
    heaven.fetch_region_hierarchical(oid, &region).unwrap();
    let warm_fetch_ns = time_ns(|| {
        std::hint::black_box(heaven.fetch_region_hierarchical(oid, &region).unwrap());
    });

    ConfigResult {
        tiles: n_tiles,
        payload_bytes,
        owned_ns,
        zerocopy_ns,
        cold_fetch_ns,
        warm_fetch_ns,
    }
}

fn mbps(bytes: usize, ns: u64) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    bytes as f64 * 1e9 / ns as f64 / (1 << 20) as f64
}

fn main() {
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = args.next();
        }
    }

    let mut results = Vec::new();
    for grid in [1i64, 2, 4] {
        let r = bench_config(grid);
        println!(
            "materialize/{:>2} tiles ({:>8} B): owned {:>9} ns  zerocopy {:>9} ns  ({:.2}x)  \
             cold fetch {:>9} ns  warm fetch {:>9} ns ({:.1} MiB/s warm)",
            r.tiles,
            r.payload_bytes,
            r.owned_ns,
            r.zerocopy_ns,
            r.owned_ns as f64 / r.zerocopy_ns.max(1) as f64,
            r.cold_fetch_ns,
            r.warm_fetch_ns,
            mbps(r.payload_bytes, r.warm_fetch_ns),
        );
        results.push(r);
    }

    if let Some(path) = json_path {
        let mut out = String::from("{\n  \"bench\": \"materialize\",\n");
        out.push_str(
            "  \"baseline\": \"owned: pre-zero-copy deep-copy path (cache clone + owned decode), emulated in-binary\",\n",
        );
        out.push_str("  \"configs\": [\n");
        for (i, r) in results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"tiles_per_supertile\": {}, \"payload_bytes\": {}, \
                 \"owned_materialize_ns\": {}, \"zerocopy_materialize_ns\": {}, \
                 \"materialize_speedup\": {:.3}, \"cold_fetch_ns\": {}, \"warm_fetch_ns\": {}, \
                 \"warm_fetch_mib_per_s\": {:.1}, \"warm_fetch_speedup_vs_owned\": {:.3}}}{}\n",
                r.tiles,
                r.payload_bytes,
                r.owned_ns,
                r.zerocopy_ns,
                r.owned_ns as f64 / r.zerocopy_ns.max(1) as f64,
                r.cold_fetch_ns,
                r.warm_fetch_ns,
                mbps(r.payload_bytes, r.warm_fetch_ns),
                r.owned_ns as f64 / r.warm_fetch_ns.max(1) as f64,
                if i + 1 < results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).unwrap();
        println!("wrote {path}");
    }
}
