//! Multi-session concurrency: warm-query scaling across session counts
//! and cross-session tape batching vs per-session FIFO staging.
//!
//! Throughput is measured in **simulated seconds** (the shared
//! [`SimClock`]), not host wall-clock: each session charges its disk-cache
//! reads to a private clock lane and the epoch ends at the slowest lane,
//! so N sessions that overlap perfectly finish the same query count in
//! ~1/N the simulated time. This keeps the benchmark deterministic and
//! meaningful on any host core count.
//!
//! * **warm** — one archived object staged onto the disk cache; `QUERIES`
//!   tile queries dealt round-robin (`session_streams`) across 1, 4 and
//!   16 sessions; reports simulated queries/s per session count and the
//!   16-over-1 speedup.
//! * **cold** — 4 objects on 4 media, 1 drive, 4 sessions stepping
//!   through the objects in the same order (every session wants medium
//!   *j* at step *j*, each its own super-tile). Per-session FIFO staging
//!   re-mounts the medium for every session; the cross-session batcher
//!   merges the four requests per step into one scheduled sweep. Reports
//!   media exchanges for both modes.
//!
//! Pass `--json <path>` to write machine-readable results
//! (`BENCH_concurrency.json` via `scripts/bench_concurrency.sh`).

use std::sync::Barrier;
use std::time::{Duration, Instant};

use heaven_array::{CellType, MDArray, Minterval, Point, Tile, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_core::{ExportMode, Heaven, HeavenConfig, Session};
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, DiskProfile, SimClock, TapeLibrary};
use heaven_workload::session_streams;

/// Edge of one square tile in cells.
const TILE_EDGE: i64 = 32;
/// Tiles per axis of every object (GRID^2 tiles, each its own super-tile).
const GRID: i64 = 8;
/// Warm queries in total, dealt across the sessions.
const QUERIES: usize = 128;
/// Session counts swept in the warm phase.
const WORKERS: [usize; 3] = [1, 4, 16];

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

/// The region of tile index `t` (0..GRID*GRID) of any object.
fn tile_region(t: i64) -> Minterval {
    let (gx, gy) = (t % GRID, t / GRID);
    mi(&[
        (gx * TILE_EDGE, (gx + 1) * TILE_EDGE - 1),
        (gy * TILE_EDGE, (gy + 1) * TILE_EDGE - 1),
    ])
}

/// Build `objects` archived objects, each GRID x GRID tiles with one
/// super-tile per tile, each object on its own medium.
fn build(objects: usize, drives: usize, batching: bool) -> (Heaven, Vec<u64>) {
    let clock = SimClock::new();
    let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("bench", CellType::F32, 2).unwrap();
    let dom = mi(&[(0, GRID * TILE_EDGE - 1), (0, GRID * TILE_EDGE - 1)]);
    let mut oids = Vec::new();
    for o in 0..objects {
        let arr = MDArray::generate(dom.clone(), CellType::F32, |p: &Point| {
            (o as i64 * 1_000_000 + p.coord(0) * 997 + p.coord(1)) as f64
        });
        oids.push(
            adb.insert_object(
                "bench",
                &arr,
                Tiling::Regular {
                    tile_shape: vec![TILE_EDGE as u64, TILE_EDGE as u64],
                },
            )
            .unwrap(),
        );
    }
    let tile_encoded = (Tile::header_len(2) + (TILE_EDGE * TILE_EDGE) as usize * 4) as u64;
    let config = HeavenConfig {
        supertile_bytes: Some(tile_encoded),
        mem_cache_bytes: 0, // every warm query exercises the striped st-cache
        medium_per_object: true,
        cache_shards: 16,
        cross_session_batching: batching,
        ..HeavenConfig::default()
    };
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), drives, clock);
    let mut heaven = Heaven::new(adb, lib, config);
    for &oid in &oids {
        heaven.export_object(oid, ExportMode::Tct).unwrap();
    }
    (heaven, oids)
}

struct WarmResult {
    workers: usize,
    sim_elapsed_s: f64,
    sim_queries_per_s: f64,
    host_ms: f64,
}

/// Run the warm workload with `workers` concurrent sessions and report
/// simulated throughput.
fn warm_pass(workers: usize) -> WarmResult {
    let (heaven, oids) = build(1, 2, true);
    let heaven = heaven.into_concurrent();
    let oid = oids[0];
    // Stage every super-tile onto the disk cache (cold, shared clock).
    heaven
        .session()
        .fetch_region(
            oid,
            &mi(&[(0, GRID * TILE_EDGE - 1), (0, GRID * TILE_EDGE - 1)]),
        )
        .unwrap();
    let queries: Vec<Minterval> = (0..QUERIES)
        .map(|q| tile_region((q as i64 * 7) % (GRID * GRID)))
        .collect();
    let streams = session_streams(&queries, workers);
    // Fork every lane at t0, before any session runs (a later fork would
    // start from a shared clock already advanced by a finished peer).
    let sessions: Vec<Session> = streams.iter().map(|_| heaven.session()).collect();
    let t0 = heaven.clock().now_s();
    let host = Instant::now();
    std::thread::scope(|s| {
        for (session, stream) in sessions.into_iter().zip(&streams) {
            s.spawn(move || {
                for region in stream {
                    std::hint::black_box(session.fetch_region(oid, region).unwrap());
                }
            });
        }
    });
    let host_ms = host.elapsed().as_secs_f64() * 1e3;
    let sim_elapsed_s = heaven.clock().now_s() - t0;
    WarmResult {
        workers,
        sim_elapsed_s,
        sim_queries_per_s: QUERIES as f64 / sim_elapsed_s,
        host_ms,
    }
}

struct ColdResult {
    mode: &'static str,
    mounts: u64,
    sim_elapsed_s: f64,
}

/// Cold mixed workload: 4 sessions step through 4 single-medium objects
/// in the same order on a 1-drive library; each session touches its own
/// super-tiles. Returns the media exchanges the run needed.
fn cold_pass(batching: bool) -> ColdResult {
    let objects = 4usize;
    let workers = 4usize;
    let steps = 8usize;
    let (heaven, oids) = build(objects, 1, batching);
    let mounts_before = heaven.tape_stats().mounts;
    let mut heaven = heaven.into_concurrent();
    heaven.set_batch_window(Duration::from_millis(25));
    let heaven = heaven;
    let t0 = heaven.clock().now_s();
    let barrier = Barrier::new(workers);
    std::thread::scope(|s| {
        for w in 0..workers {
            let heaven = &heaven;
            let oids = &oids;
            let barrier = &barrier;
            s.spawn(move || {
                let session = heaven.session();
                barrier.wait();
                for j in 0..steps {
                    let region = tile_region((w * steps + j) as i64 % (GRID * GRID));
                    session.fetch_region(oids[j % oids.len()], &region).unwrap();
                }
            });
        }
    });
    ColdResult {
        mode: if batching { "batched" } else { "fifo" },
        mounts: heaven.tape_stats().mounts - mounts_before,
        sim_elapsed_s: heaven.clock().now_s() - t0,
    }
}

fn main() {
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = args.next();
        }
    }

    let warm: Vec<WarmResult> = WORKERS.iter().map(|&w| warm_pass(w)).collect();
    let speedup = warm[0].sim_elapsed_s / warm.last().unwrap().sim_elapsed_s;
    for r in &warm {
        println!(
            "concurrency/warm/{:>2} sessions  {:>8.4} sim-s  {:>9.1} sim-queries/s  ({:.1} host ms)",
            r.workers, r.sim_elapsed_s, r.sim_queries_per_s, r.host_ms
        );
    }
    println!("concurrency/warm speedup 16-over-1: {speedup:.2}x (simulated)");

    let fifo = cold_pass(false);
    let batched = cold_pass(true);
    for r in [&fifo, &batched] {
        println!(
            "concurrency/cold/{:<8} {:>3} media exchanges  {:>8.2} sim-s",
            r.mode, r.mounts, r.sim_elapsed_s
        );
    }
    println!(
        "concurrency/cold exchanges saved by batching: {} of {}",
        fifo.mounts.saturating_sub(batched.mounts),
        fifo.mounts
    );

    if let Some(path) = json_path {
        let mut out = String::from("{\n  \"bench\": \"concurrency\",\n");
        out.push_str(
            "  \"model\": \"simulated time: sessions charge disk-cache reads to private clock \
             lanes; the epoch ends at the slowest lane\",\n",
        );
        out.push_str(&format!(
            "  \"warm\": {{\n    \"queries\": {QUERIES},\n    \"sessions\": [\n"
        ));
        for (i, r) in warm.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"workers\": {}, \"sim_elapsed_s\": {:.6}, \"sim_queries_per_s\": \
                 {:.1}, \"host_ms\": {:.1}}}{}\n",
                r.workers,
                r.sim_elapsed_s,
                r.sim_queries_per_s,
                r.host_ms,
                if i + 1 < warm.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "    ],\n    \"speedup_16_over_1\": {speedup:.2}\n  }},\n"
        ));
        out.push_str(&format!(
            "  \"cold\": {{\n    \"fifo_mounts\": {},\n    \"batched_mounts\": {},\n    \
             \"exchanges_saved\": {}\n  }}\n}}\n",
            fifo.mounts,
            batched.mounts,
            fifo.mounts.saturating_sub(batched.mounts),
        ));
        std::fs::write(&path, out).unwrap();
        println!("wrote {path}");
    }
}
