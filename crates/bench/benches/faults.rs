//! Fault-load tails: the adversarial mixed ingest+query workload run
//! clean and under seeded chaos (drive failures, media errors, bit rot,
//! robot contention), with dual-copy archival and the full recovery
//! ladder on. Reports p50/p99/p99.9 simulated query latency for both
//! runs, the recovery overhead, and a byte-exact verification of every
//! query answer against the generator formula (silent corruption must
//! be zero; typed `MediaLost` losses are counted separately).
//!
//! Both runs execute the *identical* operation stream
//! ([`heaven_workload::adversarial_mix`] is seeded), so the tail
//! difference is exactly the injected faults plus their recovery cost.
//!
//! Pass `--json <path>` to write machine-readable results
//! (`BENCH_faults.json` via `scripts/bench_faults.sh`).

use heaven_array::{CellType, MDArray, Minterval, Point, Tile, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_core::{ExportMode, Heaven, HeavenConfig, HeavenError};
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, DiskProfile, FaultConfig, SimClock, TapeLibrary};
use heaven_workload::{adversarial_mix, MixedOp};

/// Edge of one square tile in cells.
const TILE_EDGE: i64 = 32;
/// Tiles per axis of every object (GRID^2 tiles, each its own super-tile).
const GRID: i64 = 4;
/// Objects archived before the stream starts.
const INITIAL_OBJECTS: usize = 4;
/// Operations in the mixed stream.
const OPS: usize = 240;
/// Every n-th operation ingests a new object.
const INGEST_EVERY: usize = 24;
/// Query box selectivity (fraction of the domain volume).
const SELECTIVITY: f64 = 0.02;
/// Workload + fault-schedule seed.
const SEED: u64 = 42;

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

fn domain() -> Minterval {
    mi(&[(0, GRID * TILE_EDGE - 1), (0, GRID * TILE_EDGE - 1)])
}

/// The generator formula of object index `o` — queries verify against it.
fn object_array(o: usize) -> MDArray {
    MDArray::generate(domain(), CellType::F32, move |p: &Point| {
        (o as i64 * 1_000_000 + p.coord(0) * 997 + p.coord(1)) as f64
    })
}

struct PassResult {
    label: &'static str,
    p50_s: f64,
    p99_s: f64,
    p999_s: f64,
    queries: u64,
    silent_corruption: u64,
    media_lost_queries: u64,
    drive_failures: u64,
    media_read_errors: u64,
    corrupted_reads: u64,
    checksum_failures: u64,
    retries: u64,
    failovers: u64,
    media_lost: u64,
}

/// Run the mixed stream once. `fault` arms the chaos plan *after* the
/// initial archive is written (exports are fault-free, like a healthy
/// archive that degrades in production).
fn run_pass(label: &'static str, fault: Option<FaultConfig>) -> PassResult {
    let clock = SimClock::new();
    let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("faults", CellType::F32, 2).unwrap();
    let tiling = Tiling::Regular {
        tile_shape: vec![TILE_EDGE as u64, TILE_EDGE as u64],
    };
    let mut oids = Vec::new();
    for o in 0..INITIAL_OBJECTS {
        oids.push(
            adb.insert_object("faults", &object_array(o), tiling.clone())
                .unwrap(),
        );
    }
    let tile_encoded = (Tile::header_len(2) + (TILE_EDGE * TILE_EDGE) as usize * 4) as u64;
    let config = HeavenConfig {
        supertile_bytes: Some(tile_encoded),
        mem_cache_bytes: 0,
        medium_per_object: true,
        dual_copy: true,
        ..HeavenConfig::default()
    };
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 2, clock);
    let mut heaven = Heaven::new(adb, lib, config);
    for &oid in &oids {
        heaven.export_object(oid, ExportMode::Tct).unwrap();
    }
    heaven.set_fault_plan(fault);

    let ops = adversarial_mix(
        &domain(),
        INITIAL_OBJECTS,
        OPS,
        INGEST_EVERY,
        SELECTIVITY,
        SEED,
    );
    let mut queries = 0u64;
    let mut silent_corruption = 0u64;
    let mut media_lost_queries = 0u64;
    for op in &ops {
        match op {
            MixedOp::Ingest => {
                let o = oids.len();
                let oid = heaven
                    .arraydb_mut()
                    .insert_object("faults", &object_array(o), tiling.clone())
                    .unwrap();
                heaven.export_object(oid, ExportMode::Tct).unwrap();
                oids.push(oid);
            }
            MixedOp::Query { object, region } => {
                queries += 1;
                match heaven.fetch_region_hierarchical(oids[*object], region) {
                    Ok(got) => {
                        let want = object_array(*object).extract(region).unwrap();
                        if got != want {
                            silent_corruption += 1;
                        }
                    }
                    Err(HeavenError::MediaLost { .. }) => media_lost_queries += 1,
                    Err(e) => panic!("untyped query failure under {label}: {e}"),
                }
            }
        }
    }

    let m = heaven.metrics();
    let hist = m.histogram("heaven.query_latency_s");
    let c = |name: &'static str| m.counter(name).get();
    PassResult {
        label,
        p50_s: hist.quantile(0.50),
        p99_s: hist.quantile(0.99),
        p999_s: hist.quantile(0.999),
        queries,
        silent_corruption,
        media_lost_queries,
        drive_failures: c("tape.drive_failures"),
        media_read_errors: c("tape.media_read_errors"),
        corrupted_reads: c("tape.corrupted_reads"),
        checksum_failures: c("hsm.checksum_failures"),
        retries: c("hsm.retries"),
        failovers: c("hsm.failovers"),
        media_lost: c("hsm.media_lost"),
    }
}

fn print_pass(r: &PassResult) {
    println!(
        "faults/{:<6} {:>4} queries  p50 {:>8.3}s  p99 {:>8.3}s  p99.9 {:>8.3}s  \
         (silent corruption {}, media lost {})",
        r.label, r.queries, r.p50_s, r.p99_s, r.p999_s, r.silent_corruption, r.media_lost_queries
    );
    println!(
        "faults/{:<6} injected: {} drive failures, {} media errors, {} corrupted reads; \
         recovered: {} retries, {} failovers, {} checksum rejects",
        r.label,
        r.drive_failures,
        r.media_read_errors,
        r.corrupted_reads,
        r.retries,
        r.failovers,
        r.checksum_failures
    );
}

fn json_pass(r: &PassResult) -> String {
    format!(
        "{{\n    \"queries\": {}, \"p50_s\": {:.6}, \"p99_s\": {:.6}, \"p999_s\": {:.6},\n    \
         \"silent_corruption\": {}, \"media_lost_queries\": {},\n    \
         \"drive_failures\": {}, \"media_read_errors\": {}, \"corrupted_reads\": {},\n    \
         \"checksum_failures\": {}, \"retries\": {}, \"failovers\": {}, \"media_lost\": {}\n  }}",
        r.queries,
        r.p50_s,
        r.p99_s,
        r.p999_s,
        r.silent_corruption,
        r.media_lost_queries,
        r.drive_failures,
        r.media_read_errors,
        r.corrupted_reads,
        r.checksum_failures,
        r.retries,
        r.failovers,
        r.media_lost
    )
}

fn main() {
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = args.next();
        }
    }

    let clean = run_pass("clean", None);
    let faulty = run_pass("faulty", Some(FaultConfig::chaos(SEED)));
    print_pass(&clean);
    print_pass(&faulty);
    let overhead_p99 = faulty.p99_s / clean.p99_s.max(1e-12);
    let overhead_p999 = faulty.p999_s / clean.p999_s.max(1e-12);
    println!(
        "faults/recovery overhead: p99 {overhead_p99:.2}x, p99.9 {overhead_p999:.2}x (simulated)"
    );

    if let Some(path) = json_path {
        let out = format!(
            "{{\n  \"bench\": \"faults\",\n  \"model\": \"adversarial mixed ingest+query stream \
             (seed {SEED}), dual-copy on; faulty run adds the seeded chaos plan on the same \
             stream\",\n  \"clean\": {},\n  \"faulty\": {},\n  \
             \"recovery_overhead_p99\": {:.4},\n  \"recovery_overhead_p999\": {:.4}\n}}\n",
            json_pass(&clean),
            json_pass(&faulty),
            overhead_p99,
            overhead_p999
        );
        std::fs::write(&path, out).unwrap();
        println!("wrote {path}");
    }
}
