//! Device profiles: the tertiary-storage cost model.
//!
//! The dissertation characterizes tertiary storage (§1.1, §2.2) by
//!
//! * media exchange time of **12–40 s** (robot unload/move/load),
//! * mean access (locate to the middle of the tape) of **27–95 s**,
//! * transfer rates only about a **factor 2** below hard disks,
//! * disks being **10³–10⁴× faster** on mean access.
//!
//! Each profile below instantiates this model for one period-accurate device
//! class; all experiment results are reported in simulated seconds computed
//! from these parameters.

/// Cost/capacity parameters of one tertiary-storage device class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// Capacity of one medium in bytes.
    pub media_capacity: u64,
    /// Robot time to exchange a medium (unload + move + load), seconds.
    pub exchange_s: f64,
    /// Drive load/thread time after insertion, seconds.
    pub load_s: f64,
    /// Constant component of a locate operation, seconds.
    pub locate_startup_s: f64,
    /// Mean access time: locate from start to the *middle* of the medium,
    /// seconds (the paper's "mittlere Zugriffszeit", 27–95 s for tape).
    pub avg_locate_s: f64,
    /// Sustained transfer rate, bytes per second.
    pub transfer_bps: f64,
    /// Full rewind time (end to start), seconds.
    pub rewind_s: f64,
    /// Per-write-request overhead: file mark + stream stop/restart,
    /// seconds. Dominant when many small blocks are written (the naive
    /// tile-at-a-time export); amortized by super-tile-sized blocks.
    pub write_sync_s: f64,
    /// True for tape (linear locate costs); false for random-access media
    /// such as magneto-optical disks.
    pub linear_seek: bool,
}

impl DeviceProfile {
    /// Time to move the head from byte `from` to byte `to` on a mounted
    /// medium.
    ///
    /// For tape the model is `startup + distance/capacity * sweep`, where
    /// `sweep` is the full start-to-end locate time (twice the mean access
    /// time, since the mean positions to the middle). Random-access media
    /// pay only the startup cost.
    pub fn locate_time_s(&self, from: u64, to: u64) -> f64 {
        if from == to {
            return 0.0;
        }
        if !self.linear_seek {
            return self.locate_startup_s;
        }
        let dist = from.abs_diff(to) as f64;
        let frac = dist / self.media_capacity as f64;
        let sweep = 2.0 * (self.avg_locate_s - self.locate_startup_s);
        self.locate_startup_s + frac * sweep
    }

    /// Time to transfer `bytes` at the sustained rate.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        bytes as f64 / self.transfer_bps
    }

    /// Time to rewind from byte position `from` to the start.
    pub fn rewind_time_s(&self, from: u64) -> f64 {
        if !self.linear_seek {
            return 0.0;
        }
        self.rewind_s * from as f64 / self.media_capacity as f64
    }

    /// Total robot + load cost of mounting a medium into an empty drive.
    pub fn mount_time_s(&self) -> f64 {
        self.exchange_s + self.load_s
    }

    /// DLT7000 tape (the drive class in FORWISS's ESTEDI test setup era):
    /// 35 GB media, mid-range locate, 5 MB/s.
    pub fn dlt7000() -> DeviceProfile {
        DeviceProfile {
            name: "DLT7000",
            media_capacity: 35 << 30,
            exchange_s: 25.0,
            load_s: 40.0,
            locate_startup_s: 3.0,
            avg_locate_s: 60.0,
            transfer_bps: 5.0 * MB,
            rewind_s: 120.0,
            write_sync_s: 3.0,
            linear_seek: true,
        }
    }

    /// IBM 3590 tape: 10 GB media, fast locate, 9 MB/s.
    pub fn ibm3590() -> DeviceProfile {
        DeviceProfile {
            name: "IBM3590",
            media_capacity: 10 << 30,
            exchange_s: 12.0,
            load_s: 17.0,
            locate_startup_s: 2.0,
            avg_locate_s: 27.0,
            transfer_bps: 9.0 * MB,
            rewind_s: 60.0,
            write_sync_s: 2.0,
            linear_seek: true,
        }
    }

    /// AIT-2 tape: 50 GB media, slow locate, 6 MB/s.
    pub fn ait2() -> DeviceProfile {
        DeviceProfile {
            name: "AIT-2",
            media_capacity: 50 << 30,
            exchange_s: 20.0,
            load_s: 25.0,
            locate_startup_s: 3.0,
            avg_locate_s: 75.0,
            transfer_bps: 6.0 * MB,
            rewind_s: 150.0,
            write_sync_s: 2.5,
            linear_seek: true,
        }
    }

    /// LTO-1 tape: 100 GB media, 15 MB/s.
    pub fn lto1() -> DeviceProfile {
        DeviceProfile {
            name: "LTO-1",
            media_capacity: 100 << 30,
            exchange_s: 16.0,
            load_s: 19.0,
            locate_startup_s: 2.5,
            avg_locate_s: 52.0,
            transfer_bps: 15.0 * MB,
            rewind_s: 98.0,
            write_sync_s: 1.5,
            linear_seek: true,
        }
    }

    /// Magneto-optical disk: 5.2 GB, random access, 4 MB/s.
    pub fn mo_disk() -> DeviceProfile {
        DeviceProfile {
            name: "MO-5.2",
            media_capacity: 52 << 27, // 5.2 GB-ish (6.5 GiB-raw scaled)
            exchange_s: 8.0,
            load_s: 4.0,
            locate_startup_s: 0.04,
            avg_locate_s: 0.04,
            transfer_bps: 4.0 * MB,
            rewind_s: 0.0,
            write_sync_s: 0.01,
            linear_seek: false,
        }
    }

    /// All built-in tertiary profiles (used by the media-characteristics
    /// table experiment, E1).
    pub fn all() -> Vec<DeviceProfile> {
        vec![
            DeviceProfile::ibm3590(),
            DeviceProfile::dlt7000(),
            DeviceProfile::ait2(),
            DeviceProfile::lto1(),
            DeviceProfile::mo_disk(),
        ]
    }
}

/// Secondary-storage (hard disk) cost parameters — the staging cache and the
/// RDBMS both sit on this. Per the paper, disks are 10³–10⁴× faster on mean
/// access than tape and about 2× faster on transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskProfile {
    /// Mean positioning time, seconds (milliseconds range).
    pub seek_s: f64,
    /// Sustained transfer rate, bytes per second.
    pub transfer_bps: f64,
}

impl DiskProfile {
    /// A period-accurate SCSI disk: 8 ms seek, 30 MB/s.
    pub fn scsi2003() -> DiskProfile {
        DiskProfile {
            seek_s: 0.008,
            transfer_bps: 30.0 * MB,
        }
    }

    /// Time to read or write `bytes` with one positioning operation.
    pub fn access_time_s(&self, bytes: u64) -> f64 {
        self.seek_s + bytes as f64 / self.transfer_bps
    }
}

const MB: f64 = 1024.0 * 1024.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_is_linear_in_distance_for_tape() {
        let p = DeviceProfile::dlt7000();
        let near = p.locate_time_s(0, 1 << 20);
        let far = p.locate_time_s(0, p.media_capacity);
        assert!(near < far);
        // full sweep = startup + 2 * (avg - startup)
        let expect = p.locate_startup_s + 2.0 * (p.avg_locate_s - p.locate_startup_s);
        assert!((far - expect).abs() < 1e-6);
        // locate to middle == avg_locate
        let mid = p.locate_time_s(0, p.media_capacity / 2);
        assert!((mid - p.avg_locate_s).abs() < 0.01);
    }

    #[test]
    fn zero_distance_locate_is_free() {
        let p = DeviceProfile::lto1();
        assert_eq!(p.locate_time_s(1234, 1234), 0.0);
    }

    #[test]
    fn random_access_media_pay_only_startup() {
        let p = DeviceProfile::mo_disk();
        let t1 = p.locate_time_s(0, 1000);
        let t2 = p.locate_time_s(0, p.media_capacity - 1);
        assert_eq!(t1, t2);
        assert_eq!(t1, p.locate_startup_s);
    }

    #[test]
    fn paper_ranges_hold() {
        for p in DeviceProfile::all() {
            if p.linear_seek {
                assert!(
                    (12.0..=40.0).contains(&p.exchange_s),
                    "{}: exchange out of paper range",
                    p.name
                );
                assert!(
                    (27.0..=95.0).contains(&p.avg_locate_s),
                    "{}: avg locate out of paper range",
                    p.name
                );
            }
        }
    }

    #[test]
    fn disk_is_orders_of_magnitude_faster_at_positioning() {
        let tape = DeviceProfile::dlt7000();
        let disk = DiskProfile::scsi2003();
        let ratio = tape.avg_locate_s / disk.seek_s;
        assert!((1e3..=1e4 * 10.0).contains(&ratio), "ratio {ratio}");
        // transfer only ~2x apart
        let tr = disk.transfer_bps / tape.transfer_bps;
        assert!(tr > 1.0 && tr < 10.0);
    }

    #[test]
    fn transfer_and_rewind_scale() {
        let p = DeviceProfile::ibm3590();
        assert!((p.transfer_time_s(9 << 20) - 1.0).abs() < 1e-9);
        assert!((p.rewind_time_s(p.media_capacity) - p.rewind_s).abs() < 1e-9);
        assert_eq!(p.rewind_time_s(0), 0.0);
    }
}
