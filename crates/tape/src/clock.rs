//! Simulated wall clock.
//!
//! All device costs in the reproduction accrue against a shared virtual
//! clock, so experiment results are *simulated seconds* — deterministic and
//! independent of the host machine. The clock advances only when a device
//! model says time passed.
//!
//! The clock is a single atomic: `advance_s` is a `fetch_add` and
//! `advance_to_s` a `fetch_max`, so any number of threads can charge
//! costs concurrently without a lock and without ever observing the
//! clock move backwards. Concurrent query sessions model *overlapping*
//! work with [`SimClock::fork`]: a fork is an independent clock lane
//! starting at the parent's current instant; a session charges its
//! private I/O to its lane and re-joins the shared timeline with
//! `advance_to_s(lane.now_s())`, which is exactly "the epoch ends when
//! the slowest overlapped lane ends".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared simulated clock with microsecond resolution.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// A new clock at t = 0.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// A new independent clock starting at `t_s`.
    pub fn at_s(t_s: f64) -> SimClock {
        let c = SimClock::new();
        c.advance_to_s(t_s);
        c
    }

    /// An independent clock starting at this clock's current instant.
    /// Advancing the fork does not move `self` (and vice versa); callers
    /// re-join with [`SimClock::advance_to_s`]. This is the basis of
    /// per-session time lanes and per-drive parallel staging windows.
    pub fn fork(&self) -> SimClock {
        SimClock {
            micros: Arc::new(AtomicU64::new(self.micros.load(Ordering::Relaxed))),
        }
    }

    /// Current simulated time in seconds.
    pub fn now_s(&self) -> f64 {
        self.micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Advance the clock by `seconds` (negative values are ignored).
    pub fn advance_s(&self, seconds: f64) {
        if seconds <= 0.0 {
            return;
        }
        self.micros
            .fetch_add((seconds * 1e6).round() as u64, Ordering::Relaxed);
    }

    /// Move the clock forward to `t_s` if it is in the future.
    pub fn advance_to_s(&self, t_s: f64) {
        let target = (t_s * 1e6).round() as u64;
        self.micros.fetch_max(target, Ordering::Relaxed);
    }

    /// Reset to t = 0 (used between experiment runs).
    pub fn reset(&self) {
        self.micros.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_s(), 0.0);
        c.advance_s(1.5);
        c.advance_s(0.25);
        assert!((c.now_s() - 1.75).abs() < 1e-9);
    }

    #[test]
    fn negative_advance_is_ignored() {
        let c = SimClock::new();
        c.advance_s(2.0);
        c.advance_s(-5.0);
        assert!((c.now_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let c = SimClock::new();
        c.advance_to_s(10.0);
        c.advance_to_s(5.0);
        assert!((c.now_s() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_s(3.0);
        assert!((b.now_s() - 3.0).abs() < 1e-9);
        b.reset();
        assert_eq!(a.now_s(), 0.0);
    }

    #[test]
    fn forks_are_independent_lanes() {
        let shared = SimClock::new();
        shared.advance_s(10.0);
        let lane_a = shared.fork();
        let lane_b = shared.fork();
        lane_a.advance_s(5.0);
        lane_b.advance_s(2.0);
        assert!(
            (shared.now_s() - 10.0).abs() < 1e-9,
            "forks never move the parent"
        );
        // Rejoin: the shared timeline ends when the slowest lane ends.
        shared.advance_to_s(lane_a.now_s());
        shared.advance_to_s(lane_b.now_s());
        assert!((shared.now_s() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_advances_are_lost_update_free() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.advance_s(0.001);
                    }
                });
            }
        });
        assert!((c.now_s() - 4.0).abs() < 1e-6);
    }
}
