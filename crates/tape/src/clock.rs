//! Simulated wall clock.
//!
//! All device costs in the reproduction accrue against a shared virtual
//! clock, so experiment results are *simulated seconds* — deterministic and
//! independent of the host machine. The clock advances only when a device
//! model says time passed.

use parking_lot::Mutex;
use std::sync::Arc;

/// A shared simulated clock with microsecond resolution.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<Mutex<u64>>,
}

impl SimClock {
    /// A new clock at t = 0.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current simulated time in seconds.
    pub fn now_s(&self) -> f64 {
        *self.micros.lock() as f64 / 1e6
    }

    /// Advance the clock by `seconds` (negative values are ignored).
    pub fn advance_s(&self, seconds: f64) {
        if seconds <= 0.0 {
            return;
        }
        let mut m = self.micros.lock();
        *m += (seconds * 1e6).round() as u64;
    }

    /// Move the clock forward to `t_s` if it is in the future.
    pub fn advance_to_s(&self, t_s: f64) {
        let mut m = self.micros.lock();
        let target = (t_s * 1e6).round() as u64;
        if target > *m {
            *m = target;
        }
    }

    /// Reset to t = 0 (used between experiment runs).
    pub fn reset(&self) {
        *self.micros.lock() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_s(), 0.0);
        c.advance_s(1.5);
        c.advance_s(0.25);
        assert!((c.now_s() - 1.75).abs() < 1e-9);
    }

    #[test]
    fn negative_advance_is_ignored() {
        let c = SimClock::new();
        c.advance_s(2.0);
        c.advance_s(-5.0);
        assert!((c.now_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let c = SimClock::new();
        c.advance_to_s(10.0);
        c.advance_to_s(5.0);
        assert!((c.now_s() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_s(3.0);
        assert!((b.now_s() - 3.0).abs() < 1e-9);
        b.reset();
        assert_eq!(a.now_s(), 0.0);
    }
}
