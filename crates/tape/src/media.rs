//! Media: the removable units (tapes, MO disks) held in library slots.
//!
//! A medium stores append-only *segments*. Each segment may carry its real
//! payload bytes, or be a *phantom* segment that records only its size —
//! phantom segments let the experiments run paper-scale volumes (hundreds of
//! gigabytes of simulated data) without allocating host memory; reads of a
//! phantom segment return zeroed buffers.

use crate::error::{Result, TapeError};
use bytes::Bytes;
use std::collections::BTreeMap;

/// Identifier of a medium within its library.
pub type MediumId = u64;

/// One stored segment.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Length in bytes.
    pub len: u64,
    /// Payload; `None` for phantom segments.
    pub data: Option<Bytes>,
}

/// A removable medium.
#[derive(Debug, Clone)]
pub struct Medium {
    /// This medium's id.
    pub id: MediumId,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Append position (= bytes used).
    write_pos: u64,
    /// Segments keyed by start offset.
    segments: BTreeMap<u64, Segment>,
}

impl Medium {
    /// A fresh, empty medium.
    pub fn new(id: MediumId, capacity: u64) -> Medium {
        Medium {
            id,
            capacity,
            write_pos: 0,
            segments: BTreeMap::new(),
        }
    }

    /// Bytes used so far.
    pub fn used(&self) -> u64 {
        self.write_pos
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.write_pos
    }

    /// Number of stored segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Append a segment with real payload; returns its start offset.
    pub fn append(&mut self, data: impl Into<Bytes>) -> Result<u64> {
        let data = data.into();
        let len = data.len() as u64;
        self.append_segment(Segment {
            len,
            data: Some(data),
        })
    }

    /// Append a phantom segment of `len` bytes; returns its start offset.
    pub fn append_phantom(&mut self, len: u64) -> Result<u64> {
        self.append_segment(Segment { len, data: None })
    }

    fn append_segment(&mut self, seg: Segment) -> Result<u64> {
        if seg.len > self.free() {
            return Err(TapeError::MediumFull {
                medium: self.id,
                need: seg.len,
                free: self.free(),
            });
        }
        let off = self.write_pos;
        self.write_pos += seg.len;
        self.segments.insert(off, seg);
        Ok(off)
    }

    /// Read `len` bytes starting at `offset`. The range must lie within a
    /// single segment (callers address whole stored objects or parts of
    /// them, never byte ranges crossing objects). For real segments the
    /// returned `Bytes` is a zero-copy slice of the stored payload; only
    /// phantom reads allocate (a zeroed buffer).
    pub fn read(&self, offset: u64, len: u64) -> Result<Bytes> {
        // Find the segment containing `offset`.
        let (seg_off, seg) =
            self.segments
                .range(..=offset)
                .next_back()
                .ok_or(TapeError::ReadUnwritten {
                    medium: self.id,
                    offset,
                    len,
                })?;
        let rel = offset - seg_off;
        if rel >= seg.len {
            return Err(TapeError::ReadUnwritten {
                medium: self.id,
                offset,
                len,
            });
        }
        if rel + len > seg.len {
            return Err(TapeError::ReadSpansSegments {
                medium: self.id,
                offset,
            });
        }
        Ok(match &seg.data {
            Some(bytes) => bytes.slice(rel as usize..(rel + len) as usize),
            None => Bytes::from(vec![0u8; len as usize]),
        })
    }

    /// Whether the byte range is stored (readable without error).
    pub fn covers(&self, offset: u64, len: u64) -> bool {
        match self.segments.range(..=offset).next_back() {
            Some((seg_off, seg)) => {
                let rel = offset - seg_off;
                rel < seg.len && rel + len <= seg.len
            }
            None => false,
        }
    }

    /// Segment boundaries `(offset, len)` in tape order — what a
    /// sequential scan over the medium's file marks would discover.
    pub fn segments(&self) -> Vec<(u64, u64)> {
        self.segments.iter().map(|(&o, s)| (o, s.len)).collect()
    }

    /// Logically erase all contents (re-label / recycle the medium).
    pub fn erase(&mut self) {
        self.segments.clear();
        self.write_pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let mut m = Medium::new(1, 1000);
        let off1 = m.append(vec![1, 2, 3, 4]).unwrap();
        let off2 = m.append(vec![9, 9]).unwrap();
        assert_eq!(off1, 0);
        assert_eq!(off2, 4);
        assert_eq!(m.read(0, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(m.read(4, 2).unwrap(), vec![9, 9]);
        assert_eq!(m.read(1, 2).unwrap(), vec![2, 3]);
        assert_eq!(m.used(), 6);
    }

    #[test]
    fn phantom_segments_read_zeros() {
        let mut m = Medium::new(1, 10_000);
        let off = m.append_phantom(5000).unwrap();
        assert_eq!(m.read(off + 100, 16).unwrap(), vec![0u8; 16]);
        assert_eq!(m.used(), 5000);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut m = Medium::new(1, 10);
        m.append(vec![0; 8]).unwrap();
        let err = m.append(vec![0; 3]).unwrap_err();
        assert!(matches!(err, TapeError::MediumFull { .. }));
        // phantom too
        assert!(m.append_phantom(3).is_err());
        assert!(m.append_phantom(2).is_ok());
    }

    #[test]
    fn reads_of_unwritten_or_spanning_ranges_fail() {
        let mut m = Medium::new(1, 1000);
        m.append(vec![1; 10]).unwrap();
        m.append(vec![2; 10]).unwrap();
        assert!(matches!(
            m.read(25, 4),
            Err(TapeError::ReadUnwritten { .. })
        ));
        assert!(matches!(
            m.read(5, 10),
            Err(TapeError::ReadSpansSegments { .. })
        ));
        assert!(m.covers(0, 10));
        assert!(!m.covers(5, 10));
        assert!(!m.covers(500, 1));
    }

    #[test]
    fn erase_recycles() {
        let mut m = Medium::new(1, 100);
        m.append(vec![1; 50]).unwrap();
        m.erase();
        assert_eq!(m.used(), 0);
        assert_eq!(m.segment_count(), 0);
        assert!(m.read(0, 1).is_err());
    }
}
