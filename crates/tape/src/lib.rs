#![warn(missing_docs)]
//! # heaven-tape — tertiary-storage simulator
//!
//! A discrete-cost simulator of robotic tape libraries (and magneto-optical
//! jukeboxes) with a calibrated cost model taken from the dissertation's
//! tertiary-storage characterization (§1.1, §2.2): media exchange 12–40 s,
//! mean locate 27–95 s, transfer about half of disk rate. All costs accrue
//! on a shared [`SimClock`], making every experiment deterministic.
//!
//! The simulator stores *real* payload bytes (for functional correctness)
//! or *phantom* sizes (for paper-scale volume sweeps without host memory).

pub mod clock;
pub mod error;
pub mod fault;
pub mod library;
pub mod media;
pub mod profile;
pub mod stats;

pub use clock::SimClock;
pub use error::{Result, TapeError};
pub use fault::{key64, FaultConfig, FaultKind, FaultPlan, FaultStats};
pub use library::{SlotConfig, TapeLibrary, WritePayload};
pub use media::{Medium, MediumId, Segment};
pub use profile::{DeviceProfile, DiskProfile};
pub use stats::TapeStats;
