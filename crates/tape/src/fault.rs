//! Deterministic, seeded fault injection for the tertiary-storage
//! simulator.
//!
//! The paper's premise (§re-import, §staging) is that tertiary media are
//! slow *and unreliable*; a perfect-world simulator cannot exercise the
//! recovery machinery built on top of it. A [`FaultPlan`] injects the
//! failure modes of a real silo — drive failures mid-transfer, media read
//! errors (bad segments), silent bit corruption, robot contention stalls,
//! and staging-disk watermark storms — at seeded, configurable rates.
//!
//! **Determinism across thread interleavings.** Fault decisions are *not*
//! drawn from a shared sequential RNG stream (concurrent sessions would
//! consume it in nondeterministic order). Each decision is a pure keyed
//! hash of `(seed, fault kind, medium, offset, attempt#)`: whether the
//! third read attempt of super-tile bytes at `(medium 4, offset 9000)`
//! fails is a function of the seed alone, no matter which session issues
//! it or when. Per-key attempt counters are the only mutable state, and
//! they advance identically in every run that performs the same set of
//! accesses — which seeded chaos tests arrange by construction.

use std::collections::HashMap;

/// The classes of injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A drive dies mid-transfer; its medium is ejected and the drive is
    /// out of service for [`FaultConfig::drive_repair_s`].
    DriveFailure,
    /// A media segment cannot be read (bad spot on the tape); the read
    /// fails after paying locate + transfer.
    MediaReadError,
    /// A read completes "successfully" but one bit of the payload is
    /// flipped — silent unless the consumer verifies checksums.
    Corruption,
    /// Another client holds the robot arm; a mount waits out the stall.
    RobotContention,
    /// A burst of foreign staging traffic fills the staging disk past the
    /// high watermark (HSM coupling only).
    StagingStorm,
}

impl FaultKind {
    fn tag(self) -> u64 {
        match self {
            FaultKind::DriveFailure => 1,
            FaultKind::MediaReadError => 2,
            FaultKind::Corruption => 3,
            FaultKind::RobotContention => 4,
            FaultKind::StagingStorm => 5,
        }
    }
}

/// Rates and magnitudes of injected faults. All rates are per-decision
/// probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the keyed-hash fault schedule.
    pub seed: u64,
    /// Probability that a read attempt kills its drive mid-transfer.
    pub drive_failure_per_read: f64,
    /// Probability that a read attempt hits a bad segment.
    pub media_read_error_per_read: f64,
    /// Probability that a read attempt silently flips one payload bit.
    pub corrupt_per_read: f64,
    /// Probability that a media exchange stalls on robot contention.
    pub robot_contention_per_mount: f64,
    /// Probability that a whole-file stage triggers a watermark storm.
    pub staging_storm_per_stage: f64,
    /// Duration of a robot contention stall, simulated seconds.
    pub robot_stall_s: f64,
    /// Time a failed drive stays out of service, simulated seconds.
    pub drive_repair_s: f64,
    /// Faults only fire at or after this simulated instant (lets a
    /// workload warm up cleanly, then degrade).
    pub active_after_s: f64,
}

impl FaultConfig {
    /// A plan that never fires (rates all zero) — useful as a base to
    /// enable one fault class at a time.
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drive_failure_per_read: 0.0,
            media_read_error_per_read: 0.0,
            corrupt_per_read: 0.0,
            robot_contention_per_mount: 0.0,
            staging_storm_per_stage: 0.0,
            robot_stall_s: 30.0,
            drive_repair_s: 120.0,
            active_after_s: 0.0,
        }
    }

    /// The default chaos mix: every fault class enabled at rates high
    /// enough that a modest workload exercises every recovery path.
    pub fn chaos(seed: u64) -> FaultConfig {
        FaultConfig {
            drive_failure_per_read: 0.04,
            media_read_error_per_read: 0.08,
            corrupt_per_read: 0.08,
            robot_contention_per_mount: 0.10,
            staging_storm_per_stage: 0.05,
            ..FaultConfig::quiet(seed)
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::quiet(0)
    }
}

/// Counters of faults injected so far (the `tape.*` fault metrics as a
/// plain struct, for tests and reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Drive failures injected.
    pub drive_failures: u64,
    /// Media read errors injected.
    pub media_read_errors: u64,
    /// Robot contention stalls injected.
    pub robot_stalls: u64,
    /// Reads whose payload was silently corrupted.
    pub corrupted_reads: u64,
}

/// A seeded fault schedule plus its per-key attempt counters.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Attempt counter per `(kind, a, b)` decision key: retries of the
    /// same access re-roll with a fresh hash.
    attempts: HashMap<(u64, u64, u64), u64>,
}

impl FaultPlan {
    /// A plan from its configuration.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            cfg,
            attempts: HashMap::new(),
        }
    }

    /// The configured rates and magnitudes.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::DriveFailure => self.cfg.drive_failure_per_read,
            FaultKind::MediaReadError => self.cfg.media_read_error_per_read,
            FaultKind::Corruption => self.cfg.corrupt_per_read,
            FaultKind::RobotContention => self.cfg.robot_contention_per_mount,
            FaultKind::StagingStorm => self.cfg.staging_storm_per_stage,
        }
    }

    /// Decide whether fault `kind` fires for decision key `(a, b)` at
    /// simulated instant `now_s`. Each call advances the key's attempt
    /// counter, so a retried access re-rolls deterministically.
    pub fn roll(&mut self, kind: FaultKind, a: u64, b: u64, now_s: f64) -> bool {
        let rate = self.rate(kind);
        if rate <= 0.0 || now_s < self.cfg.active_after_s {
            return false;
        }
        let attempt = self.next_attempt(kind, a, b);
        unit(keyed_hash(self.cfg.seed, kind.tag(), a, b, attempt)) < rate
    }

    /// Like [`FaultPlan::roll`] for [`FaultKind::Corruption`], but on a
    /// hit also returns the (unbounded) bit index to flip — the caller
    /// reduces it modulo the payload's bit length.
    pub fn roll_corrupt(&mut self, a: u64, b: u64, now_s: f64) -> Option<u64> {
        let rate = self.cfg.corrupt_per_read;
        if rate <= 0.0 || now_s < self.cfg.active_after_s {
            return None;
        }
        let attempt = self.next_attempt(FaultKind::Corruption, a, b);
        let h = keyed_hash(self.cfg.seed, FaultKind::Corruption.tag(), a, b, attempt);
        if unit(h) < rate {
            // An independent hash picks the victim bit.
            Some(mix64(h ^ 0x9e37_79b9_7f4a_7c15))
        } else {
            None
        }
    }

    fn next_attempt(&mut self, kind: FaultKind, a: u64, b: u64) -> u64 {
        let c = self.attempts.entry((kind.tag(), a, b)).or_insert(0);
        let attempt = *c;
        *c += 1;
        attempt
    }
}

/// A convenience key for string-addressed decisions (HSM file names).
pub fn key64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn keyed_hash(seed: u64, kind: u64, a: u64, b: u64, attempt: u64) -> u64 {
    let mut h = mix64(seed);
    h = mix64(h ^ kind);
    h = mix64(h ^ a);
    h = mix64(h ^ b);
    mix64(h ^ attempt)
}

/// Map a hash to a uniform float in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_per_key() {
        let cfg = FaultConfig {
            media_read_error_per_read: 0.5,
            ..FaultConfig::quiet(42)
        };
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        let seq_a: Vec<bool> = (0..64)
            .map(|i| a.roll(FaultKind::MediaReadError, i % 4, i, 0.0))
            .collect();
        let seq_b: Vec<bool> = (0..64)
            .map(|i| b.roll(FaultKind::MediaReadError, i % 4, i, 0.0))
            .collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&x| x), "rate 0.5 over 64 rolls must fire");
        assert!(!seq_a.iter().all(|&x| x));
    }

    #[test]
    fn rolls_are_interleaving_independent() {
        // The same set of (key, attempt) decisions yields the same
        // outcomes regardless of the order they are asked in.
        let cfg = FaultConfig {
            drive_failure_per_read: 0.3,
            ..FaultConfig::quiet(7)
        };
        let mut fwd = FaultPlan::new(cfg);
        let mut rev = FaultPlan::new(cfg);
        let keys: Vec<(u64, u64)> = (0..32).map(|i| (i % 3, i * 100)).collect();
        let mut out_fwd: Vec<((u64, u64), bool)> = keys
            .iter()
            .map(|&(a, b)| ((a, b), fwd.roll(FaultKind::DriveFailure, a, b, 0.0)))
            .collect();
        let mut out_rev: Vec<((u64, u64), bool)> = keys
            .iter()
            .rev()
            .map(|&(a, b)| ((a, b), rev.roll(FaultKind::DriveFailure, a, b, 0.0)))
            .collect();
        out_fwd.sort();
        out_rev.sort();
        assert_eq!(out_fwd, out_rev);
    }

    #[test]
    fn retries_reroll() {
        let cfg = FaultConfig {
            media_read_error_per_read: 0.9,
            ..FaultConfig::quiet(3)
        };
        let mut p = FaultPlan::new(cfg);
        // With rate 0.9 the same key cannot fire forever... check that
        // outcomes vary across attempts for at least one key.
        let varied = (0..16).any(|k| {
            let first = p.roll(FaultKind::MediaReadError, k, 0, 0.0);
            (0..32).any(|_| p.roll(FaultKind::MediaReadError, k, 0, 0.0) != first)
        });
        assert!(varied, "attempt counter must re-roll the hash");
    }

    #[test]
    fn different_kinds_are_independent() {
        let cfg = FaultConfig {
            drive_failure_per_read: 0.5,
            media_read_error_per_read: 0.5,
            ..FaultConfig::quiet(11)
        };
        let mut p = FaultPlan::new(cfg);
        let a: Vec<bool> = (0..64)
            .map(|i| p.roll(FaultKind::DriveFailure, 0, i, 0.0))
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|i| p.roll(FaultKind::MediaReadError, 0, i, 0.0))
            .collect();
        assert_ne!(a, b, "fault classes must not share a schedule");
    }

    #[test]
    fn activation_window_gates_faults() {
        let cfg = FaultConfig {
            media_read_error_per_read: 1.0,
            active_after_s: 100.0,
            ..FaultConfig::quiet(1)
        };
        let mut p = FaultPlan::new(cfg);
        assert!(!p.roll(FaultKind::MediaReadError, 0, 0, 99.9));
        assert!(p.roll(FaultKind::MediaReadError, 0, 0, 100.0));
    }

    #[test]
    fn zero_rates_never_fire() {
        let mut p = FaultPlan::new(FaultConfig::quiet(5));
        for i in 0..100 {
            assert!(!p.roll(FaultKind::DriveFailure, i, i, 0.0));
            assert!(p.roll_corrupt(i, i, 0.0).is_none());
        }
    }

    #[test]
    fn corrupt_roll_returns_bit_positions() {
        let cfg = FaultConfig {
            corrupt_per_read: 1.0,
            ..FaultConfig::quiet(9)
        };
        let mut p = FaultPlan::new(cfg);
        let bits: Vec<u64> = (0..8).filter_map(|i| p.roll_corrupt(0, i, 0.0)).collect();
        assert_eq!(bits.len(), 8);
        // positions are spread, not constant
        assert!(bits.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn key64_distinguishes_names() {
        assert_ne!(key64(b"file-a"), key64(b"file-b"));
        assert_eq!(key64(b"same"), key64(b"same"));
    }
}
