//! The robotic tape library: drives + slots + robot, with cost accounting.
//!
//! The library executes reads and writes against media, charging every
//! mount, locate, transfer and rewind to the shared [`SimClock`] and to its
//! [`TapeStats`]. It also exposes *estimation* methods that compute the cost
//! of an access without performing it — these feed HEAVEN's super-tile
//! sizing model and the decoupled-export pipeline model.

use crate::clock::SimClock;
use crate::error::{Result, TapeError};
use crate::fault::{FaultConfig, FaultKind, FaultPlan, FaultStats};
use crate::media::{Medium, MediumId};
use crate::profile::DeviceProfile;
use crate::stats::TapeStats;
use bytes::Bytes;
use heaven_obs::{Counter, Field, FloatCounter, Histogram, MetricsRegistry, TraceBus};
use std::collections::BTreeMap;

/// Metric handles backing [`TapeStats`]. The registry is the source of
/// truth; `TapeLibrary::stats()` reconstructs the public struct from these
/// handles, so the same counters appear in `MetricsRegistry` renderings
/// and in the legacy stats view.
#[derive(Debug, Clone)]
struct TapeMetrics {
    mounts: Counter,
    unmounts: Counter,
    locates: Counter,
    exchange_s: FloatCounter,
    locate_s: FloatCounter,
    transfer_s: FloatCounter,
    rewind_s: FloatCounter,
    bytes_read: Counter,
    bytes_written: Counter,
    shelf_fetches: Counter,
    shelf_s: FloatCounter,
    /// Injected-fault counters (see `fault::FaultPlan`).
    drive_failures: Counter,
    media_read_errors: Counter,
    robot_stalls: Counter,
    corrupted_reads: Counter,
    /// Per-operation duration distributions (simulated seconds).
    exchange_hist: Histogram,
    locate_hist: Histogram,
    transfer_hist: Histogram,
    rewind_hist: Histogram,
    shelf_hist: Histogram,
}

impl TapeMetrics {
    fn new(registry: &MetricsRegistry) -> TapeMetrics {
        TapeMetrics {
            mounts: registry.counter("tape.mounts"),
            unmounts: registry.counter("tape.unmounts"),
            locates: registry.counter("tape.locates"),
            exchange_s: registry.fcounter("tape.exchange_s"),
            locate_s: registry.fcounter("tape.locate_s"),
            transfer_s: registry.fcounter("tape.transfer_s"),
            rewind_s: registry.fcounter("tape.rewind_s"),
            bytes_read: registry.counter("tape.bytes_read"),
            bytes_written: registry.counter("tape.bytes_written"),
            shelf_fetches: registry.counter("tape.shelf_fetches"),
            shelf_s: registry.fcounter("tape.shelf_s"),
            drive_failures: registry.counter("tape.drive_failures"),
            media_read_errors: registry.counter("tape.media_read_errors"),
            robot_stalls: registry.counter("tape.robot_stalls"),
            corrupted_reads: registry.counter("tape.corrupted_reads"),
            exchange_hist: registry.histogram("tape.exchange_hist_s"),
            locate_hist: registry.histogram("tape.locate_hist_s"),
            transfer_hist: registry.histogram("tape.transfer_hist_s"),
            rewind_hist: registry.histogram("tape.rewind_hist_s"),
            shelf_hist: registry.histogram("tape.shelf_hist_s"),
        }
    }

    /// Move accumulated values into handles from `registry` (used when a
    /// library built with a private registry is attached to a shared one).
    fn rebind(&mut self, registry: &MetricsRegistry) {
        let next = TapeMetrics::new(registry);
        next.mounts.add(self.mounts.get());
        next.unmounts.add(self.unmounts.get());
        next.locates.add(self.locates.get());
        next.exchange_s.add(self.exchange_s.get());
        next.locate_s.add(self.locate_s.get());
        next.transfer_s.add(self.transfer_s.get());
        next.rewind_s.add(self.rewind_s.get());
        next.bytes_read.add(self.bytes_read.get());
        next.bytes_written.add(self.bytes_written.get());
        next.shelf_fetches.add(self.shelf_fetches.get());
        next.shelf_s.add(self.shelf_s.get());
        next.drive_failures.add(self.drive_failures.get());
        next.media_read_errors.add(self.media_read_errors.get());
        next.robot_stalls.add(self.robot_stalls.get());
        next.corrupted_reads.add(self.corrupted_reads.get());
        next.exchange_hist.merge_from(&self.exchange_hist);
        next.locate_hist.merge_from(&self.locate_hist);
        next.transfer_hist.merge_from(&self.transfer_hist);
        next.rewind_hist.merge_from(&self.rewind_hist);
        next.shelf_hist.merge_from(&self.shelf_hist);
        *self = next;
    }

    fn stats(&self) -> TapeStats {
        TapeStats {
            mounts: self.mounts.get(),
            unmounts: self.unmounts.get(),
            locates: self.locates.get(),
            exchange_s: self.exchange_s.get(),
            locate_s: self.locate_s.get(),
            transfer_s: self.transfer_s.get(),
            rewind_s: self.rewind_s.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
        }
    }
}

/// Payload of a write: real bytes or a phantom size.
#[derive(Debug, Clone)]
pub enum WritePayload {
    /// Real bytes (retrievable). Cloning is a refcount bump, so staging a
    /// payload for write never duplicates it.
    Real(Bytes),
    /// Size-only payload; reads return zeros. Lets experiments run
    /// paper-scale data volumes without host memory.
    Phantom(u64),
}

impl WritePayload {
    /// A real payload from anything convertible to [`Bytes`] (`Vec<u8>` is
    /// O(1), slices copy once).
    pub fn real(data: impl Into<Bytes>) -> WritePayload {
        WritePayload::Real(data.into())
    }

    /// Payload length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            WritePayload::Real(v) => v.len() as u64,
            WritePayload::Phantom(n) => *n,
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug, Clone)]
struct Drive {
    mounted: Option<MediumId>,
    /// Head position (byte offset) on the mounted medium.
    head_pos: u64,
    /// Logical timestamp of last use, for LRU eviction.
    last_used: u64,
    /// Simulated instant the drive comes back from repair; `0.0` means
    /// healthy. A failed drive is skipped by the mount path until then.
    failed_until_s: f64,
}

/// Slot configuration: how many media the robot can hold, and how long an
/// operator needs to fetch a shelved (offline) medium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotConfig {
    /// Number of robot-accessible slots.
    pub slots: usize,
    /// Operator time to bring a shelved medium into the library, seconds
    /// (minutes in practice — the paper's motivation for keeping archives
    /// inside automated silos).
    pub shelf_fetch_s: f64,
}

/// A robotic tape library with one device class and `n` drives. By default
/// slots are unlimited; [`TapeLibrary::set_slot_config`] enables the
/// finite-slot + shelf model.
#[derive(Debug)]
pub struct TapeLibrary {
    profile: DeviceProfile,
    clock: SimClock,
    drives: Vec<Drive>,
    media: BTreeMap<MediumId, Medium>,
    metrics: TapeMetrics,
    bus: TraceBus,
    next_medium: MediumId,
    op_counter: u64,
    slot_config: Option<SlotConfig>,
    /// Media currently shelved (outside the robot's reach).
    shelved: std::collections::BTreeSet<MediumId>,
    /// Last-use tick per in-library medium, for shelf eviction.
    media_last_used: BTreeMap<MediumId, u64>,
    /// Seeded fault schedule; `None` is a perfect world.
    fault: Option<FaultPlan>,
}

impl TapeLibrary {
    /// Create a library with `drives` drives sharing `clock`.
    pub fn new(profile: DeviceProfile, drives: usize, clock: SimClock) -> TapeLibrary {
        TapeLibrary {
            profile,
            clock,
            drives: vec![
                Drive {
                    mounted: None,
                    head_pos: 0,
                    last_used: 0,
                    failed_until_s: 0.0,
                };
                drives.max(1)
            ],
            media: BTreeMap::new(),
            metrics: TapeMetrics::new(&MetricsRegistry::new()),
            bus: TraceBus::noop(),
            next_medium: 0,
            op_counter: 0,
            slot_config: None,
            shelved: Default::default(),
            media_last_used: BTreeMap::new(),
            fault: None,
        }
    }

    /// Install (or clear) a seeded fault schedule. All subsequent reads
    /// and mounts roll against it; writes are never failed (archival is
    /// verified at export time in the layers above).
    pub fn set_fault_plan(&mut self, cfg: Option<FaultConfig>) {
        self.fault = cfg.map(FaultPlan::new);
    }

    /// Whether a fault schedule is installed.
    pub fn faults_enabled(&self) -> bool {
        self.fault.is_some()
    }

    /// Counters of faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            drive_failures: self.metrics.drive_failures.get(),
            media_read_errors: self.metrics.media_read_errors.get(),
            robot_stalls: self.metrics.robot_stalls.get(),
            corrupted_reads: self.metrics.corrupted_reads.get(),
        }
    }

    /// Roll the fault schedule on behalf of an upper layer (the HSM uses
    /// this for staging-disk watermark storms). Returns `false` when no
    /// plan is installed.
    pub fn roll_fault(&mut self, kind: FaultKind, a: u64, b: u64) -> bool {
        let now = self.clock.now_s();
        match self.fault.as_mut() {
            Some(plan) => plan.roll(kind, a, b, now),
            None => false,
        }
    }

    /// Attach the library to a shared metrics registry and trace bus.
    /// Counter values accumulated so far carry over into the registry.
    pub fn attach_obs(&mut self, registry: &MetricsRegistry, bus: TraceBus) {
        self.metrics.rebind(registry);
        self.bus = bus;
    }

    /// Enable the finite-slot model: at most `config.slots` media stay in
    /// the library; the least recently used unmounted media are moved to
    /// the shelf, and accessing a shelved medium costs an operator fetch.
    pub fn set_slot_config(&mut self, config: SlotConfig) {
        self.slot_config = Some(config);
        self.enforce_slots();
    }

    /// Whether a medium is currently shelved.
    pub fn is_shelved(&self, id: MediumId) -> bool {
        self.shelved.contains(&id)
    }

    /// Operator fetches performed so far.
    pub fn shelf_fetches(&self) -> u64 {
        self.metrics.shelf_fetches.get()
    }

    /// Seconds spent on operator fetches so far.
    pub fn shelf_wait_s(&self) -> f64 {
        self.metrics.shelf_s.get()
    }

    fn in_library_count(&self) -> usize {
        self.media.len() - self.shelved.len()
    }

    /// Move LRU unmounted media to the shelf until within the slot limit.
    fn enforce_slots(&mut self) {
        let Some(cfg) = self.slot_config else { return };
        while self.in_library_count() > cfg.slots.max(self.drives.len()) {
            let victim = self
                .media
                .keys()
                .filter(|id| !self.shelved.contains(id))
                .filter(|id| self.mounted_in(**id).is_none())
                .min_by_key(|id| self.media_last_used.get(id).copied().unwrap_or(0))
                .copied();
            match victim {
                Some(v) => {
                    self.shelved.insert(v);
                }
                None => break,
            }
        }
    }

    /// Bring a shelved medium back into the library (operator fetch).
    fn unshelve(&mut self, id: MediumId) {
        if self.shelved.remove(&id) {
            let cfg = self.slot_config.expect("shelved implies slot config");
            self.clock.advance_s(cfg.shelf_fetch_s);
            self.metrics.shelf_fetches.inc();
            self.metrics.shelf_s.add(cfg.shelf_fetch_s);
            self.metrics.shelf_hist.observe(cfg.shelf_fetch_s);
            self.bus.event(
                "tape.shelf_fetch",
                self.clock.now_s(),
                &[
                    ("medium", Field::U64(id)),
                    ("cost_s", Field::F64(cfg.shelf_fetch_s)),
                ],
            );
            self.enforce_slots();
        }
    }

    /// The device profile in use.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Accumulated statistics (a view over the metrics registry).
    pub fn stats(&self) -> TapeStats {
        self.metrics.stats()
    }

    /// Number of drives.
    pub fn drive_count(&self) -> usize {
        self.drives.len()
    }

    /// Register a fresh medium; returns its id. Under a slot limit, older
    /// unmounted media may move to the shelf to make room.
    pub fn add_medium(&mut self) -> MediumId {
        let id = self.next_medium;
        self.next_medium += 1;
        self.media
            .insert(id, Medium::new(id, self.profile.media_capacity));
        self.op_counter += 1;
        self.media_last_used.insert(id, self.op_counter);
        self.enforce_slots();
        id
    }

    /// All registered media ids.
    pub fn media_ids(&self) -> Vec<MediumId> {
        self.media.keys().copied().collect()
    }

    /// Bytes used on a medium.
    pub fn medium_used(&self, id: MediumId) -> Result<u64> {
        Ok(self.medium(id)?.used())
    }

    /// Bytes free on a medium.
    pub fn medium_free(&self, id: MediumId) -> Result<u64> {
        Ok(self.medium(id)?.free())
    }

    /// The drive a medium is currently mounted in, if any.
    pub fn mounted_in(&self, id: MediumId) -> Option<usize> {
        self.drives.iter().position(|d| d.mounted == Some(id))
    }

    /// Media currently mounted, most recently used first.
    pub fn mounted_media(&self) -> Vec<MediumId> {
        let mut v: Vec<(u64, MediumId)> = self
            .drives
            .iter()
            .filter_map(|d| d.mounted.map(|m| (d.last_used, m)))
            .collect();
        v.sort_by_key(|&(t, _)| std::cmp::Reverse(t));
        v.into_iter().map(|(_, m)| m).collect()
    }

    fn medium(&self, id: MediumId) -> Result<&Medium> {
        self.media.get(&id).ok_or(TapeError::NoSuchMedium(id))
    }

    fn medium_mut(&mut self, id: MediumId) -> Result<&mut Medium> {
        self.media.get_mut(&id).ok_or(TapeError::NoSuchMedium(id))
    }

    /// Ensure `id` is mounted; returns the drive index. Charges exchange,
    /// load and (for evictions) rewind costs.
    pub fn ensure_mounted(&mut self, id: MediumId) -> Result<usize> {
        self.medium(id)?; // existence check
        self.op_counter += 1;
        let op = self.op_counter;
        self.media_last_used.insert(id, op);
        if let Some(di) = self.mounted_in(id) {
            self.drives[di].last_used = op;
            return Ok(di);
        }
        self.unshelve(id);
        // Injected robot contention: another client holds the robot arm;
        // the exchange waits out the stall on the simulated clock.
        if let Some(plan) = self.fault.as_mut() {
            let now = self.clock.now_s();
            if plan.roll(FaultKind::RobotContention, id, 0, now) {
                let stall = plan.config().robot_stall_s;
                self.clock.advance_s(stall);
                self.metrics.robot_stalls.inc();
                self.bus.event(
                    "tape.robot_stall",
                    self.clock.now_s(),
                    &[("medium", Field::U64(id)), ("cost_s", Field::F64(stall))],
                );
            }
        }
        // Failed drives are out of service until repaired; if every drive
        // is down, wait (in simulated time) for the earliest repair.
        if self
            .drives
            .iter()
            .all(|d| d.failed_until_s > self.clock.now_s())
        {
            let repair = self
                .drives
                .iter()
                .map(|d| d.failed_until_s)
                .fold(f64::INFINITY, f64::min);
            // One microsecond of slack: the clock rounds to its microsecond
            // grid, which can land just short of `repair` and leave every
            // drive still nominally in repair.
            self.clock.advance_to_s(repair + 1e-6);
        }
        // Pick a healthy drive: empty first, else least recently used.
        let now = self.clock.now_s();
        let di = self
            .drives
            .iter()
            .position(|d| d.mounted.is_none() && d.failed_until_s <= now)
            .unwrap_or_else(|| {
                self.drives
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.failed_until_s <= now)
                    .min_by_key(|(_, d)| d.last_used)
                    .map(|(i, _)| i)
                    .expect("at least one healthy drive")
            });
        // Evict the current occupant.
        if let Some(evicted) = self.drives[di].mounted {
            let rewind = self.profile.rewind_time_s(self.drives[di].head_pos);
            self.clock.advance_s(rewind);
            self.metrics.rewind_s.add(rewind);
            self.metrics.rewind_hist.observe(rewind);
            self.metrics.unmounts.inc();
            self.bus.event(
                "tape.unmount",
                self.clock.now_s(),
                &[
                    ("medium", Field::U64(evicted)),
                    ("drive", Field::U64(di as u64)),
                    ("rewind_s", Field::F64(rewind)),
                ],
            );
        }
        // Robot exchange + drive load.
        let mount = self.profile.mount_time_s();
        self.clock.advance_s(mount);
        self.metrics.exchange_s.add(mount);
        self.metrics.exchange_hist.observe(mount);
        self.metrics.mounts.inc();
        self.bus.event(
            "tape.mount",
            self.clock.now_s(),
            &[
                ("medium", Field::U64(id)),
                ("drive", Field::U64(di as u64)),
                ("cost_s", Field::F64(mount)),
            ],
        );
        let failed_until_s = self.drives[di].failed_until_s;
        self.drives[di] = Drive {
            mounted: Some(id),
            head_pos: 0,
            last_used: op,
            failed_until_s,
        };
        Ok(di)
    }

    /// Append a payload to a medium; returns the start offset.
    pub fn write(&mut self, id: MediumId, payload: WritePayload) -> Result<u64> {
        let len = payload.len();
        let di = self.ensure_mounted(id)?;
        let write_pos = self.medium(id)?.used();
        // Locate to append position.
        let head = self.drives[di].head_pos;
        let locate = self.profile.locate_time_s(head, write_pos);
        if locate > 0.0 {
            self.metrics.locates.inc();
        }
        let transfer = self.profile.transfer_time_s(len) + self.profile.write_sync_s;
        self.clock.advance_s(locate + transfer);
        self.metrics.locate_s.add(locate);
        self.metrics.transfer_s.add(transfer);
        self.metrics.transfer_hist.observe(transfer);
        self.metrics.bytes_written.add(len);
        if locate > 0.0 {
            self.metrics.locate_hist.observe(locate);
            self.bus.event(
                "tape.locate",
                self.clock.now_s() - transfer,
                &[
                    ("medium", Field::U64(id)),
                    ("drive", Field::U64(di as u64)),
                    ("from", Field::U64(head)),
                    ("to", Field::U64(write_pos)),
                    ("cost_s", Field::F64(locate)),
                ],
            );
        }
        self.bus.event(
            "tape.transfer",
            self.clock.now_s(),
            &[
                ("medium", Field::U64(id)),
                ("drive", Field::U64(di as u64)),
                ("offset", Field::U64(write_pos)),
                ("bytes", Field::U64(len)),
                ("dir", Field::StaticStr("write")),
                ("cost_s", Field::F64(transfer)),
            ],
        );
        let off = match payload {
            WritePayload::Real(data) => self.medium_mut(id)?.append(data)?,
            WritePayload::Phantom(n) => self.medium_mut(id)?.append_phantom(n)?,
        };
        self.drives[di].head_pos = off + len;
        Ok(off)
    }

    /// Read `len` bytes at `offset` from a medium. The returned `Bytes`
    /// aliases the stored segment — the simulated transfer is charged to
    /// the clock, but no host-memory copy happens.
    pub fn read(&mut self, id: MediumId, offset: u64, len: u64) -> Result<Bytes> {
        let di = self.ensure_mounted(id)?;
        // Roll the fault schedule for this read attempt. The roll order
        // short-circuits (a drive failure pre-empts a media error), but
        // each class keeps its own per-(medium, offset) attempt counter,
        // so the outcome sequence is deterministic per access regardless
        // of thread interleaving.
        enum Injected {
            None,
            DriveFail,
            MediaErr,
            Corrupt(u64),
        }
        let injected = match self.fault.as_mut() {
            Some(plan) => {
                let now = self.clock.now_s();
                if plan.roll(FaultKind::DriveFailure, id, offset, now) {
                    Injected::DriveFail
                } else if plan.roll(FaultKind::MediaReadError, id, offset, now) {
                    Injected::MediaErr
                } else if let Some(bit) = plan.roll_corrupt(id, offset, now) {
                    Injected::Corrupt(bit)
                } else {
                    Injected::None
                }
            }
            None => Injected::None,
        };
        match injected {
            Injected::DriveFail => {
                // The drive dies halfway through the transfer: charge the
                // locate plus half the transfer, eject the medium, and
                // take the drive out of service for the repair window.
                let head = self.drives[di].head_pos;
                let locate = self.profile.locate_time_s(head, offset);
                let partial = self.profile.transfer_time_s(len) * 0.5;
                self.clock.advance_s(locate + partial);
                self.metrics.locate_s.add(locate);
                self.metrics.transfer_s.add(partial);
                let repair = self
                    .fault
                    .as_ref()
                    .map(|p| p.config().drive_repair_s)
                    .unwrap_or(0.0);
                let now = self.clock.now_s();
                let last_used = self.drives[di].last_used;
                self.drives[di] = Drive {
                    mounted: None,
                    head_pos: 0,
                    last_used,
                    failed_until_s: now + repair,
                };
                self.metrics.drive_failures.inc();
                self.bus.event(
                    "tape.drive_failure",
                    now,
                    &[
                        ("drive", Field::U64(di as u64)),
                        ("medium", Field::U64(id)),
                        ("offset", Field::U64(offset)),
                        ("repair_s", Field::F64(repair)),
                    ],
                );
                return Err(TapeError::DriveFailed {
                    drive: di as u64,
                    medium: id,
                });
            }
            Injected::MediaErr => {
                // A bad segment: discovered after the locate and a full
                // (failed) transfer pass; the head stays at the segment.
                let head = self.drives[di].head_pos;
                let locate = self.profile.locate_time_s(head, offset);
                let transfer = self.profile.transfer_time_s(len);
                self.clock.advance_s(locate + transfer);
                self.metrics.locate_s.add(locate);
                self.metrics.transfer_s.add(transfer);
                self.drives[di].head_pos = offset;
                self.metrics.media_read_errors.inc();
                self.bus.event(
                    "tape.media_read_error",
                    self.clock.now_s(),
                    &[("medium", Field::U64(id)), ("offset", Field::U64(offset))],
                );
                return Err(TapeError::MediaReadError { medium: id, offset });
            }
            _ => {}
        }
        let head = self.drives[di].head_pos;
        let locate = self.profile.locate_time_s(head, offset);
        if locate > 0.0 {
            self.metrics.locates.inc();
        }
        let transfer = self.profile.transfer_time_s(len);
        self.clock.advance_s(locate + transfer);
        self.metrics.locate_s.add(locate);
        self.metrics.transfer_s.add(transfer);
        self.metrics.transfer_hist.observe(transfer);
        self.metrics.bytes_read.add(len);
        if locate > 0.0 {
            self.metrics.locate_hist.observe(locate);
            self.bus.event(
                "tape.locate",
                self.clock.now_s() - transfer,
                &[
                    ("medium", Field::U64(id)),
                    ("drive", Field::U64(di as u64)),
                    ("from", Field::U64(head)),
                    ("to", Field::U64(offset)),
                    ("cost_s", Field::F64(locate)),
                ],
            );
        }
        self.bus.event(
            "tape.transfer",
            self.clock.now_s(),
            &[
                ("medium", Field::U64(id)),
                ("drive", Field::U64(di as u64)),
                ("offset", Field::U64(offset)),
                ("bytes", Field::U64(len)),
                ("dir", Field::StaticStr("read")),
                ("cost_s", Field::F64(transfer)),
            ],
        );
        let data = self.medium(id)?.read(offset, len)?;
        self.drives[di].head_pos = offset + len;
        if let Injected::Corrupt(bit) = injected {
            // Silent corruption: one bit of the payload flips. The copy
            // is deliberate — the stored segment stays pristine, only
            // this read observes the flip (a dirty head, a bad cable).
            if !data.is_empty() {
                let mut buf = data.to_vec();
                let b = (bit as usize) % (buf.len() * 8);
                buf[b / 8] ^= 1 << (b % 8);
                self.metrics.corrupted_reads.inc();
                self.bus.event(
                    "tape.corrupt",
                    self.clock.now_s(),
                    &[
                        ("medium", Field::U64(id)),
                        ("offset", Field::U64(offset)),
                        ("bit", Field::U64(b as u64)),
                    ],
                );
                return Ok(Bytes::from(buf));
            }
        }
        Ok(data)
    }

    /// Segment boundaries of a medium, in tape order (offset, len).
    pub fn medium_segments(&self, id: MediumId) -> Result<Vec<(u64, u64)>> {
        Ok(self.medium(id)?.segments())
    }

    /// Whether a byte range on a medium holds stored data.
    pub fn covers(&self, id: MediumId, offset: u64, len: u64) -> Result<bool> {
        Ok(self.medium(id)?.covers(offset, len))
    }

    /// Erase a medium (recycle). The medium must exist; if mounted, the
    /// head returns to position 0.
    pub fn erase_medium(&mut self, id: MediumId) -> Result<()> {
        self.medium_mut(id)?.erase();
        if let Some(di) = self.mounted_in(id) {
            self.drives[di].head_pos = 0;
        }
        Ok(())
    }

    /// Run `f` against a *detached* clock forked at the current instant
    /// and return `(result, elapsed_s)`. Every cost `f` charges inside
    /// the library (mounts, locates, transfers, rewinds) accrues on the
    /// fork — and is trace-stamped with fork time — while the shared
    /// clock does not move. This models drives working in parallel:
    /// execute each drive's fetch group detached from the same start
    /// instant, then advance the shared clock by the *longest* group, so
    /// per-drive busy windows overlap in the trace exactly as parallel
    /// hardware would.
    pub fn run_detached<R>(&mut self, f: impl FnOnce(&mut TapeLibrary) -> R) -> (R, f64) {
        let shared = self.clock.clone();
        let fork = shared.fork();
        let start = fork.now_s();
        self.clock = fork.clone();
        let r = f(self);
        self.clock = shared;
        (r, fork.now_s() - start)
    }

    // -- estimation (no side effects) --------------------------------------

    /// Estimated cost of reading `(offset, len)` from `id` given the current
    /// drive state: mount cost if unmounted, locate from the drive head (or
    /// 0 after mount), plus transfer.
    pub fn estimate_read_s(&self, id: MediumId, offset: u64, len: u64) -> f64 {
        let (mount, head) = match self.mounted_in(id) {
            Some(di) => (0.0, self.drives[di].head_pos),
            None => {
                // May also need to evict: approximate with full mount cost.
                (self.profile.mount_time_s(), 0)
            }
        };
        mount + self.profile.locate_time_s(head, offset) + self.profile.transfer_time_s(len)
    }

    /// Estimated cost of appending `len` bytes to `id`.
    pub fn estimate_write_s(&self, id: MediumId, len: u64) -> f64 {
        let write_pos = self.media.get(&id).map(|m| m.used()).unwrap_or(0);
        self.estimate_read_s(id, write_pos, 0)
            + self.profile.transfer_time_s(len)
            + self.profile.write_sync_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(drives: usize) -> TapeLibrary {
        TapeLibrary::new(DeviceProfile::ibm3590(), drives, SimClock::new())
    }

    #[test]
    fn write_read_roundtrip_with_costs() {
        let mut l = lib(1);
        let m = l.add_medium();
        let off = l.write(m, WritePayload::real(vec![7u8; 1024])).unwrap();
        assert_eq!(off, 0);
        let t_after_write = l.clock().now_s();
        assert!(t_after_write > 0.0, "mount+transfer must cost time");
        let data = l.read(m, 0, 1024).unwrap();
        assert_eq!(data, vec![7u8; 1024]);
        // read required a locate back to 0
        assert!(l.stats().locate_s > 0.0);
        assert_eq!(l.stats().bytes_read, 1024);
        assert_eq!(l.stats().mounts, 1);
    }

    #[test]
    fn sequential_reads_avoid_locates() {
        let mut l = lib(1);
        let m = l.add_medium();
        l.write(m, WritePayload::Phantom(1 << 20)).unwrap();
        l.write(m, WritePayload::Phantom(1 << 20)).unwrap();
        // Position head at 0 by reading the first byte range.
        l.read(m, 0, 1 << 20).unwrap();
        let locates_before = l.stats().locates;
        // Next segment starts exactly at the head: no locate.
        l.read(m, 1 << 20, 1 << 20).unwrap();
        assert_eq!(l.stats().locates, locates_before);
    }

    #[test]
    fn media_exchange_on_single_drive() {
        let mut l = lib(1);
        let m1 = l.add_medium();
        let m2 = l.add_medium();
        l.write(m1, WritePayload::Phantom(100)).unwrap();
        l.write(m2, WritePayload::Phantom(100)).unwrap();
        assert_eq!(l.stats().mounts, 2);
        assert_eq!(l.stats().unmounts, 1);
        // Alternating access thrashes the single drive.
        l.read(m1, 0, 100).unwrap();
        l.read(m2, 0, 100).unwrap();
        assert_eq!(l.stats().mounts, 4);
    }

    #[test]
    fn two_drives_avoid_thrashing() {
        let mut l = lib(2);
        let m1 = l.add_medium();
        let m2 = l.add_medium();
        l.write(m1, WritePayload::Phantom(100)).unwrap();
        l.write(m2, WritePayload::Phantom(100)).unwrap();
        l.read(m1, 0, 100).unwrap();
        l.read(m2, 0, 100).unwrap();
        l.read(m1, 0, 100).unwrap();
        assert_eq!(l.stats().mounts, 2, "both media stay mounted");
    }

    #[test]
    fn lru_eviction_picks_least_recent() {
        let mut l = lib(2);
        let m1 = l.add_medium();
        let m2 = l.add_medium();
        let m3 = l.add_medium();
        l.write(m1, WritePayload::Phantom(10)).unwrap();
        l.write(m2, WritePayload::Phantom(10)).unwrap();
        l.read(m1, 0, 10).unwrap(); // m1 most recent
        l.write(m3, WritePayload::Phantom(10)).unwrap(); // evicts m2
        assert!(l.mounted_in(m1).is_some());
        assert!(l.mounted_in(m2).is_none());
        assert!(l.mounted_in(m3).is_some());
    }

    #[test]
    fn unknown_medium_is_error() {
        let mut l = lib(1);
        assert!(matches!(l.read(99, 0, 1), Err(TapeError::NoSuchMedium(99))));
        assert!(l.write(99, WritePayload::Phantom(1)).is_err());
    }

    #[test]
    fn capacity_error_propagates() {
        let mut l = TapeLibrary::new(
            DeviceProfile {
                media_capacity: 1000,
                ..DeviceProfile::ibm3590()
            },
            1,
            SimClock::new(),
        );
        let m = l.add_medium();
        assert!(l.write(m, WritePayload::Phantom(900)).is_ok());
        assert!(matches!(
            l.write(m, WritePayload::Phantom(200)),
            Err(TapeError::MediumFull { .. })
        ));
    }

    #[test]
    fn estimates_match_actuals_for_cold_read() {
        let mut l = lib(1);
        let m = l.add_medium();
        l.write(m, WritePayload::Phantom(10 << 20)).unwrap();
        // Force unmount by mounting another medium.
        let m2 = l.add_medium();
        l.write(m2, WritePayload::Phantom(10)).unwrap();
        let est = l.estimate_read_s(m, 0, 10 << 20);
        let before = l.clock().now_s();
        l.read(m, 0, 10 << 20).unwrap();
        let actual = l.clock().now_s() - before;
        // actual includes the rewind of the evicted medium; estimate is a
        // lower bound within one rewind.
        assert!(actual >= est - 1e-4, "actual {actual} < est {est}");
        assert!(actual - est < l.profile().rewind_s + 1e-4);
    }

    #[test]
    fn slot_limit_shelves_lru_media() {
        let mut l = lib(1);
        let m1 = l.add_medium();
        let m2 = l.add_medium();
        let m3 = l.add_medium();
        l.write(m1, WritePayload::Phantom(10)).unwrap();
        l.write(m2, WritePayload::Phantom(10)).unwrap();
        l.write(m3, WritePayload::Phantom(10)).unwrap();
        l.set_slot_config(SlotConfig {
            slots: 2,
            shelf_fetch_s: 300.0,
        });
        // m3 is mounted; one of m1/m2 is shelved (m1 is LRU)
        assert!(l.is_shelved(m1));
        assert!(!l.is_shelved(m3));
        // accessing the shelved medium costs the operator fetch
        let t0 = l.clock().now_s();
        l.read(m1, 0, 10).unwrap();
        assert!(l.clock().now_s() - t0 >= 300.0);
        assert_eq!(l.shelf_fetches(), 1);
        assert!(!l.is_shelved(m1));
        // bringing m1 in pushed another medium out
        assert_eq!(l.media_ids().len(), 3);
        assert!(l.is_shelved(m2) || l.is_shelved(m3));
    }

    #[test]
    fn unlimited_slots_never_shelve() {
        let mut l = lib(1);
        for _ in 0..10 {
            let m = l.add_medium();
            l.write(m, WritePayload::Phantom(1)).unwrap();
        }
        assert_eq!(l.shelf_fetches(), 0);
        assert!(l.media_ids().iter().all(|&m| !l.is_shelved(m)));
    }

    #[test]
    fn mounted_media_are_never_shelved() {
        let mut l = lib(2);
        let m1 = l.add_medium();
        let m2 = l.add_medium();
        let _ = l.add_medium();
        l.write(m1, WritePayload::Phantom(1)).unwrap();
        l.write(m2, WritePayload::Phantom(1)).unwrap();
        l.set_slot_config(SlotConfig {
            slots: 1, // fewer slots than drives: drives win
            shelf_fetch_s: 60.0,
        });
        assert!(!l.is_shelved(m1));
        assert!(!l.is_shelved(m2));
    }

    #[test]
    fn attach_obs_carries_counters_and_emits_events() {
        let mut l = lib(1);
        let m1 = l.add_medium();
        l.write(m1, WritePayload::Phantom(100)).unwrap();
        let mounts_before = l.stats().mounts;
        assert_eq!(mounts_before, 1);

        let registry = MetricsRegistry::new();
        let bus = TraceBus::ring(64);
        l.attach_obs(&registry, bus.clone());
        // prior counts carried into the shared registry
        assert_eq!(registry.counter("tape.mounts").get(), mounts_before);

        let m2 = l.add_medium();
        l.write(m2, WritePayload::Phantom(100)).unwrap(); // unmount m1, mount m2
        l.read(m2, 0, 100).unwrap(); // locate back + transfer
        assert_eq!(registry.counter("tape.mounts").get(), 2);
        assert_eq!(l.stats().mounts, 2, "stats view reads the registry");

        let names: Vec<&str> = bus.records().iter().map(|r| r.name).collect();
        assert!(names.contains(&"tape.unmount"));
        assert!(names.contains(&"tape.mount"));
        assert!(names.contains(&"tape.locate"));
        assert!(names.contains(&"tape.transfer"));
    }

    #[test]
    fn run_detached_charges_fork_not_shared_clock() {
        let mut l = lib(2);
        let m1 = l.add_medium();
        let m2 = l.add_medium();
        l.write(m1, WritePayload::Phantom(5 << 20)).unwrap();
        l.write(m2, WritePayload::Phantom(5 << 20)).unwrap();
        let t0 = l.clock().now_s();
        let (res, dt) = l.run_detached(|lib| lib.read(m1, 0, 5 << 20));
        res.unwrap();
        assert!(dt > 0.0, "detached work still costs time on the fork");
        assert!(
            (l.clock().now_s() - t0).abs() < 1e-9,
            "shared clock must not move during detached execution"
        );
        // The caller decides how the window lands on the shared timeline.
        l.clock().advance_to_s(t0 + dt);
        assert!((l.clock().now_s() - (t0 + dt)).abs() < 1e-9);
        // Stats accrued normally.
        assert_eq!(l.stats().bytes_read, 5 << 20);
    }

    #[test]
    fn drive_failure_ejects_and_repairs() {
        let mut l = lib(1);
        l.set_fault_plan(Some(FaultConfig {
            drive_failure_per_read: 1.0,
            drive_repair_s: 120.0,
            ..FaultConfig::quiet(1)
        }));
        let m = l.add_medium();
        l.write(m, WritePayload::real(vec![5u8; 1024])).unwrap();
        let err = l.read(m, 0, 1024).unwrap_err();
        assert!(matches!(err, TapeError::DriveFailed { medium, .. } if medium == m));
        assert!(err.is_transient());
        assert_eq!(l.fault_stats().drive_failures, 1);
        assert!(l.mounted_in(m).is_none(), "medium ejected on failure");
        // The single drive is down: the next mount waits out the repair
        // window on the simulated clock, then the read is re-rolled.
        l.set_fault_plan(Some(FaultConfig::quiet(1))); // stop further faults
        let t0 = l.clock().now_s();
        let data = l.read(m, 0, 1024).unwrap();
        assert_eq!(data, vec![5u8; 1024]);
        assert!(
            l.clock().now_s() - t0 >= 120.0,
            "mount must wait for drive repair"
        );
    }

    #[test]
    fn failed_drive_is_skipped_when_another_is_healthy() {
        let mut l = lib(2);
        l.set_fault_plan(Some(FaultConfig {
            drive_failure_per_read: 1.0,
            drive_repair_s: 1000.0,
            ..FaultConfig::quiet(2)
        }));
        let m = l.add_medium();
        l.write(m, WritePayload::Phantom(100)).unwrap();
        assert!(l.read(m, 0, 100).is_err());
        l.set_fault_plan(Some(FaultConfig::quiet(2)));
        let t0 = l.clock().now_s();
        l.read(m, 0, 100).unwrap();
        // Failover to the second (healthy) drive: only a mount, no
        // 1000-second repair wait.
        assert!(l.clock().now_s() - t0 < 1000.0);
    }

    #[test]
    fn media_read_error_keeps_drive_alive() {
        let mut l = lib(1);
        l.set_fault_plan(Some(FaultConfig {
            media_read_error_per_read: 1.0,
            ..FaultConfig::quiet(3)
        }));
        let m = l.add_medium();
        l.write(m, WritePayload::Phantom(100)).unwrap();
        let err = l.read(m, 0, 100).unwrap_err();
        assert!(matches!(err, TapeError::MediaReadError { .. }));
        assert!(err.is_transient());
        assert_eq!(l.fault_stats().media_read_errors, 1);
        assert!(l.mounted_in(m).is_some(), "medium stays mounted");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut l = lib(1);
        l.set_fault_plan(Some(FaultConfig {
            corrupt_per_read: 1.0,
            ..FaultConfig::quiet(4)
        }));
        let m = l.add_medium();
        let payload = vec![0xAAu8; 256];
        l.write(m, WritePayload::real(payload.clone())).unwrap();
        let data = l.read(m, 0, 256).unwrap();
        let flipped: u32 = data
            .iter()
            .zip(&payload)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit must flip");
        assert_eq!(l.fault_stats().corrupted_reads, 1);
        // The stored segment itself is pristine.
        l.set_fault_plan(None);
        assert_eq!(l.read(m, 0, 256).unwrap(), payload);
    }

    #[test]
    fn robot_stall_charges_simulated_time() {
        let mut l = lib(1);
        let m = l.add_medium();
        l.write(m, WritePayload::Phantom(10)).unwrap();
        let m2 = l.add_medium();
        l.write(m2, WritePayload::Phantom(10)).unwrap(); // m mounted out
        l.set_fault_plan(Some(FaultConfig {
            robot_contention_per_mount: 1.0,
            robot_stall_s: 30.0,
            ..FaultConfig::quiet(5)
        }));
        let t0 = l.clock().now_s();
        l.read(m, 0, 10).unwrap(); // forces a mount → stall
        assert!(l.clock().now_s() - t0 >= 30.0);
        assert_eq!(l.fault_stats().robot_stalls, 1);
    }

    #[test]
    fn same_seed_injects_identical_faults() {
        let run = |seed: u64| -> (Vec<bool>, FaultStats) {
            let mut l = lib(1);
            l.set_fault_plan(Some(FaultConfig::chaos(seed)));
            let m = l.add_medium();
            for _ in 0..8 {
                l.write(m, WritePayload::Phantom(1 << 16)).unwrap();
            }
            let outcomes = (0..8)
                .flat_map(|i| (0..4).map(move |_| i))
                .map(|i| l.read(m, i * (1 << 16), 1 << 16).is_ok())
                .collect();
            (outcomes, l.fault_stats())
        };
        let (a, sa) = run(77);
        let (b, sb) = run(77);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, sc) = run(78);
        assert!(a != c || sa != sc, "different seeds should differ");
    }

    #[test]
    fn erase_resets_medium() {
        let mut l = lib(1);
        let m = l.add_medium();
        l.write(m, WritePayload::real(vec![1; 10])).unwrap();
        l.erase_medium(m).unwrap();
        assert_eq!(l.medium_used(m).unwrap(), 0);
        assert!(l.read(m, 0, 1).is_err());
    }
}
