//! Error type for the tertiary-storage simulator.

use std::fmt;

/// Errors raised by the tape library simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // struct-variant fields are self-describing
pub enum TapeError {
    /// Unknown medium id.
    NoSuchMedium(u64),
    /// The medium has no room for the requested write.
    MediumFull { medium: u64, need: u64, free: u64 },
    /// A read touched bytes never written.
    ReadUnwritten { medium: u64, offset: u64, len: u64 },
    /// A read crossed a segment boundary.
    ReadSpansSegments { medium: u64, offset: u64 },
    /// The library has no drives.
    NoDrives,
    /// Attempt to register more media than the library has slots.
    NoFreeSlots,
    /// A drive failed mid-transfer (injected fault); the medium was
    /// ejected and the drive is out of service until repaired.
    DriveFailed { drive: u64, medium: u64 },
    /// A media segment could not be read (injected bad-segment fault).
    MediaReadError { medium: u64, offset: u64 },
}

impl TapeError {
    /// Whether the error is transient: a retry (possibly on another
    /// drive) or the other archive copy may still succeed. Structural
    /// errors (unknown medium, unwritten bytes, full medium) are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            TapeError::DriveFailed { .. } | TapeError::MediaReadError { .. }
        )
    }
}

impl fmt::Display for TapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TapeError::NoSuchMedium(id) => write!(f, "no such medium {id}"),
            TapeError::MediumFull { medium, need, free } => {
                write!(f, "medium {medium} full: need {need} bytes, {free} free")
            }
            TapeError::ReadUnwritten {
                medium,
                offset,
                len,
            } => write!(
                f,
                "read of unwritten bytes on medium {medium} at {offset}+{len}"
            ),
            TapeError::ReadSpansSegments { medium, offset } => write!(
                f,
                "read spans segment boundary on medium {medium} at {offset}"
            ),
            TapeError::NoDrives => write!(f, "library has no drives"),
            TapeError::NoFreeSlots => write!(f, "library has no free slots"),
            TapeError::DriveFailed { drive, medium } => {
                write!(
                    f,
                    "drive {drive} failed mid-transfer reading medium {medium}"
                )
            }
            TapeError::MediaReadError { medium, offset } => {
                write!(
                    f,
                    "unreadable segment on medium {medium} at offset {offset}"
                )
            }
        }
    }
}

impl std::error::Error for TapeError {}

/// Result alias for the simulator.
pub type Result<T> = std::result::Result<T, TapeError>;
