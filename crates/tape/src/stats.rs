//! Access statistics collected by the library simulator.

use std::fmt;

/// Counters accumulated across all library operations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TapeStats {
    /// Media mounted into a drive (includes the implied robot exchange).
    pub mounts: u64,
    /// Media unmounted from a drive.
    pub unmounts: u64,
    /// Locate operations performed.
    pub locates: u64,
    /// Seconds spent exchanging/loading media.
    pub exchange_s: f64,
    /// Seconds spent locating.
    pub locate_s: f64,
    /// Seconds spent transferring data.
    pub transfer_s: f64,
    /// Seconds spent rewinding.
    pub rewind_s: f64,
    /// Bytes read from media.
    pub bytes_read: u64,
    /// Bytes written to media.
    pub bytes_written: u64,
}

impl TapeStats {
    /// Total device time accounted.
    pub fn total_s(&self) -> f64 {
        self.exchange_s + self.locate_s + self.transfer_s + self.rewind_s
    }

    /// Difference of two snapshots (`self` minus `earlier`). Underflow-safe:
    /// counters saturate at zero and second counters clamp to `>= 0.0`, so
    /// comparing snapshots taken around a reset (or passed in the wrong
    /// order) yields zeros instead of wrapping.
    pub fn since(&self, earlier: &TapeStats) -> TapeStats {
        TapeStats {
            mounts: self.mounts.saturating_sub(earlier.mounts),
            unmounts: self.unmounts.saturating_sub(earlier.unmounts),
            locates: self.locates.saturating_sub(earlier.locates),
            exchange_s: (self.exchange_s - earlier.exchange_s).max(0.0),
            locate_s: (self.locate_s - earlier.locate_s).max(0.0),
            transfer_s: (self.transfer_s - earlier.transfer_s).max(0.0),
            rewind_s: (self.rewind_s - earlier.rewind_s).max(0.0),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
        }
    }
}

impl fmt::Display for TapeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mounts={} unmounts={} locates={} exchange={:.1}s locate={:.1}s transfer={:.1}s rewind={:.1}s read={}MB written={}MB",
            self.mounts,
            self.unmounts,
            self.locates,
            self.exchange_s,
            self.locate_s,
            self.transfer_s,
            self.rewind_s,
            self.bytes_read >> 20,
            self.bytes_written >> 20,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_diffs() {
        let a = TapeStats {
            mounts: 3,
            unmounts: 2,
            locates: 5,
            exchange_s: 75.0,
            locate_s: 100.0,
            transfer_s: 20.0,
            rewind_s: 5.0,
            bytes_read: 1 << 20,
            bytes_written: 2 << 20,
        };
        assert!((a.total_s() - 200.0).abs() < 1e-9);
        let b = TapeStats {
            mounts: 5,
            unmounts: 4,
            locates: 9,
            exchange_s: 100.0,
            locate_s: 120.0,
            transfer_s: 30.0,
            rewind_s: 6.0,
            bytes_read: 3 << 20,
            bytes_written: 2 << 20,
        };
        let d = b.since(&a);
        assert_eq!(d.mounts, 2);
        assert_eq!(d.unmounts, 2);
        assert_eq!(d.locates, 4);
        assert!((d.exchange_s - 25.0).abs() < 1e-9);
        assert_eq!(d.bytes_read, 2 << 20);
        assert_eq!(d.bytes_written, 0);
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        let small = TapeStats {
            mounts: 1,
            exchange_s: 10.0,
            ..TapeStats::default()
        };
        let big = TapeStats {
            mounts: 5,
            exchange_s: 50.0,
            ..TapeStats::default()
        };
        let d = small.since(&big); // wrong order: clamps, no panic/wrap
        assert_eq!(d.mounts, 0);
        assert_eq!(d.exchange_s, 0.0);
    }

    #[test]
    fn display_includes_unmounts() {
        let s = TapeStats {
            mounts: 3,
            unmounts: 2,
            ..TapeStats::default()
        };
        let shown = format!("{s}");
        assert!(shown.contains("mounts=3"));
        assert!(shown.contains("unmounts=2"));
    }
}
