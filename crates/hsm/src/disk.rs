//! The staging disk: the secondary-storage cache in front of the tape
//! library.
//!
//! Holds staged file copies with a capacity limit; charges seek + transfer
//! costs to the shared simulated clock. Purging decisions are made by the
//! HSM (see [`crate::policy`]); the disk itself only tracks recency.

use bytes::Bytes;
use heaven_tape::{DiskProfile, SimClock};
use std::collections::HashMap;

/// Statistics of the staging disk.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskStats {
    /// Read operations served.
    pub reads: u64,
    /// Write operations performed.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Seconds spent on disk I/O.
    pub io_s: f64,
}

#[derive(Debug, Clone)]
struct StagedFile {
    len: u64,
    /// `None` for phantom payloads.
    data: Option<Bytes>,
    last_access: u64,
    /// Pinned files are never purge candidates (in active use).
    pinned: bool,
}

/// A capacity-bounded staging disk.
#[derive(Debug)]
pub struct StagingDisk {
    profile: DiskProfile,
    clock: SimClock,
    capacity: u64,
    used: u64,
    files: HashMap<String, StagedFile>,
    stats: DiskStats,
    counter: u64,
}

impl StagingDisk {
    /// Create a staging disk of `capacity` bytes.
    pub fn new(profile: DiskProfile, capacity: u64, clock: SimClock) -> StagingDisk {
        StagingDisk {
            profile,
            clock,
            capacity,
            used: 0,
            files: HashMap::new(),
            stats: DiskStats::default(),
            counter: 0,
        }
    }

    /// Disk capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently staged.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Whether `name` is staged.
    pub fn contains(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Length of a staged file.
    pub fn len_of(&self, name: &str) -> Option<u64> {
        self.files.get(name).map(|f| f.len)
    }

    /// Store a file (replacing any previous copy). Charges one write.
    /// Returns `false` if the file exceeds the disk capacity outright.
    /// The payload handle is kept as-is — staging a tape segment here is
    /// a refcount bump, not a copy.
    pub fn store(&mut self, name: &str, len: u64, data: Option<Bytes>) -> bool {
        if len > self.capacity {
            return false;
        }
        self.remove(name);
        self.counter += 1;
        let t = self.profile.access_time_s(len);
        self.clock.advance_s(t);
        self.stats.writes += 1;
        self.stats.bytes_written += len;
        self.stats.io_s += t;
        self.used += len;
        self.files.insert(
            name.to_string(),
            StagedFile {
                len,
                data,
                last_access: self.counter,
                pinned: false,
            },
        );
        true
    }

    /// Read `len` bytes at `offset` of a staged file. Returns `None` when
    /// the file is absent or the range is out of bounds; phantom files read
    /// as zeros. Charges one read of `len` bytes. Real payloads are served
    /// as zero-copy slices of the staged buffer.
    pub fn read(&mut self, name: &str, offset: u64, len: u64) -> Option<Bytes> {
        self.counter += 1;
        let counter = self.counter;
        let f = self.files.get_mut(name)?;
        if offset + len > f.len {
            return None;
        }
        f.last_access = counter;
        let t = self.profile.access_time_s(len);
        self.clock.advance_s(t);
        self.stats.reads += 1;
        self.stats.bytes_read += len;
        self.stats.io_s += t;
        Some(match &f.data {
            Some(bytes) => bytes.slice(offset as usize..(offset + len) as usize),
            None => Bytes::from(vec![0u8; len as usize]),
        })
    }

    /// Drop a staged file; returns its length if it was present.
    pub fn remove(&mut self, name: &str) -> Option<u64> {
        let f = self.files.remove(name)?;
        self.used -= f.len;
        Some(f.len)
    }

    /// Pin or unpin a staged file (pinned files are not purge candidates).
    pub fn set_pinned(&mut self, name: &str, pinned: bool) {
        if let Some(f) = self.files.get_mut(name) {
            f.pinned = pinned;
        }
    }

    /// The least-recently-used unpinned file, if any.
    pub fn lru_candidate(&self) -> Option<(String, u64)> {
        self.files
            .iter()
            .filter(|(_, f)| !f.pinned)
            .min_by_key(|(_, f)| f.last_access)
            .map(|(n, f)| (n.clone(), f.len))
    }

    /// Names of all staged files.
    pub fn names(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(cap: u64) -> StagingDisk {
        StagingDisk::new(DiskProfile::scsi2003(), cap, SimClock::new())
    }

    #[test]
    fn store_read_remove() {
        let mut d = disk(1000);
        assert!(d.store("a", 4, Some(vec![1, 2, 3, 4].into())));
        assert_eq!(d.read("a", 1, 2).unwrap(), vec![2, 3]);
        assert_eq!(d.used(), 4);
        assert_eq!(d.remove("a"), Some(4));
        assert_eq!(d.used(), 0);
        assert!(d.read("a", 0, 1).is_none());
    }

    #[test]
    fn oversized_file_rejected() {
        let mut d = disk(10);
        assert!(!d.store("big", 11, None));
        assert!(d.store("fits", 10, None));
    }

    #[test]
    fn out_of_range_read_fails() {
        let mut d = disk(100);
        d.store("a", 10, None);
        assert!(d.read("a", 5, 10).is_none());
        assert_eq!(d.read("a", 5, 5).unwrap(), vec![0u8; 5]);
    }

    #[test]
    fn lru_tracks_recency_and_pins() {
        let mut d = disk(100);
        d.store("a", 10, None);
        d.store("b", 10, None);
        d.store("c", 10, None);
        d.read("a", 0, 1);
        assert_eq!(d.lru_candidate().unwrap().0, "b");
        d.set_pinned("b", true);
        assert_eq!(d.lru_candidate().unwrap().0, "c");
        d.set_pinned("b", false);
        assert_eq!(d.lru_candidate().unwrap().0, "b");
    }

    #[test]
    fn io_costs_accrue_on_clock() {
        let clock = SimClock::new();
        let mut d = StagingDisk::new(DiskProfile::scsi2003(), 1 << 30, clock.clone());
        d.store("a", 30 << 20, None); // 30 MB at 30 MB/s + seek
        assert!(clock.now_s() > 1.0 && clock.now_s() < 1.1);
        d.read("a", 0, 30 << 20);
        assert!(clock.now_s() > 2.0);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn restore_replaces_existing_copy() {
        let mut d = disk(100);
        d.store("a", 40, None);
        d.store("a", 20, None);
        assert_eq!(d.used(), 20);
        assert_eq!(d.len_of("a"), Some(20));
    }
}
