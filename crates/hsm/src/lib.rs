#![warn(missing_docs)]
//! # heaven-hsm — hierarchical storage management
//!
//! Two couplings of a DBMS (or any client) to the tertiary-storage
//! simulator, mirroring the dissertation's §2.3–§2.5 and §3.1:
//!
//! * [`HsmSystem`] — the classical HSM: file granularity, transparent
//!   whole-file staging through a watermark-managed disk cache. Reading one
//!   byte of an archived file stages the entire file — the deficiency
//!   HEAVEN's super-tiles remove.
//! * [`DirectStore`] — direct tape-drive attachment: placement-aware
//!   block writes and byte-range reads, the substrate of HEAVEN's
//!   clustering, scheduling and caching machinery.

pub mod catalog;
pub mod direct;
pub mod disk;
pub mod error;
pub mod hsm;
pub mod policy;

pub use catalog::{FileCatalog, FileEntry};
pub use direct::{BlockAddress, DirectStore};
pub use disk::{DiskStats, StagingDisk};
pub use error::{HsmError, Result};
pub use hsm::HsmSystem;
pub use policy::WatermarkPolicy;
