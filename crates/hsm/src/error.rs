//! Error type for the HSM layer.

use heaven_tape::TapeError;
use std::fmt;

/// Errors raised by the hierarchical storage manager.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // struct-variant fields are self-describing
pub enum HsmError {
    /// No file with this name is archived.
    NoSuchFile(String),
    /// A file with this name already exists.
    FileExists(String),
    /// The staging disk cannot hold the file even after purging everything.
    StagingTooSmall { need: u64, capacity: u64 },
    /// Read range exceeds the file.
    BadRange {
        file: String,
        offset: u64,
        len: u64,
        file_len: u64,
    },
    /// Underlying tertiary-storage failure.
    Tape(TapeError),
}

impl fmt::Display for HsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HsmError::NoSuchFile(n) => write!(f, "no such file: {n}"),
            HsmError::FileExists(n) => write!(f, "file exists: {n}"),
            HsmError::StagingTooSmall { need, capacity } => {
                write!(
                    f,
                    "staging disk too small: need {need}, capacity {capacity}"
                )
            }
            HsmError::BadRange {
                file,
                offset,
                len,
                file_len,
            } => write!(
                f,
                "range {offset}+{len} exceeds file {file} of {file_len} bytes"
            ),
            HsmError::Tape(e) => write!(f, "tertiary storage: {e}"),
        }
    }
}

impl std::error::Error for HsmError {}

impl From<TapeError> for HsmError {
    fn from(e: TapeError) -> Self {
        HsmError::Tape(e)
    }
}

/// Result alias for the HSM layer.
pub type Result<T> = std::result::Result<T, HsmError>;
