//! Staging-disk purge policy: high/low watermarks.
//!
//! Classic HSM behaviour (paper §2.3): when the staging disk fills past the
//! *high* watermark, least-recently-used staged copies are purged (their
//! tape copies remain authoritative) until usage drops below the *low*
//! watermark.

/// Watermark-based purge policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatermarkPolicy {
    /// Fraction of capacity above which purging starts (0..=1).
    pub high: f64,
    /// Fraction of capacity purging drives usage down to (0..=1).
    pub low: f64,
}

impl Default for WatermarkPolicy {
    fn default() -> Self {
        WatermarkPolicy {
            high: 0.90,
            low: 0.70,
        }
    }
}

impl WatermarkPolicy {
    /// Create a policy, clamping the fractions into `[0, 1]` and ensuring
    /// `low <= high`.
    pub fn new(high: f64, low: f64) -> WatermarkPolicy {
        let high = high.clamp(0.0, 1.0);
        let low = low.clamp(0.0, high);
        WatermarkPolicy { high, low }
    }

    /// Whether a purge pass should start, given `used`/`capacity` after an
    /// intended store of `incoming` bytes.
    pub fn should_purge(&self, used: u64, incoming: u64, capacity: u64) -> bool {
        (used + incoming) as f64 > self.high * capacity as f64
    }

    /// The usage level a purge pass should reach (in bytes).
    pub fn purge_target(&self, capacity: u64) -> u64 {
        (self.low * capacity as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = WatermarkPolicy::default();
        assert!(p.low < p.high);
    }

    #[test]
    fn purge_triggers_above_high() {
        let p = WatermarkPolicy::new(0.8, 0.5);
        assert!(!p.should_purge(700, 0, 1000));
        assert!(p.should_purge(700, 200, 1000));
        assert!(p.should_purge(900, 0, 1000));
        assert_eq!(p.purge_target(1000), 500);
    }

    #[test]
    fn constructor_clamps() {
        let p = WatermarkPolicy::new(1.5, 2.0);
        assert_eq!(p.high, 1.0);
        assert_eq!(p.low, 1.0);
        let p = WatermarkPolicy::new(0.5, 0.9);
        assert!(p.low <= p.high);
    }
}
