//! The HSM file catalog: name → tertiary-storage location.

use heaven_tape::MediumId;
use std::collections::BTreeMap;

/// Location of one archived file on tertiary storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileEntry {
    /// Medium holding the file.
    pub medium: MediumId,
    /// Byte offset on the medium.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Catalog mapping archived file names to media locations.
#[derive(Debug, Default, Clone)]
pub struct FileCatalog {
    entries: BTreeMap<String, FileEntry>,
}

impl FileCatalog {
    /// Empty catalog.
    pub fn new() -> FileCatalog {
        FileCatalog::default()
    }

    /// Register a file; returns the previous entry if the name was taken.
    pub fn insert(&mut self, name: &str, entry: FileEntry) -> Option<FileEntry> {
        self.entries.insert(name.to_string(), entry)
    }

    /// Look up a file.
    pub fn get(&self, name: &str) -> Option<FileEntry> {
        self.entries.get(name).copied()
    }

    /// Remove a file; returns its entry.
    pub fn remove(&mut self, name: &str) -> Option<FileEntry> {
        self.entries.remove(name)
    }

    /// Whether the name is catalogued.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Number of catalogued files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(name, entry)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FileEntry)> {
        self.entries.iter().map(|(n, e)| (n.as_str(), e))
    }

    /// All files on a given medium, ordered by offset — the order a
    /// sequential sweep of that medium would encounter them.
    pub fn files_on_medium(&self, medium: MediumId) -> Vec<(String, FileEntry)> {
        let mut v: Vec<(String, FileEntry)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.medium == medium)
            .map(|(n, e)| (n.clone(), *e))
            .collect();
        v.sort_by_key(|(_, e)| e.offset);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut c = FileCatalog::new();
        let e = FileEntry {
            medium: 1,
            offset: 100,
            len: 50,
        };
        assert_eq!(c.insert("obj1", e), None);
        assert_eq!(c.get("obj1"), Some(e));
        assert!(c.contains("obj1"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.remove("obj1"), Some(e));
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_returns_previous() {
        let mut c = FileCatalog::new();
        let e1 = FileEntry {
            medium: 1,
            offset: 0,
            len: 10,
        };
        let e2 = FileEntry {
            medium: 2,
            offset: 5,
            len: 10,
        };
        c.insert("f", e1);
        assert_eq!(c.insert("f", e2), Some(e1));
        assert_eq!(c.get("f"), Some(e2));
    }

    #[test]
    fn files_on_medium_sorted_by_offset() {
        let mut c = FileCatalog::new();
        c.insert(
            "b",
            FileEntry {
                medium: 1,
                offset: 500,
                len: 10,
            },
        );
        c.insert(
            "a",
            FileEntry {
                medium: 1,
                offset: 100,
                len: 10,
            },
        );
        c.insert(
            "x",
            FileEntry {
                medium: 2,
                offset: 0,
                len: 10,
            },
        );
        let on1 = c.files_on_medium(1);
        assert_eq!(
            on1.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(c.files_on_medium(3).len(), 0);
    }
}
