//! Direct tape-drive attachment (paper §3.1.2).
//!
//! HEAVEN's second coupling mode bypasses the HSM's file abstraction and
//! talks to the library directly: the caller controls **placement** (which
//! medium a super-tile goes to, in which order) and can read **byte ranges**
//! (individual super-tiles) instead of whole files. This is what makes
//! intra-/inter-super-tile clustering and query scheduling possible.

use crate::error::Result;
use bytes::Bytes;
use heaven_tape::{MediumId, SimClock, TapeLibrary, TapeStats, WritePayload};

/// Location of a stored block (super-tile) on tertiary storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockAddress {
    /// Medium holding the block.
    pub medium: MediumId,
    /// Byte offset on the medium.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Placement-aware direct store over a tape library.
#[derive(Debug)]
pub struct DirectStore {
    library: TapeLibrary,
    /// Media opened for filling, in creation order.
    fill_media: Vec<MediumId>,
    /// Media opened for second-copy (replica) filling, kept disjoint from
    /// the primary fill media so dual-copy archival never puts both
    /// copies of a super-tile on one medium.
    replica_media: Vec<MediumId>,
}

impl DirectStore {
    /// Wrap a tape library.
    pub fn new(library: TapeLibrary) -> DirectStore {
        DirectStore {
            library,
            fill_media: Vec::new(),
            replica_media: Vec::new(),
        }
    }

    /// Whether the underlying library has a fault schedule installed.
    pub fn faults_enabled(&self) -> bool {
        self.library.faults_enabled()
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> SimClock {
        self.library.clock().clone()
    }

    /// Tape statistics.
    pub fn stats(&self) -> TapeStats {
        self.library.stats()
    }

    /// Access the underlying library.
    pub fn library(&self) -> &TapeLibrary {
        &self.library
    }

    /// Mutable access to the underlying library.
    pub fn library_mut(&mut self) -> &mut TapeLibrary {
        &mut self.library
    }

    /// Media opened for filling so far.
    pub fn fill_media(&self) -> &[MediumId] {
        &self.fill_media
    }

    /// Append a block to a *specific* medium (placement control). The
    /// caller guarantees capacity; errors propagate otherwise.
    pub fn write_to(&mut self, medium: MediumId, payload: WritePayload) -> Result<BlockAddress> {
        let len = payload.len();
        let offset = self.library.write(medium, payload)?;
        Ok(BlockAddress {
            medium,
            offset,
            len,
        })
    }

    /// Append a block to the current fill medium, opening a new medium when
    /// the block does not fit. Returns the block's address.
    pub fn append(&mut self, payload: WritePayload) -> Result<BlockAddress> {
        let len = payload.len();
        let medium = match self.fill_media.last() {
            Some(&m) if self.library.medium_free(m)? >= len => m,
            _ => {
                let m = self.library.add_medium();
                self.fill_media.push(m);
                m
            }
        };
        self.write_to(
            medium,
            if len == 0 {
                WritePayload::Phantom(0)
            } else {
                payload
            },
        )
    }

    /// Append a **second archive copy**, guaranteed to land on a medium
    /// different from `avoid` (the primary copy's). Dual-copy archival
    /// reads the replica when the primary copy fails or is corrupt; one
    /// bad medium can never take out both copies.
    pub fn append_replica(
        &mut self,
        payload: WritePayload,
        avoid: MediumId,
    ) -> Result<BlockAddress> {
        let len = payload.len();
        let medium = match self.replica_media.last() {
            Some(&m) if m != avoid && self.library.medium_free(m)? >= len => m,
            _ => {
                let m = self.library.add_medium();
                self.replica_media.push(m);
                m
            }
        };
        self.write_to(
            medium,
            if len == 0 {
                WritePayload::Phantom(0)
            } else {
                payload
            },
        )
    }

    /// Open a fresh medium and make it the fill target; returns its id.
    /// Used by inter-super-tile clustering to start a new object on a new
    /// medium boundary.
    pub fn open_new_medium(&mut self) -> MediumId {
        let m = self.library.add_medium();
        self.fill_media.push(m);
        m
    }

    /// Read a block. The returned `Bytes` aliases the stored segment.
    pub fn read(&mut self, addr: BlockAddress) -> Result<Bytes> {
        Ok(self.library.read(addr.medium, addr.offset, addr.len)?)
    }

    /// Read a sub-range of a block (partial super-tile reads are possible
    /// on random-access media; on tape they still pay the locate).
    pub fn read_range(&mut self, addr: BlockAddress, rel_offset: u64, len: u64) -> Result<Bytes> {
        Ok(self
            .library
            .read(addr.medium, addr.offset + rel_offset, len)?)
    }

    /// Estimated cost (seconds) of reading `addr` given current drive state.
    pub fn estimate_read_s(&self, addr: BlockAddress) -> f64 {
        self.library
            .estimate_read_s(addr.medium, addr.offset, addr.len)
    }

    /// Read one *round* of blocks with the library's drives working in
    /// parallel: each group (typically all requests for one medium,
    /// targeting one drive) executes against a detached clock forked at
    /// the common start instant, and the shared clock then advances by
    /// the **longest** group — overlapping the per-drive busy windows in
    /// simulated time the way parallel hardware overlaps them in real
    /// time. Returns the payloads per group plus the window length.
    ///
    /// Groups should not exceed the drive count per round; the caller
    /// (the staging coordinator) plans rounds accordingly.
    pub fn read_parallel(
        &mut self,
        groups: &[Vec<BlockAddress>],
    ) -> Result<(Vec<Vec<Bytes>>, f64)> {
        let t0 = self.library.clock().now_s();
        let mut out = Vec::with_capacity(groups.len());
        let mut window = 0.0f64;
        for group in groups {
            let (res, dt) = self.library.run_detached(|lib| {
                group
                    .iter()
                    .map(|a| lib.read(a.medium, a.offset, a.len))
                    .collect::<std::result::Result<Vec<_>, _>>()
            });
            out.push(res?);
            window = window.max(dt);
        }
        self.library.clock().advance_to_s(t0 + window);
        Ok((out, window))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heaven_tape::DeviceProfile;

    fn store() -> DirectStore {
        DirectStore::new(TapeLibrary::new(
            DeviceProfile::ibm3590(),
            2,
            SimClock::new(),
        ))
    }

    #[test]
    fn append_and_read_block() {
        let mut s = store();
        let addr = s.append(WritePayload::real(vec![3u8; 512])).unwrap();
        assert_eq!(s.read(addr).unwrap(), vec![3u8; 512]);
        assert_eq!(s.fill_media().len(), 1);
    }

    #[test]
    fn partial_block_read() {
        let mut s = store();
        let mut payload = vec![0u8; 100];
        for (i, b) in payload.iter_mut().enumerate() {
            *b = i as u8;
        }
        let addr = s.append(WritePayload::real(payload)).unwrap();
        assert_eq!(s.read_range(addr, 10, 3).unwrap(), vec![10, 11, 12]);
    }

    #[test]
    fn placement_control_targets_specific_media() {
        let mut s = store();
        let m1 = s.open_new_medium();
        let m2 = s.open_new_medium();
        let a1 = s.write_to(m1, WritePayload::Phantom(100)).unwrap();
        let a2 = s.write_to(m2, WritePayload::Phantom(100)).unwrap();
        let a3 = s.write_to(m1, WritePayload::Phantom(100)).unwrap();
        assert_eq!(a1.medium, m1);
        assert_eq!(a2.medium, m2);
        assert_eq!(a3.medium, m1);
        assert_eq!(a3.offset, 100);
    }

    #[test]
    fn append_rolls_to_new_medium_when_full() {
        let profile = DeviceProfile {
            media_capacity: 1000,
            ..DeviceProfile::ibm3590()
        };
        let mut s = DirectStore::new(TapeLibrary::new(profile, 1, SimClock::new()));
        let a1 = s.append(WritePayload::Phantom(800)).unwrap();
        let a2 = s.append(WritePayload::Phantom(800)).unwrap();
        assert_ne!(a1.medium, a2.medium);
        assert_eq!(s.fill_media().len(), 2);
    }

    #[test]
    fn read_parallel_overlaps_drive_windows() {
        let mut s = store(); // 2 drives
        let m1 = s.open_new_medium();
        let m2 = s.open_new_medium();
        let a1 = s
            .write_to(m1, WritePayload::real(vec![1u8; 1 << 20]))
            .unwrap();
        let a2 = s
            .write_to(m2, WritePayload::real(vec![2u8; 1 << 20]))
            .unwrap();
        // Serial baseline for the same two cold reads, on a twin store.
        let mut serial = store();
        let sm1 = serial.open_new_medium();
        let sm2 = serial.open_new_medium();
        let sa1 = serial
            .write_to(sm1, WritePayload::real(vec![1u8; 1 << 20]))
            .unwrap();
        let sa2 = serial
            .write_to(sm2, WritePayload::real(vec![2u8; 1 << 20]))
            .unwrap();
        let st0 = serial.clock().now_s();
        serial.read(sa1).unwrap();
        serial.read(sa2).unwrap();
        let serial_s = serial.clock().now_s() - st0;

        let t0 = s.clock().now_s();
        let (payloads, window) = s.read_parallel(&[vec![a1], vec![a2]]).unwrap();
        assert_eq!(payloads[0][0], vec![1u8; 1 << 20]);
        assert_eq!(payloads[1][0], vec![2u8; 1 << 20]);
        let parallel_s = s.clock().now_s() - t0;
        assert!((parallel_s - window).abs() < 1e-9);
        assert!(
            parallel_s < serial_s * 0.75,
            "two drives in parallel ({parallel_s:.2}s) must beat serial ({serial_s:.2}s)"
        );
        // Busy time (stats) still accounts both drives' work in full.
        assert_eq!(s.stats().bytes_read, 2 << 20);
    }

    #[test]
    fn replica_never_shares_medium_with_primary() {
        let mut s = store();
        for i in 0..6 {
            let payload = vec![i as u8; 256];
            let primary = s.append(WritePayload::real(payload.clone())).unwrap();
            let replica = s
                .append_replica(WritePayload::real(payload.clone()), primary.medium)
                .unwrap();
            assert_ne!(primary.medium, replica.medium);
            assert_eq!(s.read(replica).unwrap(), payload);
        }
        // All replicas share one medium (they fit), distinct from fills.
        assert!(!s.fill_media().iter().any(|m| s.replica_media.contains(m)));
    }

    #[test]
    fn estimates_are_positive_for_cold_blocks() {
        let mut s = store();
        let addr = s.append(WritePayload::Phantom(1 << 20)).unwrap();
        assert!(s.estimate_read_s(addr) > 0.0);
    }
}
