//! The hierarchical storage manager: file-granularity staging over tape.
//!
//! This models the classical HSM coupling the paper starts from (§2.3,
//! §2.4): the DBMS (or the scientist) sees *files*; a file is archived to
//! tape, and **any** read — even of a few bytes — forces the *whole file*
//! to be staged back to the disk cache first. This file granularity is
//! exactly the deficiency HEAVEN's super-tiles remove (§1.1: users need
//! 1–10 % of the requested data), and the baseline of experiments E4/E5.

use crate::catalog::{FileCatalog, FileEntry};
use crate::disk::{DiskStats, StagingDisk};
use crate::error::{HsmError, Result};
use crate::policy::WatermarkPolicy;
use bytes::Bytes;
use heaven_obs::{Counter, Field, Histogram, MetricsRegistry, TraceBus};
use heaven_tape::{key64, FaultKind, MediumId, SimClock, TapeLibrary, TapeStats, WritePayload};

/// A hierarchical storage management system: staging disk + tape library +
/// file catalog + purge policy.
#[derive(Debug)]
pub struct HsmSystem {
    disk: StagingDisk,
    library: TapeLibrary,
    catalog: FileCatalog,
    policy: WatermarkPolicy,
    /// Medium currently being filled by archive writes.
    fill_medium: Option<MediumId>,
    /// Count of whole-file stage operations (tape → disk).
    stage_ops: u64,
    bus: TraceBus,
    /// Duration distributions for whole-file operations (simulated s).
    stage_hist: Histogram,
    archive_hist: Histogram,
    /// Injected staging-disk-full watermark storms weathered.
    storms: Counter,
}

impl HsmSystem {
    /// Assemble an HSM from its parts.
    pub fn new(disk: StagingDisk, library: TapeLibrary, policy: WatermarkPolicy) -> HsmSystem {
        let private = MetricsRegistry::new();
        HsmSystem {
            disk,
            library,
            catalog: FileCatalog::new(),
            policy,
            fill_medium: None,
            stage_ops: 0,
            bus: TraceBus::noop(),
            stage_hist: private.histogram("hsm.stage_hist_s"),
            archive_hist: private.histogram("hsm.archive_hist_s"),
            storms: private.counter("hsm.watermark_storms"),
        }
    }

    /// Attach the HSM (and its tape library) to a shared metrics registry
    /// and trace bus. Observations accumulated so far carry over.
    pub fn attach_obs(&mut self, registry: &MetricsRegistry, bus: TraceBus) {
        self.library.attach_obs(registry, bus.clone());
        self.bus = bus;
        let stage = registry.histogram("hsm.stage_hist_s");
        stage.merge_from(&self.stage_hist);
        self.stage_hist = stage;
        let archive = registry.histogram("hsm.archive_hist_s");
        archive.merge_from(&self.archive_hist);
        self.archive_hist = archive;
        let storms = registry.counter("hsm.watermark_storms");
        storms.add(self.storms.get());
        self.storms = storms;
    }

    /// Injected watermark storms weathered so far.
    pub fn watermark_storms(&self) -> u64 {
        self.storms.get()
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> SimClock {
        self.library.clock().clone()
    }

    /// Tape-side statistics.
    pub fn tape_stats(&self) -> TapeStats {
        self.library.stats()
    }

    /// Disk-side statistics.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Number of whole-file staging operations performed.
    pub fn stage_ops(&self) -> u64 {
        self.stage_ops
    }

    /// The file catalog (read-only).
    pub fn catalog(&self) -> &FileCatalog {
        &self.catalog
    }

    /// Direct access to the tape library (used by tests and experiments).
    pub fn library_mut(&mut self) -> &mut TapeLibrary {
        &mut self.library
    }

    /// Archive a file: write it to tape (appending to the current fill
    /// medium, opening a new one when full). The staging disk is *not*
    /// populated — freshly generated HPC output goes straight to the
    /// archive, matching the paper's data flow.
    pub fn archive(&mut self, name: &str, payload: WritePayload) -> Result<()> {
        if self.catalog.contains(name) {
            return Err(HsmError::FileExists(name.to_string()));
        }
        let len = payload.len();
        let medium = self.pick_fill_medium(len)?;
        let span = self.bus.span(
            "hsm.archive",
            self.clock().now_s(),
            &[
                ("file", Field::dyn_str(name)),
                ("bytes", Field::U64(len)),
                ("medium", Field::U64(medium)),
            ],
        );
        let t0 = self.clock().now_s();
        let offset = self.library.write(medium, payload)?;
        let t1 = self.clock().now_s();
        self.archive_hist.observe(t1 - t0);
        span.end(t1);
        self.catalog.insert(
            name,
            FileEntry {
                medium,
                offset,
                len,
            },
        );
        Ok(())
    }

    fn pick_fill_medium(&mut self, need: u64) -> Result<MediumId> {
        if let Some(m) = self.fill_medium {
            if self.library.medium_free(m)? >= need {
                return Ok(m);
            }
        }
        let m = self.library.add_medium();
        self.fill_medium = Some(m);
        if self.library.medium_free(m)? < need {
            return Err(HsmError::Tape(heaven_tape::TapeError::MediumFull {
                medium: m,
                need,
                free: self.library.medium_free(m)?,
            }));
        }
        Ok(m)
    }

    /// Read a byte range of an archived file.
    ///
    /// If the file is not staged, the **entire file** is first copied from
    /// tape to the staging disk (the HSM granularity limitation), purging
    /// LRU files per the watermark policy to make room. The returned
    /// `Bytes` aliases the staged copy — repeat reads never re-copy.
    pub fn read_range(&mut self, name: &str, offset: u64, len: u64) -> Result<Bytes> {
        let entry = self
            .catalog
            .get(name)
            .ok_or_else(|| HsmError::NoSuchFile(name.to_string()))?;
        if offset + len > entry.len {
            return Err(HsmError::BadRange {
                file: name.to_string(),
                offset,
                len,
                file_len: entry.len,
            });
        }
        if !self.disk.contains(name) {
            self.stage(name, entry)?;
        }
        self.disk
            .read(name, offset, len)
            .ok_or_else(|| HsmError::NoSuchFile(name.to_string()))
    }

    /// Read a whole archived file.
    pub fn read(&mut self, name: &str) -> Result<Bytes> {
        let entry = self
            .catalog
            .get(name)
            .ok_or_else(|| HsmError::NoSuchFile(name.to_string()))?;
        self.read_range(name, 0, entry.len)
    }

    /// Whether a file is currently staged on disk.
    pub fn is_staged(&self, name: &str) -> bool {
        self.disk.contains(name)
    }

    /// Stage the whole file from tape to disk.
    fn stage(&mut self, name: &str, entry: FileEntry) -> Result<()> {
        if entry.len > self.disk.capacity() {
            return Err(HsmError::StagingTooSmall {
                need: entry.len,
                capacity: self.disk.capacity(),
            });
        }
        let t0 = self.clock().now_s();
        let span = self.bus.span(
            "hsm.stage",
            t0,
            &[
                ("file", Field::dyn_str(name)),
                ("bytes", Field::U64(entry.len)),
                ("medium", Field::U64(entry.medium)),
            ],
        );
        // Injected staging-disk-full storm: a burst of foreign staging
        // traffic fills the disk past the high watermark and the
        // watermark daemon purges down to the low mark. The foreign
        // files are newer than ours, so our entire staged working set is
        // the LRU victim — it vanishes through no fault of this
        // workload, exactly what a shared HSM does under load.
        if self
            .library
            .roll_fault(FaultKind::StagingStorm, key64(name.as_bytes()), 0)
        {
            while let Some((victim, _)) = self.disk.lru_candidate() {
                self.note_purge(&victim, "storm");
                self.disk.remove(&victim);
            }
            self.storms.inc();
            self.bus.event(
                "hsm.watermark_storm",
                self.clock().now_s(),
                &[("file", Field::dyn_str(name))],
            );
        }
        // Purge down to the low watermark if the incoming file pushes us
        // past the high watermark.
        if self
            .policy
            .should_purge(self.disk.used(), entry.len, self.disk.capacity())
        {
            let target = self
                .policy
                .purge_target(self.disk.capacity())
                .saturating_sub(
                    entry
                        .len
                        .min(self.policy.purge_target(self.disk.capacity())),
                );
            while self.disk.used() > target {
                match self.disk.lru_candidate() {
                    Some((victim, _)) => {
                        self.note_purge(&victim, "watermark");
                        self.disk.remove(&victim);
                    }
                    None => break,
                }
            }
        }
        // Ensure it fits at all.
        while self.disk.used() + entry.len > self.disk.capacity() {
            match self.disk.lru_candidate() {
                Some((victim, _)) => {
                    self.note_purge(&victim, "fit");
                    self.disk.remove(&victim);
                }
                None => {
                    span.end(self.clock().now_s());
                    return Err(HsmError::StagingTooSmall {
                        need: entry.len,
                        capacity: self.disk.capacity(),
                    });
                }
            }
        }
        let data = self.library.read(entry.medium, entry.offset, entry.len)?;
        // Phantom media return zeroed buffers; store real bytes only when
        // the tape had real bytes (all zeros ⇒ keep them, correctness is
        // preserved either way).
        self.disk.store(name, entry.len, Some(data));
        self.stage_ops += 1;
        let t1 = self.clock().now_s();
        self.stage_hist.observe(t1 - t0);
        span.end(t1);
        Ok(())
    }

    fn note_purge(&self, victim: &str, reason: &'static str) {
        self.bus.event(
            "hsm.purge",
            self.clock().now_s(),
            &[
                ("file", Field::dyn_str(victim)),
                ("reason", Field::StaticStr(reason)),
            ],
        );
    }

    /// Drop a file's staged disk copy (the tape copy remains). Used to
    /// force cold reads in experiments.
    pub fn purge_staged(&mut self, name: &str) {
        self.note_purge(name, "explicit");
        self.disk.remove(name);
    }

    /// Delete a file from the archive (catalog entry + staged copy; the
    /// tape bytes become dead space until the medium is recycled).
    pub fn delete(&mut self, name: &str) -> Result<()> {
        self.catalog
            .remove(name)
            .ok_or_else(|| HsmError::NoSuchFile(name.to_string()))?;
        self.disk.remove(name);
        self.bus.event(
            "hsm.delete",
            self.clock().now_s(),
            &[("file", Field::dyn_str(name))],
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heaven_tape::{DeviceProfile, DiskProfile};

    fn hsm(disk_cap: u64) -> HsmSystem {
        let clock = SimClock::new();
        let disk = StagingDisk::new(DiskProfile::scsi2003(), disk_cap, clock.clone());
        let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 1, clock);
        HsmSystem::new(disk, lib, WatermarkPolicy::default())
    }

    #[test]
    fn archive_and_read_back() {
        let mut h = hsm(1 << 30);
        h.archive("f1", WritePayload::real(vec![5u8; 4096]))
            .unwrap();
        assert!(!h.is_staged("f1"));
        let data = h.read("f1").unwrap();
        assert_eq!(data, vec![5u8; 4096]);
        assert!(h.is_staged("f1"));
        assert_eq!(h.stage_ops(), 1);
    }

    #[test]
    fn duplicate_archive_rejected() {
        let mut h = hsm(1 << 30);
        h.archive("f", WritePayload::Phantom(10)).unwrap();
        assert!(matches!(
            h.archive("f", WritePayload::Phantom(10)),
            Err(HsmError::FileExists(_))
        ));
    }

    #[test]
    fn range_read_stages_whole_file() {
        let mut h = hsm(1 << 30);
        let file_len: u64 = 64 << 20; // 64 MB
        h.archive("big", WritePayload::Phantom(file_len)).unwrap();
        let before = h.tape_stats();
        // Ask for 1 KB out of 64 MB.
        let part = h.read_range("big", 1000, 1024).unwrap();
        assert_eq!(part.len(), 1024);
        let delta = h.tape_stats().since(&before);
        assert_eq!(
            delta.bytes_read, file_len,
            "HSM must stage the WHOLE file from tape"
        );
        // Second range read hits the staged copy: no more tape traffic.
        let before = h.tape_stats();
        h.read_range("big", 0, 4096).unwrap();
        assert_eq!(h.tape_stats().since(&before).bytes_read, 0);
        assert_eq!(h.stage_ops(), 1);
    }

    #[test]
    fn bad_range_is_error() {
        let mut h = hsm(1 << 30);
        h.archive("f", WritePayload::Phantom(100)).unwrap();
        assert!(matches!(
            h.read_range("f", 90, 20),
            Err(HsmError::BadRange { .. })
        ));
    }

    #[test]
    fn purge_happens_at_watermark() {
        // Disk of 100 MB; three 40 MB files can't all stay staged.
        let mut h = hsm(100 << 20);
        for i in 0..3 {
            h.archive(&format!("f{i}"), WritePayload::Phantom(40 << 20))
                .unwrap();
        }
        h.read("f0").unwrap();
        h.read("f1").unwrap();
        h.read("f2").unwrap(); // must purge f0 (LRU)
        assert!(!h.is_staged("f0"));
        assert!(h.is_staged("f2"));
        // Re-reading f0 stages again (another tape access).
        let before = h.tape_stats();
        h.read("f0").unwrap();
        assert!(h.tape_stats().since(&before).bytes_read > 0);
    }

    #[test]
    fn file_larger_than_disk_fails() {
        let mut h = hsm(10 << 20);
        h.archive("huge", WritePayload::Phantom(20 << 20)).unwrap();
        assert!(matches!(
            h.read("huge"),
            Err(HsmError::StagingTooSmall { .. })
        ));
    }

    #[test]
    fn files_span_multiple_media_when_full() {
        let clock = SimClock::new();
        let disk = StagingDisk::new(DiskProfile::scsi2003(), 1 << 30, clock.clone());
        let profile = DeviceProfile {
            media_capacity: 100,
            ..DeviceProfile::ibm3590()
        };
        let lib = TapeLibrary::new(profile, 1, clock);
        let mut h = HsmSystem::new(disk, lib, WatermarkPolicy::default());
        h.archive("a", WritePayload::Phantom(80)).unwrap();
        h.archive("b", WritePayload::Phantom(80)).unwrap();
        let ea = h.catalog().get("a").unwrap();
        let eb = h.catalog().get("b").unwrap();
        assert_ne!(ea.medium, eb.medium);
    }

    #[test]
    fn stage_span_contains_tape_events() {
        use heaven_obs::RecordKind;
        let mut h = hsm(1 << 30);
        let registry = MetricsRegistry::new();
        let bus = TraceBus::ring(256);
        h.attach_obs(&registry, bus.clone());
        h.archive("f", WritePayload::Phantom(1 << 20)).unwrap();
        h.read_range("f", 0, 16).unwrap(); // cold: stages the whole file
        let recs = bus.records();
        let stage = recs
            .iter()
            .find(|r| r.name == "hsm.stage" && r.kind == RecordKind::SpanStart)
            .expect("stage span");
        assert!(
            recs.iter()
                .any(|r| r.name == "tape.transfer" && r.parent == Some(stage.span)),
            "tape transfer must nest inside the stage span"
        );
        heaven_obs::trace::check_well_nested(&recs).unwrap();
        assert!(registry.counter("tape.bytes_read").get() >= 1 << 20);
    }

    #[test]
    fn watermark_storm_purges_staged_files() {
        use heaven_tape::FaultConfig;
        let mut h = hsm(1 << 30);
        h.archive("a", WritePayload::Phantom(10 << 20)).unwrap();
        h.archive("b", WritePayload::Phantom(10 << 20)).unwrap();
        h.read("a").unwrap();
        assert!(h.is_staged("a"));
        h.library_mut().set_fault_plan(Some(FaultConfig {
            staging_storm_per_stage: 1.0,
            ..FaultConfig::quiet(1)
        }));
        h.read("b").unwrap(); // stage of b triggers the storm
        assert_eq!(h.watermark_storms(), 1);
        assert!(
            !h.is_staged("a"),
            "storm must purge the previously staged file"
        );
        // Correctness is unaffected: a re-stages cleanly.
        h.library_mut().set_fault_plan(None);
        h.read("a").unwrap();
    }

    #[test]
    fn delete_removes_catalog_and_staged_copy() {
        let mut h = hsm(1 << 30);
        h.archive("f", WritePayload::Phantom(1024)).unwrap();
        h.read("f").unwrap();
        h.delete("f").unwrap();
        assert!(!h.is_staged("f"));
        assert!(matches!(h.read("f"), Err(HsmError::NoSuchFile(_))));
        assert!(matches!(h.delete("f"), Err(HsmError::NoSuchFile(_))));
    }
}
