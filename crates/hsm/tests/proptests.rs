//! Property-based tests of the HSM: archived files always read back
//! correctly regardless of staging-cache pressure, and the staging disk
//! never exceeds its capacity.

use heaven_hsm::{HsmSystem, StagingDisk, WatermarkPolicy};
use heaven_tape::{DeviceProfile, DiskProfile, SimClock, TapeLibrary, WritePayload};
use proptest::prelude::*;

fn hsm(disk_cap: u64, high: f64, low: f64) -> HsmSystem {
    let clock = SimClock::new();
    let disk = StagingDisk::new(DiskProfile::scsi2003(), disk_cap, clock.clone());
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 1, clock);
    HsmSystem::new(disk, lib, WatermarkPolicy::new(high, low))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn archived_files_always_read_back(
        sizes in prop::collection::vec(1u64..5000, 1..12),
        reads in prop::collection::vec((0usize..12, 0.0f64..1.0, 0.0f64..1.0), 0..30),
        disk_cap in 6000u64..40_000,
        high in 0.5f64..1.0,
        low in 0.1f64..0.5,
    ) {
        let mut h = hsm(disk_cap, high, low);
        // archive files with recognizable contents
        for (i, &len) in sizes.iter().enumerate() {
            let data: Vec<u8> = (0..len).map(|b| ((b + i as u64 * 37) % 251) as u8).collect();
            h.archive(&format!("f{i}"), WritePayload::real(data)).unwrap();
        }
        for &(fi, off_frac, len_frac) in &reads {
            let fi = fi % sizes.len();
            let flen = sizes[fi];
            if flen > disk_cap {
                continue;
            }
            let off = (off_frac * (flen - 1) as f64) as u64;
            let len = 1 + (len_frac * (flen - off - 1) as f64) as u64;
            let got = h.read_range(&format!("f{fi}"), off, len).unwrap();
            prop_assert_eq!(got.len() as u64, len);
            for (j, &b) in got.iter().enumerate() {
                let expect = ((off + j as u64 + fi as u64 * 37) % 251) as u8;
                prop_assert_eq!(b, expect, "file f{} byte {}", fi, off + j as u64);
            }
        }
    }

    #[test]
    fn staging_disk_never_overflows(
        sizes in prop::collection::vec(100u64..3000, 2..10),
        order in prop::collection::vec(0usize..10, 5..40),
    ) {
        let cap = 5000u64;
        let mut h = hsm(cap, 0.9, 0.5);
        for (i, &len) in sizes.iter().enumerate() {
            h.archive(&format!("f{i}"), WritePayload::Phantom(len)).unwrap();
        }
        for &fi in &order {
            let fi = fi % sizes.len();
            if sizes[fi] <= cap {
                h.read_range(&format!("f{fi}"), 0, 1).unwrap();
            }
        }
        // every byte that reached the disk cache was staged from tape
        prop_assert!(h.tape_stats().bytes_read >= h.disk_stats().bytes_written);
        prop_assert!(h.stage_ops() as usize <= order.len() + sizes.len());
        // staged bytes bounded by capacity is internal; verify indirectly:
        // all reads succeeded and every file is still readable
        for (i, &len) in sizes.iter().enumerate() {
            if len <= cap {
                let name = format!("f{i}");
                prop_assert!(h.read_range(&name, len - 1, 1).is_ok());
            }
        }
    }
}
