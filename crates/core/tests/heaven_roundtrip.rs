//! End-to-end tests of the HEAVEN system: insert → export → transparent
//! query across the hierarchy → maintenance.

use heaven_array::{CellType, Condenser, MDArray, Minterval, Point, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_core::{
    AccessPattern, ClusteringStrategy, EvictionPolicy, ExportMode, Heaven, HeavenConfig,
    PrefetchPolicy,
};
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, SimClock, TapeLibrary};

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

fn value_at(p: &Point) -> f64 {
    (p.coord(0) * 1000 + p.coord(1)) as f64
}

/// Build a Heaven with one 60x60 i32 object in 10x10 tiles.
fn setup(config: HeavenConfig) -> (Heaven, u64) {
    let clock = SimClock::new();
    let db = Database::new(heaven_tape::DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("climate", CellType::I32, 2).unwrap();
    let arr = MDArray::generate(mi(&[(0, 59), (0, 59)]), CellType::I32, value_at);
    let oid = adb
        .insert_object(
            "climate",
            &arr,
            Tiling::Regular {
                tile_shape: vec![10, 10],
            },
        )
        .unwrap();
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 2, clock);
    (Heaven::new(adb, lib, config), oid)
}

fn small_st_config() -> HeavenConfig {
    HeavenConfig {
        // ~4 tiles of 10x10 i32 (400 B payload + header) per super-tile
        supertile_bytes: Some(4 * 500),
        clustering: ClusteringStrategy::EStar(AccessPattern::Uniform),
        ..HeavenConfig::default()
    }
}

#[test]
fn export_then_query_returns_identical_data() {
    let (mut heaven, oid) = setup(small_st_config());
    let before = heaven
        .fetch_region_hierarchical(oid, &mi(&[(0, 59), (0, 59)]))
        .unwrap();
    let report = heaven.export_object(oid, ExportMode::Tct).unwrap();
    assert!(report.supertiles > 1);
    assert!(report.bytes > 0);
    heaven.clear_caches();
    let after = heaven
        .fetch_region_hierarchical(oid, &mi(&[(0, 59), (0, 59)]))
        .unwrap();
    assert_eq!(before, after, "data must survive the tape roundtrip");
}

#[test]
fn naive_export_also_roundtrips() {
    let (mut heaven, oid) = setup(small_st_config());
    let report = heaven.export_object(oid, ExportMode::Naive).unwrap();
    assert_eq!(report.supertiles, 36, "one block per tile");
    heaven.clear_caches();
    let sub = heaven
        .fetch_region_hierarchical(oid, &mi(&[(15, 25), (35, 45)]))
        .unwrap();
    for p in sub.domain().iter_points() {
        assert_eq!(sub.get_f64(&p).unwrap(), value_at(&p));
    }
}

#[test]
fn partial_query_fetches_only_touching_supertiles() {
    let (mut heaven, oid) = setup(small_st_config());
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    let total_sts = heaven.catalog().object_supertiles(oid).len();
    // A query inside one tile.
    heaven
        .fetch_region_hierarchical(oid, &mi(&[(2, 5), (2, 5)]))
        .unwrap();
    let fetched = heaven.stats().st_tape_fetches;
    assert!(fetched >= 1);
    assert!(
        (fetched as usize) < total_sts,
        "fetched {fetched} of {total_sts} super-tiles for a tiny query"
    );
}

#[test]
fn caches_serve_repeated_queries_without_tape() {
    let (mut heaven, oid) = setup(small_st_config());
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    let q = mi(&[(0, 19), (0, 19)]);
    heaven.fetch_region_hierarchical(oid, &q).unwrap();
    let tape_after_first = heaven.tape_stats().bytes_read;
    heaven.fetch_region_hierarchical(oid, &q).unwrap();
    assert_eq!(
        heaven.tape_stats().bytes_read,
        tape_after_first,
        "second identical query must not touch tape"
    );
    assert!(heaven.tile_cache_stats().hits > 0);
}

#[test]
fn query_language_works_over_exported_objects() {
    let (mut heaven, oid) = setup(small_st_config());
    // compute expected average over a region before export
    let region = mi(&[(10, 29), (10, 29)]);
    let direct = heaven.fetch_region_hierarchical(oid, &region).unwrap();
    let expected = Condenser::Avg.eval(&direct).unwrap();
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    let rs = heaven_arraydb::run(
        &mut heaven,
        "select avg_cells(c[10:29, 10:29]) from climate as c",
    )
    .unwrap();
    assert_eq!(rs[0].value.as_scalar().unwrap(), expected);
}

#[test]
fn framing_query_over_archive_fetches_less_than_bbox() {
    let (mut heaven, oid) = setup(small_st_config());
    heaven.export_object(oid, ExportMode::Tct).unwrap();

    // L-frame: two corners; bounding box would cover everything.
    heaven.clear_caches();
    let rs = heaven_arraydb::run(
        &mut heaven,
        "select c[0:9,0:9 | 50:59,50:59] from climate as c",
    )
    .unwrap();
    let frame_bytes = heaven.stats().st_tape_bytes;
    let arr = rs[0].value.as_array().unwrap();
    assert_eq!(arr.get_f64(&Point::new(vec![5, 5])).unwrap(), 5005.0);
    assert_eq!(arr.get_f64(&Point::new(vec![55, 55])).unwrap(), 55055.0);
    assert_eq!(arr.get_f64(&Point::new(vec![30, 30])).unwrap(), 0.0);

    // Fresh system for the bounding-box comparison.
    let (mut heaven2, oid2) = setup(small_st_config());
    heaven2.export_object(oid2, ExportMode::Tct).unwrap();
    heaven2.clear_caches();
    heaven2
        .fetch_region_hierarchical(oid2, &mi(&[(0, 59), (0, 59)]))
        .unwrap();
    let bbox_bytes = heaven2.stats().st_tape_bytes;
    assert!(
        frame_bytes < bbox_bytes,
        "frame fetch ({frame_bytes}) must move less than bbox fetch ({bbox_bytes})"
    );
}

#[test]
fn precomputed_catalog_answers_without_tape() {
    let mut config = small_st_config();
    config.precompute = vec![Condenser::Avg, Condenser::Sum];
    let (mut heaven, oid) = setup(config);
    let region = mi(&[(0, 59), (0, 59)]);
    let expected = {
        let direct = heaven.fetch_region_hierarchical(oid, &region).unwrap();
        Condenser::Avg.eval(&direct).unwrap()
    };
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    let tape_before = heaven.tape_stats().bytes_read;
    let rs = heaven_arraydb::run(
        &mut heaven,
        "select avg_cells(c[0:59, 0:59]) from climate as c",
    )
    .unwrap();
    assert_eq!(rs[0].value.as_scalar().unwrap(), expected);
    assert_eq!(
        heaven.tape_stats().bytes_read,
        tape_before,
        "aggregate over whole tiles must combine precomputed partials, not read tape"
    );
    assert!(heaven.precomp_stats().combine_hits >= 1);
}

#[test]
fn reimport_restores_tiles_to_disk() {
    let (mut heaven, oid) = setup(small_st_config());
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    heaven.reimport_object(oid).unwrap();
    // every tile back on disk
    let tiles: Vec<u64> = heaven
        .arraydb()
        .object(oid)
        .unwrap()
        .tiles
        .iter()
        .map(|&(_, t)| t)
        .collect();
    for t in tiles {
        assert_eq!(
            heaven.arraydb().tile_location(t).unwrap(),
            heaven_arraydb::TileLocation::Disk
        );
    }
    // data intact, no tape reads needed
    let before = heaven.tape_stats().bytes_read;
    let sub = heaven
        .fetch_region_hierarchical(oid, &mi(&[(0, 59), (0, 59)]))
        .unwrap();
    assert_eq!(heaven.tape_stats().bytes_read, before);
    assert_eq!(
        sub.get_f64(&Point::new(vec![42, 17])).unwrap(),
        value_at(&Point::new(vec![42, 17]))
    );
    // re-import twice is an error
    assert!(heaven.reimport_object(oid).is_err());
}

#[test]
fn update_region_rewrites_affected_supertiles() {
    let (mut heaven, oid) = setup(small_st_config());
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    let patch = MDArray::generate(mi(&[(5, 14), (5, 14)]), CellType::I32, |_| -1.0);
    heaven.update_region(oid, &patch).unwrap();
    heaven.clear_caches();
    let sub = heaven
        .fetch_region_hierarchical(oid, &mi(&[(0, 19), (0, 19)]))
        .unwrap();
    assert_eq!(sub.get_f64(&Point::new(vec![10, 10])).unwrap(), -1.0);
    assert_eq!(sub.get_f64(&Point::new(vec![0, 0])).unwrap(), 0.0);
    assert_eq!(
        sub.get_f64(&Point::new(vec![15, 15])).unwrap(),
        value_at(&Point::new(vec![15, 15]))
    );
    // dead space appeared on some medium
    let total_dead: u64 = heaven
        .arraydb()
        .object(oid)
        .map(|_| ())
        .ok()
        .map(|_| {
            heaven
                .catalog()
                .object_supertiles(oid)
                .iter()
                .map(|&st| heaven.catalog().address(st).unwrap().medium)
                .map(|m| heaven.dead_bytes_on(m))
                .sum()
        })
        .unwrap_or(0);
    assert!(total_dead > 0);
}

#[test]
fn delete_object_leaves_dead_space_and_reclaim_compacts() {
    let (mut heaven, oid) = setup(small_st_config());
    // add a second object so the medium keeps live data after the delete
    let arr2 = MDArray::generate(mi(&[(0, 29), (0, 29)]), CellType::I32, |_| 7.0);
    let oid2 = heaven
        .arraydb_mut()
        .insert_object(
            "climate",
            &arr2,
            Tiling::Regular {
                tile_shape: vec![10, 10],
            },
        )
        .unwrap();
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.export_object(oid2, ExportMode::Tct).unwrap();
    let medium = heaven
        .catalog()
        .address(heaven.catalog().object_supertiles(oid)[0])
        .unwrap()
        .medium;

    heaven.delete_object(oid).unwrap();
    assert!(heaven.dead_fraction(medium) > 0.0);
    assert!(heaven.arraydb().object(oid).is_err());

    // compaction rewrites only live super-tiles
    let rewritten = heaven.reclaim_medium(medium, 0.1).unwrap();
    assert!(rewritten > 0);
    assert_eq!(heaven.dead_bytes_on(medium), 0);
    // second object still fully readable
    heaven.clear_caches();
    let sub = heaven
        .fetch_region_hierarchical(oid2, &mi(&[(0, 29), (0, 29)]))
        .unwrap();
    assert_eq!(sub.sum(), 7.0 * 900.0);
}

#[test]
fn prefetched_supertile_serves_next_query_from_cache() {
    let mut config = small_st_config();
    config.prefetch = PrefetchPolicy::NextInOrder(3);
    let (mut heaven, oid) = setup(config);
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    let sts = heaven.catalog().object_supertiles(oid);
    let r0 = heaven.catalog().meta(sts[0]).unwrap().members[0]
        .domain
        .clone();
    let r1 = heaven.catalog().meta(sts[1]).unwrap().members[0]
        .domain
        .clone();
    heaven.fetch_region_hierarchical(oid, &r0).unwrap();
    let foreground = |h: &Heaven| h.tape_stats().bytes_read - h.stats().prefetch_bytes;
    let fg_after_first = foreground(&heaven);
    heaven.fetch_region_hierarchical(oid, &r1).unwrap();
    assert_eq!(
        foreground(&heaven),
        fg_after_first,
        "successor query must be served by the prefetched super-tile \
         (only background prefetch traffic may grow)"
    );
}

#[test]
fn double_export_rejected() {
    let (mut heaven, oid) = setup(small_st_config());
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    assert!(heaven.export_object(oid, ExportMode::Tct).is_err());
}

#[test]
fn eviction_policies_all_function_end_to_end() {
    for policy in EvictionPolicy::all() {
        let mut config = small_st_config();
        config.eviction = policy;
        config.disk_cache_bytes = 3 * 2048; // room for ~3 small super-tiles
        let (mut heaven, oid) = setup(config);
        heaven.export_object(oid, ExportMode::Tct).unwrap();
        heaven.clear_caches();
        // sweep all corners twice
        for _ in 0..2 {
            for q in [
                mi(&[(0, 9), (0, 9)]),
                mi(&[(50, 59), (0, 9)]),
                mi(&[(0, 9), (50, 59)]),
                mi(&[(50, 59), (50, 59)]),
            ] {
                let sub = heaven.fetch_region_hierarchical(oid, &q).unwrap();
                let p = sub.domain().lo();
                assert_eq!(sub.get_f64(&p).unwrap(), value_at(&p), "{policy:?}");
            }
        }
    }
}

#[test]
fn tct_pipelined_time_beats_serialized() {
    let (mut heaven, oid) = setup(small_st_config());
    let report = heaven.export_object(oid, ExportMode::Tct).unwrap();
    assert!(report.pipelined_s <= report.elapsed_s + 1e-9);
    assert!(report.pipelined_s > 0.0);
}

#[test]
fn scheduling_toggle_changes_fetch_order_not_results() {
    for scheduling in [true, false] {
        let mut config = small_st_config();
        config.scheduling = scheduling;
        let (mut heaven, oid) = setup(config);
        heaven.export_object(oid, ExportMode::Tct).unwrap();
        heaven.clear_caches();
        let sub = heaven
            .fetch_region_hierarchical(oid, &mi(&[(0, 59), (0, 59)]))
            .unwrap();
        let p = Point::new(vec![33, 44]);
        assert_eq!(sub.get_f64(&p).unwrap(), value_at(&p));
    }
}
