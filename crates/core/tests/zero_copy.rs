//! Acceptance test for zero-copy tile materialization: a warm-cache
//! region fetch over a 16-tile super-tile must perform exactly one
//! payload-sized copy — patching the member cells into the result array.
//! Everything upstream (cache hit, member decode) is refcounted buffer
//! sharing and must not contribute to `heaven.bytes_copied`.

use heaven_array::{CellType, MDArray, Minterval, Point, Tile, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_core::{AccessPattern, ClusteringStrategy, ExportMode, Heaven, HeavenConfig};
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, SimClock, TapeLibrary};

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

/// One 40x40 i32 object in 10x10 tiles → a 4x4 grid of 16 tiles.
fn setup() -> (Heaven, u64) {
    let clock = SimClock::new();
    let db = Database::new(heaven_tape::DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("climate", CellType::I32, 2).unwrap();
    let arr = MDArray::generate(mi(&[(0, 39), (0, 39)]), CellType::I32, |p| {
        (p.coord(0) * 100 + p.coord(1)) as f64
    });
    let oid = adb
        .insert_object(
            "climate",
            &arr,
            Tiling::Regular {
                tile_shape: vec![10, 10],
            },
        )
        .unwrap();
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 2, clock);
    let tile_encoded = (Tile::header_len(2) + 10 * 10 * 4) as u64;
    let config = HeavenConfig {
        // all 16 tiles in a single super-tile
        supertile_bytes: Some(16 * tile_encoded),
        clustering: ClusteringStrategy::EStar(AccessPattern::Uniform),
        // no in-memory tile cache: the warm path must go through the
        // shared super-tile decode, not tile-cache hits
        mem_cache_bytes: 0,
        ..HeavenConfig::default()
    };
    (Heaven::new(adb, lib, config), oid)
}

#[test]
fn warm_fetch_of_16_tile_supertile_copies_payload_exactly_once() {
    let (mut heaven, oid) = setup();
    let report = heaven.export_object(oid, ExportMode::Tct).unwrap();
    assert_eq!(report.supertiles, 1, "16 tiles must land in one super-tile");
    let st = heaven.catalog().object_supertiles(oid)[0];
    assert_eq!(heaven.catalog().meta(st).unwrap().members.len(), 16);

    let region = mi(&[(0, 39), (0, 39)]);
    // Cold fetch stages the super-tile payload into the disk cache.
    let cold = heaven.fetch_region_hierarchical(oid, &region).unwrap();

    let before = heaven.stats().bytes_copied;
    let warm = heaven.fetch_region_hierarchical(oid, &region).unwrap();
    let copied = heaven.stats().bytes_copied - before;

    let payload_bytes = region.cell_count() * CellType::I32.size_bytes() as u64;
    assert_eq!(
        copied, payload_bytes,
        "warm fetch must copy exactly one payload worth of bytes"
    );
    // the per-query breakdown carries the same delta (shown by \timing)
    let b = heaven.last_query_breakdown().unwrap();
    assert_eq!(b.bytes_copied, payload_bytes);
    assert_eq!(warm, cold);
    assert_eq!(warm.get_f64(&Point::new(vec![23, 7])).unwrap(), 2307.0);
}

#[test]
fn bytes_copied_is_visible_in_the_metrics_registry() {
    let (mut heaven, oid) = setup();
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    let region = mi(&[(0, 9), (0, 9)]);
    heaven.fetch_region_hierarchical(oid, &region).unwrap();
    let snap = heaven.metrics().snapshot();
    let v = snap
        .iter()
        .find_map(|(name, v)| match (*name, v) {
            ("heaven.bytes_copied", heaven_obs::MetricValue::Counter(c)) => Some(*c),
            _ => None,
        })
        .unwrap_or(0);
    assert_eq!(v, heaven.stats().bytes_copied);
    assert!(v >= 10 * 10 * 4, "at least the patched region was counted");
}
