//! Tests of inter-query batch scheduling and export-report invariants.

use heaven_array::{CellType, MDArray, Minterval, Point, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_core::{AccessPattern, ClusteringStrategy, ExportMode, Heaven, HeavenConfig};
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, DiskProfile, SimClock, TapeLibrary};

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

fn value_at(k: u64, p: &Point) -> f64 {
    (k * 100_000) as f64 + (p.coord(0) * 100 + p.coord(1)) as f64
}

/// Heaven with `n` 40x40 objects on a single drive.
fn setup(n: u64, scheduling: bool) -> (Heaven, Vec<u64>) {
    let clock = SimClock::new();
    let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("c", CellType::F64, 2).unwrap();
    let mut oids = Vec::new();
    for k in 0..n {
        let arr = MDArray::generate(mi(&[(0, 39), (0, 39)]), CellType::F64, |p| value_at(k, p));
        oids.push(
            adb.insert_object(
                "c",
                &arr,
                Tiling::Regular {
                    tile_shape: vec![10, 10],
                },
            )
            .unwrap(),
        );
    }
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 1, clock);
    let config = HeavenConfig {
        supertile_bytes: Some(4 * 1024),
        clustering: ClusteringStrategy::EStar(AccessPattern::Uniform),
        scheduling,
        medium_per_object: true, // spread objects over media
        ..HeavenConfig::default()
    };
    (Heaven::new(adb, lib, config), oids)
}

#[test]
fn batch_returns_correct_results_in_request_order() {
    let (mut heaven, oids) = setup(3, true);
    for &oid in &oids {
        heaven.export_object(oid, ExportMode::Tct).unwrap();
    }
    heaven.clear_caches();
    // interleave objects deliberately
    let batch = vec![
        (oids[2], mi(&[(0, 9), (0, 9)])),
        (oids[0], mi(&[(30, 39), (30, 39)])),
        (oids[1], mi(&[(10, 19), (10, 19)])),
        (oids[2], mi(&[(20, 29), (0, 9)])),
    ];
    let results = heaven.fetch_batch(&batch).unwrap();
    assert_eq!(results.len(), 4);
    for ((oid, region), res) in batch.iter().zip(&results) {
        assert_eq!(res.domain(), region);
        let k = oids.iter().position(|o| o == oid).unwrap() as u64;
        for p in region.iter_points() {
            assert_eq!(res.get_f64(&p).unwrap(), value_at(k, &p), "object {oid}");
        }
    }
}

#[test]
fn batch_scheduling_reduces_mounts_on_interleaved_objects() {
    // Same batch, scheduling on vs off; objects on different media with a
    // single drive, so interleaved access thrashes.
    let batch_spec: Vec<(usize, Minterval)> =
        (0..8).map(|i| (i % 4, mi(&[(0, 39), (0, 39)]))).collect();
    let mut mounts = Vec::new();
    for scheduling in [false, true] {
        let (mut heaven, oids) = setup(4, scheduling);
        for &oid in &oids {
            heaven.export_object(oid, ExportMode::Tct).unwrap();
        }
        heaven.clear_caches();
        let before = heaven.tape_stats().mounts;
        let batch: Vec<(u64, Minterval)> = batch_spec
            .iter()
            .map(|&(i, ref r)| (oids[i], r.clone()))
            .collect();
        heaven.fetch_batch(&batch).unwrap();
        mounts.push(heaven.tape_stats().mounts - before);
    }
    assert!(
        mounts[1] <= mounts[0],
        "scheduled {} mounts vs naive {}",
        mounts[1],
        mounts[0]
    );
    // with medium-per-object and 4 objects, the scheduled batch needs at
    // most one mount per medium (one may still be warm from the export)
    assert!(mounts[1] <= 4, "scheduled mounts {}", mounts[1]);
}

#[test]
fn batch_on_unexported_objects_reads_from_disk() {
    let (mut heaven, oids) = setup(2, true);
    // nothing exported: the batch must work purely from secondary storage
    let batch = vec![
        (oids[0], mi(&[(0, 19), (0, 19)])),
        (oids[1], mi(&[(20, 39), (20, 39)])),
    ];
    let results = heaven.fetch_batch(&batch).unwrap();
    assert_eq!(results.len(), 2);
    assert_eq!(heaven.tape_stats().bytes_read, 0);
    assert_eq!(
        results[1].get_f64(&Point::new(vec![25, 25])).unwrap(),
        value_at(1, &Point::new(vec![25, 25]))
    );
}

#[test]
fn export_report_accounts_bytes_and_media() {
    // A tiny buffer pool forces the export's tile reads to hit the disk,
    // so the DBMS stage cost is visible.
    let clock = SimClock::new();
    let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 8);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("c", CellType::F64, 2).unwrap();
    let arr = MDArray::generate(mi(&[(0, 39), (0, 39)]), CellType::F64, |p| value_at(0, p));
    let oid = adb
        .insert_object(
            "c",
            &arr,
            Tiling::Regular {
                tile_shape: vec![10, 10],
            },
        )
        .unwrap();
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 1, clock);
    let mut heaven = Heaven::new(
        adb,
        lib,
        HeavenConfig {
            supertile_bytes: Some(4 * 1024),
            ..HeavenConfig::default()
        },
    );
    let oids = [oid];
    let rep = heaven.export_object(oids[0], ExportMode::Tct).unwrap();
    // bytes = sum of encoded tile sizes
    let meta = heaven.arraydb().object(oids[0]).unwrap();
    let expect: u64 = meta
        .tiles
        .iter()
        .map(|(d, _)| heaven_array::Tile::header_len(2) as u64 + d.cell_count() * 8)
        .sum();
    assert_eq!(rep.bytes, expect);
    assert!(!rep.media.is_empty());
    assert!(rep.dbms_read_s > 0.0);
    assert!(rep.tape_write_s > 0.0);
    assert!(rep.pipelined_s <= rep.elapsed_s + 1e-9);
    // catalog agrees with report
    assert_eq!(
        heaven.catalog().object_supertiles(oids[0]).len(),
        rep.supertiles
    );
}

#[test]
fn medium_per_object_isolates_objects() {
    let (mut heaven, oids) = setup(3, true);
    for &oid in &oids {
        heaven.export_object(oid, ExportMode::Tct).unwrap();
    }
    let mut media: Vec<u64> = oids
        .iter()
        .flat_map(|&oid| {
            heaven
                .catalog()
                .object_supertiles(oid)
                .into_iter()
                .map(|st| heaven.catalog().address(st).unwrap().medium)
                .collect::<Vec<_>>()
        })
        .collect();
    media.sort_unstable();
    media.dedup();
    assert_eq!(media.len(), 3, "each object on its own medium");
}

#[test]
fn naive_and_tct_exports_produce_identical_query_results() {
    let region = mi(&[(5, 34), (5, 34)]);
    let mut results = Vec::new();
    for mode in [ExportMode::Naive, ExportMode::Tct] {
        let (mut heaven, oids) = setup(1, true);
        heaven.export_object(oids[0], mode).unwrap();
        heaven.clear_caches();
        results.push(heaven.fetch_region_hierarchical(oids[0], &region).unwrap());
    }
    assert_eq!(results[0], results[1]);
}

#[test]
fn export_collection_archives_everything_once() {
    let (mut heaven, oids) = setup(3, true);
    // pre-export one object: export_collection must skip it
    heaven.export_object(oids[0], ExportMode::Tct).unwrap();
    let reports = heaven.export_collection("c", ExportMode::Tct).unwrap();
    assert_eq!(reports.len(), 2);
    for &oid in &oids {
        assert!(heaven.catalog().is_exported(oid));
    }
    // idempotent: second run exports nothing
    let again = heaven.export_collection("c", ExportMode::Tct).unwrap();
    assert!(again.is_empty());
}

#[test]
fn archive_report_reflects_state() {
    let (mut heaven, oids) = setup(2, true);
    heaven.export_object(oids[0], ExportMode::Tct).unwrap();
    let r = heaven.archive_report();
    assert_eq!(r.exported_objects, 1);
    assert_eq!(r.resident_objects, 1);
    assert!(r.supertiles > 0);
    assert!(!r.media.is_empty());
    assert!(r.simulated_s > 0.0);
    let text = r.to_string();
    assert!(text.contains("1 exported / 1 resident"));
    assert!(text.contains("medium"));
}

#[test]
fn mo_media_serve_sparse_queries_with_partial_supertile_reads() {
    // Same archive on tape vs a magneto-optical jukebox: the MO system may
    // read individual member tiles out of a super-tile block; tape must
    // stream the whole block.
    let build = |profile: DeviceProfile| -> (Heaven, u64) {
        let clock = SimClock::new();
        let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 4096);
        let mut adb = ArrayDb::create(db).unwrap();
        adb.create_collection("c", CellType::F64, 2).unwrap();
        let arr = MDArray::generate(mi(&[(0, 39), (0, 39)]), CellType::F64, |p| value_at(0, p));
        let oid = adb
            .insert_object(
                "c",
                &arr,
                Tiling::Regular {
                    tile_shape: vec![10, 10],
                },
            )
            .unwrap();
        let lib = TapeLibrary::new(profile, 1, clock);
        let mut heaven = Heaven::new(
            adb,
            lib,
            HeavenConfig {
                supertile_bytes: Some(16 * 1024), // all 16 tiles in one ST
                ..HeavenConfig::default()
            },
        );
        heaven.export_object(oid, ExportMode::Tct).unwrap();
        heaven.clear_caches();
        (heaven, oid)
    };
    let q = mi(&[(0, 9), (0, 9)]); // one tile of sixteen
    let (mut tape, oid_t) = build(DeviceProfile::ibm3590());
    let sub_t = tape.fetch_region_hierarchical(oid_t, &q).unwrap();
    let (mut mo, oid_m) = build(DeviceProfile::mo_disk());
    let sub_m = mo.fetch_region_hierarchical(oid_m, &q).unwrap();
    assert_eq!(sub_t, sub_m, "identical data either way");
    assert!(
        mo.stats().st_tape_bytes < tape.stats().st_tape_bytes / 4,
        "MO read {} bytes, tape {}",
        mo.stats().st_tape_bytes,
        tape.stats().st_tape_bytes
    );
}

#[test]
fn slot_limited_archive_pays_shelf_fetches() {
    let (mut heaven, oids) = setup(4, true); // medium per object
    for &oid in &oids {
        heaven.export_object(oid, ExportMode::Tct).unwrap();
    }
    heaven.clear_caches();
    heaven.set_slot_config(heaven_tape::SlotConfig {
        slots: 2,
        shelf_fetch_s: 240.0,
    });
    // touching all four objects must unshelve at least one medium
    let t0 = heaven.clock().now_s();
    for &oid in &oids {
        heaven
            .fetch_region_hierarchical(oid, &mi(&[(0, 9), (0, 9)]))
            .unwrap();
    }
    let lib = heaven.store().library();
    assert!(lib.shelf_fetches() >= 1);
    assert!(heaven.clock().now_s() - t0 >= 240.0);
}

#[test]
fn compressed_export_roundtrips_and_shrinks_tape_traffic() {
    // Classified-raster-like data (long runs) compresses; the query result
    // must be identical either way.
    let build = |compress: bool| -> (Heaven, u64) {
        let clock = SimClock::new();
        let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 4096);
        let mut adb = ArrayDb::create(db).unwrap();
        adb.create_collection("mask", CellType::U8, 2).unwrap();
        // a step mask: big constant regions
        let arr = MDArray::generate(mi(&[(0, 63), (0, 63)]), CellType::U8, |p| {
            if p.coord(0) < 32 {
                0.0
            } else {
                200.0
            }
        });
        let oid = adb
            .insert_object(
                "mask",
                &arr,
                Tiling::Regular {
                    tile_shape: vec![16, 16],
                },
            )
            .unwrap();
        let lib = TapeLibrary::new(DeviceProfile::dlt7000(), 1, clock);
        let mut heaven = Heaven::new(
            adb,
            lib,
            HeavenConfig {
                supertile_bytes: Some(2048),
                compress,
                ..HeavenConfig::default()
            },
        );
        heaven.export_object(oid, ExportMode::Tct).unwrap();
        heaven.clear_caches();
        (heaven, oid)
    };
    let (mut plain, oid_p) = build(false);
    let (mut comp, oid_c) = build(true);
    let q = mi(&[(10, 50), (10, 50)]);
    let a = plain.fetch_region_hierarchical(oid_p, &q).unwrap();
    let b = comp.fetch_region_hierarchical(oid_c, &q).unwrap();
    assert_eq!(a, b, "compression must be lossless");
    assert!(
        comp.stats().st_tape_bytes < plain.stats().st_tape_bytes / 2,
        "compressed moved {} vs plain {}",
        comp.stats().st_tape_bytes,
        plain.stats().st_tape_bytes
    );
}

#[test]
fn compressed_archive_survives_update_and_restart() {
    let clock = SimClock::new();
    let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("m", CellType::U8, 2).unwrap();
    let arr = MDArray::generate(mi(&[(0, 31), (0, 31)]), CellType::U8, |_| 7.0);
    let oid = adb
        .insert_object(
            "m",
            &arr,
            Tiling::Regular {
                tile_shape: vec![16, 16],
            },
        )
        .unwrap();
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 1, clock);
    let mut heaven = Heaven::new(
        adb,
        lib,
        HeavenConfig {
            supertile_bytes: Some(2048),
            compress: true,
            ..HeavenConfig::default()
        },
    );
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    let patch = MDArray::generate(mi(&[(0, 7), (0, 7)]), CellType::U8, |_| 9.0);
    heaven.update_region(oid, &patch).unwrap();
    heaven.arraydb_mut().database_mut().checkpoint().unwrap();
    heaven.arraydb_mut().database_mut().crash();
    heaven.arraydb_mut().database_mut().recover().unwrap();
    heaven.arraydb_mut().rebuild_catalogs().unwrap();
    heaven.rebuild_archive_catalog().unwrap();
    let back = heaven
        .fetch_region_hierarchical(oid, &mi(&[(0, 31), (0, 31)]))
        .unwrap();
    assert_eq!(back.get_f64(&Point::new(vec![2, 2])).unwrap(), 9.0);
    assert_eq!(back.get_f64(&Point::new(vec![20, 20])).unwrap(), 7.0);
}

#[test]
fn media_scan_rebuilds_a_lost_catalog() {
    // Total catalog loss (in-memory AND persisted): a sequential scan over
    // the media recovers every super-tile, including post-update versions.
    let (mut heaven, oids) = setup(2, true);
    for &oid in &oids {
        heaven.export_object(oid, ExportMode::Tct).unwrap();
    }
    // update one region: appends a new block, leaves a dead one behind
    let patch = MDArray::generate(mi(&[(0, 4), (0, 4)]), CellType::F64, |_| -3.0);
    heaven.update_region(oids[0], &patch).unwrap();
    let before: Vec<usize> = oids
        .iter()
        .map(|&o| heaven.catalog().object_supertiles(o).len())
        .collect();

    let recovered = heaven.scavenge_catalog_from_media().unwrap();
    assert!(recovered > 0);
    let after: Vec<usize> = oids
        .iter()
        .map(|&o| heaven.catalog().object_supertiles(o).len())
        .collect();
    assert_eq!(before, after, "same live super-tiles per object");

    // data correct, including the update (the newer block wins)
    let sub = heaven
        .fetch_region_hierarchical(oids[0], &mi(&[(0, 9), (0, 9)]))
        .unwrap();
    assert_eq!(sub.get_f64(&Point::new(vec![2, 2])).unwrap(), -3.0);
    assert_eq!(
        sub.get_f64(&Point::new(vec![8, 8])).unwrap(),
        value_at(0, &Point::new(vec![8, 8]))
    );
    let sub2 = heaven
        .fetch_region_hierarchical(oids[1], &mi(&[(30, 39), (30, 39)]))
        .unwrap();
    assert_eq!(
        sub2.get_f64(&Point::new(vec![35, 35])).unwrap(),
        value_at(1, &Point::new(vec![35, 35]))
    );
}
