//! Observability integration tests: histogram registration across the
//! hierarchy, Prometheus exposition invariants, and query-breakdown
//! clamping.

use heaven_array::{CellType, MDArray, Minterval, Point, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_core::{AccessPattern, ClusteringStrategy, ExportMode, Heaven, HeavenConfig};
use heaven_obs::MetricValue;
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, SimClock, TapeLibrary};

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

fn value_at(p: &Point) -> f64 {
    (p.coord(0) * 1000 + p.coord(1)) as f64
}

/// Build a Heaven with one 60x60 i32 object in 10x10 tiles.
fn setup() -> (Heaven, u64) {
    let clock = SimClock::new();
    let db = Database::new(heaven_tape::DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("climate", CellType::I32, 2).unwrap();
    let arr = MDArray::generate(mi(&[(0, 59), (0, 59)]), CellType::I32, value_at);
    let oid = adb
        .insert_object(
            "climate",
            &arr,
            Tiling::Regular {
                tile_shape: vec![10, 10],
            },
        )
        .unwrap();
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 2, clock);
    let config = HeavenConfig {
        supertile_bytes: Some(4 * 500),
        clustering: ClusteringStrategy::EStar(AccessPattern::Uniform),
        ..HeavenConfig::default()
    };
    (Heaven::new(adb, lib, config), oid)
}

/// Run a cold query (from tape) and a warm repeat (from caches).
fn run_cold_and_warm(heaven: &mut Heaven, oid: u64) {
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    let q = mi(&[(0, 29), (0, 29)]);
    heaven.begin_query("cold");
    heaven.fetch_region_hierarchical(oid, &q).unwrap();
    heaven.end_query().unwrap();
    heaven.begin_query("warm");
    heaven.fetch_region_hierarchical(oid, &q).unwrap();
    heaven.end_query().unwrap();
}

#[test]
fn hierarchy_histograms_fill_during_a_cold_query() {
    let (mut heaven, oid) = setup();
    run_cold_and_warm(&mut heaven, oid);
    let snapshot = heaven.metrics().snapshot();
    let find = |name: &str| {
        snapshot
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.clone())
    };
    // Every level of the hierarchy that a cold fetch crosses must have
    // observed at least one duration.
    for name in [
        "heaven.query_latency_s",
        "heaven.st_fetch_hist_s",
        "heaven.st_fetch_bytes",
        "tape.exchange_hist_s",
        "tape.transfer_hist_s",
        "rdbms.page_io_hist_s",
    ] {
        match find(name) {
            Some(MetricValue::Histogram(h)) => {
                assert!(h.count > 0, "{name} has no observations");
                assert!(
                    h.quantile(0.5) >= h.min && h.quantile(0.5) <= h.max,
                    "{name}"
                );
            }
            other => panic!("{name} missing or not a histogram: {other:?}"),
        }
    }
    // Two bracketed queries → two latency observations.
    match find("heaven.query_latency_s") {
        Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 2),
        _ => unreachable!(),
    }
}

#[test]
fn prometheus_exposition_holds_cumulative_invariant() {
    let (mut heaven, oid) = setup();
    run_cold_and_warm(&mut heaven, oid);
    let text = heaven.metrics().render_prometheus();
    // For every histogram series: bucket counts are non-decreasing in
    // `le`, buckets end with `+Inf`, and the `+Inf` count equals `_count`.
    let mut cur: Option<(String, f64, u64)> = None; // (name, last le, last count)
    let mut inf_counts: Vec<(String, u64)> = Vec::new();
    let mut histograms = 0;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if rest.ends_with(" histogram") {
                histograms += 1;
            }
            cur = None;
            continue;
        }
        if let Some((series, value)) = line.split_once(' ') {
            if let Some((name, le)) = series
                .split_once("_bucket{le=\"")
                .map(|(n, l)| (n, l.trim_end_matches("\"}")))
            {
                let count: u64 = value.parse().unwrap();
                let le_v = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap()
                };
                if let Some((prev_name, prev_le, prev_count)) = &cur {
                    if prev_name == name {
                        assert!(le_v > *prev_le, "{name}: le not increasing");
                        assert!(count >= *prev_count, "{name}: counts not cumulative");
                    }
                }
                cur = Some((name.to_string(), le_v, count));
                if le == "+Inf" {
                    inf_counts.push((name.to_string(), count));
                }
            } else if let Some(name) = series.strip_suffix("_count") {
                if let Some((inf_name, inf_count)) = inf_counts.iter().find(|(n, _)| n == name) {
                    assert_eq!(
                        *inf_count,
                        value.parse::<u64>().unwrap(),
                        "{inf_name}: +Inf bucket != _count"
                    );
                }
            }
        }
    }
    assert!(
        histograms >= 5,
        "expected several histograms, got {histograms}:\n{text}"
    );
    assert!(
        !inf_counts.is_empty(),
        "no +Inf buckets found in exposition:\n{text}"
    );
    assert!(text.contains("heaven_query_latency_s_count 2"), "{text}");
}

#[test]
fn overattributed_breakdown_clamps_other_and_counts() {
    let (mut heaven, oid) = setup();
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    // A clean query attributes all time, leaving other_s >= 0 and no
    // over-attribution.
    heaven.begin_query("clean");
    heaven
        .fetch_region_hierarchical(oid, &mi(&[(0, 9), (0, 9)]))
        .unwrap();
    let clean = heaven.end_query().unwrap();
    assert!(clean.other_s >= 0.0);
    let over_before = heaven
        .metrics()
        .counter("heaven.breakdown_overattributed")
        .get();
    // Inflate a level counter inside the bracket: the attributed sum now
    // exceeds the clock delta, which must clamp — never a negative
    // residual — and be counted.
    heaven.begin_query("overlapped");
    heaven
        .fetch_region_hierarchical(oid, &mi(&[(10, 19), (0, 9)]))
        .unwrap();
    heaven.metrics().fcounter("tape.transfer_s").add(1e6);
    let b = heaven.end_query().unwrap();
    assert!(
        b.other_s >= 0.0,
        "other_s must never be negative, got {}",
        b.other_s
    );
    assert_eq!(b.other_s, 0.0);
    assert!(b.levels_sum_s() > b.total_s);
    assert_eq!(
        heaven
            .metrics()
            .counter("heaven.breakdown_overattributed")
            .get(),
        over_before + 1
    );
}
