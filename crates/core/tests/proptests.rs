//! Property-based tests of HEAVEN's core invariants: STAR/eSTAR
//! partitioning, the scheduler, the cache, and the super-tile codec.

use heaven_array::{CellType, LinearOrder, MDArray, Minterval, Point, Tile, Tiling};
use heaven_core::{
    count_exchanges, decode_all, encode_supertile, estar_partition, schedule, star_partition,
    AccessPattern, EvictionPolicy, FetchRequest, SuperTileCache, TileInfo,
};
use heaven_hsm::BlockAddress;
use proptest::prelude::*;

fn tile_infos(gx: u64, gy: u64, bytes: u64) -> (Vec<TileInfo>, Vec<u64>) {
    let dom = Minterval::new(&[(0, gx as i64 * 10 - 1), (0, gy as i64 * 10 - 1)]).unwrap();
    let tiling = Tiling::Regular {
        tile_shape: vec![10, 10],
    };
    let domains = tiling.tile_domains(&dom, CellType::U8).unwrap();
    let (grid, shape) = tiling.tile_grid(&dom, CellType::U8).unwrap();
    let tiles = domains
        .into_iter()
        .zip(grid)
        .enumerate()
        .map(|(i, (domain, gc))| TileInfo {
            id: i as u64,
            domain,
            bytes,
            grid: gc,
        })
        .collect();
    (tiles, shape)
}

proptest! {
    #[test]
    fn star_partition_is_exact_cover(
        gx in 1u64..10,
        gy in 1u64..10,
        tile_bytes in 1u64..500,
        target in 1u64..2000,
        order_idx in 0usize..3,
    ) {
        let order = [LinearOrder::RowMajor, LinearOrder::ZOrder, LinearOrder::Hilbert][order_idx];
        let (tiles, shape) = tile_infos(gx, gy, tile_bytes);
        let p = star_partition(&tiles, &shape, target, order);
        let mut seen = vec![0u32; tiles.len()];
        for g in &p {
            prop_assert!(!g.is_empty());
            let sz: u64 = g.iter().map(|&i| tiles[i].bytes).sum();
            prop_assert!(sz <= target.max(tile_bytes), "group {sz} > target {target}");
            for &i in g {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn estar_partition_is_exact_cover(
        gx in 1u64..8,
        gy in 1u64..8,
        target in 100u64..3000,
        pattern_idx in 0usize..3,
    ) {
        let pattern = [
            AccessPattern::Uniform,
            AccessPattern::Directional { axis: 1 },
            AccessPattern::SliceDominant { axis: 0 },
        ][pattern_idx];
        let (tiles, shape) = tile_infos(gx, gy, 100);
        let p = estar_partition(&tiles, &shape, target, pattern);
        let mut seen = vec![0u32; tiles.len()];
        for g in &p {
            for &i in g {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
        // merge tolerance: no group exceeds 1.25 * target + one tile
        for g in &p {
            let sz: u64 = g.iter().map(|&i| tiles[i].bytes).sum();
            prop_assert!(sz as f64 <= 1.25 * target as f64 + 100.0);
        }
    }

    #[test]
    fn schedule_preserves_request_set(
        reqs in prop::collection::vec((0u64..2000, 0u64..6, 0u64..10_000u64), 1..60),
    ) {
        let requests: Vec<FetchRequest> = reqs
            .iter()
            .map(|&(st, medium, offset)| FetchRequest {
                st,
                addr: BlockAddress { medium, offset, len: 10 },
            })
            .collect();
        let out = schedule(&requests, &[2]);
        // every distinct st appears exactly once
        let mut in_sts: Vec<u64> = requests.iter().map(|r| r.st).collect();
        in_sts.sort_unstable();
        in_sts.dedup();
        let mut out_sts: Vec<u64> = out.iter().map(|r| r.st).collect();
        out_sts.sort_unstable();
        out_sts.dedup();
        prop_assert_eq!(&out_sts, &in_sts);
        prop_assert_eq!(out.len(), in_sts.len());
        // within each medium, offsets ascend
        let mut last: std::collections::HashMap<u64, u64> = Default::default();
        for r in &out {
            if let Some(&prev) = last.get(&r.addr.medium) {
                prop_assert!(r.addr.offset >= prev);
            }
            last.insert(r.addr.medium, r.addr.offset);
        }
    }

    #[test]
    fn scheduled_order_never_increases_exchanges(
        reqs in prop::collection::vec((0u64..500, 0u64..5, 0u64..10_000u64), 1..40),
        drives in 1usize..3,
    ) {
        let requests: Vec<FetchRequest> = reqs
            .iter()
            .enumerate()
            .map(|(i, &(_, medium, offset))| FetchRequest {
                st: i as u64, // unique: keep all requests
                addr: BlockAddress { medium, offset, len: 10 },
            })
            .collect();
        let scheduled = schedule(&requests, &[]);
        let ex_naive = count_exchanges(&requests, drives, &[]);
        let ex_sched = count_exchanges(&scheduled, drives, &[]);
        prop_assert!(ex_sched <= ex_naive);
        // scheduled exchanges = number of distinct media (single visit each)
        let mut media: Vec<u64> = requests.iter().map(|r| r.addr.medium).collect();
        media.sort_unstable();
        media.dedup();
        prop_assert_eq!(ex_sched, media.len() as u64);
    }

    #[test]
    fn cache_usage_never_exceeds_capacity(
        capacity in 100u64..2000,
        ops in prop::collection::vec((0u64..30, 50u64..400, 0.0f64..100.0), 1..80),
        policy_idx in 0usize..4,
    ) {
        let policy = EvictionPolicy::all()[policy_idx];
        let cache = SuperTileCache::new(capacity, policy, None);
        for &(st, size, cost) in &ops {
            if cache.get(st).is_none() {
                cache.put_phantom(st, size, cost);
            }
            prop_assert!(cache.used() <= capacity);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, ops.len() as u64);
    }

    #[test]
    fn supertile_codec_roundtrips_any_tile_run(
        n in 1usize..10,
        seed in 0i64..1000,
    ) {
        let tiles: Vec<Tile> = (0..n)
            .map(|i| {
                let lo = i as i64 * 10;
                let dom = Minterval::new(&[(lo, lo + 9), (0, 4)]).unwrap();
                Tile::new(
                    i as u64 + 1,
                    7,
                    MDArray::generate(dom, CellType::I16, |p| {
                        ((seed + p.coord(0) * 5 + p.coord(1)) % 32_000) as f64
                    }),
                )
            })
            .collect();
        let (payload, meta) = encode_supertile(99, 7, &tiles);
        prop_assert_eq!(meta.total_len as usize, payload.len());
        let decoded = decode_all(&meta, &payload).unwrap();
        prop_assert_eq!(decoded, tiles);
    }

    /// Zero-copy decode of a sliced member equals the owned decode path,
    /// byte for byte.
    #[test]
    fn shared_decode_matches_owned_decode(
        n in 1usize..8,
        seed in 0i64..1000,
    ) {
        let tiles = seeded_tiles(n, seed);
        let (payload, meta) = encode_supertile(42, 9, &tiles);
        for m in &meta.members {
            let start = m.offset as usize;
            let end = start + m.len as usize;
            // old path: owned decode from a plain byte slice
            let (owned, used_o) = Tile::decode(&payload[start..end]).unwrap();
            // new path: zero-copy decode of a Bytes slice
            let slice = payload.slice(start..end);
            let (shared, used_s) = Tile::decode_shared(&slice, 0).unwrap();
            prop_assert_eq!(used_o, used_s);
            prop_assert_eq!(&owned, &shared);
            prop_assert_eq!(owned.data.bytes(), shared.data.bytes());
            prop_assert!(shared.data.is_shared(), "slice decode must borrow");
        }
    }

    /// Mutating one decoded member detaches it (copy-on-write) without
    /// disturbing its siblings or the shared payload.
    #[test]
    fn cow_mutation_leaves_siblings_untouched(
        n in 2usize..8,
        seed in 0i64..1000,
        victim_idx in 0usize..8,
    ) {
        let tiles = seeded_tiles(n, seed);
        let (payload, meta) = encode_supertile(42, 9, &tiles);
        let mut decoded = decode_all(&meta, &payload).unwrap();
        let victim = victim_idx % decoded.len();
        let p = Point::new(vec![victim as i64 * 10, 0]);
        decoded[victim].data.set(&p, 77.0).unwrap();
        prop_assert!(!decoded[victim].data.is_shared(), "write must detach");
        prop_assert_eq!(decoded[victim].data.get_f64(&p).unwrap(), 77.0);
        // a fresh decode of the same payload still matches the originals
        let fresh = decode_all(&meta, &payload).unwrap();
        prop_assert_eq!(&fresh, &tiles);
        for (i, (d, f)) in decoded.iter().zip(&fresh).enumerate() {
            if i != victim {
                prop_assert_eq!(d, f, "sibling {} changed", i);
            }
        }
    }
}

/// Deterministic run of `n` tiles along the first axis (10x5 i16 each).
fn seeded_tiles(n: usize, seed: i64) -> Vec<Tile> {
    (0..n)
        .map(|i| {
            let lo = i as i64 * 10;
            let dom = Minterval::new(&[(lo, lo + 9), (0, 4)]).unwrap();
            Tile::new(
                i as u64 + 1,
                9,
                MDArray::generate(dom, CellType::I16, |p| {
                    ((seed + p.coord(0) * 5 + p.coord(1)) % 32_000) as f64
                }),
            )
        })
        .collect()
}
