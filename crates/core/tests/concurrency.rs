//! Multi-session concurrency: sharded-cache integrity under parallel
//! load, single-session determinism against the single-owner system,
//! cross-session request coalescing, batched staging beating per-session
//! FIFO on media exchanges, and seeded-chaos determinism (same seed →
//! byte-identical answers and identical fault/recovery counters, single-
//! session and 8-thread concurrent).

use std::sync::{Arc, Barrier};
use std::time::Duration;

use heaven_array::{CellType, MDArray, Minterval, Point, Tile, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_core::{
    ConcurrentHeaven, EvictionPolicy, ExportMode, Heaven, HeavenConfig, Session, SuperTileCache,
    TileCache,
};
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, DiskProfile, FaultConfig, SimClock, TapeLibrary};

/// Edge of one square tile in cells.
const TILE_EDGE: i64 = 32;
/// Tiles per object axis (GRID x GRID tiles per object).
const GRID: i64 = 4;

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

/// The region of tile index `t` (0..GRID*GRID) of any object.
fn tile_region(t: i64) -> Minterval {
    let (gx, gy) = (t % GRID, t / GRID);
    mi(&[
        (gx * TILE_EDGE, (gx + 1) * TILE_EDGE - 1),
        (gy * TILE_EDGE, (gy + 1) * TILE_EDGE - 1),
    ])
}

/// Build a Heaven holding `objects` exported objects, each GRID x GRID
/// tiles with one super-tile per tile, each object on its own medium.
fn build_multi(objects: usize, drives: usize, batching: bool) -> (Heaven, Vec<u64>) {
    build_dual(objects, drives, batching, false)
}

/// [`build_multi`] with dual-copy archival selectable (chaos tests).
fn build_dual(
    objects: usize,
    drives: usize,
    batching: bool,
    dual_copy: bool,
) -> (Heaven, Vec<u64>) {
    let clock = SimClock::new();
    let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("conc", CellType::F32, 2).unwrap();
    let dom = mi(&[(0, GRID * TILE_EDGE - 1), (0, GRID * TILE_EDGE - 1)]);
    let mut oids = Vec::new();
    for o in 0..objects {
        let arr = MDArray::generate(dom.clone(), CellType::F32, |p: &Point| {
            (o as i64 * 1_000_000 + p.coord(0) * 1000 + p.coord(1)) as f64
        });
        oids.push(
            adb.insert_object(
                "conc",
                &arr,
                Tiling::Regular {
                    tile_shape: vec![TILE_EDGE as u64, TILE_EDGE as u64],
                },
            )
            .unwrap(),
        );
    }
    let tile_encoded = (Tile::header_len(2) + (TILE_EDGE * TILE_EDGE) as usize * 4) as u64;
    let config = HeavenConfig {
        supertile_bytes: Some(tile_encoded), // one super-tile per tile
        mem_cache_bytes: 0,                  // force the st-cache path
        medium_per_object: true,
        cache_shards: 8,
        cross_session_batching: batching,
        dual_copy,
        ..HeavenConfig::default()
    };
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), drives, clock);
    let mut heaven = Heaven::new(adb, lib, config);
    for &oid in &oids {
        let report = heaven.export_object(oid, ExportMode::Tct).unwrap();
        assert_eq!(report.supertiles as i64, GRID * GRID);
    }
    (heaven, oids)
}

#[test]
fn concurrent_facade_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConcurrentHeaven>();
    assert_send_sync::<Session<'static>>();
    assert_send_sync::<SuperTileCache>();
    assert_send_sync::<TileCache>();
}

#[test]
fn sharded_st_cache_stress_loses_no_updates() {
    let cache = Arc::new(SuperTileCache::with_shards(
        8_000,
        EvictionPolicy::Lru,
        None,
        8,
    ));
    let threads = 8usize;
    let ops = 400usize;
    std::thread::scope(|s| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            s.spawn(move || {
                for i in 0..ops {
                    let st = ((t * ops + i) % 97) as u64;
                    cache.put(st, vec![t as u8; 100], 1.0);
                    cache.get(st);
                    cache.get((st + 31) % 97);
                    // Capacity invariant must hold at every instant,
                    // observed concurrently with other writers.
                    assert!(cache.used() <= cache.capacity());
                }
            });
        }
    });
    let stats = cache.stats();
    // Rolled-up hit/miss totals equal the per-thread op sums: 2 lookups
    // per iteration, none lost to racing stripes.
    assert_eq!(stats.hits + stats.misses, (threads * ops * 2) as u64);
    assert!(cache.used() <= cache.capacity());
    assert!(stats.evictions > 0, "800 KB written into 8 KB must evict");
}

#[test]
fn sharded_tile_cache_stress_loses_no_updates() {
    let dom = mi(&[(0, 9)]);
    let cache = Arc::new(TileCache::with_shards(16_000, 8));
    let threads = 8usize;
    let ops = 300usize;
    std::thread::scope(|s| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            let dom = dom.clone();
            s.spawn(move || {
                for i in 0..ops {
                    let id = ((t * ops + i) % 61) as u64;
                    cache.put(Tile::new(id, 1, MDArray::zeros(dom.clone(), CellType::F64)));
                    cache.get(id);
                    assert!(cache.used() <= cache.capacity());
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, (threads * ops) as u64);
    assert!(cache.used() <= cache.capacity());
}

#[test]
fn single_session_matches_single_owner_byte_for_byte() {
    let (mut owner, oids_a) = build_multi(2, 2, true);
    let (concurrent, oids_b) = build_multi(2, 2, true);
    assert_eq!(oids_a, oids_b, "identical builds");
    let concurrent = concurrent.into_concurrent();
    let session = concurrent.session();
    let queries: Vec<(u64, Minterval)> = (0..8)
        .map(|q| (oids_a[q % 2], tile_region((q as i64 * 5) % (GRID * GRID))))
        .chain(oids_a.iter().map(|&o| {
            (
                o,
                mi(&[(0, GRID * TILE_EDGE - 1), (0, GRID * TILE_EDGE - 1)]),
            )
        }))
        .collect();
    for (oid, region) in &queries {
        let a = owner.fetch_region_hierarchical(*oid, region).unwrap();
        let b = session.fetch_region(*oid, region).unwrap();
        assert_eq!(a, b, "oid {oid} region {region}");
    }
    // Same tertiary work, not just the same answers.
    assert_eq!(
        owner.tape_stats().bytes_read,
        concurrent.tape_stats().bytes_read
    );
}

#[test]
fn duplicate_cross_session_requests_coalesce_into_one_fetch() {
    let (heaven, oids) = build_multi(1, 2, true);
    let mounts_before = heaven.tape_stats().mounts;
    let mut heaven = heaven.into_concurrent();
    heaven.set_batch_window(Duration::from_millis(50));
    let heaven = heaven; // freeze: sessions only need &self
    let oid = oids[0];
    let workers = 4usize;
    let barrier = Barrier::new(workers);
    let region = tile_region(6);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let barrier = &barrier;
                let heaven = &heaven;
                let region = region.clone();
                s.spawn(move || {
                    let session = heaven.session();
                    barrier.wait();
                    session.fetch_region(oid, &region).unwrap()
                })
            })
            .collect();
        let results: Vec<MDArray> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(results[0], *r, "coalesced waiters see the same payload");
        }
    });
    let metrics = heaven.metrics();
    assert_eq!(
        metrics.counter("heaven.st_tape_fetches").get(),
        1,
        "one tape fetch serves all four sessions"
    );
    assert!(
        metrics.counter("sched.coalesced_fetches").get() >= 1,
        "concurrent duplicates must coalesce"
    );
    assert!(
        heaven.tape_stats().mounts - mounts_before <= 1,
        "a single coalesced batch needs at most one media exchange, got {}",
        heaven.tape_stats().mounts - mounts_before
    );
}

/// Cold mixed workload: `workers` sessions, each stepping through the
/// objects in lockstep phase (all sessions want medium j at step j) but
/// each touching its own super-tile. Returns media exchanges measured.
fn run_cold_workload(batching: bool, window_ms: u64) -> u64 {
    let objects = 4usize;
    let (heaven, oids) = build_multi(objects, 1, batching);
    let mounts_before = heaven.tape_stats().mounts;
    let mut heaven = heaven.into_concurrent();
    heaven.set_batch_window(Duration::from_millis(window_ms));
    let heaven = heaven;
    let workers = 4usize;
    let steps = 8usize;
    let barrier = Barrier::new(workers);
    std::thread::scope(|s| {
        for w in 0..workers {
            let heaven = &heaven;
            let oids = &oids;
            let barrier = &barrier;
            s.spawn(move || {
                let session = heaven.session();
                barrier.wait();
                for j in 0..steps {
                    let region = tile_region((w as i64 * GRID + (j as i64 % GRID)) % (GRID * GRID));
                    session.fetch_region(oids[j % oids.len()], &region).unwrap();
                }
            });
        }
    });
    heaven.tape_stats().mounts - mounts_before
}

#[test]
fn cross_session_batching_beats_per_session_fifo_on_exchanges() {
    let fifo = run_cold_workload(false, 0);
    let batched = run_cold_workload(true, 25);
    assert!(
        batched < fifo,
        "batched staging ({batched} mounts) must beat per-session FIFO ({fifo} mounts)"
    );
}

#[test]
fn session_lanes_overlap_warm_queries_in_simulated_time() {
    // Two identical warm systems; the only difference is 1 session doing
    // all the work vs 4 sessions doing a quarter each.
    let elapsed = |sessions: usize| -> f64 {
        let (heaven, oids) = build_multi(1, 2, true);
        let heaven = heaven.into_concurrent();
        let oid = oids[0];
        // Stage everything (cold, shared clock), then measure warm.
        heaven
            .session()
            .fetch_region(
                oid,
                &mi(&[(0, GRID * TILE_EDGE - 1), (0, GRID * TILE_EDGE - 1)]),
            )
            .unwrap();
        let t0 = heaven.clock().now_s();
        let per_session = (GRID * GRID) as usize / sessions;
        // Fork every lane at t0, *before* any session runs: a session
        // created later would fork from a shared clock already advanced
        // by an earlier session's drop, serializing the epochs.
        let lanes: Vec<Session> = (0..sessions).map(|_| heaven.session()).collect();
        std::thread::scope(|s| {
            for (w, session) in lanes.into_iter().enumerate() {
                s.spawn(move || {
                    for t in 0..per_session {
                        let tile = (w * per_session + t) as i64;
                        session.fetch_region(oid, &tile_region(tile)).unwrap();
                    }
                });
            }
        });
        heaven.clock().now_s() - t0
    };
    let serial_s = elapsed(1);
    let overlapped_s = elapsed(4);
    assert!(serial_s > 0.0);
    assert!(
        overlapped_s < serial_s * 0.5,
        "4 lanes ({overlapped_s:.3}s) must overlap well under half of serial ({serial_s:.3}s)"
    );
}

// ---------------------------------------------------------------- chaos

/// Fault/recovery counters that are keyed per (kind, medium, offset,
/// attempt) and therefore identical across thread interleavings.
/// `tape.robot_stalls` is deliberately absent: contention is rolled per
/// *mount*, and mount counts legitimately vary with scheduling order.
const CHAOS_COUNTERS: [&str; 8] = [
    "tape.drive_failures",
    "tape.media_read_errors",
    "tape.corrupted_reads",
    "hsm.checksum_failures",
    "hsm.retries",
    "hsm.failovers",
    "hsm.media_lost",
    "sched.requeued_fetches",
];

fn chaos_counters(m: &heaven_obs::MetricsRegistry) -> Vec<u64> {
    CHAOS_COUNTERS.iter().map(|n| m.counter(n).get()).collect()
}

#[test]
fn chaos_same_seed_is_deterministic_single_session() {
    let run = |plan: Option<FaultConfig>| -> (Vec<MDArray>, Vec<u64>) {
        let (mut h, oids) = build_dual(2, 2, false, true);
        h.set_fault_plan(plan);
        let mut results = Vec::new();
        for &oid in &oids {
            for t in 0..GRID * GRID {
                results.push(h.fetch_region_hierarchical(oid, &tile_region(t)).unwrap());
            }
        }
        (results, chaos_counters(h.metrics()))
    };
    // Seed chosen so the chaos schedule never corrupts both copies of a
    // super-tile; outcomes are seed-deterministic, so it stays valid.
    let seed = 11u64;
    let (clean, clean_ctr) = run(None);
    let (a, a_ctr) = run(Some(FaultConfig::chaos(seed)));
    let (b, b_ctr) = run(Some(FaultConfig::chaos(seed)));
    assert_eq!(a, b, "same seed must give byte-identical answers");
    assert_eq!(a_ctr, b_ctr, "same seed must give identical fault counters");
    assert_eq!(a, clean, "recovery must reproduce the fault-free bytes");
    assert_eq!(clean_ctr.iter().sum::<u64>(), 0, "no faults without a plan");
    let by_name: std::collections::HashMap<&str, u64> = CHAOS_COUNTERS
        .iter()
        .copied()
        .zip(a_ctr.iter().copied())
        .collect();
    assert!(
        by_name["tape.drive_failures"]
            + by_name["tape.media_read_errors"]
            + by_name["tape.corrupted_reads"]
            > 0,
        "chaos rates must actually inject faults: {by_name:?}"
    );
    assert_eq!(
        by_name["hsm.checksum_failures"], by_name["tape.corrupted_reads"],
        "every corrupted read must be caught by its checksum"
    );
    assert_eq!(
        by_name["hsm.media_lost"], 0,
        "dual copies must survive this seed"
    );
    assert!(
        by_name["hsm.retries"] > 0,
        "transient errors must be retried"
    );
}

#[test]
fn chaos_same_seed_is_deterministic_concurrent() {
    // 8 sessions x 4 disjoint tile regions over 2 objects, batching on.
    let workers = 8usize;
    let per_worker = ((GRID * GRID) / 4) as usize; // 4 tiles each
    let run = |plan: Option<FaultConfig>| -> (Vec<Vec<MDArray>>, Vec<u64>) {
        let (h, oids) = build_dual(2, 2, true, true);
        let mut h = h.into_concurrent();
        h.set_batch_window(Duration::from_millis(25));
        h.set_fault_plan(plan);
        let h = h;
        let barrier = Barrier::new(workers);
        let results: Vec<Vec<MDArray>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let h = &h;
                    let oids = &oids;
                    let barrier = &barrier;
                    s.spawn(move || {
                        let session = h.session();
                        barrier.wait();
                        (0..per_worker)
                            .map(|t| {
                                let tile = ((w / 2) * per_worker + t) as i64;
                                session
                                    .fetch_region(oids[w % 2], &tile_region(tile))
                                    .unwrap()
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|j| j.join().unwrap()).collect()
        });
        (results, chaos_counters(h.metrics()))
    };
    let seed = 3u64;
    let (clean, _) = run(None);
    let (a, a_ctr) = run(Some(FaultConfig::chaos(seed)));
    let (b, b_ctr) = run(Some(FaultConfig::chaos(seed)));
    assert_eq!(
        a, b,
        "same seed must give byte-identical answers across threads"
    );
    assert_eq!(
        a_ctr, b_ctr,
        "access-keyed fault counters must not depend on interleaving"
    );
    assert_eq!(a, clean, "recovery must reproduce the fault-free bytes");
    let by_name: std::collections::HashMap<&str, u64> = CHAOS_COUNTERS
        .iter()
        .copied()
        .zip(a_ctr.iter().copied())
        .collect();
    assert!(
        by_name["tape.drive_failures"]
            + by_name["tape.media_read_errors"]
            + by_name["tape.corrupted_reads"]
            > 0,
        "chaos rates must actually inject faults: {by_name:?}"
    );
    assert_eq!(
        by_name["hsm.checksum_failures"], by_name["tape.corrupted_reads"],
        "every corrupted read must be caught by its checksum"
    );
    assert_eq!(
        by_name["hsm.media_lost"], 0,
        "dual copies must survive this seed"
    );
}

#[test]
fn batcher_requeues_survive_drive_failures() {
    // Drive-failure-only chaos: every failed batched fetch must requeue
    // (retry or replica failover) without losing a coalesced waiter, and
    // the requeue count must reconcile exactly with the injected failures.
    let workers = 8usize;
    let per_worker = ((GRID * GRID) / 4) as usize;
    let run = |plan: Option<FaultConfig>| -> (Vec<Vec<MDArray>>, Vec<u64>) {
        let (h, oids) = build_dual(2, 2, true, true);
        let mut h = h.into_concurrent();
        h.set_batch_window(Duration::from_millis(25));
        h.set_fault_plan(plan);
        let h = h;
        let barrier = Barrier::new(workers);
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let h = &h;
                    let oids = &oids;
                    let barrier = &barrier;
                    s.spawn(move || {
                        let session = h.session();
                        barrier.wait();
                        (0..per_worker)
                            .map(|t| {
                                let tile = ((w / 2) * per_worker + t) as i64;
                                session
                                    .fetch_region(oids[w % 2], &tile_region(tile))
                                    .unwrap()
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|j| j.join().unwrap()).collect()
        });
        (results, chaos_counters(h.metrics()))
    };
    let mut fc = FaultConfig::quiet(17);
    fc.drive_failure_per_read = 0.3;
    let (clean, _) = run(None);
    let (faulty, ctr) = run(Some(fc));
    assert_eq!(faulty, clean, "no waiter may be lost or fed wrong bytes");
    let by_name: std::collections::HashMap<&str, u64> = CHAOS_COUNTERS
        .iter()
        .copied()
        .zip(ctr.iter().copied())
        .collect();
    assert!(
        by_name["sched.requeued_fetches"] > 0,
        "a 30% drive-failure rate must force requeues"
    );
    assert_eq!(
        by_name["sched.requeued_fetches"], by_name["tape.drive_failures"],
        "every drive failure requeues its fetch exactly once: {by_name:?}"
    );
    assert_eq!(
        by_name["hsm.media_lost"], 0,
        "retries + replica must recover all"
    );
}
