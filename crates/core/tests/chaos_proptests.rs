//! Property tests of the failure model: under *any* seeded fault
//! schedule, with dual-copy archival on, every query either returns the
//! exact fault-free bytes or fails with a typed
//! [`HeavenError::MediaLost`] — never silent corruption — and every
//! corrupted read is caught by its checksum.

use heaven_array::{CellType, MDArray, Minterval, Point, Tile, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_core::{ExportMode, Heaven, HeavenConfig, HeavenError};
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, DiskProfile, FaultConfig, SimClock, TapeLibrary};
use proptest::prelude::*;

const TILE_EDGE: i64 = 16;
const GRID: i64 = 2;

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

fn tile_region(t: i64) -> Minterval {
    let (gx, gy) = (t % GRID, t / GRID);
    mi(&[
        (gx * TILE_EDGE, (gx + 1) * TILE_EDGE - 1),
        (gy * TILE_EDGE, (gy + 1) * TILE_EDGE - 1),
    ])
}

/// A small archived system: one object, GRID x GRID tiles, one
/// super-tile per tile, dual-copy on. Exports happen fault-free; the
/// plan is armed afterwards so only the read path sees chaos.
fn build(plan: Option<FaultConfig>, compress: bool) -> (Heaven, u64) {
    let clock = SimClock::new();
    let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("chaos", CellType::F32, 2).unwrap();
    let dom = mi(&[(0, GRID * TILE_EDGE - 1), (0, GRID * TILE_EDGE - 1)]);
    let arr = MDArray::generate(dom, CellType::F32, |p: &Point| {
        (p.coord(0) * 1000 + p.coord(1)) as f64
    });
    let oid = adb
        .insert_object(
            "chaos",
            &arr,
            Tiling::Regular {
                tile_shape: vec![TILE_EDGE as u64, TILE_EDGE as u64],
            },
        )
        .unwrap();
    let tile_encoded = (Tile::header_len(2) + (TILE_EDGE * TILE_EDGE) as usize * 4) as u64;
    let config = HeavenConfig {
        supertile_bytes: Some(tile_encoded),
        mem_cache_bytes: 0,
        dual_copy: true,
        compress,
        ..HeavenConfig::default()
    };
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 2, clock);
    let mut heaven = Heaven::new(adb, lib, config);
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.set_fault_plan(plan);
    (heaven, oid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any fault schedule: correct bytes or a typed `MediaLost`, never a
    /// silently wrong answer; checksum failures account for every
    /// corrupted read.
    #[test]
    fn faults_never_cause_silent_corruption(
        seed in 0u64..10_000,
        drive in 0.0f64..0.6,
        media in 0.0f64..0.6,
        corrupt in 0.0f64..0.6,
        robot in 0.0f64..0.5,
    ) {
        let (mut clean, oid) = build(None, false);
        let reference: Vec<MDArray> = (0..GRID * GRID)
            .map(|t| clean.fetch_region_hierarchical(oid, &tile_region(t)).unwrap())
            .collect();

        let mut fc = FaultConfig::chaos(seed);
        fc.drive_failure_per_read = drive;
        fc.media_read_error_per_read = media;
        fc.corrupt_per_read = corrupt;
        fc.robot_contention_per_mount = robot;
        let (mut faulty, oid_f) = build(Some(fc), false);
        prop_assert_eq!(oid_f, oid);

        for t in 0..GRID * GRID {
            match faulty.fetch_region_hierarchical(oid, &tile_region(t)) {
                Ok(got) => prop_assert_eq!(
                    &got,
                    &reference[t as usize],
                    "tile {} returned wrong bytes under faults",
                    t
                ),
                Err(HeavenError::MediaLost { .. }) => {} // typed loss is allowed
                Err(e) => prop_assert!(false, "untyped failure leaked: {e}"),
            }
        }
        let m = faulty.metrics();
        prop_assert_eq!(
            m.counter("hsm.checksum_failures").get(),
            m.counter("tape.corrupted_reads").get(),
            "every corrupted read must be rejected by its checksum"
        );
        // MediaLost is only legal when both copies were actually exhausted.
        if m.counter("hsm.media_lost").get() > 0 {
            prop_assert!(
                m.counter("tape.drive_failures").get()
                    + m.counter("tape.media_read_errors").get()
                    + m.counter("tape.corrupted_reads").get()
                    > 0
            );
        }
    }

    /// With faults disabled the whole ladder is dormant: zero recovery
    /// activity, byte-exact answers.
    #[test]
    fn quiet_plan_is_a_no_op(seed in 0u64..10_000) {
        let (mut clean, oid) = build(None, false);
        let (mut quiet, _) = build(Some(FaultConfig::quiet(seed)), false);
        for t in 0..GRID * GRID {
            let a = clean.fetch_region_hierarchical(oid, &tile_region(t)).unwrap();
            let b = quiet.fetch_region_hierarchical(oid, &tile_region(t)).unwrap();
            prop_assert_eq!(a, b);
        }
        let m = quiet.metrics();
        for c in ["hsm.retries", "hsm.failovers", "hsm.checksum_failures", "hsm.media_lost"] {
            prop_assert_eq!(m.counter(c).get(), 0, "{} must stay zero", c);
        }
    }

    /// Compression under chaos: the adaptive codec sits between the wire
    /// checksum and the cache. A flipped bit in a compressed block must
    /// surface as a typed error and fail over to the replica — never a
    /// panic, a codec-level wrong answer, or silently wrong bytes.
    #[test]
    fn compressed_archive_survives_chaos(
        seed in 0u64..10_000,
        drive in 0.0f64..0.5,
        media in 0.0f64..0.5,
        corrupt in 0.0f64..0.6,
    ) {
        let (mut clean, oid) = build(None, true);
        let reference: Vec<MDArray> = (0..GRID * GRID)
            .map(|t| clean.fetch_region_hierarchical(oid, &tile_region(t)).unwrap())
            .collect();

        let mut fc = FaultConfig::chaos(seed);
        fc.drive_failure_per_read = drive;
        fc.media_read_error_per_read = media;
        fc.corrupt_per_read = corrupt;
        fc.robot_contention_per_mount = 0.0;
        let (mut faulty, _) = build(Some(fc), true);

        for t in 0..GRID * GRID {
            match faulty.fetch_region_hierarchical(oid, &tile_region(t)) {
                Ok(got) => prop_assert_eq!(
                    &got,
                    &reference[t as usize],
                    "tile {} returned wrong bytes under faults with compression",
                    t
                ),
                Err(HeavenError::MediaLost { .. }) => {} // typed loss is allowed
                Err(e) => prop_assert!(false, "untyped failure leaked through the codec: {e}"),
            }
        }
        let m = faulty.metrics();
        prop_assert_eq!(
            m.counter("hsm.checksum_failures").get(),
            m.counter("tape.corrupted_reads").get(),
            "every corrupted compressed read must be rejected by its checksum"
        );
    }
}
