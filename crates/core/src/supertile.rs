//! Super-tiles: HEAVEN's unit of tertiary-storage transfer (paper §3.3).
//!
//! Tiles — the DBMS access unit, megabytes — are far too small to read from
//! tape individually: every access would pay a locate of tens of seconds.
//! A *super-tile* groups many spatially adjacent tiles into one block of
//! typically hundreds of megabytes, so a single locate amortizes over all
//! member tiles. The serialized form carries a directory so an individual
//! member tile can be cut out of the raw bytes without decoding the rest.

use crate::error::{HeavenError, Result};
use bytes::{Bytes, BytesMut};
use heaven_array::{Minterval, ObjectId, Tile, TileId};

/// Identifier of a super-tile.
pub type SuperTileId = u64;

/// Directory entry for one member tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberEntry {
    /// The member tile.
    pub tile: TileId,
    /// The tile's spatial domain.
    pub domain: Minterval,
    /// Byte offset of the tile's encoding within the super-tile payload.
    pub offset: u64,
    /// Length of the tile's encoding.
    pub len: u64,
}

/// Metadata of a super-tile (kept in HEAVEN's catalog; the payload lives on
/// tertiary storage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperTileMeta {
    /// Super-tile id.
    pub id: SuperTileId,
    /// Owning object.
    pub object: ObjectId,
    /// Member directory, in intra-super-tile cluster order.
    pub members: Vec<MemberEntry>,
    /// Total payload size in bytes.
    pub total_len: u64,
}

impl SuperTileMeta {
    /// Bounding box of all member tiles.
    pub fn bounding_box(&self) -> Option<Minterval> {
        let mut it = self.members.iter();
        let first = it.next()?.domain.clone();
        Some(it.fold(first, |acc, m| acc.hull(&m.domain).expect("same dim")))
    }

    /// Whether any member tile intersects `region`.
    pub fn touches(&self, region: &Minterval) -> bool {
        self.members.iter().any(|m| m.domain.intersects(region))
    }

    /// The member entry of a tile.
    pub fn member(&self, tile: TileId) -> Option<&MemberEntry> {
        self.members.iter().find(|m| m.tile == tile)
    }
}

/// Serialize a run of tiles into a super-tile payload; returns the bytes
/// and the member directory (offsets into those bytes). All member tiles
/// are packed into one allocation via [`Tile::encode_into`].
pub fn encode_supertile(
    id: SuperTileId,
    object: ObjectId,
    tiles: &[Tile],
) -> (Bytes, SuperTileMeta) {
    let total: usize = tiles.iter().map(|t| t.encoded_len()).sum();
    let mut payload = BytesMut::with_capacity(total);
    let mut members = Vec::with_capacity(tiles.len());
    for t in tiles {
        let offset = payload.len() as u64;
        t.encode_into(&mut payload);
        members.push(MemberEntry {
            tile: t.id,
            domain: t.domain().clone(),
            offset,
            len: payload.len() as u64 - offset,
        });
    }
    let meta = SuperTileMeta {
        id,
        object,
        total_len: payload.len() as u64,
        members,
    };
    (payload.freeze(), meta)
}

/// Cut one member tile out of a full super-tile payload — zero-copy: the
/// returned tile's `MDArray` borrows a refcounted sub-range of `payload`
/// (copy-on-write on mutation).
pub fn decode_member(meta: &SuperTileMeta, payload: &Bytes, tile: TileId) -> Result<Tile> {
    let entry = meta.member(tile).ok_or(HeavenError::TileUnlocated(tile))?;
    let start = entry.offset as usize;
    let end = start + entry.len as usize;
    if end > payload.len() {
        return Err(HeavenError::Codec(format!(
            "member {tile} extends past payload ({} > {})",
            end,
            payload.len()
        )));
    }
    let (t, used) = Tile::decode_shared(payload, start)?;
    if used != entry.len as usize || t.id != tile {
        return Err(HeavenError::Codec(format!(
            "member {tile} decoded inconsistently"
        )));
    }
    Ok(t)
}

/// Decode all member tiles of a payload (each shares the payload buffer).
pub fn decode_all(meta: &SuperTileMeta, payload: &Bytes) -> Result<Vec<Tile>> {
    meta.members
        .iter()
        .map(|m| decode_member(meta, payload, m.tile))
        .collect()
}

/// 64-bit FNV-1a checksum of a super-tile **wire** payload (the exact
/// bytes written to the medium, after optional compression). Computed
/// once at export, stored in the catalog, and verified on every full
/// super-tile fetch; a mismatch means the medium (or the read path)
/// silently corrupted the data, and the fetch falls back to the replica.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use heaven_array::{CellType, MDArray, Point};

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    fn make_tiles() -> Vec<Tile> {
        (0..4)
            .map(|i| {
                let dom = mi(&[(i * 10, i * 10 + 9), (0, 9)]);
                let data = MDArray::generate(dom, CellType::I32, |p| {
                    (p.coord(0) * 1000 + p.coord(1)) as f64
                });
                Tile::new(100 + i as u64, 7, data)
            })
            .collect()
    }

    #[test]
    fn encode_then_decode_members() {
        let tiles = make_tiles();
        let (payload, meta) = encode_supertile(1, 7, &tiles);
        assert_eq!(meta.total_len as usize, payload.len());
        assert_eq!(meta.members.len(), 4);
        for t in &tiles {
            let back = decode_member(&meta, &payload, t.id).unwrap();
            assert_eq!(&back, t);
        }
        let all = decode_all(&meta, &payload).unwrap();
        assert_eq!(all, tiles);
    }

    #[test]
    fn member_offsets_are_contiguous() {
        let tiles = make_tiles();
        let (_, meta) = encode_supertile(1, 7, &tiles);
        let mut expect = 0u64;
        for m in &meta.members {
            assert_eq!(m.offset, expect);
            expect += m.len;
        }
        assert_eq!(expect, meta.total_len);
    }

    #[test]
    fn bounding_box_and_touch() {
        let tiles = make_tiles();
        let (_, meta) = encode_supertile(1, 7, &tiles);
        assert_eq!(meta.bounding_box(), Some(mi(&[(0, 39), (0, 9)])));
        assert!(meta.touches(&mi(&[(15, 16), (3, 4)])));
        assert!(!meta.touches(&mi(&[(0, 39), (20, 30)])));
    }

    #[test]
    fn decode_missing_member_fails() {
        let tiles = make_tiles();
        let (payload, meta) = encode_supertile(1, 7, &tiles);
        assert!(matches!(
            decode_member(&meta, &payload, 999),
            Err(HeavenError::TileUnlocated(999))
        ));
    }

    #[test]
    fn decode_with_truncated_payload_fails() {
        let tiles = make_tiles();
        let (payload, meta) = encode_supertile(1, 7, &tiles);
        let last = meta.members.last().unwrap().tile;
        let truncated = payload.slice(0..payload.len() - 1);
        assert!(decode_member(&meta, &truncated, last).is_err());
    }

    #[test]
    fn decoded_members_share_the_payload_buffer() {
        let tiles = make_tiles();
        let (payload, meta) = encode_supertile(1, 7, &tiles);
        let all = decode_all(&meta, &payload).unwrap();
        for t in &all {
            assert!(t.data.is_shared(), "member payload must alias the buffer");
        }
        // one Bytes handle per member + the payload itself
        assert_eq!(payload.ref_count(), 1 + all.len());
    }

    #[test]
    fn member_cells_survive_roundtrip() {
        let tiles = make_tiles();
        let (payload, meta) = encode_supertile(1, 7, &tiles);
        let t = decode_member(&meta, &payload, 102).unwrap();
        assert_eq!(t.data.get_f64(&Point::new(vec![25, 3])).unwrap(), 25003.0);
    }

    #[test]
    fn checksum_catches_any_single_bit_flip() {
        let (payload, _) = encode_supertile(1, 7, &make_tiles());
        let base = checksum64(&payload);
        assert_eq!(base, checksum64(&payload), "deterministic");
        let mut buf = payload.to_vec();
        for bit in [0usize, 7, 63, buf.len() * 8 - 1] {
            buf[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(checksum64(&buf), base, "bit {bit} flip undetected");
            buf[bit / 8] ^= 1 << (bit % 8);
        }
    }
}
