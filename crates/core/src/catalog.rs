//! HEAVEN's tertiary-storage catalog: where every super-tile lives.
//!
//! Maps super-tiles to block addresses on media and member tiles to their
//! super-tiles. This is the metadata HEAVEN adds on top of the DBMS
//! catalogs so that queries can be routed across the storage hierarchy.

use crate::error::{HeavenError, Result};
use crate::supertile::{SuperTileId, SuperTileMeta};
use heaven_array::{Minterval, ObjectId, TileId};
use heaven_hsm::BlockAddress;
use std::collections::HashMap;

/// Catalog of exported super-tiles.
#[derive(Debug, Default)]
pub struct SuperTileCatalog {
    supertiles: HashMap<SuperTileId, (SuperTileMeta, BlockAddress)>,
    tile_to_st: HashMap<TileId, SuperTileId>,
    by_object: HashMap<ObjectId, Vec<SuperTileId>>,
    /// Second archive copy per super-tile (dual-copy archival).
    replicas: HashMap<SuperTileId, BlockAddress>,
    /// FNV-1a checksum of the wire payload, verified on every fetch.
    checksums: HashMap<SuperTileId, u64>,
    next_id: SuperTileId,
}

impl SuperTileCatalog {
    /// Empty catalog.
    pub fn new() -> SuperTileCatalog {
        SuperTileCatalog {
            next_id: 1,
            ..Default::default()
        }
    }

    /// Reserve a fresh super-tile id.
    pub fn next_id(&mut self) -> SuperTileId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Ensure future ids are greater than `min` (after a catalog reload).
    pub fn bump_next_id(&mut self, min: SuperTileId) {
        if self.next_id <= min {
            self.next_id = min + 1;
        }
    }

    /// Register an exported super-tile.
    pub fn register(&mut self, meta: SuperTileMeta, addr: BlockAddress) {
        for m in &meta.members {
            self.tile_to_st.insert(m.tile, meta.id);
        }
        self.by_object.entry(meta.object).or_default().push(meta.id);
        self.supertiles.insert(meta.id, (meta, addr));
    }

    /// The super-tile containing a tile.
    pub fn supertile_of(&self, tile: TileId) -> Result<SuperTileId> {
        self.tile_to_st
            .get(&tile)
            .copied()
            .ok_or(HeavenError::TileUnlocated(tile))
    }

    /// Metadata of a super-tile.
    pub fn meta(&self, st: SuperTileId) -> Result<&SuperTileMeta> {
        self.supertiles
            .get(&st)
            .map(|(m, _)| m)
            .ok_or(HeavenError::NoSuchSuperTile(st))
    }

    /// Block address of a super-tile.
    pub fn address(&self, st: SuperTileId) -> Result<BlockAddress> {
        self.supertiles
            .get(&st)
            .map(|&(_, a)| a)
            .ok_or(HeavenError::NoSuchSuperTile(st))
    }

    /// Record the second archive copy of a super-tile.
    pub fn register_replica(&mut self, st: SuperTileId, addr: BlockAddress) {
        self.replicas.insert(st, addr);
    }

    /// The second archive copy of a super-tile, if dual-copy archival
    /// wrote one.
    pub fn replica(&self, st: SuperTileId) -> Option<BlockAddress> {
        self.replicas.get(&st).copied()
    }

    /// Record the wire-payload checksum of a super-tile.
    pub fn set_checksum(&mut self, st: SuperTileId, sum: u64) {
        self.checksums.insert(st, sum);
    }

    /// The wire-payload checksum of a super-tile, if recorded.
    pub fn checksum(&self, st: SuperTileId) -> Option<u64> {
        self.checksums.get(&st).copied()
    }

    /// Replace the address of a super-tile (after rewrite/compaction).
    pub fn relocate(&mut self, st: SuperTileId, addr: BlockAddress) -> Result<()> {
        match self.supertiles.get_mut(&st) {
            Some(e) => {
                e.1 = addr;
                Ok(())
            }
            None => Err(HeavenError::NoSuchSuperTile(st)),
        }
    }

    /// Super-tiles of an object, in export (cluster) order.
    pub fn object_supertiles(&self, oid: ObjectId) -> Vec<SuperTileId> {
        self.by_object.get(&oid).cloned().unwrap_or_default()
    }

    /// Whether an object has any exported super-tiles.
    pub fn is_exported(&self, oid: ObjectId) -> bool {
        self.by_object
            .get(&oid)
            .map(|v| !v.is_empty())
            .unwrap_or(false)
    }

    /// Super-tiles of an object touching `region`.
    pub fn supertiles_touching(&self, oid: ObjectId, region: &Minterval) -> Vec<SuperTileId> {
        self.object_supertiles(oid)
            .into_iter()
            .filter(|st| {
                self.supertiles
                    .get(st)
                    .map(|(m, _)| m.touches(region))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Drop all catalog entries of an object; returns the freed addresses
    /// (dead space on media until reclaimed).
    pub fn remove_object(&mut self, oid: ObjectId) -> Vec<BlockAddress> {
        let sts = self.by_object.remove(&oid).unwrap_or_default();
        let mut freed = Vec::with_capacity(sts.len());
        for st in sts {
            if let Some((meta, addr)) = self.supertiles.remove(&st) {
                for m in &meta.members {
                    self.tile_to_st.remove(&m.tile);
                }
                freed.push(addr);
            }
            if let Some(r) = self.replicas.remove(&st) {
                freed.push(r);
            }
            self.checksums.remove(&st);
        }
        freed
    }

    /// Remove a single super-tile (e.g. replaced by an updated version);
    /// returns its old address.
    pub fn remove_supertile(&mut self, st: SuperTileId) -> Result<BlockAddress> {
        let (meta, addr) = self
            .supertiles
            .remove(&st)
            .ok_or(HeavenError::NoSuchSuperTile(st))?;
        for m in &meta.members {
            self.tile_to_st.remove(&m.tile);
        }
        if let Some(v) = self.by_object.get_mut(&meta.object) {
            v.retain(|&s| s != st);
        }
        self.replicas.remove(&st);
        self.checksums.remove(&st);
        Ok(addr)
    }

    /// Number of registered super-tiles.
    pub fn len(&self) -> usize {
        self.supertiles.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.supertiles.is_empty()
    }

    /// All super-tiles on a medium with their addresses (for compaction).
    pub fn on_medium(&self, medium: heaven_tape::MediumId) -> Vec<(SuperTileId, BlockAddress)> {
        let mut v: Vec<(SuperTileId, BlockAddress)> = self
            .supertiles
            .iter()
            .filter(|(_, (_, a))| a.medium == medium)
            .map(|(&id, &(_, a))| (id, a))
            .collect();
        v.sort_by_key(|&(_, a)| a.offset);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supertile::MemberEntry;

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    fn meta(id: SuperTileId, oid: ObjectId, tiles: &[(TileId, Minterval)]) -> SuperTileMeta {
        let mut off = 0;
        let members = tiles
            .iter()
            .map(|(t, d)| {
                let e = MemberEntry {
                    tile: *t,
                    domain: d.clone(),
                    offset: off,
                    len: 100,
                };
                off += 100;
                e
            })
            .collect();
        SuperTileMeta {
            id,
            object: oid,
            members,
            total_len: off,
        }
    }

    fn addr(medium: u64, offset: u64) -> BlockAddress {
        BlockAddress {
            medium,
            offset,
            len: 200,
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut c = SuperTileCatalog::new();
        let id = c.next_id();
        c.register(
            meta(id, 7, &[(1, mi(&[(0, 9)])), (2, mi(&[(10, 19)]))]),
            addr(0, 0),
        );
        assert_eq!(c.supertile_of(1).unwrap(), id);
        assert_eq!(c.supertile_of(2).unwrap(), id);
        assert!(c.supertile_of(3).is_err());
        assert_eq!(c.address(id).unwrap(), addr(0, 0));
        assert_eq!(c.object_supertiles(7), vec![id]);
        assert!(c.is_exported(7));
        assert!(!c.is_exported(8));
    }

    #[test]
    fn touching_filters_by_member_domains() {
        let mut c = SuperTileCatalog::new();
        let a = c.next_id();
        let b = c.next_id();
        c.register(meta(a, 7, &[(1, mi(&[(0, 9)]))]), addr(0, 0));
        c.register(meta(b, 7, &[(2, mi(&[(50, 59)]))]), addr(0, 200));
        assert_eq!(c.supertiles_touching(7, &mi(&[(5, 6)])), vec![a]);
        assert_eq!(c.supertiles_touching(7, &mi(&[(0, 59)])), vec![a, b]);
        assert!(c.supertiles_touching(7, &mi(&[(100, 110)])).is_empty());
    }

    #[test]
    fn remove_object_frees_addresses() {
        let mut c = SuperTileCatalog::new();
        let a = c.next_id();
        c.register(meta(a, 7, &[(1, mi(&[(0, 9)]))]), addr(3, 500));
        let freed = c.remove_object(7);
        assert_eq!(freed, vec![addr(3, 500)]);
        assert!(c.is_empty());
        assert!(c.supertile_of(1).is_err());
    }

    #[test]
    fn remove_single_supertile() {
        let mut c = SuperTileCatalog::new();
        let a = c.next_id();
        let b = c.next_id();
        c.register(meta(a, 7, &[(1, mi(&[(0, 9)]))]), addr(0, 0));
        c.register(meta(b, 7, &[(2, mi(&[(10, 19)]))]), addr(0, 200));
        let old = c.remove_supertile(a).unwrap();
        assert_eq!(old, addr(0, 0));
        assert_eq!(c.object_supertiles(7), vec![b]);
        assert!(c.remove_supertile(a).is_err());
    }

    #[test]
    fn on_medium_sorted_by_offset() {
        let mut c = SuperTileCatalog::new();
        let a = c.next_id();
        let b = c.next_id();
        let x = c.next_id();
        c.register(meta(a, 1, &[(1, mi(&[(0, 9)]))]), addr(0, 900));
        c.register(meta(b, 2, &[(2, mi(&[(0, 9)]))]), addr(0, 100));
        c.register(meta(x, 3, &[(3, mi(&[(0, 9)]))]), addr(1, 0));
        let on0 = c.on_medium(0);
        assert_eq!(
            on0.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![b, a]
        );
    }

    #[test]
    fn replica_and_checksum_follow_supertile_lifecycle() {
        let mut c = SuperTileCatalog::new();
        let a = c.next_id();
        c.register(meta(a, 1, &[(1, mi(&[(0, 9)]))]), addr(0, 0));
        assert_eq!(c.replica(a), None);
        assert_eq!(c.checksum(a), None);
        c.register_replica(a, addr(9, 777));
        c.set_checksum(a, 0xDEAD);
        assert_eq!(c.replica(a), Some(addr(9, 777)));
        assert_eq!(c.checksum(a), Some(0xDEAD));
        c.remove_supertile(a).unwrap();
        assert_eq!(c.replica(a), None);
        assert_eq!(c.checksum(a), None);
    }

    #[test]
    fn remove_object_frees_replicas_too() {
        let mut c = SuperTileCatalog::new();
        let a = c.next_id();
        c.register(meta(a, 7, &[(1, mi(&[(0, 9)]))]), addr(3, 500));
        c.register_replica(a, addr(4, 0));
        let freed = c.remove_object(7);
        assert_eq!(freed, vec![addr(3, 500), addr(4, 0)]);
    }

    #[test]
    fn relocate_updates_address() {
        let mut c = SuperTileCatalog::new();
        let a = c.next_id();
        c.register(meta(a, 1, &[(1, mi(&[(0, 9)]))]), addr(0, 0));
        c.relocate(a, addr(5, 123)).unwrap();
        assert_eq!(c.address(a).unwrap(), addr(5, 123));
    }
}
