//! System catalog for precomputed operation results (paper §3.9).
//!
//! Condenser results over archived objects are expensive: they may stage
//! gigabytes from tape to add up numbers. HEAVEN memoizes them at two
//! granularities:
//!
//! * **exact**: every `(object, op, region) → value` a query computed is
//!   remembered and reused verbatim;
//! * **per-tile partials**: at export time HEAVEN can precompute each
//!   tile's partial aggregate; a later condenser whose region is exactly a
//!   union of whole tiles combines the partials *without touching tape at
//!   all* (condensers are distributive — see
//!   [`Condenser::combine`](heaven_array::Condenser::combine)).

use heaven_array::{Condenser, Minterval, ObjectId, TileId};
use std::collections::HashMap;

/// Statistics of catalog usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrecompStats {
    /// Exact-match reuses.
    pub exact_hits: u64,
    /// Tile-combination reuses.
    pub combine_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
}

/// The precomputed-result catalog.
#[derive(Debug, Default)]
pub struct PrecompCatalog {
    /// Exact results of past queries.
    exact: HashMap<(ObjectId, Condenser, Minterval), f64>,
    /// Per-tile partials: `(oid, op) → tile → (value, cell_count)`.
    tile_partials: HashMap<(ObjectId, Condenser), HashMap<TileId, (f64, u64)>>,
    stats: PrecompStats,
}

impl PrecompCatalog {
    /// Empty catalog.
    pub fn new() -> PrecompCatalog {
        PrecompCatalog::default()
    }

    /// Usage statistics.
    pub fn stats(&self) -> PrecompStats {
        self.stats
    }

    /// Number of exact entries.
    pub fn exact_len(&self) -> usize {
        self.exact.len()
    }

    /// Remember an exact result.
    pub fn record_exact(&mut self, oid: ObjectId, op: Condenser, region: Minterval, value: f64) {
        self.exact.insert((oid, op, region), value);
    }

    /// Remember a tile's partial aggregate.
    pub fn record_tile_partial(
        &mut self,
        oid: ObjectId,
        op: Condenser,
        tile: TileId,
        value: f64,
        cells: u64,
    ) {
        self.tile_partials
            .entry((oid, op))
            .or_default()
            .insert(tile, (value, cells));
    }

    /// Try to answer `(oid, op, region)` from the catalog.
    ///
    /// `tiles` is the object's tile layout (`(domain, id)` pairs); the
    /// combination path applies when `region` is exactly the union of whole
    /// tiles with recorded partials.
    pub fn lookup(
        &mut self,
        oid: ObjectId,
        op: Condenser,
        region: &Minterval,
        tiles: &[(Minterval, TileId)],
    ) -> Option<f64> {
        if let Some(&v) = self.exact.get(&(oid, op, region.clone())) {
            self.stats.exact_hits += 1;
            return Some(v);
        }
        if let Some(v) = self.try_combine(oid, op, region, tiles) {
            self.stats.combine_hits += 1;
            // promote to an exact entry for next time
            self.exact.insert((oid, op, region.clone()), v);
            return Some(v);
        }
        self.stats.misses += 1;
        None
    }

    fn try_combine(
        &self,
        oid: ObjectId,
        op: Condenser,
        region: &Minterval,
        tiles: &[(Minterval, TileId)],
    ) -> Option<f64> {
        let partials = self.tile_partials.get(&(oid, op))?;
        // All tiles intersecting the region must be fully contained in it
        // (region = union of whole tiles) and have recorded partials.
        let mut parts: Vec<(f64, u64)> = Vec::new();
        let mut covered: u64 = 0;
        for (dom, tid) in tiles {
            if !dom.intersects(region) {
                continue;
            }
            if !region.contains(dom) {
                return None; // partial tile: cannot combine
            }
            let &(v, n) = partials.get(tid)?;
            parts.push((v, n));
            covered += dom.cell_count();
        }
        if covered != region.cell_count() || parts.is_empty() {
            return None;
        }
        op.combine(&parts).ok()
    }

    /// Drop everything recorded for an object (delete/update invalidation,
    /// §3.6).
    pub fn invalidate_object(&mut self, oid: ObjectId) {
        self.exact.retain(|&(o, _, _), _| o != oid);
        self.tile_partials.retain(|&(o, _), _| o != oid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    /// 2x2 tile layout, tiles 10x10, values: tile i has cells all equal i+1.
    fn layout() -> Vec<(Minterval, TileId)> {
        vec![
            (mi(&[(0, 9), (0, 9)]), 1),
            (mi(&[(0, 9), (10, 19)]), 2),
            (mi(&[(10, 19), (0, 9)]), 3),
            (mi(&[(10, 19), (10, 19)]), 4),
        ]
    }

    fn catalog_with_partials(op: Condenser) -> PrecompCatalog {
        let mut c = PrecompCatalog::new();
        for (i, (_, tid)) in layout().iter().enumerate() {
            let v = (i + 1) as f64;
            let partial = match op {
                Condenser::Sum => v * 100.0,
                Condenser::Avg => v,
                Condenser::Min | Condenser::Max => v,
                Condenser::CountNonZero => 100.0,
            };
            c.record_tile_partial(7, op, *tid, partial, 100);
        }
        c
    }

    #[test]
    fn exact_match_hit() {
        let mut c = PrecompCatalog::new();
        let r = mi(&[(0, 4), (0, 4)]);
        c.record_exact(7, Condenser::Avg, r.clone(), 3.5);
        assert_eq!(c.lookup(7, Condenser::Avg, &r, &layout()), Some(3.5));
        assert_eq!(c.stats().exact_hits, 1);
        // different op or object misses
        assert_eq!(c.lookup(7, Condenser::Sum, &r, &layout()), None);
        assert_eq!(c.lookup(8, Condenser::Avg, &r, &layout()), None);
    }

    #[test]
    fn combines_whole_tile_unions() {
        let mut c = catalog_with_partials(Condenser::Avg);
        // left column = tiles 1 and 3 → avg of (1, 3) weighted equally = 2
        let region = mi(&[(0, 19), (0, 9)]);
        assert_eq!(c.lookup(7, Condenser::Avg, &region, &layout()), Some(2.0));
        assert_eq!(c.stats().combine_hits, 1);
        // promoted to exact
        assert_eq!(c.lookup(7, Condenser::Avg, &region, &layout()), Some(2.0));
        assert_eq!(c.stats().exact_hits, 1);
    }

    #[test]
    fn sum_combination() {
        let mut c = catalog_with_partials(Condenser::Sum);
        let whole = mi(&[(0, 19), (0, 19)]);
        assert_eq!(
            c.lookup(7, Condenser::Sum, &whole, &layout()),
            Some(100.0 + 200.0 + 300.0 + 400.0)
        );
    }

    #[test]
    fn partial_tile_regions_do_not_combine() {
        let mut c = catalog_with_partials(Condenser::Sum);
        let region = mi(&[(0, 14), (0, 9)]); // cuts tile 3 in half
        assert_eq!(c.lookup(7, Condenser::Sum, &region, &layout()), None);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn missing_partials_block_combination() {
        let mut c = PrecompCatalog::new();
        c.record_tile_partial(7, Condenser::Sum, 1, 100.0, 100);
        // tile 3 has no partial
        let region = mi(&[(0, 19), (0, 9)]);
        assert_eq!(c.lookup(7, Condenser::Sum, &region, &layout()), None);
    }

    #[test]
    fn invalidation_clears_object() {
        let mut c = catalog_with_partials(Condenser::Max);
        let whole = mi(&[(0, 19), (0, 19)]);
        assert_eq!(c.lookup(7, Condenser::Max, &whole, &layout()), Some(4.0));
        c.invalidate_object(7);
        assert_eq!(c.lookup(7, Condenser::Max, &whole, &layout()), None);
        assert_eq!(c.exact_len(), 0);
    }
}
