//! Bounded-retry, drive-failover, dual-copy recovery for tertiary reads.
//!
//! The perfect-world fetch path is one `store.read(addr)`. Under fault
//! injection a read can die three ways: the drive fails mid-transfer
//! (transient — the next mount fails over to a healthy drive), a media
//! segment is unreadable (transient — the drive may recover the pass, or
//! the replica copy has the bytes), or the payload arrives silently
//! corrupted (caught by the wire checksum, never transient — tape
//! corruption is persistent, so the read falls straight back to the
//! replica). This module centralizes the policy: per copy, up to
//! `RetryPolicy::max_retries` retries with exponential backoff charged to
//! the **simulated** clock; then failover to the second archive copy;
//! then a typed [`HeavenError::MediaLost`] — a query can return correct
//! bytes or a loud error, never quiet garbage.

use crate::config::RetryPolicy;
use crate::error::{HeavenError, Result};
use crate::supertile::{checksum64, SuperTileId};
use bytes::Bytes;
use heaven_hsm::{BlockAddress, DirectStore, HsmError};
use heaven_obs::{Counter, Field, MetricsRegistry, TraceBus};
use heaven_tape::TapeError;

/// Handles for the recovery counters (`hsm.*` namespace: this is the
/// storage-management layer's recovery machinery).
#[derive(Debug, Clone)]
pub(crate) struct RecoveryMetrics {
    /// Read attempts repeated after a transient failure.
    pub retries: Counter,
    /// Mount-level failovers forced by drive failures.
    pub failovers: Counter,
    /// Payloads rejected by wire-checksum verification.
    pub checksum_failures: Counter,
    /// Super-tiles lost with every copy exhausted.
    pub media_lost: Counter,
}

impl RecoveryMetrics {
    pub fn new(registry: &MetricsRegistry) -> RecoveryMetrics {
        RecoveryMetrics {
            retries: registry.counter("hsm.retries"),
            failovers: registry.counter("hsm.failovers"),
            checksum_failures: registry.counter("hsm.checksum_failures"),
            media_lost: registry.counter("hsm.media_lost"),
        }
    }
}

/// Read a super-tile's wire payload with the full recovery ladder:
/// retries with backoff on the current copy, then the replica, then
/// [`HeavenError::MediaLost`]. `checksum` (when recorded) is verified
/// against every successful read; a mismatch burns the copy.
#[allow(clippy::too_many_arguments)]
pub(crate) fn read_with_recovery(
    store: &mut DirectStore,
    st: SuperTileId,
    primary: BlockAddress,
    replica: Option<BlockAddress>,
    checksum: Option<u64>,
    policy: &RetryPolicy,
    m: &RecoveryMetrics,
    bus: &TraceBus,
) -> Result<Bytes> {
    let clock = store.clock();
    let mut copies = vec![primary];
    copies.extend(replica);
    for (ci, addr) in copies.iter().enumerate() {
        let mut attempt: u32 = 0;
        loop {
            match store.read(*addr) {
                Ok(raw) => {
                    match checksum {
                        Some(sum) if checksum64(&raw) != sum => {
                            // Persistent corruption on this copy: no point
                            // re-reading it, fall through to the replica.
                            m.checksum_failures.inc();
                            bus.event(
                                "hsm.checksum_failure",
                                clock.now_s(),
                                &[
                                    ("st", Field::U64(st)),
                                    ("medium", Field::U64(addr.medium)),
                                    ("copy", Field::U64(ci as u64)),
                                ],
                            );
                            break;
                        }
                        _ => return Ok(raw),
                    }
                }
                Err(HsmError::Tape(te)) if te.is_transient() => {
                    if matches!(te, TapeError::DriveFailed { .. }) {
                        // The next mount picks a healthy drive.
                        m.failovers.inc();
                    }
                    if attempt >= policy.max_retries {
                        break; // copy exhausted; try the replica
                    }
                    attempt += 1;
                    m.retries.inc();
                    let backoff = policy.backoff_s(attempt);
                    clock.advance_s(backoff);
                    bus.event(
                        "hsm.retry",
                        clock.now_s(),
                        &[
                            ("st", Field::U64(st)),
                            ("medium", Field::U64(addr.medium)),
                            ("attempt", Field::U64(attempt as u64)),
                            ("backoff_s", Field::F64(backoff)),
                        ],
                    );
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
    m.media_lost.inc();
    bus.event("hsm.media_lost", clock.now_s(), &[("st", Field::U64(st))]);
    Err(HeavenError::MediaLost { st })
}

#[cfg(test)]
mod tests {
    use super::*;
    use heaven_tape::{DeviceProfile, FaultConfig, SimClock, TapeLibrary, WritePayload};

    fn store_with(cfg: Option<FaultConfig>) -> DirectStore {
        let mut lib = TapeLibrary::new(DeviceProfile::ibm3590(), 2, SimClock::new());
        lib.set_fault_plan(cfg);
        DirectStore::new(lib)
    }

    fn obs() -> (RecoveryMetrics, TraceBus) {
        (
            RecoveryMetrics::new(&MetricsRegistry::new()),
            TraceBus::noop(),
        )
    }

    #[test]
    fn clean_read_passes_through() {
        let mut s = store_with(None);
        let payload = vec![9u8; 512];
        let addr = s.append(WritePayload::real(payload.clone())).unwrap();
        let (m, bus) = obs();
        let got = read_with_recovery(
            &mut s,
            1,
            addr,
            None,
            Some(checksum64(&payload)),
            &RetryPolicy::default(),
            &m,
            &bus,
        )
        .unwrap();
        assert_eq!(got, payload);
        assert_eq!(m.retries.get(), 0);
    }

    #[test]
    fn transient_errors_are_retried_with_backoff() {
        let mut s = store_with(None);
        let payload = vec![3u8; 256];
        let addr = s.append(WritePayload::real(payload.clone())).unwrap();
        // Enable a high media-error rate AFTER the write; the keyed hash
        // re-rolls per attempt, so some retry eventually succeeds.
        s.library_mut().set_fault_plan(Some(FaultConfig {
            media_read_error_per_read: 0.6,
            ..FaultConfig::quiet(12)
        }));
        let (m, bus) = obs();
        let policy = RetryPolicy::default();
        // Replica on a different medium guards against exhausting one copy.
        let replica = s
            .append_replica(WritePayload::real(payload.clone()), addr.medium)
            .unwrap();
        let t0 = s.clock().now_s();
        let got = read_with_recovery(
            &mut s,
            1,
            addr,
            Some(replica),
            Some(checksum64(&payload)),
            &policy,
            &m,
            &bus,
        )
        .unwrap();
        assert_eq!(got, payload);
        if m.retries.get() > 0 {
            assert!(
                s.clock().now_s() - t0 >= policy.backoff_base_s,
                "backoff must be charged to the simulated clock"
            );
        }
    }

    #[test]
    fn checksum_mismatch_fails_over_to_replica() {
        let mut s = store_with(None);
        let payload = vec![0x5Au8; 1024];
        let addr = s.append(WritePayload::real(payload.clone())).unwrap();
        let replica = s
            .append_replica(WritePayload::real(payload.clone()), addr.medium)
            .unwrap();
        // Corrupt every read of the primary's medium... corruption rolls
        // are keyed per (medium, offset), so use rate 1.0 but clear it
        // after the first (corrupted) read via active window? Simpler:
        // rate 1.0 corrupts BOTH copies' reads — but each flips one bit,
        // and the checksum catches both... so instead only corrupt with
        // probability via seed such that primary is hit. Use rate 1.0 and
        // expect MediaLost when both copies corrupt:
        s.library_mut().set_fault_plan(Some(FaultConfig {
            corrupt_per_read: 1.0,
            ..FaultConfig::quiet(1)
        }));
        let (m, bus) = obs();
        let err = read_with_recovery(
            &mut s,
            7,
            addr,
            Some(replica),
            Some(checksum64(&payload)),
            &RetryPolicy::default(),
            &m,
            &bus,
        )
        .unwrap_err();
        assert!(matches!(err, HeavenError::MediaLost { st: 7 }));
        assert_eq!(m.checksum_failures.get(), 2, "both copies rejected");
        assert_eq!(m.media_lost.get(), 1);
        // Without the corruption, the replica path works.
        s.library_mut().set_fault_plan(None);
        let got = read_with_recovery(
            &mut s,
            7,
            addr,
            Some(replica),
            Some(checksum64(&payload)),
            &RetryPolicy::default(),
            &m,
            &bus,
        )
        .unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn structural_errors_are_not_retried() {
        let mut s = store_with(None);
        let (m, bus) = obs();
        let bogus = BlockAddress {
            medium: 99,
            offset: 0,
            len: 10,
        };
        let err = read_with_recovery(
            &mut s,
            1,
            bogus,
            None,
            None,
            &RetryPolicy::default(),
            &m,
            &bus,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            HeavenError::Hsm(HsmError::Tape(TapeError::NoSuchMedium(99)))
        ));
        assert_eq!(m.retries.get(), 0);
        assert_eq!(m.media_lost.get(), 0);
    }

    #[test]
    fn drive_failure_counts_failover_and_recovers() {
        let mut s = store_with(None);
        let payload = vec![1u8; 128];
        let addr = s.append(WritePayload::real(payload.clone())).unwrap();
        s.library_mut().set_fault_plan(Some(FaultConfig {
            drive_failure_per_read: 0.7,
            drive_repair_s: 60.0,
            ..FaultConfig::quiet(5)
        }));
        let (m, bus) = obs();
        let got = read_with_recovery(
            &mut s,
            1,
            addr,
            None,
            Some(checksum64(&payload)),
            &RetryPolicy {
                max_retries: 10,
                ..RetryPolicy::default()
            },
            &m,
            &bus,
        )
        .unwrap();
        assert_eq!(got, payload);
        assert_eq!(m.failovers.get() > 0, m.retries.get() > 0);
    }
}
