//! Export of multidimensional data to tertiary storage (paper §3.4).
//!
//! Two export paths are implemented, matching the evaluation's Chapter 4:
//!
//! * **Naive** (the standard RasDaMan export, §4.3.1): tiles are written
//!   synchronously, one block per tile, in insertion order — no clustering,
//!   DBMS reads and tape writes strictly alternating.
//! * **TCT** (the decoupled Tertiary Communication Thread export, §4.3.2):
//!   tiles are grouped into super-tiles (STAR/eSTAR), ordered by
//!   intra-/inter-super-tile clustering, assembled by a separate
//!   communication thread, and written in large sequential blocks. DBMS
//!   reads of super-tile *n+1* overlap the tape write of super-tile *n*;
//!   the report carries both the serialized total and the pipelined
//!   makespan.

use crate::config::ClusteringStrategy;
use crate::error::{HeavenError, Result};
use crate::estar::estar_partition;
use crate::star::{star_partition, TileInfo};
use crate::supertile::{checksum64, encode_supertile, SuperTileMeta};
use crate::system::Heaven;
use heaven_array::{ObjectId, Tile};
use heaven_tape::{MediumId, WritePayload};

/// Which export path to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportMode {
    /// Synchronous tile-at-a-time export (baseline).
    Naive,
    /// Decoupled, clustered super-tile export.
    Tct,
}

/// Outcome of an export.
#[derive(Debug, Clone)]
pub struct ExportReport {
    /// The exported object.
    pub oid: ObjectId,
    /// The mode used.
    pub mode: ExportMode,
    /// Number of blocks (super-tiles) written.
    pub supertiles: usize,
    /// Total bytes written to tertiary storage (post-compression).
    pub bytes: u64,
    /// Uncompressed payload bytes (equals `bytes` when compression is off).
    pub raw_bytes: u64,
    /// Simulated seconds of DBMS (secondary-storage) reading.
    pub dbms_read_s: f64,
    /// Simulated seconds of tertiary-storage writing.
    pub tape_write_s: f64,
    /// Serialized wall time (clock delta; what the naive path takes).
    pub elapsed_s: f64,
    /// Pipelined makespan with the TCT overlapping reads and writes
    /// (equals `elapsed_s` for the naive path).
    pub pipelined_s: f64,
    /// Media written to.
    pub media: Vec<MediumId>,
}

impl Heaven {
    /// Export an object's tiles to tertiary storage.
    pub fn export_object(&mut self, oid: ObjectId, mode: ExportMode) -> Result<ExportReport> {
        if self.catalog.is_exported(oid) {
            return Err(HeavenError::AlreadyExported(oid));
        }
        match mode {
            ExportMode::Naive => self.export_naive(oid),
            ExportMode::Tct => self.export_tct(oid),
        }
    }

    fn export_naive(&mut self, oid: ObjectId) -> Result<ExportReport> {
        let meta = self.adb.object(oid)?.clone();
        let clock = self.clock();
        let span = self.bus.span(
            "export.naive",
            clock.now_s(),
            &[("oid", oid.into()), ("tiles", meta.tiles.len().into())],
        );
        let start = clock.now_s();
        let mut dbms_read_s = 0.0;
        let mut tape_write_s = 0.0;
        let mut bytes = 0u64;
        let mut raw_bytes = 0u64;
        let mut media = Vec::new();
        for (_, tid) in &meta.tiles {
            let t0 = clock.now_s();
            let tile = self.adb.read_tile(*tid)?;
            let t1 = clock.now_s();
            let (payload, st_meta) = {
                let st_id = self.catalog.next_id();
                encode_supertile(st_id, oid, std::slice::from_ref(&tile))
            };
            raw_bytes += payload.len() as u64;
            let wire = self.maybe_compress(payload, meta.cell_type.size_bytes());
            bytes += wire.len() as u64;
            let checksum = checksum64(&wire);
            let addr = self.store.append(WritePayload::Real(wire.clone()))?;
            let replica = if self.config.dual_copy {
                Some(
                    self.store
                        .append_replica(WritePayload::Real(wire), addr.medium)?,
                )
            } else {
                None
            };
            let t2 = clock.now_s();
            dbms_read_s += t1 - t0;
            tape_write_s += t2 - t1;
            if !media.contains(&addr.medium) {
                media.push(addr.medium);
            }
            self.record_precomp(&st_meta, &[tile]);
            self.bus.event(
                "export.stage",
                t2,
                &[
                    ("st", st_meta.id.into()),
                    ("read_s", (t1 - t0).into()),
                    ("write_s", (t2 - t1).into()),
                ],
            );
            self.register_supertile(st_meta, addr, replica, checksum)?;
            self.adb.mark_exported(*tid)?;
        }
        let elapsed = clock.now_s() - start;
        span.end(clock.now_s());
        Ok(ExportReport {
            oid,
            mode: ExportMode::Naive,
            supertiles: meta.tiles.len(),
            bytes,
            raw_bytes,
            dbms_read_s,
            tape_write_s,
            elapsed_s: elapsed,
            pipelined_s: elapsed,
            media,
        })
    }

    fn export_tct(&mut self, oid: ObjectId) -> Result<ExportReport> {
        let meta = self.adb.object(oid)?.clone();
        // Build tile infos with encoded sizes and grid coordinates.
        let (grid, grid_shape) = meta.tiling.tile_grid(&meta.domain, meta.cell_type)?;
        let infos: Vec<TileInfo> = meta
            .tiles
            .iter()
            .zip(grid)
            .map(|((domain, tid), gc)| TileInfo {
                id: *tid,
                domain: domain.clone(),
                bytes: (Tile::header_len(meta.domain.dim())
                    + (domain.cell_count() * meta.cell_type.size_bytes() as u64) as usize)
                    as u64,
                grid: gc,
            })
            .collect();
        let target = self.supertile_target();
        let partition = match self.config.clustering {
            ClusteringStrategy::Star(order) => star_partition(&infos, &grid_shape, target, order),
            ClusteringStrategy::EStar(pattern) => {
                estar_partition(&infos, &grid_shape, target, pattern)
            }
        };
        if self.config.medium_per_object {
            self.store.open_new_medium();
        }

        let clock = self.clock();
        let span = self.bus.span(
            "export.tct",
            clock.now_s(),
            &[("oid", oid.into()), ("supertiles", partition.len().into())],
        );
        let start = clock.now_s();
        let mut dbms_read_s = 0.0;
        let mut tape_write_s = 0.0;
        let mut stage_costs: Vec<(f64, f64)> = Vec::with_capacity(partition.len());
        let mut bytes = 0u64;
        let mut raw_bytes = 0u64;
        let mut media = Vec::new();

        // The TCT: a separate assembly thread connected by channels. The
        // main (DBMS) thread reads tiles and ships them over; the TCT
        // serializes super-tiles and ships payloads back for the tape
        // writer.
        let (tx_tiles, rx_tiles) = crossbeam::channel::bounded::<(u64, ObjectId, Vec<Tile>)>(2);
        let (tx_enc, rx_enc) = crossbeam::channel::bounded::<(bytes::Bytes, SuperTileMeta)>(2);
        let result: Result<()> = std::thread::scope(|s| {
            s.spawn(move || {
                while let Ok((st_id, object, tiles)) = rx_tiles.recv() {
                    let enc = encode_supertile(st_id, object, &tiles);
                    if tx_enc.send(enc).is_err() {
                        break;
                    }
                }
            });
            for group in &partition {
                let st_id = self.catalog.next_id();
                let t0 = clock.now_s();
                let mut tiles = Vec::with_capacity(group.len());
                for &gi in group {
                    tiles.push(self.adb.read_tile(infos[gi].id)?);
                }
                let t1 = clock.now_s();
                self.record_precomp_tiles(oid, &tiles);
                tx_tiles
                    .send((st_id, oid, tiles))
                    .map_err(|_| HeavenError::Codec("TCT thread gone".into()))?;
                let (payload, st_meta) = rx_enc
                    .recv()
                    .map_err(|_| HeavenError::Codec("TCT thread gone".into()))?;
                raw_bytes += payload.len() as u64;
                let wire = self.maybe_compress(payload, meta.cell_type.size_bytes());
                bytes += wire.len() as u64;
                let checksum = checksum64(&wire);
                let addr = self.store.append(WritePayload::Real(wire.clone()))?;
                // The second copy is deliberately kept off the primary's
                // medium so one dead tape can't take both.
                let replica = if self.config.dual_copy {
                    Some(
                        self.store
                            .append_replica(WritePayload::Real(wire), addr.medium)?,
                    )
                } else {
                    None
                };
                let t2 = clock.now_s();
                dbms_read_s += t1 - t0;
                tape_write_s += t2 - t1;
                stage_costs.push((t1 - t0, t2 - t1));
                if !media.contains(&addr.medium) {
                    media.push(addr.medium);
                }
                self.bus.event(
                    "export.stage",
                    t2,
                    &[
                        ("st", st_id.into()),
                        ("tiles", group.len().into()),
                        ("read_s", (t1 - t0).into()),
                        ("write_s", (t2 - t1).into()),
                    ],
                );
                for m in &st_meta.members {
                    self.adb.mark_exported(m.tile)?;
                }
                self.register_supertile(st_meta, addr, replica, checksum)?;
            }
            drop(tx_tiles);
            Ok(())
        });
        result?;
        let elapsed = clock.now_s() - start;
        span.end(clock.now_s());
        Ok(ExportReport {
            oid,
            mode: ExportMode::Tct,
            supertiles: partition.len(),
            bytes,
            raw_bytes,
            dbms_read_s,
            tape_write_s,
            elapsed_s: elapsed,
            pipelined_s: pipeline_makespan(&stage_costs),
            media,
        })
    }

    fn record_precomp(&mut self, _meta: &SuperTileMeta, tiles: &[Tile]) {
        let oid = tiles.first().map(|t| t.object);
        if let Some(oid) = oid {
            self.record_precomp_tiles(oid, tiles);
        }
    }

    pub(crate) fn record_precomp_tiles(&mut self, oid: ObjectId, tiles: &[Tile]) {
        if self.config.precompute.is_empty() {
            return;
        }
        let ops = self.config.precompute.clone();
        for t in tiles {
            for &op in &ops {
                if let Ok(v) = op.eval(&t.data) {
                    self.precomp
                        .record_tile_partial(oid, op, t.id, v, t.domain().cell_count());
                }
            }
        }
    }
}

/// Classic two-stage pipeline makespan: stage A (DBMS read) of item *i*
/// can run while stage B (tape write) of item *i−1* is in progress.
pub fn pipeline_makespan(stage_costs: &[(f64, f64)]) -> f64 {
    let mut read_done = 0.0f64;
    let mut write_done = 0.0f64;
    for &(a, b) in stage_costs {
        read_done += a;
        write_done = read_done.max(write_done) + b;
    }
    write_done
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_overlaps_stages() {
        // 3 items, read 2 s, write 3 s: serialized 15 s, pipelined 2+9=11 s.
        let costs = vec![(2.0, 3.0); 3];
        let m = pipeline_makespan(&costs);
        assert!((m - 11.0).abs() < 1e-9);
        // pipelined never beats the bottleneck stage
        assert!(m >= 9.0);
        // empty pipeline
        assert_eq!(pipeline_makespan(&[]), 0.0);
    }

    #[test]
    fn makespan_bounded_by_serialized_total() {
        let costs = vec![(1.0, 5.0), (4.0, 0.5), (2.0, 2.0)];
        let serial: f64 = costs.iter().map(|(a, b)| a + b).sum();
        let m = pipeline_makespan(&costs);
        assert!(m <= serial + 1e-9);
        let max_stage: f64 = costs
            .iter()
            .map(|(a, _)| a)
            .sum::<f64>()
            .max(costs.iter().map(|(_, b)| b).sum());
        assert!(m >= max_stage - 1e-9);
    }
}
