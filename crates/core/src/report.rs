//! Archive-wide status reporting.
//!
//! Aggregates the state of a HEAVEN instance — what is archived where, how
//! the caches perform, how much dead space the media carry — into one
//! structure administrators can print (the operational view the ESTEDI
//! centres asked for, Tab. 1.1 "Datenverwaltung").

use crate::export::{ExportMode, ExportReport};
use crate::system::Heaven;
use heaven_array::ObjectId;
use heaven_tape::MediumId;
use std::fmt;

/// Snapshot of the archive's state.
#[derive(Debug, Clone)]
pub struct ArchiveReport {
    /// Objects with at least one exported super-tile.
    pub exported_objects: usize,
    /// Objects entirely on secondary storage.
    pub resident_objects: usize,
    /// Super-tiles in the catalog.
    pub supertiles: usize,
    /// Per-medium usage: `(medium, used bytes, dead bytes)`.
    pub media: Vec<(MediumId, u64, u64)>,
    /// Super-tile disk cache hit ratio so far.
    pub st_cache_hit_ratio: f64,
    /// Memory tile cache hit ratio so far.
    pub tile_cache_hit_ratio: f64,
    /// Super-tiles fetched from tape so far.
    pub st_tape_fetches: u64,
    /// Total simulated seconds elapsed.
    pub simulated_s: f64,
}

impl fmt::Display for ArchiveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "archive: {} exported / {} resident objects, {} super-tiles",
            self.exported_objects, self.resident_objects, self.supertiles
        )?;
        for &(m, used, dead) in &self.media {
            let frac = if used > 0 {
                dead as f64 / used as f64 * 100.0
            } else {
                0.0
            };
            writeln!(
                f,
                "  medium {m}: {:.1} MB used, {:.1} MB dead ({frac:.0}%)",
                used as f64 / (1 << 20) as f64,
                dead as f64 / (1 << 20) as f64,
            )?;
        }
        writeln!(
            f,
            "caches: ST {:.2}, tile {:.2}; tape fetches: {}; t = {:.1} s",
            self.st_cache_hit_ratio,
            self.tile_cache_hit_ratio,
            self.st_tape_fetches,
            self.simulated_s
        )
    }
}

impl Heaven {
    /// Export every not-yet-archived object of a collection; returns the
    /// per-object reports.
    pub fn export_collection(
        &mut self,
        collection: &str,
        mode: ExportMode,
    ) -> crate::error::Result<Vec<ExportReport>> {
        let oids: Vec<ObjectId> = self.arraydb().collection(collection)?.objects.clone();
        let mut reports = Vec::with_capacity(oids.len());
        for oid in oids {
            if self.catalog().is_exported(oid) {
                continue;
            }
            reports.push(self.export_object(oid, mode)?);
        }
        Ok(reports)
    }

    /// Build an archive status snapshot.
    pub fn archive_report(&self) -> ArchiveReport {
        let mut exported = 0usize;
        let mut resident = 0usize;
        for oid in self.arraydb().object_ids() {
            if self.catalog().is_exported(oid) {
                exported += 1;
            } else {
                resident += 1;
            }
        }
        let media = self
            .store()
            .library()
            .media_ids()
            .into_iter()
            .map(|m| {
                let used = self.store().library().medium_used(m).unwrap_or(0);
                (m, used, self.dead_bytes_on(m))
            })
            .collect();
        ArchiveReport {
            exported_objects: exported,
            resident_objects: resident,
            supertiles: self.catalog().len(),
            media,
            st_cache_hit_ratio: self.st_cache_stats().hit_ratio(),
            tile_cache_hit_ratio: self.tile_cache_stats().hit_ratio(),
            st_tape_fetches: self.stats().st_tape_fetches,
            simulated_s: self.clock().now_s(),
        }
    }
}
