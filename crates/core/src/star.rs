//! STAR — the Super-Tile Algorithm (paper §3.3.2).
//!
//! Input: an object's tiles (domains, sizes, grid coordinates) and a target
//! super-tile size. STAR linearizes the tile grid along a space-filling
//! curve (Hilbert by default — best locality) and greedily packs
//! consecutive runs of tiles into super-tiles up to the target size. The
//! result: spatially adjacent tiles share a super-tile, so a range query
//! touches few super-tiles, and those it touches are mostly useful data.

use heaven_array::{LinearOrder, Minterval, TileId};

/// Per-tile input to the partitioning algorithms.
#[derive(Debug, Clone)]
pub struct TileInfo {
    /// The tile's id.
    pub id: TileId,
    /// The tile's spatial domain.
    pub domain: Minterval,
    /// The tile's *encoded* size in bytes.
    pub bytes: u64,
    /// The tile's coordinate in the tile grid.
    pub grid: Vec<u64>,
}

/// A partition of tiles into super-tile groups: indices into the input
/// slice, groups in inter-cluster order, members in intra-cluster order.
pub type Partition = Vec<Vec<usize>>;

/// Partition tiles into super-tiles of at most `target_bytes` along the
/// given linearization order.
///
/// Guarantees:
/// * every input tile appears in exactly one group;
/// * groups never exceed `target_bytes` unless a single tile already does;
/// * group members are consecutive along the order (intra-super-tile
///   clustering), and groups follow each other along the order
///   (inter-super-tile clustering).
pub fn star_partition(
    tiles: &[TileInfo],
    grid_shape: &[u64],
    target_bytes: u64,
    order: LinearOrder,
) -> Partition {
    if tiles.is_empty() {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..tiles.len()).collect();
    idx.sort_by_key(|&i| order.key(&tiles[i].grid, grid_shape));
    pack_runs(tiles, &idx, target_bytes)
}

/// Greedily pack an ordered tile sequence into groups of at most
/// `target_bytes`.
pub fn pack_runs(tiles: &[TileInfo], ordered: &[usize], target_bytes: u64) -> Partition {
    let target = target_bytes.max(1);
    let mut groups: Partition = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut current_bytes: u64 = 0;
    for &i in ordered {
        let sz = tiles[i].bytes;
        if !current.is_empty() && current_bytes + sz > target {
            groups.push(std::mem::take(&mut current));
            current_bytes = 0;
        }
        current.push(i);
        current_bytes += sz;
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

/// Number of groups of a partition that intersect `query` — the count of
/// super-tiles a query would have to fetch. The quality metric of both
/// STAR and eSTAR.
pub fn groups_touched(tiles: &[TileInfo], partition: &Partition, query: &Minterval) -> usize {
    partition
        .iter()
        .filter(|g| g.iter().any(|&i| tiles[i].domain.intersects(query)))
        .count()
}

/// Total bytes of the groups a query touches (fetched volume).
pub fn bytes_touched(tiles: &[TileInfo], partition: &Partition, query: &Minterval) -> u64 {
    partition
        .iter()
        .filter(|g| g.iter().any(|&i| tiles[i].domain.intersects(query)))
        .map(|g| g.iter().map(|&i| tiles[i].bytes).sum::<u64>())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use heaven_array::{CellType, Tiling};

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    /// Build a regular 2-D tile set: grid `gx x gy`, each tile `tile_bytes`.
    fn tile_set(gx: u64, gy: u64, edge: i64, tile_bytes: u64) -> (Vec<TileInfo>, Vec<u64>) {
        let dom = mi(&[(0, gx as i64 * edge - 1), (0, gy as i64 * edge - 1)]);
        let tiling = Tiling::Regular {
            tile_shape: vec![edge as u64, edge as u64],
        };
        let domains = tiling.tile_domains(&dom, CellType::U8).unwrap();
        let (grid, shape) = tiling.tile_grid(&dom, CellType::U8).unwrap();
        let tiles = domains
            .into_iter()
            .zip(grid)
            .enumerate()
            .map(|(i, (domain, grid))| TileInfo {
                id: i as TileId,
                domain,
                bytes: tile_bytes,
                grid,
            })
            .collect();
        (tiles, shape)
    }

    #[test]
    fn every_tile_in_exactly_one_group() {
        let (tiles, shape) = tile_set(8, 8, 10, 100);
        let p = star_partition(&tiles, &shape, 350, LinearOrder::Hilbert);
        let mut seen = vec![0u32; tiles.len()];
        for g in &p {
            for &i in g {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn groups_respect_size_target() {
        let (tiles, shape) = tile_set(8, 8, 10, 100);
        let p = star_partition(&tiles, &shape, 350, LinearOrder::Hilbert);
        for g in &p {
            let sz: u64 = g.iter().map(|&i| tiles[i].bytes).sum();
            assert!(sz <= 350);
        }
        // 64 tiles * 100 B at 350 B target → 3 tiles per group → 22 groups
        assert_eq!(p.len(), 64_usize.div_ceil(3));
    }

    #[test]
    fn oversized_single_tile_gets_own_group() {
        let tiles = vec![
            TileInfo {
                id: 0,
                domain: mi(&[(0, 9)]),
                bytes: 1000,
                grid: vec![0],
            },
            TileInfo {
                id: 1,
                domain: mi(&[(10, 19)]),
                bytes: 10,
                grid: vec![1],
            },
        ];
        let p = star_partition(&tiles, &[2], 100, LinearOrder::RowMajor);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0], vec![0]);
    }

    #[test]
    fn hilbert_beats_row_major_on_square_queries() {
        // 16x16 grid, 4 tiles per super-tile. Square queries touch fewer
        // Hilbert groups than row-major groups on average.
        let (tiles, shape) = tile_set(16, 16, 10, 100);
        let hilbert = star_partition(&tiles, &shape, 400, LinearOrder::Hilbert);
        let rowmajor = star_partition(&tiles, &shape, 400, LinearOrder::RowMajor);
        let mut h_total = 0usize;
        let mut r_total = 0usize;
        for qx in 0..6 {
            for qy in 0..6 {
                // 3x3-tile square query
                let q = mi(&[(qx * 25, qx * 25 + 29), (qy * 25, qy * 25 + 29)]);
                h_total += groups_touched(&tiles, &hilbert, &q);
                r_total += groups_touched(&tiles, &rowmajor, &q);
            }
        }
        assert!(
            h_total < r_total,
            "hilbert {h_total} should beat row-major {r_total}"
        );
    }

    #[test]
    fn empty_input_yields_empty_partition() {
        let p = star_partition(&[], &[0], 100, LinearOrder::Hilbert);
        assert!(p.is_empty());
    }

    #[test]
    fn bytes_touched_counts_whole_groups() {
        let (tiles, shape) = tile_set(4, 4, 10, 100);
        let p = star_partition(&tiles, &shape, 400, LinearOrder::Hilbert);
        let q = mi(&[(0, 9), (0, 9)]); // single tile
        let bt = bytes_touched(&tiles, &p, &q);
        assert_eq!(bt, 400, "fetches the whole 4-tile super-tile");
    }
}
