//! eSTAR — the extended Super-Tile Algorithm (paper §3.3.3).
//!
//! STAR packs along a fixed space-filling curve, which is optimal only for
//! roughly cubic access patterns. eSTAR takes the *expected access pattern*
//! into account:
//!
//! * **Directional** access (e.g. time-series reads along the time axis)
//!   packs runs along that axis, so one super-tile serves a whole series;
//! * **Slice-dominant** access (e.g. "one altitude level at a time") groups
//!   whole grid slabs of the sliced axis together;
//! * **Uniform** access falls back to STAR's Hilbert packing.
//!
//! eSTAR also performs the paper's *automatic size adjustment*: trailing
//! undersized groups are merged into their predecessor when the result
//! stays within a tolerance of the target, avoiding fragmented super-tiles
//! at object borders.

use crate::star::{pack_runs, Partition, TileInfo};
use heaven_array::LinearOrder;

/// Expected access pattern of an object's queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// No dominant direction: cubic range queries.
    Uniform,
    /// Queries extend mostly along `axis` (axis varies fastest).
    Directional {
        /// The preferred axis.
        axis: usize,
    },
    /// Queries fix `axis` to one value and read the full cross-section.
    SliceDominant {
        /// The axis queries slice on.
        axis: usize,
    },
}

/// Fraction of the target size below which a trailing group is considered
/// fragmented and merged into its predecessor.
const MERGE_FRACTION: f64 = 0.25;
/// Allowed overshoot of the target when merging fragments.
const MERGE_TOLERANCE: f64 = 1.25;

/// Sort key under a pattern: patterns map to linearization orders, except
/// slice-dominant which makes the sliced axis the *slowest* coordinate so
/// each group stays within one slab.
fn pattern_key(pattern: AccessPattern, grid: &[u64], shape: &[u64]) -> u128 {
    match pattern {
        AccessPattern::Uniform => LinearOrder::Hilbert.key(grid, shape),
        AccessPattern::Directional { axis } => LinearOrder::Directional { axis }.key(grid, shape),
        AccessPattern::SliceDominant { axis } => {
            let axis = axis.min(grid.len() - 1);
            // slab index is the most significant part; inside a slab use
            // Hilbert over the remaining axes for locality.
            let mut rest_grid = grid.to_vec();
            let mut rest_shape = shape.to_vec();
            rest_grid.remove(axis);
            rest_shape.remove(axis);
            let inner = if rest_grid.is_empty() {
                0
            } else {
                LinearOrder::Hilbert.key(&rest_grid, &rest_shape)
            };
            let slab_capacity: u128 = rest_shape
                .iter()
                .map(|&s| s as u128)
                .product::<u128>()
                .max(1)
                .next_power_of_two();
            grid[axis] as u128 * slab_capacity * 2 + inner
        }
    }
}

/// Partition tiles into super-tiles under an access pattern.
pub fn estar_partition(
    tiles: &[TileInfo],
    grid_shape: &[u64],
    target_bytes: u64,
    pattern: AccessPattern,
) -> Partition {
    if tiles.is_empty() {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..tiles.len()).collect();
    idx.sort_by_key(|&i| pattern_key(pattern, &tiles[i].grid, grid_shape));
    let mut groups = pack_runs(tiles, &idx, target_bytes);
    merge_fragments(tiles, &mut groups, target_bytes);
    groups
}

/// Merge undersized trailing groups into their predecessor (automatic
/// super-tile size adjustment, §3.3.4).
pub fn merge_fragments(tiles: &[TileInfo], groups: &mut Partition, target_bytes: u64) {
    let mut i = 1;
    while i < groups.len() {
        let size: u64 = groups[i].iter().map(|&t| tiles[t].bytes).sum();
        let prev: u64 = groups[i - 1].iter().map(|&t| tiles[t].bytes).sum();
        let small = (size as f64) < MERGE_FRACTION * target_bytes as f64;
        let fits = ((size + prev) as f64) <= MERGE_TOLERANCE * target_bytes as f64;
        if small && fits {
            let frag = groups.remove(i);
            groups[i - 1].extend(frag);
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::{groups_touched, star_partition};
    use heaven_array::{CellType, Minterval, TileId, Tiling};

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    fn tile_set_3d(g: u64, edge: i64, tile_bytes: u64) -> (Vec<TileInfo>, Vec<u64>) {
        let hi = g as i64 * edge - 1;
        let dom = mi(&[(0, hi), (0, hi), (0, hi)]);
        let tiling = Tiling::Regular {
            tile_shape: vec![edge as u64; 3],
        };
        let domains = tiling.tile_domains(&dom, CellType::U8).unwrap();
        let (grid, shape) = tiling.tile_grid(&dom, CellType::U8).unwrap();
        let tiles = domains
            .into_iter()
            .zip(grid)
            .enumerate()
            .map(|(i, (domain, grid))| TileInfo {
                id: i as TileId,
                domain,
                bytes: tile_bytes,
                grid,
            })
            .collect();
        (tiles, shape)
    }

    #[test]
    fn estar_covers_all_tiles_once() {
        let (tiles, shape) = tile_set_3d(4, 10, 100);
        for pattern in [
            AccessPattern::Uniform,
            AccessPattern::Directional { axis: 2 },
            AccessPattern::SliceDominant { axis: 0 },
        ] {
            let p = estar_partition(&tiles, &shape, 400, pattern);
            let mut seen = vec![0u32; tiles.len()];
            for g in &p {
                for &i in g {
                    seen[i] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{pattern:?}");
        }
    }

    #[test]
    fn directional_estar_beats_star_on_directional_queries() {
        // 8^3 grid; queries are long thin runs along axis 2.
        let (tiles, shape) = tile_set_3d(8, 10, 100);
        let star = star_partition(&tiles, &shape, 800, LinearOrder::Hilbert);
        let estar = estar_partition(&tiles, &shape, 800, AccessPattern::Directional { axis: 2 });
        let mut star_total = 0;
        let mut estar_total = 0;
        for x in 0..8i64 {
            for y in 0..8i64 {
                let q = mi(&[(x * 10, x * 10 + 9), (y * 10, y * 10 + 9), (0, 79)]);
                star_total += groups_touched(&tiles, &star, &q);
                estar_total += groups_touched(&tiles, &estar, &q);
            }
        }
        assert!(
            estar_total < star_total,
            "eSTAR {estar_total} should beat STAR {star_total} on directional access"
        );
    }

    #[test]
    fn slice_dominant_estar_beats_star_on_slices() {
        let (tiles, shape) = tile_set_3d(8, 10, 100);
        // super-tile of 8 tiles = one slab row of 8, or a 2x2x2 Hilbert cube
        let star = star_partition(&tiles, &shape, 800, LinearOrder::Hilbert);
        let estar = estar_partition(
            &tiles,
            &shape,
            800,
            AccessPattern::SliceDominant { axis: 0 },
        );
        let mut star_total = 0;
        let mut estar_total = 0;
        for x in 0..8i64 {
            // full cross-section at one grid level of axis 0
            let q = mi(&[(x * 10, x * 10), (0, 79), (0, 79)]);
            star_total += groups_touched(&tiles, &star, &q);
            estar_total += groups_touched(&tiles, &estar, &q);
        }
        assert!(
            estar_total < star_total,
            "eSTAR {estar_total} should beat STAR {star_total} on slice access"
        );
    }

    #[test]
    fn fragments_are_merged() {
        // 10 tiles of 100 B, target 300 B → groups of 3,3,3,1; the trailing
        // 1-tile fragment (100 < 0.25*300? no → 75, not small enough)...
        // use target 450: groups of 4,4,2 → trailing 200 < 112.5? no.
        // Construct explicitly: sizes so the tail is tiny.
        let tiles: Vec<TileInfo> = (0..9)
            .map(|i| TileInfo {
                id: i as TileId,
                domain: mi(&[(i * 10, i * 10 + 9)]),
                bytes: if i == 8 { 20 } else { 100 },
                grid: vec![i as u64],
            })
            .collect();
        let p = estar_partition(&tiles, &[9], 400, AccessPattern::Uniform);
        // without merging: [4 tiles][4 tiles][1 tiny] → tiny merges into prev
        assert_eq!(p.len(), 2);
        let last_size: u64 = p.last().unwrap().iter().map(|&i| tiles[i].bytes).sum();
        assert_eq!(last_size, 420);
    }

    #[test]
    fn merge_respects_tolerance() {
        // A fragment that would overshoot 1.25×target stays separate.
        let tiles: Vec<TileInfo> = (0..3)
            .map(|i| TileInfo {
                id: i as TileId,
                domain: mi(&[(i * 10, i * 10 + 9)]),
                bytes: [400, 400, 90][i as usize],
                grid: vec![i as u64],
            })
            .collect();
        let mut groups: Partition = vec![vec![0], vec![1], vec![2]];
        merge_fragments(&tiles, &mut groups, 400);
        // 90 < 100 (0.25*400) and 400+90=490 ≤ 500 → merged
        assert_eq!(groups.len(), 2);
        let mut groups2: Partition = vec![vec![0], vec![1]];
        let tiles2: Vec<TileInfo> = vec![
            TileInfo {
                id: 0,
                domain: mi(&[(0, 9)]),
                bytes: 480,
                grid: vec![0],
            },
            TileInfo {
                id: 1,
                domain: mi(&[(10, 19)]),
                bytes: 90,
                grid: vec![1],
            },
        ];
        merge_fragments(&tiles2, &mut groups2, 400);
        // 480+90=570 > 500 → kept separate
        assert_eq!(groups2.len(), 2);
    }
}
