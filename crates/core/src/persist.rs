//! Persistence of HEAVEN's super-tile catalog in the base RDBMS.
//!
//! The paper's HEAVEN keeps its tertiary-storage metadata (which super-tile
//! lives where, which tiles it contains) in the base RDBMS alongside
//! RasDaMan's catalogs, so a restarted server still knows its archive. We
//! mirror that: every catalog mutation writes through to a heap table
//! (fixed-size head row) plus a BLOB (the member directory), and
//! [`CatalogStore::load_all`] rebuilds the full catalog from disk.

use crate::error::{HeavenError, Result};
use crate::supertile::{MemberEntry, SuperTileId, SuperTileMeta};
use heaven_array::Minterval;
use heaven_hsm::BlockAddress;
use heaven_rdbms::{BlobStore, Database, RowId, Table};
use std::collections::HashMap;

/// Write-through persistence for the super-tile catalog.
#[derive(Debug)]
pub(crate) struct CatalogStore {
    table: Table,
    blobs: BlobStore,
    rows: HashMap<SuperTileId, (RowId, u64 /* members blob */)>,
}

/// Fixed head row: [id, object, medium, offset, len, blob, checksum,
/// replica_medium, replica_offset, replica_len] as LE u64s. A replica
/// length of `u64::MAX` means "no second copy".
const ROW_LEN: usize = 8 * 10;

/// Sentinel replica length encoding "no second copy".
const NO_REPLICA: u64 = u64::MAX;

/// One reloaded catalog entry: meta, primary address, optional replica
/// address, and wire-payload checksum.
pub(crate) type CatalogRow = (SuperTileMeta, BlockAddress, Option<BlockAddress>, u64);

impl CatalogStore {
    /// Create the persistent structures.
    pub fn create(db: &mut Database) -> Result<CatalogStore> {
        Ok(CatalogStore {
            table: Table::create(db).map_err(wrap)?,
            blobs: BlobStore::create(db).map_err(wrap)?,
            rows: HashMap::new(),
        })
    }

    /// Persist a newly registered super-tile with its optional second
    /// copy and wire-payload checksum.
    pub fn insert(
        &mut self,
        db: &mut Database,
        meta: &SuperTileMeta,
        addr: BlockAddress,
        replica: Option<BlockAddress>,
        checksum: u64,
    ) -> Result<()> {
        let members = encode_members(&meta.members);
        let blob = self.blobs.put(db, &members).map_err(wrap)?;
        let (rm, ro, rl) = match replica {
            Some(r) => (r.medium, r.offset, r.len),
            None => (0, 0, NO_REPLICA),
        };
        let mut row = Vec::with_capacity(ROW_LEN);
        row.extend_from_slice(&meta.id.to_le_bytes());
        row.extend_from_slice(&meta.object.to_le_bytes());
        row.extend_from_slice(&addr.medium.to_le_bytes());
        row.extend_from_slice(&addr.offset.to_le_bytes());
        row.extend_from_slice(&addr.len.to_le_bytes());
        row.extend_from_slice(&blob.to_le_bytes());
        row.extend_from_slice(&checksum.to_le_bytes());
        row.extend_from_slice(&rm.to_le_bytes());
        row.extend_from_slice(&ro.to_le_bytes());
        row.extend_from_slice(&rl.to_le_bytes());
        let rid = self.table.insert(db, &row).map_err(wrap)?;
        self.rows.insert(meta.id, (rid, blob));
        Ok(())
    }

    /// Remove a super-tile's persisted entry.
    pub fn remove(&mut self, db: &mut Database, st: SuperTileId) -> Result<()> {
        if let Some((rid, blob)) = self.rows.remove(&st) {
            self.table.delete(db, rid).map_err(wrap)?;
            self.blobs.delete(db, blob).map_err(wrap)?;
        }
        Ok(())
    }

    /// Update a super-tile's address (after compaction), keeping its
    /// replica address and checksum.
    pub fn update_addr(
        &mut self,
        db: &mut Database,
        st: SuperTileId,
        meta: &SuperTileMeta,
        addr: BlockAddress,
        replica: Option<BlockAddress>,
        checksum: u64,
    ) -> Result<()> {
        self.remove(db, st)?;
        self.insert(db, meta, addr, replica, checksum)
    }

    /// Load every persisted super-tile (used after a restart/recovery).
    /// Also repopulates the row map so subsequent mutations keep working.
    pub fn load_all(&mut self, db: &mut Database) -> Result<Vec<CatalogRow>> {
        self.rows.clear();
        let mut out = Vec::new();
        for (rid, row) in self.table.scan(db).map_err(wrap)? {
            if row.len() != ROW_LEN {
                return Err(HeavenError::Codec("bad catalog row length".into()));
            }
            let rd = |i: usize| u64::from_le_bytes(row[i * 8..(i + 1) * 8].try_into().unwrap());
            let (id, object, medium, offset, len, blob) =
                (rd(0), rd(1), rd(2), rd(3), rd(4), rd(5));
            let checksum = rd(6);
            let replica = if rd(9) == NO_REPLICA {
                None
            } else {
                Some(BlockAddress {
                    medium: rd(7),
                    offset: rd(8),
                    len: rd(9),
                })
            };
            let members = decode_members(&self.blobs.get(db, blob).map_err(wrap)?)?;
            let total_len = members.iter().map(|m| m.len).sum();
            self.rows.insert(id, (rid, blob));
            out.push((
                SuperTileMeta {
                    id,
                    object,
                    members,
                    total_len,
                },
                BlockAddress {
                    medium,
                    offset,
                    len,
                },
                replica,
                checksum,
            ));
        }
        Ok(out)
    }

    /// Number of persisted entries tracked in this session.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Remove every persisted entry (before a scavenging rebuild).
    pub fn clear(&mut self, db: &mut Database) -> Result<()> {
        self.load_all(db)?;
        let ids: Vec<SuperTileId> = self.rows.keys().copied().collect();
        for id in ids {
            self.remove(db, id)?;
        }
        Ok(())
    }
}

fn wrap(e: heaven_rdbms::DbError) -> HeavenError {
    HeavenError::ArrayDb(heaven_arraydb::ArrayDbError::Db(e))
}

fn encode_members(members: &[MemberEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(members.len() as u32).to_le_bytes());
    for m in members {
        out.extend_from_slice(&m.tile.to_le_bytes());
        out.extend_from_slice(&m.offset.to_le_bytes());
        out.extend_from_slice(&m.len.to_le_bytes());
        out.push(m.domain.dim() as u8);
        for ax in m.domain.axes() {
            out.extend_from_slice(&ax.lo.to_le_bytes());
            out.extend_from_slice(&ax.hi.to_le_bytes());
        }
    }
    out
}

fn decode_members(bytes: &[u8]) -> Result<Vec<MemberEntry>> {
    let bad = || HeavenError::Codec("bad member directory".into());
    if bytes.len() < 4 {
        return Err(bad());
    }
    let n = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let mut off = 4usize;
    let mut take = |k: usize| -> Result<&[u8]> {
        if bytes.len() < off + k {
            return Err(bad());
        }
        let s = &bytes[off..off + k];
        off += k;
        Ok(s)
    };
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let tile = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let offset = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let len = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let d = take(1)?[0] as usize;
        let mut bounds = Vec::with_capacity(d);
        for _ in 0..d {
            let lo = i64::from_le_bytes(take(8)?.try_into().unwrap());
            let hi = i64::from_le_bytes(take(8)?.try_into().unwrap());
            bounds.push((lo, hi));
        }
        let domain = Minterval::new(&bounds).map_err(|_| bad())?;
        out.push(MemberEntry {
            tile,
            domain,
            offset,
            len,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    fn meta(id: SuperTileId) -> SuperTileMeta {
        SuperTileMeta {
            id,
            object: 5,
            members: vec![
                MemberEntry {
                    tile: 10,
                    domain: mi(&[(0, 9), (0, 9)]),
                    offset: 0,
                    len: 100,
                },
                MemberEntry {
                    tile: 11,
                    domain: mi(&[(0, 9), (10, 19)]),
                    offset: 100,
                    len: 150,
                },
            ],
            total_len: 250,
        }
    }

    fn addr(m: u64) -> BlockAddress {
        BlockAddress {
            medium: m,
            offset: 777,
            len: 250,
        }
    }

    #[test]
    fn insert_load_roundtrip() {
        let mut db = Database::for_tests();
        let mut cs = CatalogStore::create(&mut db).unwrap();
        cs.insert(&mut db, &meta(1), addr(0), None, 0xFEED).unwrap();
        cs.insert(&mut db, &meta(2), addr(3), Some(addr(7)), 42)
            .unwrap();
        let mut loaded = cs.load_all(&mut db).unwrap();
        loaded.sort_by_key(|(m, ..)| m.id);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].0, meta(1));
        assert_eq!(loaded[0].1, addr(0));
        assert_eq!(loaded[0].2, None);
        assert_eq!(loaded[0].3, 0xFEED);
        assert_eq!(loaded[1].1, addr(3));
        assert_eq!(loaded[1].2, Some(addr(7)));
        assert_eq!(loaded[1].3, 42);
    }

    #[test]
    fn remove_drops_entry() {
        let mut db = Database::for_tests();
        let mut cs = CatalogStore::create(&mut db).unwrap();
        cs.insert(&mut db, &meta(1), addr(0), None, 0).unwrap();
        cs.remove(&mut db, 1).unwrap();
        assert!(cs.load_all(&mut db).unwrap().is_empty());
        // idempotent
        cs.remove(&mut db, 1).unwrap();
    }

    #[test]
    fn update_addr_relocates() {
        let mut db = Database::for_tests();
        let mut cs = CatalogStore::create(&mut db).unwrap();
        let m = meta(1);
        cs.insert(&mut db, &m, addr(0), Some(addr(4)), 11).unwrap();
        cs.update_addr(&mut db, 1, &m, addr(9), Some(addr(4)), 11)
            .unwrap();
        let loaded = cs.load_all(&mut db).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1.medium, 9);
        assert_eq!(loaded[0].2, Some(addr(4)), "replica survives relocation");
        assert_eq!(loaded[0].3, 11, "checksum survives relocation");
    }

    #[test]
    fn mutations_work_after_reload() {
        let mut db = Database::for_tests();
        let mut cs = CatalogStore::create(&mut db).unwrap();
        cs.insert(&mut db, &meta(1), addr(0), None, 0).unwrap();
        cs.load_all(&mut db).unwrap(); // rebuilds row map
        cs.remove(&mut db, 1).unwrap();
        assert!(cs.load_all(&mut db).unwrap().is_empty());
    }

    #[test]
    fn member_codec_roundtrip() {
        let members = meta(1).members;
        let enc = encode_members(&members);
        assert_eq!(decode_members(&enc).unwrap(), members);
        assert!(decode_members(&enc[..enc.len() - 1]).is_err());
        assert!(decode_members(&[1]).is_err());
    }
}
