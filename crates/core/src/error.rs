//! Error type for the HEAVEN core.

use heaven_array::ArrayError;
use heaven_arraydb::ArrayDbError;
use heaven_hsm::HsmError;
use heaven_tape::TapeError;
use std::fmt;

/// Errors raised by the HEAVEN layer.
#[derive(Debug)]
pub enum HeavenError {
    /// Unknown super-tile id.
    NoSuchSuperTile(u64),
    /// A tile is neither on disk nor in any super-tile.
    TileUnlocated(u64),
    /// An object has no exported super-tiles where some were expected.
    NotExported(u64),
    /// Object already exported.
    AlreadyExported(u64),
    /// Configuration problem.
    Config(String),
    /// Super-tile codec failure.
    Codec(String),
    /// Array-layer failure.
    Array(ArrayError),
    /// Array-DBMS failure.
    ArrayDb(ArrayDbError),
    /// Tertiary-storage failure.
    Tape(TapeError),
    /// HSM failure.
    Hsm(HsmError),
    /// Every archive copy of a super-tile is unreadable (retries and
    /// dual-copy failover exhausted). The data is gone; the query fails
    /// loudly instead of returning corrupt bytes.
    MediaLost {
        /// The unrecoverable super-tile.
        st: u64,
    },
}

impl fmt::Display for HeavenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeavenError::NoSuchSuperTile(id) => write!(f, "no such super-tile {id}"),
            HeavenError::TileUnlocated(t) => write!(f, "tile {t} has no known location"),
            HeavenError::NotExported(o) => write!(f, "object {o} is not exported"),
            HeavenError::AlreadyExported(o) => write!(f, "object {o} already exported"),
            HeavenError::Config(m) => write!(f, "configuration error: {m}"),
            HeavenError::Codec(m) => write!(f, "super-tile codec error: {m}"),
            HeavenError::Array(e) => write!(f, "array: {e}"),
            HeavenError::ArrayDb(e) => write!(f, "array dbms: {e}"),
            HeavenError::Tape(e) => write!(f, "tertiary storage: {e}"),
            HeavenError::Hsm(e) => write!(f, "hsm: {e}"),
            HeavenError::MediaLost { st } => {
                write!(f, "super-tile {st} lost: all archive copies unreadable")
            }
        }
    }
}

impl std::error::Error for HeavenError {}

impl From<ArrayError> for HeavenError {
    fn from(e: ArrayError) -> Self {
        HeavenError::Array(e)
    }
}

impl From<ArrayDbError> for HeavenError {
    fn from(e: ArrayDbError) -> Self {
        HeavenError::ArrayDb(e)
    }
}

impl From<TapeError> for HeavenError {
    fn from(e: TapeError) -> Self {
        HeavenError::Tape(e)
    }
}

impl From<HsmError> for HeavenError {
    fn from(e: HsmError) -> Self {
        HeavenError::Hsm(e)
    }
}

/// Result alias for the HEAVEN core.
pub type Result<T> = std::result::Result<T, HeavenError>;

impl From<HeavenError> for ArrayDbError {
    fn from(e: HeavenError) -> Self {
        match e {
            HeavenError::ArrayDb(inner) => inner,
            other => ArrayDbError::Semantic(other.to_string()),
        }
    }
}
