//! Query scheduling (paper §3.5.3): ordering tertiary-storage fetches to
//! minimize media exchanges and locate distances.
//!
//! Naive execution fetches super-tiles in request order, thrashing the few
//! drives with media exchanges. The scheduler reorders a fetch batch:
//!
//! 1. group requests by medium,
//! 2. serve media already mounted in a drive first,
//! 3. order the remaining media by their first-needed offset,
//! 4. within a medium, fetch in ascending offset order (one sweep, no
//!    back-seeks).
//!
//! For multi-query batches the requests of all queries are merged before
//! scheduling, so one mount of a medium serves every query needing it.

use crate::supertile::SuperTileId;
use heaven_hsm::BlockAddress;
use heaven_tape::MediumId;
use std::collections::BTreeMap;

/// One super-tile fetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchRequest {
    /// The super-tile to fetch.
    pub st: SuperTileId,
    /// Where it lives.
    pub addr: BlockAddress,
}

/// Reorder fetch requests to minimize exchanges and seeks.
///
/// `mounted` lists media currently in drives (served first, keeping their
/// mounts warm). Duplicate super-tiles are collapsed.
pub fn schedule(requests: &[FetchRequest], mounted: &[MediumId]) -> Vec<FetchRequest> {
    // Collapse duplicates, group by medium.
    let mut groups: BTreeMap<MediumId, Vec<FetchRequest>> = BTreeMap::new();
    let mut seen = std::collections::HashSet::new();
    for r in requests {
        if seen.insert(r.st) {
            groups.entry(r.addr.medium).or_default().push(*r);
        }
    }
    for g in groups.values_mut() {
        g.sort_by_key(|r| r.addr.offset);
    }
    let mut out = Vec::with_capacity(requests.len());
    // Mounted media first, in the given order.
    for &m in mounted {
        if let Some(g) = groups.remove(&m) {
            out.extend(g);
        }
    }
    // Remaining media: by medium id (stable, deterministic; media are
    // filled in cluster order so id order ≈ spatial order).
    for (_, g) in groups {
        out.extend(g);
    }
    out
}

/// Count the media exchanges a fetch order would cause with `drives`
/// drives and the given initially mounted media (LRU replacement —
/// mirrors the library simulator).
pub fn count_exchanges(order: &[FetchRequest], drives: usize, mounted: &[MediumId]) -> u64 {
    let mut in_drive: Vec<Option<MediumId>> = vec![None; drives.max(1)];
    for (i, &m) in mounted.iter().take(drives).enumerate() {
        in_drive[i] = Some(m);
    }
    let mut last_used = vec![0u64; drives.max(1)];
    let mut tick = 0u64;
    let mut exchanges = 0u64;
    for r in order {
        tick += 1;
        if let Some(d) = in_drive.iter().position(|&m| m == Some(r.addr.medium)) {
            last_used[d] = tick;
            continue;
        }
        exchanges += 1;
        let d = in_drive
            .iter()
            .position(|m| m.is_none())
            .unwrap_or_else(|| {
                last_used
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &t)| t)
                    .map(|(i, _)| i)
                    .expect("at least one drive")
            });
        in_drive[d] = Some(r.addr.medium);
        last_used[d] = tick;
    }
    exchanges
}

/// Split a scheduled fetch order into staging **rounds** for parallel
/// drives: each round holds at most `drives` groups, each group all the
/// consecutive requests of one medium, so every group can execute on its
/// own drive against a detached clock (see
/// `heaven_hsm::DirectStore::read_parallel`) and a round costs only its
/// slowest group. The within-round and across-round request order is the
/// scheduled order, so exchange/seek minimization is preserved.
pub fn plan_drive_rounds(order: &[FetchRequest], drives: usize) -> Vec<Vec<Vec<FetchRequest>>> {
    let drives = drives.max(1);
    let mut rounds: Vec<Vec<Vec<FetchRequest>>> = Vec::new();
    let mut round: Vec<Vec<FetchRequest>> = Vec::new();
    for r in order {
        match round.last_mut() {
            Some(group) if group[0].addr.medium == r.addr.medium => group.push(*r),
            _ => {
                if round.len() == drives {
                    rounds.push(std::mem::take(&mut round));
                }
                round.push(vec![*r]);
            }
        }
    }
    if !round.is_empty() {
        rounds.push(round);
    }
    rounds
}

/// Sum of forward/backward head travel (bytes) within each medium for a
/// fetch order, assuming the head starts at 0 after each mount.
pub fn seek_distance(order: &[FetchRequest]) -> u64 {
    let mut head: BTreeMap<MediumId, u64> = BTreeMap::new();
    let mut dist = 0u64;
    for r in order {
        let h = head.entry(r.addr.medium).or_insert(0);
        dist += h.abs_diff(r.addr.offset);
        *h = r.addr.offset + r.addr.len;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(st: SuperTileId, medium: MediumId, offset: u64) -> FetchRequest {
        FetchRequest {
            st,
            addr: BlockAddress {
                medium,
                offset,
                len: 100,
            },
        }
    }

    #[test]
    fn groups_by_medium_and_sorts_by_offset() {
        let reqs = vec![
            req(1, 2, 500),
            req(2, 1, 900),
            req(3, 2, 100),
            req(4, 1, 100),
        ];
        let s = schedule(&reqs, &[]);
        // medium 1 first (lower id), offsets ascending
        assert_eq!(s.iter().map(|r| r.st).collect::<Vec<_>>(), vec![4, 2, 3, 1]);
    }

    #[test]
    fn mounted_media_served_first() {
        let reqs = vec![req(1, 1, 0), req(2, 5, 0), req(3, 3, 0)];
        let s = schedule(&reqs, &[5]);
        assert_eq!(s[0].st, 2);
    }

    #[test]
    fn duplicates_collapsed() {
        let reqs = vec![req(1, 1, 0), req(1, 1, 0), req(2, 1, 100)];
        let s = schedule(&reqs, &[]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn scheduling_reduces_exchanges() {
        // Interleaved access to two media: naive order thrashes one drive.
        let naive: Vec<FetchRequest> = (0..10)
            .map(|i| req(i, (i % 2) as MediumId, i * 100))
            .collect();
        let scheduled = schedule(&naive, &[]);
        let ex_naive = count_exchanges(&naive, 1, &[]);
        let ex_sched = count_exchanges(&scheduled, 1, &[]);
        assert_eq!(ex_naive, 10);
        assert_eq!(ex_sched, 2);
    }

    #[test]
    fn scheduling_reduces_seek_distance() {
        let naive = vec![req(1, 0, 9000), req(2, 0, 100), req(3, 0, 5000)];
        let scheduled = schedule(&naive, &[]);
        assert!(seek_distance(&scheduled) < seek_distance(&naive));
    }

    #[test]
    fn drive_rounds_group_by_medium_and_cap_at_drive_count() {
        let order = vec![
            req(1, 0, 0),
            req(2, 0, 100),
            req(3, 1, 0),
            req(4, 2, 0),
            req(5, 2, 100),
        ];
        let rounds = plan_drive_rounds(&order, 2);
        assert_eq!(rounds.len(), 2, "3 media / 2 drives = 2 rounds");
        assert_eq!(rounds[0].len(), 2);
        assert_eq!(
            rounds[0][0].iter().map(|r| r.st).collect::<Vec<_>>(),
            [1, 2]
        );
        assert_eq!(rounds[0][1][0].st, 3);
        assert_eq!(
            rounds[1][0].iter().map(|r| r.st).collect::<Vec<_>>(),
            [4, 5]
        );
        // Flattened rounds reproduce the scheduled order exactly.
        let flat: Vec<_> = rounds.iter().flatten().flatten().map(|r| r.st).collect();
        assert_eq!(flat, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn drive_rounds_single_drive_is_one_group_per_round() {
        let order = vec![req(1, 0, 0), req(2, 1, 0), req(3, 0, 100)];
        let rounds = plan_drive_rounds(&order, 1);
        assert_eq!(rounds.len(), 3);
        assert!(rounds.iter().all(|r| r.len() == 1));
        assert!(plan_drive_rounds(&[], 4).is_empty());
    }

    #[test]
    fn exchange_count_respects_multiple_drives() {
        let order: Vec<FetchRequest> = (0..8)
            .map(|i| req(i, (i % 2) as MediumId, i * 10))
            .collect();
        // with two drives both media stay mounted: 2 initial mounts
        assert_eq!(count_exchanges(&order, 2, &[]), 2);
        // already mounted: zero
        assert_eq!(count_exchanges(&order, 2, &[0, 1]), 0);
    }
}
