#![warn(missing_docs)]
//! # heaven-core — HEAVEN: Hierarchical Storage and Archive Environment
//! for Multidimensional Array Database Management Systems
//!
//! The paper's primary contribution: a transparent fusion of a
//! multidimensional array DBMS with automated tertiary-storage systems,
//! optimized for tape access. The pieces:
//!
//! * [`supertile`] — super-tiles, the tertiary transfer unit (§3.3);
//! * [`star`] / [`estar`] — the (extended) Super-Tile Algorithm forming
//!   them (§3.3.2–3.3.3);
//! * [`sizing`] — automatic super-tile size adaptation (§3.3.4);
//! * [`export`] — naive vs. decoupled-TCT export with intra-/inter-
//!   super-tile clustering (§3.4);
//! * [`system`] + [`scheduler`] — hierarchy-transparent retrieval with
//!   query scheduling (§3.5);
//! * [`cache`] — the caching hierarchy with pluggable eviction (§3.7);
//! * [`maintenance`] — delete / update / re-import / media reclamation and
//!   prefetching (§3.6);
//! * [`precomp`] — the catalog of precomputed operation results (§3.9);
//! * Object Framing (§3.8) lives in the query language
//!   (`heaven-arraydb::ql`) on the geometry of `heaven-array::frame`,
//!   evaluated here tile-precisely through the [`system::Heaven`]
//!   provider.

pub mod cache;
pub mod catalog;
pub mod concurrent;
pub mod config;
pub mod error;
pub mod estar;
pub mod export;
pub mod maintenance;
pub(crate) mod persist;
pub mod precomp;
pub(crate) mod recovery;
pub mod report;
pub mod scheduler;
pub mod sizing;
pub mod star;
pub mod supertile;
pub mod system;

pub use cache::{CacheStats, EvictionPolicy, SuperTileCache, TileCache};
pub use catalog::SuperTileCatalog;
pub use concurrent::{ConcurrentHeaven, Session};
pub use config::{ClusteringStrategy, HeavenConfig, PrefetchPolicy, RetryPolicy};
pub use error::{HeavenError, Result};
// Codec selection is configured through `HeavenConfig::codec`; re-export
// the policy types so callers don't need a direct heaven-array dep.
pub use estar::{estar_partition, AccessPattern};
pub use export::{pipeline_makespan, ExportMode, ExportReport};
pub use heaven_array::{Codec, CodecPolicy};
pub use precomp::{PrecompCatalog, PrecompStats};
pub use report::ArchiveReport;
pub use scheduler::{count_exchanges, plan_drive_rounds, schedule, seek_distance, FetchRequest};
pub use sizing::{expected_query_cost_s, optimal_supertile_size};
pub use star::{bytes_touched, groups_touched, star_partition, TileInfo};
pub use supertile::{
    checksum64, decode_all, decode_member, encode_supertile, MemberEntry, SuperTileId,
    SuperTileMeta,
};
pub use system::{Heaven, HeavenStats};
