//! Maintenance of archived objects: delete, update, re-import, and media
//! reclamation (paper §3.6).
//!
//! Tapes are append-only: deleting or updating archived data leaves *dead
//! space* behind. HEAVEN tracks dead bytes per medium and compacts a
//! medium (rewriting only its live super-tiles) once the dead fraction
//! crosses a threshold.

use crate::error::{HeavenError, Result};
use crate::supertile::{decode_all, MemberEntry, SuperTileMeta};
use crate::system::Heaven;
use heaven_array::{MDArray, ObjectId};
use heaven_tape::{MediumId, WritePayload};

impl Heaven {
    /// Dead bytes currently recorded for a medium.
    pub fn dead_bytes_on(&self, medium: MediumId) -> u64 {
        self.dead_bytes.get(&medium).copied().unwrap_or(0)
    }

    /// Dead fraction of a medium (`0.0` for an unused medium).
    pub fn dead_fraction(&self, medium: MediumId) -> f64 {
        let used = self.store.library().medium_used(medium).unwrap_or(0);
        if used == 0 {
            0.0
        } else {
            self.dead_bytes_on(medium) as f64 / used as f64
        }
    }

    /// Delete an object everywhere: DBMS tiles, super-tile catalog, caches
    /// and the precomputed-result catalog. Tertiary blocks become dead
    /// space.
    pub fn delete_object(&mut self, oid: ObjectId) -> Result<()> {
        let tiles: Vec<u64> = self
            .adb
            .object(oid)?
            .tiles
            .iter()
            .map(|&(_, t)| t)
            .collect();
        for t in &tiles {
            self.tile_cache.invalidate(*t);
        }
        for st in self.catalog.object_supertiles(oid) {
            self.st_cache.invalidate(st);
        }
        let freed = self.unregister_object(oid)?;
        for addr in freed {
            *self.dead_bytes.entry(addr.medium).or_insert(0) += addr.len;
        }
        self.precomp.invalidate_object(oid);
        self.adb.delete_object(oid)?;
        Ok(())
    }

    /// Re-import an archived object: all its tiles return to secondary
    /// storage and its tertiary blocks become dead space.
    pub fn reimport_object(&mut self, oid: ObjectId) -> Result<()> {
        let sts = self.catalog.object_supertiles(oid);
        if sts.is_empty() {
            return Err(HeavenError::NotExported(oid));
        }
        for st in sts {
            let payload = self.supertile_payload(st)?;
            let meta = self.catalog.meta(st)?.clone();
            for tile in decode_all(&meta, &payload)? {
                self.adb.restore_tile(&tile)?;
            }
            self.st_cache.invalidate(st);
        }
        let freed = self.unregister_object(oid)?;
        for addr in freed {
            *self.dead_bytes.entry(addr.medium).or_insert(0) += addr.len;
        }
        Ok(())
    }

    /// Update archived data in place: cells of `patch` overwrite the
    /// overlapping region of `oid`. Affected super-tiles are re-written as
    /// new versions (old blocks become dead space); affected disk tiles
    /// are patched directly. Precomputed results of the object are
    /// invalidated.
    pub fn update_region(&mut self, oid: ObjectId, patch: &MDArray) -> Result<()> {
        let meta = self.adb.object(oid)?.clone();
        if meta.cell_type != patch.cell_type() {
            return Err(HeavenError::Config(format!(
                "update cell type {} does not match object {}",
                patch.cell_type().name(),
                meta.cell_type.name()
            )));
        }
        let affected = meta.tiles_intersecting(patch.domain());
        // Group affected exported tiles by super-tile.
        let mut by_st: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
        for tid in affected {
            self.tile_cache.invalidate(tid);
            match self.adb.tile_location(tid)? {
                heaven_arraydb::TileLocation::Disk => {
                    let mut tile = self.adb.read_tile(tid)?;
                    tile.data.patch(patch)?;
                    self.adb.restore_tile(&tile)?;
                }
                heaven_arraydb::TileLocation::Exported => {
                    let st = self.catalog.supertile_of(tid)?;
                    by_st.entry(st).or_default().push(tid);
                }
            }
        }
        for (st, _) in by_st {
            let payload = self.supertile_payload(st)?;
            let st_meta = self.catalog.meta(st)?.clone();
            let mut tiles = decode_all(&st_meta, &payload)?;
            for t in tiles.iter_mut() {
                if t.domain().intersects(patch.domain()) {
                    t.data.patch(patch)?;
                }
            }
            // Write the new version under a fresh id.
            let new_id = self.catalog.next_id();
            let (new_payload, new_meta) = crate::supertile::encode_supertile(new_id, oid, &tiles);
            let wire = self.maybe_compress(new_payload);
            let checksum = crate::supertile::checksum64(&wire);
            let addr = self.store.append(WritePayload::Real(wire.clone()))?;
            let replica = if self.config.dual_copy {
                Some(
                    self.store
                        .append_replica(WritePayload::Real(wire), addr.medium)?,
                )
            } else {
                None
            };
            let old_addr = self.unregister_supertile(st)?;
            *self.dead_bytes.entry(old_addr.medium).or_insert(0) += old_addr.len;
            self.st_cache.invalidate(st);
            self.register_supertile(new_meta, addr, replica, checksum)?;
        }
        self.precomp.invalidate_object(oid);
        Ok(())
    }

    /// Disaster recovery: rebuild the super-tile catalog by *scanning the
    /// media themselves*. Super-tile blocks are self-describing (a run of
    /// tile records); segments that do not parse (foreign files, dead
    /// versions of updated blocks) are skipped. Every recovered block is
    /// re-registered (including write-through persistence) and its tiles
    /// marked exported. Returns the number of super-tiles recovered.
    ///
    /// This is the last resort when both the in-memory catalog and its
    /// persisted tables are gone; a full archive scan costs real tape time
    /// (charged to the clock), exactly as it would in an installation.
    pub fn scavenge_catalog_from_media(&mut self) -> Result<usize> {
        self.catalog = crate::catalog::SuperTileCatalog::new();
        self.catalog_store.clear(self.adb.database_mut())?;
        self.clear_caches();
        let media = self.store.library().media_ids();
        let mut recovered = 0usize;
        let mut live_tiles: std::collections::HashMap<u64, crate::supertile::SuperTileId> =
            Default::default();
        for medium in media {
            let segments = self.store.library().medium_segments(medium)?;
            for (offset, len) in segments {
                let raw = self.store.library_mut().read(medium, offset, len)?;
                let checksum = crate::supertile::checksum64(&raw);
                let Ok(payload) = self.maybe_decompress(raw) else {
                    continue;
                };
                let Some((members, object)) = parse_supertile_payload(&payload) else {
                    continue;
                };
                let st = self.catalog.next_id();
                let meta = SuperTileMeta {
                    id: st,
                    object,
                    total_len: payload.len() as u64,
                    members,
                };
                // Later versions of a tile supersede earlier ones (updates
                // append new blocks after the originals in tape order).
                for m in &meta.members {
                    if let Some(old_st) = live_tiles.insert(m.tile, st) {
                        if old_st != st {
                            // the older block is (partially) dead; drop it
                            // entirely if every member was superseded
                            let all_dead = self
                                .catalog
                                .meta(old_st)
                                .map(|om| {
                                    om.members
                                        .iter()
                                        .all(|om| live_tiles.get(&om.tile) != Some(&old_st))
                                })
                                .unwrap_or(false);
                            if all_dead {
                                let _ = self.unregister_supertile(old_st);
                                recovered -= 1;
                            }
                        }
                    }
                }
                let addr = heaven_hsm::BlockAddress {
                    medium,
                    offset,
                    len,
                };
                // A scavenged block has no known second copy: replica
                // pairing lives only in the (lost) catalog. A replica
                // segment parses like its primary and simply supersedes
                // it in tape order, so redundancy degrades to one copy.
                self.register_supertile(meta, addr, None, checksum)?;
                recovered += 1;
            }
        }
        // Tiles found on media are exported (drop any stale disk copies).
        for (&tile, _) in live_tiles.iter() {
            if self.adb.tile_location(tile).is_ok() {
                self.adb.mark_exported(tile)?;
            }
        }
        Ok(recovered)
    }

    /// Compact a medium whose dead fraction exceeds `threshold`: read all
    /// live super-tiles, erase the medium, and rewrite them back-to-back.
    /// Returns the number of super-tiles rewritten (0 when below the
    /// threshold).
    pub fn reclaim_medium(&mut self, medium: MediumId, threshold: f64) -> Result<usize> {
        if self.dead_fraction(medium) < threshold {
            return Ok(0);
        }
        let live = self.catalog.on_medium(medium);
        // Read every live payload before erasing.
        let mut payloads = Vec::with_capacity(live.len());
        for &(st, addr) in &live {
            let payload = self.store.read(addr)?;
            payloads.push((st, payload));
        }
        self.store.library_mut().erase_medium(medium)?;
        for (st, payload) in payloads {
            let addr = self.store.write_to(medium, WritePayload::Real(payload))?;
            self.relocate_supertile(st, addr)?;
        }
        self.dead_bytes.insert(medium, 0);
        Ok(live.len())
    }
}

/// Parse a buffer as a run of tile records; returns the member directory
/// and owning object, or `None` when the buffer is not a super-tile.
fn parse_supertile_payload(payload: &[u8]) -> Option<(Vec<MemberEntry>, heaven_array::ObjectId)> {
    let mut members = Vec::new();
    let mut object = None;
    let mut off = 0usize;
    while off < payload.len() {
        let (tile, used) = heaven_array::Tile::decode(&payload[off..]).ok()?;
        match object {
            None => object = Some(tile.object),
            Some(o) if o != tile.object => return None,
            _ => {}
        }
        members.push(MemberEntry {
            tile: tile.id,
            domain: tile.domain().clone(),
            offset: off as u64,
            len: used as u64,
        });
        off += used;
    }
    if members.is_empty() {
        return None;
    }
    Some((members, object?))
}
