//! Maintenance of archived objects: delete, update, re-import, and media
//! reclamation (paper §3.6).
//!
//! Tapes are append-only: deleting or updating archived data leaves *dead
//! space* behind. HEAVEN tracks dead bytes per medium and compacts a
//! medium (rewriting only its live super-tiles) once the dead fraction
//! crosses a threshold.

use crate::error::{HeavenError, Result};
use crate::supertile::{decode_all, MemberEntry, SuperTileMeta};
use crate::system::Heaven;
use bytes::Bytes;
use heaven_array::{MDArray, ObjectId};
use heaven_tape::{MediumId, WritePayload};

impl Heaven {
    /// Dead bytes currently recorded for a medium.
    pub fn dead_bytes_on(&self, medium: MediumId) -> u64 {
        self.dead_bytes.get(&medium).copied().unwrap_or(0)
    }

    /// Dead fraction of a medium (`0.0` for an unused medium).
    pub fn dead_fraction(&self, medium: MediumId) -> f64 {
        let used = self.store.library().medium_used(medium).unwrap_or(0);
        if used == 0 {
            0.0
        } else {
            self.dead_bytes_on(medium) as f64 / used as f64
        }
    }

    /// Delete an object everywhere: DBMS tiles, super-tile catalog, caches
    /// and the precomputed-result catalog. Tertiary blocks become dead
    /// space.
    pub fn delete_object(&mut self, oid: ObjectId) -> Result<()> {
        let tiles: Vec<u64> = self
            .adb
            .object(oid)?
            .tiles
            .iter()
            .map(|&(_, t)| t)
            .collect();
        for t in &tiles {
            self.tile_cache.invalidate(*t);
        }
        for st in self.catalog.object_supertiles(oid) {
            self.st_cache.invalidate(st);
        }
        let freed = self.unregister_object(oid)?;
        for addr in freed {
            *self.dead_bytes.entry(addr.medium).or_insert(0) += addr.len;
        }
        self.precomp.invalidate_object(oid);
        self.adb.delete_object(oid)?;
        Ok(())
    }

    /// Re-import an archived object: all its tiles return to secondary
    /// storage and its tertiary blocks become dead space.
    pub fn reimport_object(&mut self, oid: ObjectId) -> Result<()> {
        let sts = self.catalog.object_supertiles(oid);
        if sts.is_empty() {
            return Err(HeavenError::NotExported(oid));
        }
        for st in sts {
            let payload = self.supertile_payload(st)?;
            let meta = self.catalog.meta(st)?.clone();
            for tile in decode_all(&meta, &payload)? {
                self.adb.restore_tile(&tile)?;
            }
            self.st_cache.invalidate(st);
        }
        let freed = self.unregister_object(oid)?;
        for addr in freed {
            *self.dead_bytes.entry(addr.medium).or_insert(0) += addr.len;
        }
        Ok(())
    }

    /// Update archived data in place: cells of `patch` overwrite the
    /// overlapping region of `oid`. Affected super-tiles are re-written as
    /// new versions (old blocks become dead space); affected disk tiles
    /// are patched directly. Precomputed results of the object are
    /// invalidated.
    pub fn update_region(&mut self, oid: ObjectId, patch: &MDArray) -> Result<()> {
        let meta = self.adb.object(oid)?.clone();
        if meta.cell_type != patch.cell_type() {
            return Err(HeavenError::Config(format!(
                "update cell type {} does not match object {}",
                patch.cell_type().name(),
                meta.cell_type.name()
            )));
        }
        let affected = meta.tiles_intersecting(patch.domain());
        // Group affected exported tiles by super-tile.
        let mut by_st: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
        for tid in affected {
            self.tile_cache.invalidate(tid);
            match self.adb.tile_location(tid)? {
                heaven_arraydb::TileLocation::Disk => {
                    let mut tile = self.adb.read_tile(tid)?;
                    tile.data.patch(patch)?;
                    self.adb.restore_tile(&tile)?;
                }
                heaven_arraydb::TileLocation::Exported => {
                    let st = self.catalog.supertile_of(tid)?;
                    by_st.entry(st).or_default().push(tid);
                }
            }
        }
        for (st, _) in by_st {
            let payload = self.supertile_payload(st)?;
            let st_meta = self.catalog.meta(st)?.clone();
            let mut tiles = decode_all(&st_meta, &payload)?;
            for t in tiles.iter_mut() {
                if t.domain().intersects(patch.domain()) {
                    t.data.patch(patch)?;
                }
            }
            // Write the new version under a fresh id.
            let new_id = self.catalog.next_id();
            let (new_payload, new_meta) = crate::supertile::encode_supertile(new_id, oid, &tiles);
            let wire = self.maybe_compress(new_payload, meta.cell_type.size_bytes());
            let checksum = crate::supertile::checksum64(&wire);
            let addr = self.store.append(WritePayload::Real(wire.clone()))?;
            let replica = if self.config.dual_copy {
                Some(
                    self.store
                        .append_replica(WritePayload::Real(wire), addr.medium)?,
                )
            } else {
                None
            };
            let old_addr = self.unregister_supertile(st)?;
            *self.dead_bytes.entry(old_addr.medium).or_insert(0) += old_addr.len;
            self.st_cache.invalidate(st);
            self.register_supertile(new_meta, addr, replica, checksum)?;
        }
        self.precomp.invalidate_object(oid);
        Ok(())
    }

    /// Disaster recovery: rebuild the super-tile catalog by *scanning the
    /// media themselves*. Super-tile blocks are self-describing (a run of
    /// tile records); segments that do not parse (foreign files, dead
    /// versions of updated blocks) are skipped. Every recovered block is
    /// re-registered (including write-through persistence) and its tiles
    /// marked exported. Returns the number of super-tiles recovered.
    ///
    /// This is the last resort when both the in-memory catalog and its
    /// persisted tables are gone; a full archive scan costs real tape time
    /// (charged to the clock), exactly as it would in an installation.
    pub fn scavenge_catalog_from_media(&mut self) -> Result<usize> {
        self.catalog = crate::catalog::SuperTileCatalog::new();
        self.catalog_store.clear(self.adb.database_mut())?;
        self.clear_caches();
        let media = self.store.library().media_ids();
        let mut recovered = 0usize;
        let mut live_tiles: std::collections::HashMap<u64, crate::supertile::SuperTileId> =
            Default::default();
        for medium in media {
            let segments = self.store.library().medium_segments(medium)?;
            for (offset, len) in segments {
                let raw = self.store.library_mut().read(medium, offset, len)?;
                let checksum = crate::supertile::checksum64(&raw);
                let Some((payload, members, object)) = decode_scavenged(self.config.compress, raw)
                else {
                    continue;
                };
                let st = self.catalog.next_id();
                let meta = SuperTileMeta {
                    id: st,
                    object,
                    total_len: payload.len() as u64,
                    members,
                };
                // Later versions of a tile supersede earlier ones (updates
                // append new blocks after the originals in tape order).
                for m in &meta.members {
                    if let Some(old_st) = live_tiles.insert(m.tile, st) {
                        if old_st != st {
                            // the older block is (partially) dead; drop it
                            // entirely if every member was superseded
                            let all_dead = self
                                .catalog
                                .meta(old_st)
                                .map(|om| {
                                    om.members
                                        .iter()
                                        .all(|om| live_tiles.get(&om.tile) != Some(&old_st))
                                })
                                .unwrap_or(false);
                            if all_dead {
                                let _ = self.unregister_supertile(old_st);
                                recovered -= 1;
                            }
                        }
                    }
                }
                let addr = heaven_hsm::BlockAddress {
                    medium,
                    offset,
                    len,
                };
                // A scavenged block has no known second copy: replica
                // pairing lives only in the (lost) catalog. A replica
                // segment parses like its primary and simply supersedes
                // it in tape order, so redundancy degrades to one copy.
                self.register_supertile(meta, addr, None, checksum)?;
                recovered += 1;
            }
        }
        // Tiles found on media are exported (drop any stale disk copies).
        for (&tile, _) in live_tiles.iter() {
            if self.adb.tile_location(tile).is_ok() {
                self.adb.mark_exported(tile)?;
            }
        }
        Ok(recovered)
    }

    /// Compact a medium whose dead fraction exceeds `threshold`: read all
    /// live super-tiles, erase the medium, and rewrite them back-to-back.
    /// Returns the number of super-tiles rewritten (0 when below the
    /// threshold).
    pub fn reclaim_medium(&mut self, medium: MediumId, threshold: f64) -> Result<usize> {
        if self.dead_fraction(medium) < threshold {
            return Ok(0);
        }
        let live = self.catalog.on_medium(medium);
        // Read every live payload before erasing.
        let mut payloads = Vec::with_capacity(live.len());
        for &(st, addr) in &live {
            let payload = self.store.read(addr)?;
            payloads.push((st, payload));
        }
        self.store.library_mut().erase_medium(medium)?;
        for (st, payload) in payloads {
            let addr = self.store.write_to(medium, WritePayload::Real(payload))?;
            self.relocate_supertile(st, addr)?;
        }
        self.dead_bytes.insert(medium, 0);
        Ok(live.len())
    }
}

/// Decode a scavenged wire segment without catalog metadata. Framed
/// payloads are self-describing (the header names the codec); unframed
/// bytes are tried as raw first — the adaptive encoder ships
/// incompressible payloads untagged — then as a legacy pre-frame RLE
/// stream. Every candidate must parse as a run of tile records to be
/// accepted, which is what rejects foreign segments and wrong guesses.
fn decode_scavenged(
    compress: bool,
    raw: Bytes,
) -> Option<(Bytes, Vec<MemberEntry>, heaven_array::ObjectId)> {
    if !compress {
        let (members, object) = parse_supertile_payload(&raw)?;
        return Some((raw, members, object));
    }
    if let Some(h) = heaven_array::codec::sniff_frame(&raw) {
        let (payload, _) = heaven_array::decode_wire(&raw, h.orig_len).ok()?;
        let (members, object) = parse_supertile_payload(&payload)?;
        return Some((payload, members, object));
    }
    if let Some((members, object)) = parse_supertile_payload(&raw) {
        return Some((raw, members, object));
    }
    let payload = Bytes::from(heaven_array::rle_decompress(&raw)?);
    let (members, object) = parse_supertile_payload(&payload)?;
    Some((payload, members, object))
}

/// Parse a buffer as a run of tile records; returns the member directory
/// and owning object, or `None` when the buffer is not a super-tile.
pub(crate) fn parse_supertile_payload(
    payload: &[u8],
) -> Option<(Vec<MemberEntry>, heaven_array::ObjectId)> {
    let mut members = Vec::new();
    let mut object = None;
    let mut off = 0usize;
    while off < payload.len() {
        let (tile, used) = heaven_array::Tile::decode(&payload[off..]).ok()?;
        match object {
            None => object = Some(tile.object),
            Some(o) if o != tile.object => return None,
            _ => {}
        }
        members.push(MemberEntry {
            tile: tile.id,
            domain: tile.domain().clone(),
            offset: off as u64,
            len: used as u64,
        });
        off += used;
    }
    if members.is_empty() {
        return None;
    }
    Some((members, object?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HeavenConfig;
    use crate::export::ExportMode;
    use crate::supertile::{checksum64, encode_supertile};
    use heaven_array::{CellType, MDArray, Minterval, Point, Tiling};
    use heaven_arraydb::ArrayDb;
    use heaven_rdbms::Database;
    use heaven_tape::{DeviceProfile, DiskProfile, SimClock, TapeLibrary, WritePayload};

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    fn build(compress: bool, gen: impl Fn(&Point) -> f64) -> (Heaven, ObjectId) {
        let clock = SimClock::new();
        let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 4096);
        let mut adb = ArrayDb::create(db).unwrap();
        adb.create_collection("m", CellType::U8, 2).unwrap();
        let arr = MDArray::generate(mi(&[(0, 31), (0, 31)]), CellType::U8, gen);
        let oid = adb
            .insert_object(
                "m",
                &arr,
                Tiling::Regular {
                    tile_shape: vec![16, 16],
                },
            )
            .unwrap();
        let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 1, clock);
        let heaven = Heaven::new(
            adb,
            lib,
            HeavenConfig {
                supertile_bytes: Some(2048),
                compress,
                ..HeavenConfig::default()
            },
        );
        (heaven, oid)
    }

    /// Archives written by the pre-frame code are bare RLE streams with
    /// no header. Stage one by hand (the old writer's byte layout) and
    /// check both the hierarchy read path and the media scan decode it.
    #[test]
    fn legacy_untagged_rle_archive_still_decodes() {
        let (mut heaven, oid) = build(true, |_| 7.0);
        let tiles = heaven.adb.object(oid).unwrap().tiles.clone();
        let tile_objs: Vec<_> = tiles
            .iter()
            .map(|&(_, t)| heaven.adb.read_tile(t).unwrap())
            .collect();
        let st_id = heaven.catalog.next_id();
        let (payload, meta) = encode_supertile(st_id, oid, &tile_objs);
        let wire = Bytes::from(heaven_array::codec::baseline::rle_compress(&payload));
        assert!(
            heaven_array::codec::sniff_frame(&wire).is_none(),
            "a legacy stream must not sniff as a frame"
        );
        assert_ne!(
            wire.len() as u64,
            meta.total_len,
            "legacy RLE of constant data must actually shrink"
        );
        let checksum = checksum64(&wire);
        let addr = heaven.store.append(WritePayload::Real(wire)).unwrap();
        heaven
            .register_supertile(meta, addr, None, checksum)
            .unwrap();
        for &(_, t) in &tiles {
            heaven.adb.mark_exported(t).unwrap();
        }
        heaven.clear_caches();
        let back = heaven
            .fetch_region_hierarchical(oid, &mi(&[(0, 31), (0, 31)]))
            .unwrap();
        assert_eq!(back.sum(), 7.0 * 1024.0);

        // The media scan must also recognize the legacy stream.
        let recovered = heaven.scavenge_catalog_from_media().unwrap();
        assert_eq!(recovered, 1);
        heaven.clear_caches();
        let back = heaven
            .fetch_region_hierarchical(oid, &mi(&[(0, 31), (0, 31)]))
            .unwrap();
        assert_eq!(back.sum(), 7.0 * 1024.0);
    }

    /// The adaptive encoder ships incompressible payloads as untagged raw
    /// bytes; the media scan must recover those too (they parse directly,
    /// without a frame to announce the codec).
    #[test]
    fn scavenge_recovers_adaptive_archive() {
        let noise = |p: &Point| ((p.coord(0) * 37 + p.coord(1) * 101) % 251) as f64;
        let (mut heaven, oid) = build(true, noise);
        heaven.export_object(oid, ExportMode::Tct).unwrap();
        let recovered = heaven.scavenge_catalog_from_media().unwrap();
        assert!(recovered > 0);
        heaven.clear_caches();
        let back = heaven
            .fetch_region_hierarchical(oid, &mi(&[(0, 31), (0, 31)]))
            .unwrap();
        for p in back.domain().iter_points() {
            assert_eq!(back.get_f64(&p).unwrap(), noise(&p));
        }
    }
}
