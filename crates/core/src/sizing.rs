//! Automatic super-tile size adaptation (paper §3.3.4).
//!
//! The super-tile size trades off two costs:
//!
//! * **too small** → a query touches many super-tiles, each paying a tape
//!   locate (tens of seconds);
//! * **too large** → each touched super-tile transfers mostly useless
//!   bytes (the query needs only 1–10 % of the data, §1.1).
//!
//! For a query expected to need `q` bytes of an object, fetched through
//! super-tiles of `s` bytes, the expected retrieval cost is modeled as
//!
//! ```text
//! cost(s) = n(s) · t_locate  +  n(s) · s / rate        n(s) = ceil(q·f(s) / s)
//! ```
//!
//! where `f(s) ≥ 1` is a boundary-overfetch factor (a query never aligns
//! perfectly with super-tile boundaries, so it touches partial ones).
//! HEAVEN minimizes `cost(s)` over a geometric grid of candidate sizes,
//! clamped to sane bounds.

use heaven_tape::DeviceProfile;

/// Bounds for the size search.
pub const MIN_SUPERTILE: u64 = 16 << 20; // 16 MB
/// Upper clamp: a super-tile never exceeds 1/4 medium capacity.
pub const MAX_SUPERTILE_FRACTION: f64 = 0.25;

/// Expected cost (seconds) of answering one query of `query_bytes` useful
/// bytes via super-tiles of `size` bytes on `profile`.
pub fn expected_query_cost_s(profile: &DeviceProfile, query_bytes: u64, size: u64) -> f64 {
    let size = size.max(1);
    // Boundary overfetch: a query spanning k super-tiles fully touches
    // k-1 boundaries; model the waste as one extra half super-tile per
    // boundary row, folded into a multiplicative factor.
    let n = (query_bytes as f64 / size as f64).ceil().max(1.0) + 1.0;
    let locate = profile.avg_locate_s;
    n * locate + n * size as f64 / profile.transfer_bps
}

/// The super-tile size minimizing [`expected_query_cost_s`] for queries of
/// `query_bytes`, searched over a geometric candidate grid.
pub fn optimal_supertile_size(profile: &DeviceProfile, query_bytes: u64) -> u64 {
    let max = (profile.media_capacity as f64 * MAX_SUPERTILE_FRACTION) as u64;
    let mut best = MIN_SUPERTILE;
    let mut best_cost = f64::INFINITY;
    let mut s = MIN_SUPERTILE;
    while s <= max {
        let c = expected_query_cost_s(profile, query_bytes, s);
        if c < best_cost {
            best_cost = c;
            best = s;
        }
        s = (s as f64 * 1.25) as u64;
    }
    best
}

/// Closed-form sanity reference: ignoring ceilings, the cost is minimized
/// where marginal locate savings equal marginal transfer waste, i.e. at
/// `s* = sqrt(q · t_locate · rate)` — used by tests to validate the search.
pub fn analytic_optimum(profile: &DeviceProfile, query_bytes: u64) -> f64 {
    (query_bytes as f64 * profile.avg_locate_s * profile.transfer_bps).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_u_shaped() {
        let p = DeviceProfile::dlt7000();
        let q = 512 << 20; // 512 MB useful per query
        let small = expected_query_cost_s(&p, q, 16 << 20);
        let opt = optimal_supertile_size(&p, q);
        let opt_cost = expected_query_cost_s(&p, q, opt);
        let huge = expected_query_cost_s(&p, q, 8 << 30);
        assert!(opt_cost < small, "optimum beats tiny super-tiles");
        assert!(opt_cost <= huge, "optimum beats giant super-tiles");
    }

    #[test]
    fn search_tracks_analytic_optimum() {
        let p = DeviceProfile::lto1();
        for q in [64u64 << 20, 512 << 20, 4 << 30] {
            let found = optimal_supertile_size(&p, q) as f64;
            let analytic =
                analytic_optimum(&p, q).clamp(MIN_SUPERTILE as f64, p.media_capacity as f64 * 0.25);
            let ratio = found / analytic;
            assert!(
                (0.3..=3.0).contains(&ratio),
                "q={q}: found {found}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn bigger_queries_want_bigger_supertiles() {
        let p = DeviceProfile::dlt7000();
        let small_q = optimal_supertile_size(&p, 32 << 20);
        let big_q = optimal_supertile_size(&p, 8 << 30);
        assert!(big_q >= small_q);
    }

    #[test]
    fn size_respects_bounds() {
        let p = DeviceProfile::ibm3590();
        for q in [1u64, 1 << 20, 1 << 40] {
            let s = optimal_supertile_size(&p, q);
            assert!(s >= MIN_SUPERTILE);
            assert!(s as f64 <= p.media_capacity as f64 * MAX_SUPERTILE_FRACTION);
        }
    }

    #[test]
    fn slower_locate_devices_prefer_bigger_supertiles() {
        let fast = DeviceProfile::ibm3590(); // 27 s locate
        let slow = DeviceProfile::ait2(); // 75 s locate
        let q = 1 << 30;
        assert!(optimal_supertile_size(&slow, q) >= optimal_supertile_size(&fast, q));
    }
}
