//! The HEAVEN system: a hierarchy-aware array database.
//!
//! [`Heaven`] fuses the array DBMS with the tertiary-storage system
//! (paper §3.1): it implements the DBMS's [`TileProvider`] seam, so every
//! query runs transparently across main memory (tile cache), secondary
//! storage (DBMS tiles + super-tile cache) and tertiary storage
//! (super-tiles on media) — no user interaction, regardless of where the
//! data currently lives.

use crate::cache::{CacheStats, SuperTileCache, TileCache};
use crate::catalog::SuperTileCatalog;
use crate::config::{HeavenConfig, PrefetchPolicy};
use crate::error::{HeavenError, Result};
use crate::persist::CatalogStore;
use crate::precomp::PrecompCatalog;
use crate::recovery::{read_with_recovery, RecoveryMetrics};
use crate::scheduler::{count_exchanges, schedule, FetchRequest};
use crate::sizing::optimal_supertile_size;
use crate::supertile::{decode_member, SuperTileId};
use bytes::Bytes;
use heaven_array::{Codec, Condenser, MDArray, Minterval, ObjectId, TileId};
use heaven_arraydb::{ArrayDb, ObjectMeta, TileLocation, TileProvider};
use heaven_hsm::DirectStore;
use heaven_obs::{
    Counter, Field, FloatCounter, Histogram, MetricsRegistry, QueryBreakdown, SpanId, TraceBus,
};
use heaven_tape::{DiskProfile, MediumId, SimClock, TapeLibrary, TapeStats};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Counters of HEAVEN-level activity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HeavenStats {
    /// Super-tiles fetched from tertiary storage (cache misses).
    pub st_tape_fetches: u64,
    /// Bytes fetched from tertiary storage.
    pub st_tape_bytes: u64,
    /// Super-tiles prefetched.
    pub prefetches: u64,
    /// Simulated seconds spent prefetching (overlappable background work).
    pub prefetch_s: f64,
    /// Bytes fetched by the prefetcher (subset of `st_tape_bytes`).
    pub prefetch_bytes: u64,
    /// Regions served by `fetch_region`.
    pub region_fetches: u64,
    /// Payload bytes memcpy'd while materializing query results. With the
    /// zero-copy read path this is ~one payload-sized copy per query (the
    /// patch into the result array); every other hierarchy hop is a
    /// refcounted slice.
    pub bytes_copied: u64,
}

impl fmt::Display for HeavenStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "region_fetches={} st_tape_fetches={} tape_read={}MB prefetches={} prefetch={:.1}s prefetch_read={}MB copied={}KB",
            self.region_fetches,
            self.st_tape_fetches,
            self.st_tape_bytes >> 20,
            self.prefetches,
            self.prefetch_s,
            self.prefetch_bytes >> 20,
            self.bytes_copied >> 10,
        )
    }
}

/// Metric handles backing [`HeavenStats`]; the registry is the source of
/// truth and the struct is reconstructed on demand.
#[derive(Debug, Clone)]
struct HeavenMetrics {
    st_tape_fetches: Counter,
    st_tape_bytes: Counter,
    prefetches: Counter,
    prefetch_s: FloatCounter,
    prefetch_bytes: Counter,
    region_fetches: Counter,
    bytes_copied: Counter,
    /// Wire bytes saved by super-tile compression (payload − wire, when
    /// the encoded form is smaller).
    codec_bytes_saved: Counter,
    /// Super-tile payloads shipped as raw pass-through.
    codec_raw: Counter,
    /// Super-tile payloads encoded with plain RLE.
    codec_rle: Counter,
    /// Super-tile payloads encoded with byte-shuffle + RLE.
    codec_shuffle: Counter,
    /// Queries whose per-level attribution exceeded the observed clock
    /// delta (overlapping spans); their `other_s` was clamped to zero.
    breakdown_overattributed: Counter,
    /// End-to-end query latency distribution (simulated seconds).
    query_latency: Histogram,
    /// Tertiary super-tile fetch duration distribution (simulated s).
    st_fetch_hist: Histogram,
    /// Tertiary super-tile fetch size distribution (bytes).
    st_fetch_bytes_hist: Histogram,
}

impl HeavenMetrics {
    fn new(registry: &MetricsRegistry) -> HeavenMetrics {
        let query_latency = registry.histogram("heaven.query_latency_s");
        // Pre-size the exemplar table so the per-query exemplar write in
        // `end_query` stays allocation-free.
        query_latency.reserve_exemplars();
        HeavenMetrics {
            st_tape_fetches: registry.counter("heaven.st_tape_fetches"),
            st_tape_bytes: registry.counter("heaven.st_tape_bytes"),
            prefetches: registry.counter("heaven.prefetches"),
            prefetch_s: registry.fcounter("heaven.prefetch_s"),
            prefetch_bytes: registry.counter("heaven.prefetch_bytes"),
            region_fetches: registry.counter("heaven.region_fetches"),
            bytes_copied: registry.counter("heaven.bytes_copied"),
            codec_bytes_saved: registry.counter("heaven.codec_bytes_saved"),
            codec_raw: registry.counter("heaven.codec_raw"),
            codec_rle: registry.counter("heaven.codec_rle"),
            codec_shuffle: registry.counter("heaven.codec_shuffle"),
            breakdown_overattributed: registry.counter("heaven.breakdown_overattributed"),
            query_latency,
            st_fetch_hist: registry.histogram("heaven.st_fetch_hist_s"),
            st_fetch_bytes_hist: registry.histogram("heaven.st_fetch_bytes"),
        }
    }

    fn stats(&self) -> HeavenStats {
        HeavenStats {
            st_tape_fetches: self.st_tape_fetches.get(),
            st_tape_bytes: self.st_tape_bytes.get(),
            prefetches: self.prefetches.get(),
            prefetch_s: self.prefetch_s.get(),
            prefetch_bytes: self.prefetch_bytes.get(),
            region_fetches: self.region_fetches.get(),
            bytes_copied: self.bytes_copied.get(),
        }
    }
}

/// Cross-level counter snapshot taken at query start; [`Heaven::end_query`]
/// diffs a fresh snapshot against it to attribute the elapsed simulated
/// time to hierarchy levels.
#[derive(Debug, Clone, Copy)]
struct LevelSnapshot {
    tape: TapeStats,
    shelf_s: f64,
    io_s: f64,
    st: CacheStats,
    mem: CacheStats,
    heaven: HeavenStats,
}

/// An open query bracket (root span + starting snapshot).
#[derive(Debug)]
struct ActiveQuery {
    label: String,
    span: SpanId,
    start_s: f64,
    snap: LevelSnapshot,
}

/// The assembled HEAVEN system.
#[derive(Debug)]
pub struct Heaven {
    pub(crate) adb: ArrayDb,
    pub(crate) store: DirectStore,
    pub(crate) catalog: SuperTileCatalog,
    pub(crate) tile_cache: TileCache,
    pub(crate) st_cache: SuperTileCache,
    pub(crate) precomp: PrecompCatalog,
    pub(crate) catalog_store: CatalogStore,
    pub(crate) config: HeavenConfig,
    metrics: HeavenMetrics,
    pub(crate) recovery: RecoveryMetrics,
    pub(crate) registry: MetricsRegistry,
    pub(crate) bus: TraceBus,
    active_query: Option<ActiveQuery>,
    last_breakdown: Option<QueryBreakdown>,
    /// Dead (unreferenced) bytes per medium, from deletes/updates.
    pub(crate) dead_bytes: HashMap<MediumId, u64>,
}

impl Heaven {
    /// Assemble HEAVEN from an array DBMS and a tape library.
    ///
    /// All subsystem counters are bound into one shared
    /// [`MetricsRegistry`], and the trace bus selected by
    /// [`HeavenConfig::trace`] is attached across the hierarchy.
    pub fn new(mut adb: ArrayDb, library: TapeLibrary, config: HeavenConfig) -> Heaven {
        let registry = MetricsRegistry::new();
        let bus = TraceBus::from_config(&config.trace);
        let clock = library.clock().clone();
        let mut st_cache = SuperTileCache::with_shards(
            config.disk_cache_bytes,
            config.eviction,
            Some((DiskProfile::scsi2003(), clock)),
            config.cache_shards,
        );
        st_cache.attach_obs(&registry, bus.clone());
        let mut tile_cache = TileCache::with_shards(config.mem_cache_bytes, config.cache_shards);
        tile_cache.attach_obs(&registry);
        adb.attach_obs(&registry);
        adb.attach_trace(bus.clone());
        let mut store = DirectStore::new(library);
        store.library_mut().attach_obs(&registry, bus.clone());
        let catalog_store = CatalogStore::create(adb.database_mut()).expect("fresh catalog store");
        Heaven {
            tile_cache,
            st_cache,
            adb,
            store,
            catalog: SuperTileCatalog::new(),
            precomp: PrecompCatalog::new(),
            catalog_store,
            config,
            metrics: HeavenMetrics::new(&registry),
            recovery: RecoveryMetrics::new(&registry),
            registry,
            bus,
            active_query: None,
            last_breakdown: None,
            dead_bytes: HashMap::new(),
        }
    }

    /// The array DBMS.
    pub fn arraydb(&self) -> &ArrayDb {
        &self.adb
    }

    /// The direct tertiary store (read-only view for reporting).
    pub fn store(&self) -> &DirectStore {
        &self.store
    }

    /// Mutable access to the array DBMS (inserts, collection management).
    pub fn arraydb_mut(&mut self) -> &mut ArrayDb {
        &mut self.adb
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> SimClock {
        self.store.clock()
    }

    /// Tertiary-storage statistics.
    pub fn tape_stats(&self) -> TapeStats {
        self.store.stats()
    }

    /// HEAVEN-level statistics (a view over the metrics registry).
    pub fn stats(&self) -> HeavenStats {
        self.metrics.stats()
    }

    /// The shared metrics registry holding every subsystem's counters
    /// (tape, HSM, buffer pool, caches, HEAVEN itself).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The trace bus (span/event stream keyed to simulated time).
    pub fn trace(&self) -> &TraceBus {
        &self.bus
    }

    /// The per-level breakdown of the most recently completed query.
    pub fn last_query_breakdown(&self) -> Option<&QueryBreakdown> {
        self.last_breakdown.as_ref()
    }

    fn snapshot(&self) -> LevelSnapshot {
        LevelSnapshot {
            tape: self.store.stats(),
            shelf_s: self.store.library().shelf_wait_s(),
            io_s: self.adb.database().io_stats().io_s,
            st: self.st_cache.stats(),
            mem: self.tile_cache.stats(),
            heaven: self.stats(),
        }
    }

    /// Open a query bracket: a root `query` trace span plus a counter
    /// snapshot from which [`Self::end_query`] attributes the elapsed
    /// simulated time to hierarchy levels. Nested calls are ignored — the
    /// outermost bracket wins.
    pub fn begin_query(&mut self, label: &str) {
        if self.active_query.is_some() {
            return;
        }
        let now = self.clock().now_s();
        let span = self
            .bus
            .query_span_start("query", now, &[("label", Field::dyn_str(label))]);
        self.active_query = Some(ActiveQuery {
            label: label.to_string(),
            span,
            start_s: now,
            snap: self.snapshot(),
        });
    }

    /// Close the query bracket opened by [`Self::begin_query`] and compute
    /// the per-level [`QueryBreakdown`] (also kept for
    /// [`Self::last_query_breakdown`]). Returns `None` if no query was
    /// active.
    pub fn end_query(&mut self) -> Option<QueryBreakdown> {
        let q = self.active_query.take()?;
        let now = self.clock().now_s();
        self.bus.query_span_end(q.span, now);
        let cur = self.snapshot();
        let tape = cur.tape.since(&q.snap.tape);
        let st = cur.st.since(&q.snap.st);
        let mem = cur.mem.since(&q.snap.mem);
        let total_s = (now - q.start_s).max(0.0);
        let mut b = QueryBreakdown {
            label: q.label,
            total_s,
            mem_hits: mem.hits,
            mem_bytes: mem.bytes_served,
            disk_cache_s: st.io_s,
            disk_cache_hits: st.hits,
            disk_cache_bytes: st.bytes_served,
            dbms_io_s: (cur.io_s - q.snap.io_s).max(0.0),
            tape_exchange_s: tape.exchange_s,
            tape_locate_s: tape.locate_s,
            tape_transfer_s: tape.transfer_s,
            tape_rewind_s: tape.rewind_s,
            shelf_s: (cur.shelf_s - q.snap.shelf_s).max(0.0),
            tape_bytes: tape.bytes_read,
            media_exchanges: tape.mounts,
            tape_fetches: cur
                .heaven
                .st_tape_fetches
                .saturating_sub(q.snap.heaven.st_tape_fetches),
            bytes_copied: cur
                .heaven
                .bytes_copied
                .saturating_sub(q.snap.heaven.bytes_copied),
            other_s: 0.0,
        };
        // Attributed span time can exceed the observed clock delta when
        // spans overlap (e.g. prefetch I/O charged inside the bracket);
        // clamp to zero and count the occurrence rather than reporting a
        // negative residual.
        let residual = total_s - b.levels_sum_s();
        if residual < -1e-9 {
            self.metrics.breakdown_overattributed.inc();
        }
        b.other_s = residual.max(0.0);
        // Stamp the query's own span as the exemplar so a p99 bucket in
        // the Prometheus exposition points straight at a trace span
        // (`q.span == 0` — sampled-out or tracing off — degrades to a
        // plain observe).
        self.metrics
            .query_latency
            .observe_with_exemplar(total_s, q.span, q.span);
        // No per-query flush: the JSONL sink drains in batches off the
        // hot path and flushes on drop (see `heaven-obs`).
        self.last_breakdown = Some(b.clone());
        Some(b)
    }

    /// Disk super-tile cache statistics.
    pub fn st_cache_stats(&self) -> CacheStats {
        self.st_cache.stats()
    }

    /// Memory tile cache statistics.
    pub fn tile_cache_stats(&self) -> CacheStats {
        self.tile_cache.stats()
    }

    /// The super-tile catalog (read-only).
    pub fn catalog(&self) -> &SuperTileCatalog {
        &self.catalog
    }

    /// The precomputed-result catalog statistics.
    pub fn precomp_stats(&self) -> crate::precomp::PrecompStats {
        self.precomp.stats()
    }

    /// The active configuration.
    pub fn config(&self) -> &HeavenConfig {
        &self.config
    }

    /// The effective super-tile target size for export.
    pub fn supertile_target(&self) -> u64 {
        self.config.supertile_bytes.unwrap_or_else(|| {
            optimal_supertile_size(
                self.store.library().profile(),
                self.config.expected_query_bytes,
            )
        })
    }

    /// Convert this single-owner system into the multi-session concurrent
    /// façade (see [`crate::concurrent::ConcurrentHeaven`]). Typical use:
    /// build and export with `Heaven` (single-threaded), then convert and
    /// serve queries from many session threads.
    pub fn into_concurrent(self) -> crate::concurrent::ConcurrentHeaven {
        crate::concurrent::ConcurrentHeaven::from_heaven(self)
    }

    /// Decompose into the pieces the concurrent façade wraps (the private
    /// breakdown/bracket state is dropped — sessions track their own
    /// timing on clock lanes).
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_concurrent_parts(
        self,
    ) -> (
        ArrayDb,
        DirectStore,
        SuperTileCatalog,
        TileCache,
        SuperTileCache,
        HeavenConfig,
        MetricsRegistry,
        TraceBus,
    ) {
        (
            self.adb,
            self.store,
            self.catalog,
            self.tile_cache,
            self.st_cache,
            self.config,
            self.registry,
            self.bus,
        )
    }

    /// Clear both cache levels (between experiment runs).
    pub fn clear_caches(&mut self) {
        self.tile_cache.clear();
        self.st_cache.clear();
    }

    /// Enable the finite-slot + shelf model on the underlying library
    /// (see [`heaven_tape::SlotConfig`]).
    pub fn set_slot_config(&mut self, config: heaven_tape::SlotConfig) {
        self.store.library_mut().set_slot_config(config);
    }

    /// Arm (or disarm, with `None`) deterministic fault injection on the
    /// underlying library (see [`heaven_tape::FaultConfig`]). Typically
    /// combined with [`HeavenConfig::dual_copy`] so injected failures are
    /// recoverable.
    pub fn set_fault_plan(&mut self, config: Option<heaven_tape::FaultConfig>) {
        self.store.library_mut().set_fault_plan(config);
    }

    /// Occupy every drive with scratch media, modelling other users of the
    /// shared library: the next archive access pays a full media exchange.
    /// Used by experiments to measure truly cold retrievals.
    pub fn occupy_drives(&mut self) -> Result<()> {
        let lib = self.store.library_mut();
        for _ in 0..lib.drive_count() {
            let scratch = lib.add_medium();
            lib.ensure_mounted(scratch)?;
        }
        Ok(())
    }

    // -- catalog mutation (write-through to the base RDBMS) -------------------

    /// Register an exported super-tile in the in-memory catalog *and* the
    /// persistent catalog tables, together with its optional second
    /// archive copy and wire-payload checksum.
    pub(crate) fn register_supertile(
        &mut self,
        meta: crate::supertile::SuperTileMeta,
        addr: heaven_hsm::BlockAddress,
        replica: Option<heaven_hsm::BlockAddress>,
        checksum: u64,
    ) -> Result<()> {
        self.catalog_store
            .insert(self.adb.database_mut(), &meta, addr, replica, checksum)?;
        let st = meta.id;
        self.catalog.register(meta, addr);
        self.catalog.set_checksum(st, checksum);
        if let Some(r) = replica {
            self.catalog.register_replica(st, r);
        }
        Ok(())
    }

    /// Remove one super-tile everywhere; returns its old address.
    pub(crate) fn unregister_supertile(
        &mut self,
        st: SuperTileId,
    ) -> Result<heaven_hsm::BlockAddress> {
        let addr = self.catalog.remove_supertile(st)?;
        self.catalog_store.remove(self.adb.database_mut(), st)?;
        Ok(addr)
    }

    /// Remove an object's super-tiles everywhere; returns the freed
    /// addresses.
    pub(crate) fn unregister_object(
        &mut self,
        oid: ObjectId,
    ) -> Result<Vec<heaven_hsm::BlockAddress>> {
        let sts = self.catalog.object_supertiles(oid);
        for st in &sts {
            self.catalog_store.remove(self.adb.database_mut(), *st)?;
        }
        Ok(self.catalog.remove_object(oid))
    }

    /// Change a super-tile's address everywhere (compaction).
    pub(crate) fn relocate_supertile(
        &mut self,
        st: SuperTileId,
        addr: heaven_hsm::BlockAddress,
    ) -> Result<()> {
        self.catalog.relocate(st, addr)?;
        let meta = self.catalog.meta(st)?.clone();
        // Compaction rewrites the identical payload, so the replica and
        // checksum carry over unchanged.
        let replica = self.catalog.replica(st);
        let checksum = self.catalog.checksum(st).unwrap_or(0);
        self.catalog_store.update_addr(
            self.adb.database_mut(),
            st,
            &meta,
            addr,
            replica,
            checksum,
        )?;
        Ok(())
    }

    /// Rebuild the archive catalog from the persistent tables — used after
    /// a server restart or RDBMS crash recovery. Dead space per medium is
    /// recomputed as (bytes used on medium) − (bytes of live super-tiles).
    pub fn rebuild_archive_catalog(&mut self) -> Result<()> {
        let loaded = self.catalog_store.load_all(self.adb.database_mut())?;
        let mut catalog = SuperTileCatalog::new();
        let mut max_id = 0;
        let mut live: HashMap<MediumId, u64> = HashMap::new();
        for (meta, addr, replica, checksum) in loaded {
            max_id = max_id.max(meta.id);
            *live.entry(addr.medium).or_insert(0) += addr.len;
            let st = meta.id;
            catalog.register(meta, addr);
            catalog.set_checksum(st, checksum);
            if let Some(r) = replica {
                *live.entry(r.medium).or_insert(0) += r.len;
                catalog.register_replica(st, r);
            }
        }
        catalog.bump_next_id(max_id);
        debug_assert_eq!(self.catalog_store.len(), catalog.len());
        self.catalog = catalog;
        self.dead_bytes.clear();
        for m in self.store.library().media_ids() {
            let used = self.store.library().medium_used(m).unwrap_or(0);
            let l = live.get(&m).copied().unwrap_or(0);
            if used > l {
                self.dead_bytes.insert(m, used - l);
            }
        }
        self.clear_caches();
        Ok(())
    }

    // -- the retrieval path (paper §3.5.2) -----------------------------------

    /// Record the memcpy performed by patching `src` into `out` (the
    /// overlap region); feeds the `heaven.bytes_copied` metric.
    fn note_patch_copy(&self, out: &MDArray, src: &MDArray) {
        if let Some(ov) = out.domain().intersection(src.domain()) {
            self.metrics
                .bytes_copied
                .add(ov.cell_count() * out.cell_type().size_bytes() as u64);
        }
    }

    /// Encode an outgoing super-tile payload if configured: the adaptive
    /// codec probes a sample and picks raw / RLE / shuffle-RLE per
    /// payload. Incompressible payloads stay zero-copy (refcount clone);
    /// with compression off this is a pass-through.
    pub(crate) fn maybe_compress(&self, payload: Bytes, cell_size: usize) -> Bytes {
        if !self.config.compress {
            return payload;
        }
        let in_len = payload.len() as u64;
        let (wire, codec) = heaven_array::encode_wire(&payload, cell_size, &self.config.codec);
        match codec {
            Codec::Raw => self.metrics.codec_raw.inc(),
            Codec::Rle => self.metrics.codec_rle.inc(),
            Codec::ShuffleRle => self.metrics.codec_shuffle.inc(),
        }
        let out_len = wire.len() as u64;
        if out_len < in_len {
            self.metrics.codec_bytes_saved.add(in_len - out_len);
        }
        if codec != Codec::Raw {
            // Encoded forms are fresh allocations; raw is a refcount bump.
            self.metrics.bytes_copied.add(out_len);
        }
        self.bus.event(
            "heaven.codec_encode",
            self.clock().now_s(),
            &[
                ("codec", codec.name().into()),
                ("in_bytes", in_len.into()),
                ("out_bytes", out_len.into()),
            ],
        );
        wire
    }

    /// Undo [`Self::maybe_compress`] on wire bytes read from tape.
    /// `expected_len` is the catalogued uncompressed payload length; it
    /// disambiguates untagged raw pass-through (wire length equals it)
    /// from legacy pre-frame RLE streams, keeping the raw path O(1).
    /// Zero-copy when compression is off or the payload shipped raw.
    pub(crate) fn maybe_decompress(&self, bytes: Bytes, expected_len: u64) -> Result<Bytes> {
        if !self.config.compress {
            return Ok(bytes);
        }
        let (out, codec) = heaven_array::decode_wire(&bytes, expected_len)
            .map_err(|e| HeavenError::Codec(format!("corrupt compressed super-tile: {e}")))?;
        if codec != Codec::Raw {
            self.metrics.bytes_copied.add(out.len() as u64);
        }
        Ok(out)
    }

    /// Ensure a super-tile's payload is available *uncompressed*; returns
    /// it. Charges either a disk-cache hit or a tape fetch. The returned
    /// handle aliases the cache entry (and, on a cold fetch without
    /// compression, the tape segment itself) — no payload copies.
    pub(crate) fn supertile_payload(&mut self, st: SuperTileId) -> Result<Bytes> {
        if let Some(p) = self.st_cache.get(st) {
            return Ok(p);
        }
        let addr = self.catalog.address(st)?;
        let total_len = self.catalog.meta(st)?.total_len;
        let clock = self.clock();
        let span = self.bus.span(
            "heaven.st_fetch",
            clock.now_s(),
            &[
                ("st", st.into()),
                ("bytes", addr.len.into()),
                ("medium", addr.medium.into()),
            ],
        );
        let t0 = clock.now_s();
        let replica = self.catalog.replica(st);
        let checksum = self.catalog.checksum(st);
        let result: Result<Bytes> = (|| {
            let raw = read_with_recovery(
                &mut self.store,
                st,
                addr,
                replica,
                checksum,
                &self.config.retry,
                &self.recovery,
                &self.bus,
            )?;
            self.metrics.st_tape_fetches.inc();
            self.metrics.st_tape_bytes.add(addr.len);
            self.metrics.st_fetch_bytes_hist.observe(addr.len as f64);
            let payload = self.maybe_decompress(raw, total_len)?;
            let refetch = self.store.estimate_read_s(addr);
            self.st_cache.put(st, payload.clone(), refetch);
            Ok(payload)
        })();
        let t1 = clock.now_s();
        self.metrics.st_fetch_hist.observe(t1 - t0);
        span.end(t1);
        result
    }

    /// Fetch one tile through the hierarchy (memory → disk → tape).
    pub fn fetch_tile(&mut self, tile: TileId) -> Result<heaven_array::Tile> {
        if let Some(t) = self.tile_cache.get(tile) {
            return Ok(t);
        }
        let t = match self.adb.tile_location(tile)? {
            TileLocation::Disk => self.adb.read_tile(tile)?,
            TileLocation::Exported => {
                let st = self.catalog.supertile_of(tile)?;
                let payload = self.supertile_payload(st)?;
                let meta = self.catalog.meta(st)?;
                decode_member(meta, &payload, tile)?
            }
        };
        self.tile_cache.put(t.clone());
        Ok(t)
    }

    /// The core retrieval routine: materialize `region` of `oid` across
    /// the whole hierarchy, with query scheduling over the tertiary
    /// fetches.
    pub fn fetch_region_hierarchical(
        &mut self,
        oid: ObjectId,
        region: &Minterval,
    ) -> Result<MDArray> {
        // Direct API calls (no surrounding query) still get a breakdown:
        // bracket this fetch as its own query.
        let auto_bracket = self.active_query.is_none();
        if auto_bracket {
            self.begin_query(&format!("fetch_region oid={oid} {region}"));
        }
        let clock = self.clock();
        let span = self.bus.span(
            "heaven.fetch_region",
            clock.now_s(),
            &[
                ("oid", oid.into()),
                ("region", Field::dyn_str(&region.to_string())),
            ],
        );
        let result = self.fetch_region_impl(oid, region);
        span.end(clock.now_s());
        if auto_bracket {
            self.end_query();
        }
        result
    }

    /// Emit the scheduler-decision event: how many super-tiles go to tape,
    /// how many are already staged, and the media-exchange estimate for
    /// the chosen order.
    fn note_schedule(
        &self,
        order: &[FetchRequest],
        mounted: &[MediumId],
        cached: usize,
        policy: &'static str,
    ) {
        if !self.bus.is_enabled() || (order.is_empty() && cached == 0) {
            return;
        }
        let drives = self.store.library().drive_count();
        let est = count_exchanges(order, drives, mounted);
        self.bus.event(
            "heaven.schedule",
            self.store.clock().now_s(),
            &[
                ("tape_fetches", order.len().into()),
                ("cached", cached.into()),
                ("policy", policy.into()),
                ("exchanges_est", est.into()),
            ],
        );
    }

    fn fetch_region_impl(&mut self, oid: ObjectId, region: &Minterval) -> Result<MDArray> {
        self.metrics.region_fetches.inc();
        let meta = self.adb.object(oid)?.clone();
        let target = meta.domain.intersection(region).ok_or_else(|| {
            HeavenError::Config(format!(
                "region {region} outside object domain {}",
                meta.domain
            ))
        })?;
        let mut out = MDArray::zeros(target.clone(), meta.cell_type);
        // Classify needed tiles.
        let mut pending: BTreeMap<SuperTileId, Vec<TileId>> = BTreeMap::new();
        for tid in meta.tiles_intersecting(&target) {
            if let Some(t) = self.tile_cache.get(tid) {
                self.note_patch_copy(&out, &t.data);
                out.patch(&t.data)?;
                continue;
            }
            match self.adb.tile_location(tid)? {
                TileLocation::Disk => {
                    let t = self.adb.read_tile(tid)?;
                    self.note_patch_copy(&out, &t.data);
                    out.patch(&t.data)?;
                    self.tile_cache.put(t);
                }
                TileLocation::Exported => {
                    let st = self.catalog.supertile_of(tid)?;
                    pending.entry(st).or_default().push(tid);
                }
            }
        }
        // Split cached super-tiles from ones needing tape.
        let mut to_fetch = Vec::new();
        let mut ordered: Vec<SuperTileId> = Vec::new();
        for &st in pending.keys() {
            if self.st_cache.contains(st) {
                ordered.push(st);
            } else {
                to_fetch.push(FetchRequest {
                    st,
                    addr: self.catalog.address(st)?,
                });
            }
        }
        // Schedule the tape fetches.
        let cached_sts = ordered.len();
        if self.config.scheduling {
            let mounted = self.store.library().mounted_media();
            let scheduled = schedule(&to_fetch, &mounted);
            self.note_schedule(&scheduled, &mounted, cached_sts, "scheduled");
            ordered.extend(scheduled.iter().map(|r| r.st));
        } else {
            let mounted = self.store.library().mounted_media();
            self.note_schedule(&to_fetch, &mounted, cached_sts, "request-order");
            ordered.extend(to_fetch.iter().map(|r| r.st));
        }
        // Partial reads need the uncompressed on-media layout; they also
        // bypass the whole-payload checksum, so under fault injection we
        // fall back to full (verifiable) super-tile fetches.
        let random_access = !self.store.library().profile().linear_seek
            && !self.config.compress
            && !self.store.faults_enabled();
        for st in ordered {
            let meta_st = self.catalog.meta(st)?.clone();
            let needed = pending.get(&st).cloned().unwrap_or_default();
            // On random-access media (MO jukeboxes) a sparse request reads
            // only the member tiles, not the whole super-tile — the medium
            // has no locate penalty to amortize (paper §2.2).
            let needed_bytes: u64 = needed
                .iter()
                .filter_map(|t| meta_st.member(*t))
                .map(|m| m.len)
                .sum();
            if random_access && !self.st_cache.contains(st) && needed_bytes * 2 < meta_st.total_len
            {
                let addr = self.catalog.address(st)?;
                let clock = self.store.clock();
                let sparse_t0 = clock.now_s();
                let span = self.bus.span(
                    "heaven.st_fetch",
                    sparse_t0,
                    &[
                        ("st", st.into()),
                        ("bytes", needed_bytes.into()),
                        ("medium", addr.medium.into()),
                        ("sparse", 1u64.into()),
                    ],
                );
                for tid in needed {
                    let m = meta_st
                        .member(tid)
                        .ok_or(HeavenError::TileUnlocated(tid))?
                        .clone();
                    let bytes = self.store.read_range(addr, m.offset, m.len)?;
                    self.metrics.st_tape_bytes.add(m.len);
                    let (t, _) =
                        heaven_array::Tile::decode_shared(&bytes, 0).map_err(HeavenError::Array)?;
                    self.note_patch_copy(&out, &t.data);
                    out.patch(&t.data)?;
                    self.tile_cache.put(t);
                }
                self.metrics.st_tape_fetches.inc();
                self.metrics
                    .st_fetch_bytes_hist
                    .observe(needed_bytes as f64);
                let sparse_t1 = clock.now_s();
                self.metrics.st_fetch_hist.observe(sparse_t1 - sparse_t0);
                span.end(sparse_t1);
                continue;
            }
            let payload = self.supertile_payload(st)?;
            for tid in needed {
                let t = decode_member(&meta_st, &payload, tid)?;
                self.note_patch_copy(&out, &t.data);
                out.patch(&t.data)?;
                self.tile_cache.put(t);
            }
        }
        self.run_prefetch(oid, &pending)?;
        Ok(out)
    }

    /// Execute a *batch* of region queries with inter-query scheduling
    /// (paper §3.5.3): the tertiary fetches of all queries are merged,
    /// deduplicated and ordered (one visit per medium, ascending offsets),
    /// staged through the cache hierarchy, and only then is each query's
    /// result assembled. Results are returned in request order.
    pub fn fetch_batch(&mut self, requests: &[(ObjectId, Minterval)]) -> Result<Vec<MDArray>> {
        let auto_bracket = self.active_query.is_none();
        if auto_bracket {
            self.begin_query(&format!("batch of {} regions", requests.len()));
        }
        let result = self.fetch_batch_impl(requests);
        if auto_bracket {
            self.end_query();
        }
        result
    }

    fn fetch_batch_impl(&mut self, requests: &[(ObjectId, Minterval)]) -> Result<Vec<MDArray>> {
        // Collect every exported super-tile any query needs.
        let mut needed: Vec<FetchRequest> = Vec::new();
        for (oid, region) in requests {
            let meta = self.adb.object(*oid)?.clone();
            let Some(target) = meta.domain.intersection(region) else {
                continue;
            };
            for tid in meta.tiles_intersecting(&target) {
                if self.adb.tile_location(tid)? == TileLocation::Exported {
                    let st = self.catalog.supertile_of(tid)?;
                    if !self.st_cache.contains(st) {
                        needed.push(FetchRequest {
                            st,
                            addr: self.catalog.address(st)?,
                        });
                    }
                }
            }
        }
        // One scheduled sweep stages everything.
        let order = if self.config.scheduling {
            schedule(&needed, &self.store.library().mounted_media())
        } else {
            let mut seen = std::collections::HashSet::new();
            needed.into_iter().filter(|r| seen.insert(r.st)).collect()
        };
        let mounted = self.store.library().mounted_media();
        self.note_schedule(&order, &mounted, 0, "batch");
        for r in order {
            if self.st_cache.contains(r.st) {
                continue;
            }
            let t0 = self.store.clock().now_s();
            let replica = self.catalog.replica(r.st);
            let checksum = self.catalog.checksum(r.st);
            let payload = read_with_recovery(
                &mut self.store,
                r.st,
                r.addr,
                replica,
                checksum,
                &self.config.retry,
                &self.recovery,
                &self.bus,
            )?;
            self.metrics.st_tape_fetches.inc();
            self.metrics.st_tape_bytes.add(r.addr.len);
            self.metrics.st_fetch_bytes_hist.observe(r.addr.len as f64);
            self.metrics
                .st_fetch_hist
                .observe(self.store.clock().now_s() - t0);
            let refetch = self.store.estimate_read_s(r.addr);
            self.st_cache.put(r.st, payload, refetch);
        }
        // Assemble each query (cache hits all the way).
        requests
            .iter()
            .map(|(oid, region)| self.fetch_region_hierarchical(*oid, region))
            .collect()
    }

    /// Prefetch successor super-tiles in cluster order (paper §3.6).
    fn run_prefetch(
        &mut self,
        oid: ObjectId,
        touched: &BTreeMap<SuperTileId, Vec<TileId>>,
    ) -> Result<()> {
        let PrefetchPolicy::NextInOrder(n) = self.config.prefetch else {
            return Ok(());
        };
        let Some(&max_touched) = touched.keys().max() else {
            return Ok(());
        };
        let order = self.catalog.object_supertiles(oid);
        let Some(pos) = order.iter().position(|&s| s == max_touched) else {
            return Ok(());
        };
        let clock = self.clock();
        for &st in order.iter().skip(pos + 1).take(n) {
            if self.st_cache.contains(st) {
                continue;
            }
            let t0 = clock.now_s();
            let addr = self.catalog.address(st)?;
            self.bus.event(
                "heaven.prefetch.issue",
                t0,
                &[("st", st.into()), ("bytes", addr.len.into())],
            );
            // Prefetch is best-effort: a super-tile that can't be staged
            // now simply stays on tape for the demand path to recover.
            let Ok(payload) = read_with_recovery(
                &mut self.store,
                st,
                addr,
                self.catalog.replica(st),
                self.catalog.checksum(st),
                &self.config.retry,
                &self.recovery,
                &self.bus,
            ) else {
                continue;
            };
            self.metrics.st_tape_fetches.inc();
            self.metrics.st_tape_bytes.add(addr.len);
            let refetch = self.store.estimate_read_s(addr);
            self.st_cache.put(st, payload, refetch);
            let dt = clock.now_s() - t0;
            self.metrics.prefetches.inc();
            self.metrics.prefetch_s.add(dt);
            self.metrics.prefetch_bytes.add(addr.len);
            self.metrics.st_fetch_bytes_hist.observe(addr.len as f64);
            self.metrics.st_fetch_hist.observe(dt);
            self.bus.event(
                "heaven.prefetch.complete",
                clock.now_s(),
                &[
                    ("st", st.into()),
                    ("bytes", addr.len.into()),
                    ("dur_s", dt.into()),
                ],
            );
        }
        Ok(())
    }
}

impl TileProvider for Heaven {
    fn object_meta(&self, oid: ObjectId) -> heaven_arraydb::Result<ObjectMeta> {
        Ok(self.adb.object(oid)?.clone())
    }

    fn collection_objects(&self, name: &str) -> heaven_arraydb::Result<Vec<ObjectId>> {
        Ok(self.adb.collection(name)?.objects.clone())
    }

    fn fetch_region(
        &mut self,
        oid: ObjectId,
        region: &Minterval,
    ) -> heaven_arraydb::Result<MDArray> {
        self.fetch_region_hierarchical(oid, region)
            .map_err(Into::into)
    }

    fn precomputed(&mut self, oid: ObjectId, op: Condenser, region: &Minterval) -> Option<f64> {
        let tiles = self.adb.object(oid).ok()?.tiles.clone();
        self.precomp.lookup(oid, op, region, &tiles)
    }

    fn note_computed(&mut self, oid: ObjectId, op: Condenser, region: &Minterval, value: f64) {
        self.precomp.record_exact(oid, op, region.clone(), value);
    }

    fn query_begin(&mut self, label: &str) {
        self.begin_query(label);
    }

    fn query_end(&mut self) {
        self.end_query();
    }
}
