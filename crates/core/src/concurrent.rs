//! Multi-session concurrent query execution over the HEAVEN hierarchy.
//!
//! [`ConcurrentHeaven`] is the `Send + Sync` façade over a built
//! [`Heaven`] system: build and export single-threaded, call
//! [`Heaven::into_concurrent`], then serve queries from any number of
//! session threads. Three mechanisms make that safe *and* fast:
//!
//! * **Sharded caches** — both cache levels are lock-striped
//!   (see [`crate::cache`]), so sessions touching different super-tiles
//!   never serialize on a cache lock;
//! * **Session time lanes** — each [`Session`] forks the shared
//!   [`SimClock`] into a private lane and charges its *overlappable*
//!   work (disk-cache reads, decode) there; dropping the session re-joins
//!   the shared timeline with `advance_to_s`, so the simulated makespan
//!   of N concurrent sessions is the slowest lane, not the sum — exactly
//!   how wall-clock time behaves for parallel clients of one archive;
//! * **Cross-session tape batching** — the tape library stays the serial
//!   shared resource. Instead of each session mounting media on its own
//!   ([`HeavenConfig::cross_session_batching`] = false: per-session FIFO
//!   staging), sessions enqueue their [`FetchRequest`]s with the
//!   [`FetchBatcher`]; one session becomes the *drainer*, waits a short
//!   batching window for peers to pile on, then stages the merged batch
//!   in one scheduled sweep (mounted-media first, ascending offsets,
//!   drive-parallel rounds). Duplicate super-tile requests **coalesce**:
//!   one tape fetch resolves every waiting session
//!   (`sched.coalesced_fetches` counts the saved fetches).

use crate::cache::{CacheStats, SuperTileCache, TileCache};
use crate::catalog::SuperTileCatalog;
use crate::config::HeavenConfig;
use crate::error::{HeavenError, Result};
use crate::scheduler::{plan_drive_rounds, schedule, FetchRequest};
use crate::supertile::{decode_member, SuperTileId};
use crate::system::Heaven;
use bytes::Bytes;
use crossbeam::queue::SegQueue;
use heaven_array::{MDArray, Minterval, ObjectId, TileId};
use heaven_arraydb::{ArrayDb, TileLocation};
use heaven_hsm::{BlockAddress, DirectStore};
use heaven_obs::{Counter, MetricsRegistry, TraceBus};
use heaven_tape::{SimClock, TapeStats};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// Concurrency-path metric handles (same registry as the rest of the
/// hierarchy; `heaven.*` names continue the single-owner counters).
#[derive(Debug, Clone)]
struct ConcMetrics {
    region_fetches: Counter,
    st_tape_fetches: Counter,
    st_tape_bytes: Counter,
    bytes_copied: Counter,
    /// Tape fetches saved because a session's request coalesced onto an
    /// identical in-flight request of another session.
    coalesced_fetches: Counter,
    /// Cross-session staging batches drained.
    batches: Counter,
    /// Fetch requests staged through cross-session batches.
    batched_fetches: Counter,
}

impl ConcMetrics {
    fn new(registry: &MetricsRegistry) -> ConcMetrics {
        ConcMetrics {
            region_fetches: registry.counter("heaven.region_fetches"),
            st_tape_fetches: registry.counter("heaven.st_tape_fetches"),
            st_tape_bytes: registry.counter("heaven.st_tape_bytes"),
            bytes_copied: registry.counter("heaven.bytes_copied"),
            coalesced_fetches: registry.counter("sched.coalesced_fetches"),
            batches: registry.counter("sched.batches"),
            batched_fetches: registry.counter("sched.batched_fetches"),
        }
    }
}

/// One in-flight tertiary fetch; every session waiting on the same
/// super-tile holds the same `Arc<Inflight>` and reads the same outcome.
/// The payload `Bytes` clone is a refcount bump, and `done_s` is the
/// shared-clock instant the staging round completed (waiters fast-forward
/// their lanes to it).
#[derive(Debug, Default)]
struct Inflight {
    slot: Mutex<Option<std::result::Result<(Bytes, f64), String>>>,
}

/// The cross-session staging coordinator (a combining lock).
///
/// `inflight` registers-or-coalesces under one critical section (a request
/// is pushed to `pending` in the same section, so no request is ever both
/// unqueued and unobserved). Whichever waiting session wins `drain`
/// becomes the drainer: it sleeps the batching window (host time — it
/// yields the core so peer sessions get to enqueue), then stages the
/// merged batch in one scheduled, drive-parallel sweep.
#[derive(Debug)]
pub(crate) struct FetchBatcher {
    pending: SegQueue<FetchRequest>,
    inflight: Mutex<HashMap<SuperTileId, Arc<Inflight>>>,
    drain: Mutex<()>,
    window: Duration,
}

impl FetchBatcher {
    fn new(window: Duration) -> FetchBatcher {
        FetchBatcher {
            pending: SegQueue::new(),
            inflight: Mutex::new(HashMap::new()),
            drain: Mutex::new(()),
            window,
        }
    }

    /// Fetch a super-tile through the shared batch: returns the
    /// (decompressed) payload and the shared-clock completion instant.
    fn fetch(&self, h: &ConcurrentHeaven, req: FetchRequest) -> Result<(Bytes, f64)> {
        let entry = {
            let mut map = self.inflight.lock();
            match map.get(&req.st) {
                Some(e) => {
                    h.metrics.coalesced_fetches.inc();
                    Arc::clone(e)
                }
                None => {
                    let e = Arc::new(Inflight::default());
                    map.insert(req.st, Arc::clone(&e));
                    self.pending.push(req);
                    e
                }
            }
        };
        loop {
            if let Some(outcome) = entry.slot.lock().clone() {
                return outcome
                    .map_err(|m| HeavenError::Config(format!("batched fetch failed: {m}")));
            }
            match self.drain.try_lock() {
                Some(_drainer) => {
                    if !self.window.is_zero() {
                        // Hold the drain lock through the window: peers
                        // keep enqueueing instead of starting rival
                        // drains, and on a single core the sleep yields
                        // the CPU to exactly those peers.
                        std::thread::sleep(self.window);
                    }
                    self.drain_all(h);
                }
                None => std::thread::yield_now(),
            }
        }
    }

    /// Stage every pending request in one scheduled sweep and resolve the
    /// waiters. Failures resolve the affected entries (nobody is left
    /// spinning on a fetch that will never complete).
    fn drain_all(&self, h: &ConcurrentHeaven) {
        let mut reqs = Vec::new();
        while let Some(r) = self.pending.pop() {
            reqs.push(r);
        }
        if reqs.is_empty() {
            return;
        }
        let mut store = h.store.lock();
        let mounted = store.library().mounted_media();
        let order = if h.config.scheduling {
            schedule(&reqs, &mounted)
        } else {
            reqs
        };
        h.metrics.batches.inc();
        h.metrics.batched_fetches.add(order.len() as u64);
        let drives = store.library().drive_count();
        let rounds = plan_drive_rounds(&order, drives);
        h.bus.event(
            "sched.batch",
            store.clock().now_s(),
            &[
                ("fetches", order.len().into()),
                ("rounds", rounds.len().into()),
            ],
        );
        for round in rounds {
            let groups: Vec<Vec<BlockAddress>> = round
                .iter()
                .map(|g| g.iter().map(|r| r.addr).collect())
                .collect();
            match store.read_parallel(&groups) {
                Ok((payloads, _window)) => {
                    let done_s = store.clock().now_s();
                    for (group, raws) in round.iter().zip(payloads) {
                        for (r, raw) in group.iter().zip(raws) {
                            h.metrics.st_tape_fetches.inc();
                            h.metrics.st_tape_bytes.add(r.addr.len);
                            let refetch = store.estimate_read_s(r.addr);
                            let outcome = match h.maybe_decompress(raw) {
                                Ok(p) => {
                                    h.st_cache.put(r.st, p.clone(), refetch);
                                    Ok((p, done_s))
                                }
                                Err(e) => Err(e.to_string()),
                            };
                            self.resolve(r.st, outcome);
                        }
                    }
                }
                Err(e) => {
                    let msg = e.to_string();
                    for group in &round {
                        for r in group {
                            self.resolve(r.st, Err(msg.clone()));
                        }
                    }
                }
            }
        }
    }

    fn resolve(&self, st: SuperTileId, outcome: std::result::Result<(Bytes, f64), String>) {
        let entry = self.inflight.lock().remove(&st);
        if let Some(e) = entry {
            *e.slot.lock() = Some(outcome);
        }
    }
}

/// The `Send + Sync` multi-session HEAVEN system.
///
/// Built from a fully assembled [`Heaven`] via
/// [`Heaven::into_concurrent`]. Query state that sessions share mutably
/// sits behind interior synchronization: the array DBMS and the tape
/// store behind mutexes (the DBMS for its buffer pool, the store because
/// the tape library is physically serial), the catalog behind a reader/
/// writer lock (read-mostly), and both caches lock-striped internally.
#[derive(Debug)]
pub struct ConcurrentHeaven {
    adb: Mutex<ArrayDb>,
    store: Mutex<DirectStore>,
    catalog: RwLock<SuperTileCatalog>,
    tile_cache: TileCache,
    st_cache: SuperTileCache,
    batcher: FetchBatcher,
    config: HeavenConfig,
    registry: MetricsRegistry,
    bus: TraceBus,
    clock: SimClock,
    metrics: ConcMetrics,
}

impl ConcurrentHeaven {
    /// Convert a built system (see [`Heaven::into_concurrent`]).
    pub fn from_heaven(heaven: Heaven) -> ConcurrentHeaven {
        let (adb, store, catalog, tile_cache, st_cache, config, registry, bus) =
            heaven.into_concurrent_parts();
        let clock = store.clock();
        let metrics = ConcMetrics::new(&registry);
        ConcurrentHeaven {
            adb: Mutex::new(adb),
            store: Mutex::new(store),
            catalog: RwLock::new(catalog),
            tile_cache,
            st_cache,
            batcher: FetchBatcher::new(Duration::from_millis(2)),
            config,
            registry,
            bus,
            clock,
            metrics,
        }
    }

    /// Open a query session with its own simulated-time lane (forked at
    /// the shared clock's current instant). Dropping the session re-joins
    /// the shared timeline.
    pub fn session(&self) -> Session<'_> {
        Session {
            h: self,
            lane: self.clock.fork(),
        }
    }

    /// The batching window: how long (host time) a drainer waits for peer
    /// sessions to enqueue before staging the merged batch. Zero disables
    /// the wait (requests still coalesce when they genuinely overlap).
    pub fn set_batch_window(&mut self, window: Duration) {
        self.batcher.window = window;
    }

    /// The shared simulated clock (re-joined by every finished session).
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The active configuration.
    pub fn config(&self) -> &HeavenConfig {
        &self.config
    }

    /// Tertiary-storage statistics.
    pub fn tape_stats(&self) -> TapeStats {
        self.store.lock().stats()
    }

    /// Disk super-tile cache statistics.
    pub fn st_cache_stats(&self) -> CacheStats {
        self.st_cache.stats()
    }

    /// Memory tile cache statistics.
    pub fn tile_cache_stats(&self) -> CacheStats {
        self.tile_cache.stats()
    }

    /// Clear both cache levels (between experiment phases).
    pub fn clear_caches(&self) {
        self.tile_cache.clear();
        self.st_cache.clear();
    }

    /// Undo payload compression on bytes read from tape (zero-copy when
    /// compression is off) — the concurrent twin of
    /// `Heaven::maybe_decompress`.
    fn maybe_decompress(&self, bytes: Bytes) -> Result<Bytes> {
        if self.config.compress {
            let out = heaven_array::rle_decompress(&bytes)
                .ok_or_else(|| HeavenError::Codec("corrupt compressed super-tile".into()))?;
            self.metrics.bytes_copied.add(out.len() as u64);
            Ok(Bytes::from(out))
        } else {
            Ok(bytes)
        }
    }

    /// Record the memcpy performed by patching `src` into `out`.
    fn note_patch_copy(&self, out: &MDArray, src: &MDArray) {
        if let Some(ov) = out.domain().intersection(src.domain()) {
            self.metrics
                .bytes_copied
                .add(ov.cell_count() * out.cell_type().size_bytes() as u64);
        }
    }
}

/// One query session: a handle on the shared system plus a private
/// simulated-time lane. Overlappable work (disk-cache I/O, decode) is
/// charged to the lane; the shared tape library charges the shared clock
/// and waiters fast-forward their lanes to the staging completion.
#[derive(Debug)]
pub struct Session<'h> {
    h: &'h ConcurrentHeaven,
    lane: SimClock,
}

impl Session<'_> {
    /// This session's current simulated time.
    pub fn now_s(&self) -> f64 {
        self.lane.now_s()
    }

    /// The session's private clock lane.
    pub fn lane(&self) -> &SimClock {
        &self.lane
    }

    /// Materialize `region` of `oid` across the hierarchy — the
    /// multi-session twin of [`Heaven::fetch_region_hierarchical`].
    pub fn fetch_region(&self, oid: ObjectId, region: &Minterval) -> Result<MDArray> {
        self.h.metrics.region_fetches.inc();
        let meta = self.h.adb.lock().object(oid)?.clone();
        let target = meta.domain.intersection(region).ok_or_else(|| {
            HeavenError::Config(format!(
                "region {region} outside object domain {}",
                meta.domain
            ))
        })?;
        let mut out = MDArray::zeros(target.clone(), meta.cell_type);
        let mut pending: BTreeMap<SuperTileId, Vec<TileId>> = BTreeMap::new();
        for tid in meta.tiles_intersecting(&target) {
            if let Some(t) = self.h.tile_cache.get(tid) {
                self.h.note_patch_copy(&out, &t.data);
                out.patch(&t.data)?;
                continue;
            }
            let loc = self.h.adb.lock().tile_location(tid)?;
            match loc {
                TileLocation::Disk => {
                    let t = self.h.adb.lock().read_tile(tid)?;
                    self.h.note_patch_copy(&out, &t.data);
                    out.patch(&t.data)?;
                    self.h.tile_cache.put(t);
                }
                TileLocation::Exported => {
                    let st = self.h.catalog.read().supertile_of(tid)?;
                    pending.entry(st).or_default().push(tid);
                }
            }
        }
        for (st, tids) in pending {
            let payload = self.supertile_payload(st)?;
            let meta_st = self.h.catalog.read().meta(st)?.clone();
            for tid in tids {
                let t = decode_member(&meta_st, &payload, tid)?;
                self.h.note_patch_copy(&out, &t.data);
                out.patch(&t.data)?;
                self.h.tile_cache.put(t);
            }
        }
        Ok(out)
    }

    /// Stage a super-tile payload: striped-cache hit (charged to this
    /// session's lane), else a tertiary fetch — batched across sessions,
    /// or per-session FIFO when batching is off.
    fn supertile_payload(&self, st: SuperTileId) -> Result<Bytes> {
        if let Some(p) = self.h.st_cache.get_clocked(st, &self.lane) {
            return Ok(p);
        }
        let addr = self.h.catalog.read().address(st)?;
        let req = FetchRequest { st, addr };
        if self.h.config.cross_session_batching {
            let (payload, done_s) = self.h.batcher.fetch(self.h, req)?;
            self.lane.advance_to_s(done_s);
            Ok(payload)
        } else {
            // Per-session FIFO: mount-and-read in request order, holding
            // the store for the whole access (the baseline the batcher is
            // measured against).
            let mut store = self.h.store.lock();
            let raw = store.read(addr)?;
            self.h.metrics.st_tape_fetches.inc();
            self.h.metrics.st_tape_bytes.add(addr.len);
            let refetch = store.estimate_read_s(addr);
            let done_s = store.clock().now_s();
            drop(store);
            let payload = self.h.maybe_decompress(raw)?;
            self.h.st_cache.put(st, payload.clone(), refetch);
            self.lane.advance_to_s(done_s);
            Ok(payload)
        }
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        // Re-join the shared timeline: the epoch ends when the slowest
        // overlapped lane ends.
        self.h.clock.advance_to_s(self.lane.now_s());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_heaven_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConcurrentHeaven>();
        assert_send_sync::<Session<'static>>();
        assert_send_sync::<FetchBatcher>();
    }
}
