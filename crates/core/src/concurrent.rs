//! Multi-session concurrent query execution over the HEAVEN hierarchy.
//!
//! [`ConcurrentHeaven`] is the `Send + Sync` façade over a built
//! [`Heaven`] system: build and export single-threaded, call
//! [`Heaven::into_concurrent`], then serve queries from any number of
//! session threads. Three mechanisms make that safe *and* fast:
//!
//! * **Sharded caches** — both cache levels are lock-striped
//!   (see [`crate::cache`]), so sessions touching different super-tiles
//!   never serialize on a cache lock;
//! * **Session time lanes** — each [`Session`] forks the shared
//!   [`SimClock`] into a private lane and charges its *overlappable*
//!   work (disk-cache reads, decode) there; dropping the session re-joins
//!   the shared timeline with `advance_to_s`, so the simulated makespan
//!   of N concurrent sessions is the slowest lane, not the sum — exactly
//!   how wall-clock time behaves for parallel clients of one archive;
//! * **Cross-session tape batching** — the tape library stays the serial
//!   shared resource. Instead of each session mounting media on its own
//!   ([`HeavenConfig::cross_session_batching`] = false: per-session FIFO
//!   staging), sessions enqueue their [`FetchRequest`]s with the
//!   [`FetchBatcher`]; one session becomes the *drainer*, waits a short
//!   batching window for peers to pile on (a condvar handoff — each new
//!   arrival re-arms a quiet period, so the window closes as soon as
//!   enqueueing goes idle), then stages the merged batch in one
//!   scheduled sweep (mounted-media first, ascending offsets,
//!   drive-parallel rounds). Duplicate super-tile requests **coalesce**:
//!   one tape fetch resolves every waiting session
//!   (`sched.coalesced_fetches` counts the saved fetches).
//!
//! Under fault injection the batcher is also the recovery ladder: a
//! transiently failed fetch is *requeued* into the next drain iteration
//! (`sched.requeued_fetches`) with its coalesced waiters intact, a copy
//! that exhausts its retries or fails checksum verification fails over
//! to the replica, and only when every copy is gone do the waiters get a
//! typed [`HeavenError::MediaLost`].
//!
//! The batcher is also where the trace model turns **causal across
//! sessions**: every tertiary fetch runs inside a `heaven.st_fetch` span
//! that *links* to the shared `sched.batch` span which staged it, emits
//! a `sched.served` event decomposing its latency into queue vs service
//! time (`sched.queue_wait_s` / `sched.service_s` histograms), and every
//! session record is stamped with the session id — so an offline
//! profiler (`heaven-prof critical-path`) can attribute any session's
//! wait to the shared fetch that actually served it. A deterministic
//! stall watchdog ([`HeavenConfig::stall_window_mult`]) flags fetches
//! that survive too many drain passes (`sched.stalls` + `sched.stall`
//! events naming the blocking medium).

use crate::cache::{CacheStats, SuperTileCache, TileCache};
use crate::catalog::SuperTileCatalog;
use crate::config::HeavenConfig;
use crate::error::{HeavenError, Result};
use crate::recovery::{read_with_recovery, RecoveryMetrics};
use crate::scheduler::{plan_drive_rounds, schedule, FetchRequest};
use crate::supertile::{checksum64, decode_member, SuperTileId};
use crate::system::Heaven;
use bytes::Bytes;
use heaven_array::{MDArray, Minterval, ObjectId, TileId};
use heaven_arraydb::{ArrayDb, TileLocation};
use heaven_hsm::{BlockAddress, DirectStore, HsmError};
use heaven_obs::{Counter, Histogram, MetricsRegistry, TraceBus};
use heaven_tape::{SimClock, TapeError, TapeStats};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrency-path metric handles (same registry as the rest of the
/// hierarchy; `heaven.*` names continue the single-owner counters).
#[derive(Debug, Clone)]
struct ConcMetrics {
    region_fetches: Counter,
    st_tape_fetches: Counter,
    st_tape_bytes: Counter,
    bytes_copied: Counter,
    /// Tape fetches saved because a session's request coalesced onto an
    /// identical in-flight request of another session.
    coalesced_fetches: Counter,
    /// Cross-session staging batches drained.
    batches: Counter,
    /// Fetch requests staged through cross-session batches.
    batched_fetches: Counter,
    /// Batched fetches put back in the queue after a transient failure
    /// (retry) or for their replica copy (failover).
    requeued_fetches: Counter,
    /// Queued fetches flagged by the stall watchdog (once per fetch; see
    /// [`HeavenConfig::stall_window_mult`]).
    stalls: Counter,
    /// Per tertiary fetch: simulated seconds between enqueueing and the
    /// start of the staging round that served it (includes retry backoff
    /// and earlier drain passes the fetch requeued through).
    queue_wait: Histogram,
    /// Per tertiary fetch: simulated seconds from staging start to
    /// waiter notification (mount + locate + transfer of its round).
    service: Histogram,
    /// Session query latency (same series the single-owner bracketed
    /// path observes); fed here with the query span as its exemplar.
    query_latency: Histogram,
}

impl ConcMetrics {
    fn new(registry: &MetricsRegistry) -> ConcMetrics {
        let query_latency = registry.histogram("heaven.query_latency_s");
        // Exemplar tables are sized at registration so the per-query
        // observe stays allocation-free.
        query_latency.reserve_exemplars();
        ConcMetrics {
            region_fetches: registry.counter("heaven.region_fetches"),
            st_tape_fetches: registry.counter("heaven.st_tape_fetches"),
            st_tape_bytes: registry.counter("heaven.st_tape_bytes"),
            bytes_copied: registry.counter("heaven.bytes_copied"),
            coalesced_fetches: registry.counter("sched.coalesced_fetches"),
            batches: registry.counter("sched.batches"),
            batched_fetches: registry.counter("sched.batched_fetches"),
            requeued_fetches: registry.counter("sched.requeued_fetches"),
            stalls: registry.counter("sched.stalls"),
            queue_wait: registry.histogram("sched.queue_wait_s"),
            service: registry.histogram("sched.service_s"),
            query_latency,
        }
    }
}

/// A queued tertiary fetch plus its recovery state: which attempt this
/// is, whether it already failed over to the second copy, and the
/// catalog's replica/checksum for that failover.
#[derive(Debug, Clone, Copy)]
struct PendingFetch {
    req: FetchRequest,
    attempt: u32,
    on_replica: bool,
    replica: Option<BlockAddress>,
    checksum: Option<u64>,
    /// Shared-clock instant the first waiter enqueued this super-tile
    /// (survives requeues: queue time accumulates across the ladder).
    enqueue_s: f64,
    /// Drain passes this fetch has been seen by (each pass ≈ one batching
    /// window) — the stall watchdog's deterministic time base.
    drains: u32,
    /// Already flagged by the stall watchdog (flag once per fetch).
    stalled: bool,
}

/// Why a batched fetch ultimately failed (cloned to every coalesced
/// waiter, then mapped to a [`HeavenError`]).
#[derive(Debug, Clone)]
enum FetchFailure {
    /// Every archive copy was unreadable or corrupt.
    MediaLost(SuperTileId),
    /// A non-recoverable error (bad address, codec failure, ...).
    Other(String),
}

impl FetchFailure {
    fn into_error(self) -> HeavenError {
        match self {
            FetchFailure::MediaLost(st) => HeavenError::MediaLost { st },
            FetchFailure::Other(m) => HeavenError::Config(format!("batched fetch failed: {m}")),
        }
    }
}

/// The shared outcome of a successful batched fetch, cloned to every
/// coalesced waiter (the payload clone is a refcount bump). Besides the
/// payload it carries the causal/timing context each waiter stamps onto
/// its own trace: the `sched.batch` span that staged it and the
/// queue/service decomposition of its latency.
#[derive(Debug, Clone)]
struct Served {
    payload: Bytes,
    /// Shared-clock instant the staging round completed (waiters
    /// fast-forward their lanes to it).
    done_s: f64,
    /// Enqueue → staging-round start (simulated seconds).
    queue_s: f64,
    /// Staging-round start → notification (simulated seconds).
    service_s: f64,
    /// The `sched.batch` span that staged this fetch (0 = untraced).
    batch_span: u64,
}

/// One in-flight tertiary fetch; every session waiting on the same
/// super-tile holds the same `Arc<Inflight>` and reads the same outcome.
/// `done` is signalled exactly once, when the slot is filled.
#[derive(Debug, Default)]
struct Inflight {
    slot: Mutex<Option<std::result::Result<Served, FetchFailure>>>,
    done: Condvar,
}

/// Arrival-ordered fetch queue plus a monotone arrival counter for the
/// batching window's quiet-period detection (requeues don't count — they
/// come from the drainer itself).
#[derive(Debug, Default)]
struct BatchQueue {
    pending: Vec<PendingFetch>,
    arrivals: u64,
}

/// The cross-session staging coordinator (a combining lock).
///
/// `inflight` registers-or-coalesces under one critical section (a request
/// is pushed to the queue in the same section, so no request is ever both
/// unqueued and unobserved). Whichever waiting session wins `drain`
/// becomes the drainer: it waits out the batching window on the `arrived`
/// condvar (each arrival re-arms a short quiet period, so the window
/// closes early once peers stop enqueueing), then stages the merged batch
/// in one scheduled, drive-parallel sweep — repeating until the queue is
/// empty so that requeued retries/failovers are staged before the drainer
/// seat is vacated. Non-drainers park on their entry's `done` condvar.
#[derive(Debug)]
pub(crate) struct FetchBatcher {
    queue: Mutex<BatchQueue>,
    arrived: Condvar,
    inflight: Mutex<HashMap<SuperTileId, Arc<Inflight>>>,
    drain: Mutex<()>,
    window: Duration,
}

impl FetchBatcher {
    fn new(window: Duration) -> FetchBatcher {
        FetchBatcher {
            queue: Mutex::new(BatchQueue::default()),
            arrived: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            drain: Mutex::new(()),
            window,
        }
    }

    /// Fetch a super-tile through the shared batch: returns the shared
    /// [`Served`] outcome plus whether this waiter coalesced onto an
    /// already-queued request (vs. registering it).
    fn fetch(&self, h: &ConcurrentHeaven, mut p: PendingFetch) -> Result<(Served, bool)> {
        let (entry, coalesced) = {
            let mut map = self.inflight.lock();
            match map.get(&p.req.st) {
                Some(e) => {
                    h.metrics.coalesced_fetches.inc();
                    (Arc::clone(e), true)
                }
                None => {
                    let e = Arc::new(Inflight::default());
                    map.insert(p.req.st, Arc::clone(&e));
                    p.enqueue_s = h.clock.now_s();
                    let mut q = self.queue.lock();
                    q.pending.push(p);
                    q.arrivals += 1;
                    self.arrived.notify_all();
                    (e, false)
                }
            }
        };
        loop {
            if let Some(outcome) = entry.slot.lock().clone() {
                return outcome
                    .map(|served| (served, coalesced))
                    .map_err(FetchFailure::into_error);
            }
            match self.drain.try_lock() {
                Some(_drainer) => {
                    self.wait_window();
                    // Drain until the queue is quiet: requeued retries and
                    // replica failovers are staged before the drainer seat
                    // is vacated, so their coalesced waiters are never
                    // stranded behind an empty election.
                    loop {
                        self.drain_all(h);
                        if self.queue.lock().pending.is_empty() {
                            break;
                        }
                    }
                }
                None => {
                    let slot = entry.slot.lock();
                    if slot.is_none() {
                        // Timed wait: if the drainer vacated between our
                        // slot check and this park, the timeout re-runs
                        // the drainer election above.
                        let _ = entry.done.wait_for(slot, Duration::from_millis(1));
                    }
                }
            }
        }
    }

    /// Wait out the batching window on the arrival condvar: each new
    /// arrival re-arms a short quiet period, and the wait ends at the
    /// first quiet period (or the full window, whichever comes first).
    /// Peers enqueue freely while the drainer sleeps — the queue lock is
    /// released inside `wait_for`.
    fn wait_window(&self) {
        if self.window.is_zero() {
            return;
        }
        let quiet = self.window.min(Duration::from_millis(2));
        let deadline = Instant::now() + self.window;
        let mut q = self.queue.lock();
        loop {
            let seen = q.arrivals;
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (g, _) = self.arrived.wait_for(q, quiet.min(deadline - now));
            q = g;
            if q.arrivals == seen {
                return; // a full quiet period passed with no arrivals
            }
        }
    }

    /// Stage every queued request in one scheduled sweep and resolve the
    /// waiters. Transient failures requeue (with their coalesced waiters
    /// intact — the inflight entry survives); failures resolve the
    /// affected entries (nobody is left parked on a fetch that will never
    /// complete).
    fn drain_all(&self, h: &ConcurrentHeaven) {
        let mut reqs: Vec<PendingFetch> = std::mem::take(&mut self.queue.lock().pending);
        if reqs.is_empty() {
            return;
        }
        let mut store = h.store.lock();
        // Stall watchdog: each drain pass is one batching window; a fetch
        // still pending past `stall_window_mult` passes (it keeps
        // requeueing through the retry/failover ladder) is flagged once.
        // The count of passes is interleaving-independent, so seeded
        // chaos runs flag identical stalls.
        let stall_after = match h.config.stall_window_mult {
            m if m > 0.0 => m.ceil() as u32,
            _ => u32::MAX,
        };
        for p in reqs.iter_mut() {
            p.drains += 1;
            if p.drains > stall_after && !p.stalled {
                p.stalled = true;
                h.metrics.stalls.inc();
                let now_s = store.clock().now_s();
                h.bus.event(
                    "sched.stall",
                    now_s,
                    &[
                        ("st", p.req.st.into()),
                        ("medium", p.req.addr.medium.into()),
                        ("drains", (p.drains as u64).into()),
                        ("waited_s", (now_s - p.enqueue_s).max(0.0).into()),
                        ("replica", (p.on_replica as u64).into()),
                    ],
                );
            }
        }
        // Retried requests owe their backoff before re-reading; the whole
        // batch backs off in parallel, so one charge (the largest) covers
        // the drain.
        let max_attempt = reqs.iter().map(|p| p.attempt).max().unwrap_or(0);
        if max_attempt > 0 {
            store
                .clock()
                .advance_s(h.config.retry.backoff_s(max_attempt));
        }
        let by_st: HashMap<SuperTileId, PendingFetch> =
            reqs.iter().map(|p| (p.req.st, *p)).collect();
        let plain: Vec<FetchRequest> = reqs.iter().map(|p| p.req).collect();
        let mounted = store.library().mounted_media();
        let order = if h.config.scheduling {
            schedule(&plain, &mounted)
        } else {
            plain
        };
        h.metrics.batches.inc();
        h.metrics.batched_fetches.add(order.len() as u64);
        let drives = store.library().drive_count();
        let rounds = plan_drive_rounds(&order, drives);
        // The batch is a span (not an event) so waiter fetch spans can
        // link to it: `sched.batch` is the shared cause every coalesced
        // session's latency traces back to.
        let batch_span = h.bus.span_start(
            "sched.batch",
            store.clock().now_s(),
            &[
                ("fetches", order.len().into()),
                ("rounds", rounds.len().into()),
                ("max_attempt", (max_attempt as u64).into()),
            ],
        );
        for round in rounds {
            // One drive per group: run each group on a detached clock lane
            // and land the slowest lane on the shared timeline, so groups
            // transfer in parallel but errors stay per-request.
            let t0 = store.clock().now_s();
            let mut window = 0.0f64;
            let mut results: Vec<(FetchRequest, std::result::Result<Bytes, HsmError>)> =
                Vec::with_capacity(round.iter().map(Vec::len).sum());
            for group in &round {
                let (res, dt) = store.library_mut().run_detached(|lib| {
                    group
                        .iter()
                        .map(|r| {
                            let read = lib
                                .read(r.addr.medium, r.addr.offset, r.addr.len)
                                .map_err(HsmError::from);
                            (*r, read)
                        })
                        .collect::<Vec<_>>()
                });
                results.extend(res);
                window = window.max(dt);
            }
            store.clock().advance_to_s(t0 + window);
            let done_s = store.clock().now_s();
            for (r, res) in results {
                let p = by_st.get(&r.st).copied().unwrap_or(PendingFetch {
                    req: r,
                    attempt: 0,
                    on_replica: false,
                    replica: None,
                    checksum: None,
                    enqueue_s: t0,
                    drains: 1,
                    stalled: false,
                });
                match res {
                    Ok(raw) => {
                        if let Some(sum) = p.checksum {
                            if checksum64(&raw) != sum {
                                // Persistent corruption on this copy: no
                                // same-copy retry, straight to the replica.
                                h.recovery.checksum_failures.inc();
                                h.bus.event(
                                    "hsm.checksum_failure",
                                    done_s,
                                    &[
                                        ("st", r.st.into()),
                                        ("medium", r.addr.medium.into()),
                                        ("replica", (p.on_replica as u64).into()),
                                    ],
                                );
                                self.fail_over(h, p);
                                continue;
                            }
                        }
                        h.metrics.st_tape_fetches.inc();
                        h.metrics.st_tape_bytes.add(r.addr.len);
                        let refetch = store.estimate_read_s(r.addr);
                        match h.maybe_decompress(r.st, raw) {
                            Ok(payload) => {
                                h.st_cache.put(r.st, payload.clone(), refetch);
                                // Decompose the fetch's latency: queue =
                                // enqueue → this round's staging start
                                // (backoffs and earlier passes included),
                                // service = staging start → notify.
                                let queue_s = (t0 - p.enqueue_s).max(0.0);
                                let service_s = (done_s - t0).max(0.0);
                                h.metrics.queue_wait.observe(queue_s);
                                h.metrics.service.observe(service_s);
                                self.resolve(
                                    r.st,
                                    Ok(Served {
                                        payload,
                                        done_s,
                                        queue_s,
                                        service_s,
                                        batch_span,
                                    }),
                                );
                            }
                            Err(e) => self.resolve(r.st, Err(FetchFailure::Other(e.to_string()))),
                        }
                    }
                    Err(HsmError::Tape(te)) if te.is_transient() => {
                        if matches!(te, TapeError::DriveFailed { .. }) {
                            // The next drain's mount picks a healthy drive.
                            h.recovery.failovers.inc();
                        }
                        if p.attempt < h.config.retry.max_retries {
                            h.recovery.retries.inc();
                            self.requeue(
                                h,
                                PendingFetch {
                                    attempt: p.attempt + 1,
                                    ..p
                                },
                            );
                        } else {
                            self.fail_over(h, p);
                        }
                    }
                    Err(e) => self.resolve(r.st, Err(FetchFailure::Other(e.to_string()))),
                }
            }
        }
        h.bus.span_end(batch_span, store.clock().now_s());
    }

    /// Move a request to its second archive copy, or declare the
    /// super-tile lost when there is none (or the replica failed too).
    fn fail_over(&self, h: &ConcurrentHeaven, p: PendingFetch) {
        if !p.on_replica {
            if let Some(r) = p.replica {
                self.requeue(
                    h,
                    PendingFetch {
                        req: FetchRequest {
                            st: p.req.st,
                            addr: r,
                        },
                        attempt: 0,
                        on_replica: true,
                        ..p
                    },
                );
                return;
            }
        }
        h.recovery.media_lost.inc();
        h.bus.event(
            "hsm.media_lost",
            h.clock.now_s(),
            &[("st", p.req.st.into())],
        );
        self.resolve(p.req.st, Err(FetchFailure::MediaLost(p.req.st)));
    }

    /// Put a request back in the queue for the next drain iteration. The
    /// inflight entry stays, so every coalesced waiter keeps waiting on
    /// the same slot — nobody is dropped or double-notified.
    fn requeue(&self, h: &ConcurrentHeaven, p: PendingFetch) {
        h.metrics.requeued_fetches.inc();
        h.bus.event(
            "sched.requeue",
            h.clock.now_s(),
            &[
                ("st", p.req.st.into()),
                ("attempt", (p.attempt as u64).into()),
                ("replica", (p.on_replica as u64).into()),
            ],
        );
        // No arrivals bump: requeues come from the drainer itself and must
        // not re-arm the batching window's quiet period.
        self.queue.lock().pending.push(p);
    }

    fn resolve(&self, st: SuperTileId, outcome: std::result::Result<Served, FetchFailure>) {
        let entry = self.inflight.lock().remove(&st);
        if let Some(e) = entry {
            let mut slot = e.slot.lock();
            debug_assert!(slot.is_none(), "double notify on super-tile {st}");
            *slot = Some(outcome);
            e.done.notify_all();
        }
    }
}

/// The `Send + Sync` multi-session HEAVEN system.
///
/// Built from a fully assembled [`Heaven`] via
/// [`Heaven::into_concurrent`]. Query state that sessions share mutably
/// sits behind interior synchronization: the array DBMS and the tape
/// store behind mutexes (the DBMS for its buffer pool, the store because
/// the tape library is physically serial), the catalog behind a reader/
/// writer lock (read-mostly), and both caches lock-striped internally.
#[derive(Debug)]
pub struct ConcurrentHeaven {
    adb: Mutex<ArrayDb>,
    store: Mutex<DirectStore>,
    catalog: RwLock<SuperTileCatalog>,
    tile_cache: TileCache,
    st_cache: SuperTileCache,
    batcher: FetchBatcher,
    config: HeavenConfig,
    registry: MetricsRegistry,
    bus: TraceBus,
    clock: SimClock,
    metrics: ConcMetrics,
    recovery: RecoveryMetrics,
    /// Monotone session-id source; ids key trace records (`"session":N`)
    /// and the profiler's per-session lanes.
    next_session: AtomicU64,
}

impl ConcurrentHeaven {
    /// Convert a built system (see [`Heaven::into_concurrent`]).
    pub fn from_heaven(heaven: Heaven) -> ConcurrentHeaven {
        let (adb, store, catalog, tile_cache, st_cache, config, registry, bus) =
            heaven.into_concurrent_parts();
        let clock = store.clock();
        let metrics = ConcMetrics::new(&registry);
        let recovery = RecoveryMetrics::new(&registry);
        ConcurrentHeaven {
            adb: Mutex::new(adb),
            store: Mutex::new(store),
            catalog: RwLock::new(catalog),
            tile_cache,
            st_cache,
            batcher: FetchBatcher::new(Duration::from_millis(2)),
            config,
            registry,
            bus,
            clock,
            metrics,
            recovery,
            next_session: AtomicU64::new(1),
        }
    }

    /// Open a query session with its own simulated-time lane (forked at
    /// the shared clock's current instant) and a fresh session id for
    /// trace attribution. Dropping the session re-joins the shared
    /// timeline.
    pub fn session(&self) -> Session<'_> {
        Session {
            h: self,
            id: self.next_session.fetch_add(1, Ordering::Relaxed),
            lane: self.clock.fork(),
        }
    }

    /// The batching window: how long (host time) a drainer waits for peer
    /// sessions to enqueue before staging the merged batch. Zero disables
    /// the wait (requests still coalesce when they genuinely overlap).
    pub fn set_batch_window(&mut self, window: Duration) {
        self.batcher.window = window;
    }

    /// Arm (or disarm, with `None`) deterministic fault injection on the
    /// shared library — the concurrent twin of [`Heaven::set_fault_plan`].
    pub fn set_fault_plan(&self, config: Option<heaven_tape::FaultConfig>) {
        self.store.lock().library_mut().set_fault_plan(config);
    }

    /// The shared simulated clock (re-joined by every finished session).
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The trace bus (span/event/link stream keyed to simulated time).
    pub fn trace(&self) -> &TraceBus {
        &self.bus
    }

    /// The active configuration.
    pub fn config(&self) -> &HeavenConfig {
        &self.config
    }

    /// Tertiary-storage statistics.
    pub fn tape_stats(&self) -> TapeStats {
        self.store.lock().stats()
    }

    /// Fault-injection statistics of the shared library.
    pub fn fault_stats(&self) -> heaven_tape::FaultStats {
        self.store.lock().library().fault_stats()
    }

    /// Disk super-tile cache statistics.
    pub fn st_cache_stats(&self) -> CacheStats {
        self.st_cache.stats()
    }

    /// Memory tile cache statistics.
    pub fn tile_cache_stats(&self) -> CacheStats {
        self.tile_cache.stats()
    }

    /// Clear both cache levels (between experiment phases).
    pub fn clear_caches(&self) {
        self.tile_cache.clear();
        self.st_cache.clear();
    }

    /// Undo payload compression on wire bytes read from tape (zero-copy
    /// when compression is off or the payload shipped raw) — the
    /// concurrent twin of `Heaven::maybe_decompress`. The catalogued
    /// uncompressed length of `st` disambiguates untagged raw
    /// pass-through from legacy pre-frame RLE streams.
    fn maybe_decompress(&self, st: SuperTileId, bytes: Bytes) -> Result<Bytes> {
        if !self.config.compress {
            return Ok(bytes);
        }
        let expected = self.catalog.read().meta(st)?.total_len;
        let (out, codec) = heaven_array::decode_wire(&bytes, expected)
            .map_err(|e| HeavenError::Codec(format!("corrupt compressed super-tile: {e}")))?;
        if codec != heaven_array::Codec::Raw {
            self.metrics.bytes_copied.add(out.len() as u64);
        }
        Ok(out)
    }

    /// Record the memcpy performed by patching `src` into `out`.
    fn note_patch_copy(&self, out: &MDArray, src: &MDArray) {
        if let Some(ov) = out.domain().intersection(src.domain()) {
            self.metrics
                .bytes_copied
                .add(ov.cell_count() * out.cell_type().size_bytes() as u64);
        }
    }
}

/// One query session: a handle on the shared system plus a private
/// simulated-time lane. Overlappable work (disk-cache I/O, decode) is
/// charged to the lane; the shared tape library charges the shared clock
/// and waiters fast-forward their lanes to the staging completion.
#[derive(Debug)]
pub struct Session<'h> {
    h: &'h ConcurrentHeaven,
    id: u64,
    lane: SimClock,
}

impl Session<'_> {
    /// This session's current simulated time.
    pub fn now_s(&self) -> f64 {
        self.lane.now_s()
    }

    /// This session's trace id (stamped as `"session":N` on its records).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The session's private clock lane.
    pub fn lane(&self) -> &SimClock {
        &self.lane
    }

    /// Materialize `region` of `oid` across the hierarchy — the
    /// multi-session twin of [`Heaven::fetch_region_hierarchical`].
    ///
    /// Opens a root `query` span stamped with this session's id, and
    /// observes `heaven.query_latency_s` with the span as the histogram
    /// exemplar — so a slow Prometheus bucket names the concrete trace
    /// to chase. (Plain `span_start`, not the sampling bracket: head
    /// sampling's divert flag is bus-global and concurrent sessions
    /// would race it.)
    pub fn fetch_region(&self, oid: ObjectId, region: &Minterval) -> Result<MDArray> {
        self.h.metrics.region_fetches.inc();
        self.h.bus.set_session(self.id);
        let start_s = self.lane.now_s();
        let span = self
            .h
            .bus
            .span_start("query", start_s, &[("oid", oid.into())]);
        let res = self.fetch_region_inner(oid, region);
        let end_s = self.lane.now_s();
        self.h.bus.span_end(span, end_s);
        self.h
            .metrics
            .query_latency
            .observe_with_exemplar((end_s - start_s).max(0.0), span, span);
        res
    }

    fn fetch_region_inner(&self, oid: ObjectId, region: &Minterval) -> Result<MDArray> {
        let meta = self.h.adb.lock().object(oid)?.clone();
        let target = meta.domain.intersection(region).ok_or_else(|| {
            HeavenError::Config(format!(
                "region {region} outside object domain {}",
                meta.domain
            ))
        })?;
        let mut out = MDArray::zeros(target.clone(), meta.cell_type);
        let mut pending: BTreeMap<SuperTileId, Vec<TileId>> = BTreeMap::new();
        for tid in meta.tiles_intersecting(&target) {
            if let Some(t) = self.h.tile_cache.get(tid) {
                self.h.note_patch_copy(&out, &t.data);
                out.patch(&t.data)?;
                continue;
            }
            let loc = self.h.adb.lock().tile_location(tid)?;
            match loc {
                TileLocation::Disk => {
                    let t = self.h.adb.lock().read_tile(tid)?;
                    self.h.note_patch_copy(&out, &t.data);
                    out.patch(&t.data)?;
                    self.h.tile_cache.put(t);
                }
                TileLocation::Exported => {
                    let st = self.h.catalog.read().supertile_of(tid)?;
                    pending.entry(st).or_default().push(tid);
                }
            }
        }
        for (st, tids) in pending {
            let payload = self.supertile_payload(st)?;
            let meta_st = self.h.catalog.read().meta(st)?.clone();
            for tid in tids {
                let t = decode_member(&meta_st, &payload, tid)?;
                self.h.note_patch_copy(&out, &t.data);
                out.patch(&t.data)?;
                self.h.tile_cache.put(t);
            }
        }
        Ok(out)
    }

    /// Stage a super-tile payload: striped-cache hit (charged to this
    /// session's lane), else a tertiary fetch — batched across sessions,
    /// or per-session FIFO when batching is off. Either path runs the
    /// full recovery ladder (retry, failover, dual-copy) under faults.
    ///
    /// Tertiary fetches run inside a `heaven.st_fetch` span. On the
    /// batched path the span **links** to the shared `sched.batch` span
    /// that staged the payload (the cross-session causal edge) and emits
    /// a `sched.served` event carrying the queue/service decomposition,
    /// so `heaven-prof critical-path` can attribute this session's wait
    /// to the shared fetch.
    fn supertile_payload(&self, st: SuperTileId) -> Result<Bytes> {
        if let Some(p) = self.h.st_cache.get_clocked(st, &self.lane) {
            return Ok(p);
        }
        let (addr, replica, checksum) = {
            let cat = self.h.catalog.read();
            (cat.address(st)?, cat.replica(st), cat.checksum(st))
        };
        let batched = self.h.config.cross_session_batching;
        let span = self.h.bus.span_start(
            "heaven.st_fetch",
            self.lane.now_s(),
            &[("st", st.into()), ("batched", (batched as u64).into())],
        );
        let res = if batched {
            self.batched_payload(st, addr, replica, checksum, span)
        } else {
            self.fifo_payload(st, addr, replica, checksum)
        };
        self.h.bus.span_end(span, self.lane.now_s());
        res
    }

    /// The cross-session batched tertiary path (see `supertile_payload`).
    fn batched_payload(
        &self,
        st: SuperTileId,
        addr: BlockAddress,
        replica: Option<BlockAddress>,
        checksum: Option<u64>,
        span: u64,
    ) -> Result<Bytes> {
        let p = PendingFetch {
            req: FetchRequest { st, addr },
            attempt: 0,
            on_replica: false,
            replica,
            checksum,
            enqueue_s: 0.0, // stamped at registration, under the lock
            drains: 0,
            stalled: false,
        };
        let (served, coalesced) = self.h.batcher.fetch(self.h, p)?;
        self.h.bus.link(
            "sched.link",
            served.done_s,
            span,
            served.batch_span,
            &[("st", st.into()), ("coalesced", (coalesced as u64).into())],
        );
        self.h.bus.event(
            "sched.served",
            served.done_s,
            &[
                ("st", st.into()),
                ("queue_s", served.queue_s.into()),
                ("service_s", served.service_s.into()),
                ("batch", served.batch_span.into()),
                ("coalesced", (coalesced as u64).into()),
            ],
        );
        self.lane.advance_to_s(served.done_s);
        Ok(served.payload)
    }

    /// The per-session FIFO tertiary path: mount-and-read in request
    /// order, holding the store for the whole access (the baseline the
    /// batcher is measured against). Queue time is zero by construction;
    /// the whole access is service time.
    fn fifo_payload(
        &self,
        st: SuperTileId,
        addr: BlockAddress,
        replica: Option<BlockAddress>,
        checksum: Option<u64>,
    ) -> Result<Bytes> {
        let mut store = self.h.store.lock();
        let t0 = store.clock().now_s();
        let raw = read_with_recovery(
            &mut store,
            st,
            addr,
            replica,
            checksum,
            &self.h.config.retry,
            &self.h.recovery,
            &self.h.bus,
        )?;
        self.h.metrics.st_tape_fetches.inc();
        self.h.metrics.st_tape_bytes.add(addr.len);
        let refetch = store.estimate_read_s(addr);
        let done_s = store.clock().now_s();
        drop(store);
        let payload = self.h.maybe_decompress(st, raw)?;
        self.h.st_cache.put(st, payload.clone(), refetch);
        let service_s = (done_s - t0).max(0.0);
        self.h.metrics.queue_wait.observe(0.0);
        self.h.metrics.service.observe(service_s);
        self.h.bus.event(
            "sched.served",
            done_s,
            &[
                ("st", st.into()),
                ("queue_s", 0.0.into()),
                ("service_s", service_s.into()),
                ("batch", 0u64.into()),
                ("coalesced", 0u64.into()),
            ],
        );
        self.lane.advance_to_s(done_s);
        Ok(payload)
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        // Re-join the shared timeline: the epoch ends when the slowest
        // overlapped lane ends.
        self.h.clock.advance_to_s(self.lane.now_s());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_heaven_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConcurrentHeaven>();
        assert_send_sync::<Session<'static>>();
        assert_send_sync::<FetchBatcher>();
    }
}
