//! HEAVEN configuration.

use crate::cache::EvictionPolicy;
use crate::estar::AccessPattern;
use heaven_array::{CodecPolicy, Condenser, LinearOrder};
use heaven_obs::TraceConfig;

/// How super-tiles are formed at export time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusteringStrategy {
    /// STAR along a fixed linearization order (paper §3.3.2).
    Star(LinearOrder),
    /// eSTAR, access-pattern aware (paper §3.3.3).
    EStar(AccessPattern),
}

/// Prefetching policy (paper §3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// No prefetching.
    None,
    /// After serving a query, stage the next `n` super-tiles in cluster
    /// order into the disk cache (cluster order ≈ spatial successor).
    NextInOrder(usize),
}

/// Bounded-retry policy for tertiary reads (chaos-mode recovery). A
/// transient failure (drive death, bad segment) is retried up to
/// `max_retries` times per archive copy, backing off exponentially on
/// the **simulated** clock; when a copy is exhausted the read fails over
/// to the replica (if dual-copy archival is on) before giving up with
/// [`crate::HeavenError::MediaLost`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum re-reads of one copy after its initial attempt.
    pub max_retries: u32,
    /// Backoff before the first retry, simulated seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff per subsequent retry.
    pub backoff_mult: f64,
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based); 0.0 for the
    /// initial attempt.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            0.0
        } else {
            self.backoff_base_s * self.backoff_mult.powi(attempt as i32 - 1)
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_s: 0.5,
            backoff_mult: 2.0,
        }
    }
}

/// Tunable parameters of a HEAVEN instance.
#[derive(Debug, Clone)]
pub struct HeavenConfig {
    /// Fixed super-tile size; `None` selects the automatic size adaptation
    /// (paper §3.3.4) from the device profile and `expected_query_bytes`.
    pub supertile_bytes: Option<u64>,
    /// Expected useful bytes per query, for the sizing model.
    pub expected_query_bytes: u64,
    /// Clustering strategy for export.
    pub clustering: ClusteringStrategy,
    /// Main-memory tile cache size in bytes.
    pub mem_cache_bytes: u64,
    /// Disk super-tile cache size in bytes.
    pub disk_cache_bytes: u64,
    /// Eviction policy of the disk super-tile cache.
    pub eviction: EvictionPolicy,
    /// Prefetching policy.
    pub prefetch: PrefetchPolicy,
    /// Whether to reorder tertiary fetches (query scheduling, §3.5.3).
    pub scheduling: bool,
    /// Start every exported object on a fresh medium (strong inter-object
    /// clustering; costs media, avoids inter-object interference).
    pub medium_per_object: bool,
    /// Condensers to precompute per tile at export time (§3.9).
    pub precompute: Vec<Condenser>,
    /// Compress super-tile payloads (RLE) before they go to tape —
    /// RasDaMan's tile compression / tape hardware compression analogue.
    /// Trades CPU for tertiary transfer volume; disables partial
    /// super-tile reads on random-access media.
    pub compress: bool,
    /// Codec selection policy used when [`Self::compress`] is on: probe
    /// budget, incompressibility threshold, and an optional forced codec.
    /// The default probes ~2 KiB per payload and passes incompressible
    /// payloads through raw (zero-copy).
    pub codec: CodecPolicy,
    /// Tracing sink for the observability bus (spans and events keyed to
    /// simulated time), plus sampling and per-subsystem level knobs. The
    /// default ([`TraceConfig::off`]) costs one atomic load per
    /// instrumentation site.
    pub trace: TraceConfig,
    /// Lock stripes per cache level (rounded up to a power of two). 1
    /// reproduces the single-owner cache exactly; concurrent sessions
    /// want one stripe per expected worker or more.
    pub cache_shards: usize,
    /// Merge the tertiary fetches of concurrent sessions into shared
    /// scheduled batches (one mount serves every session needing the
    /// medium; duplicate super-tile requests coalesce into one fetch).
    /// When off, each session stages its own fetches FIFO.
    pub cross_session_batching: bool,
    /// Dual-copy archival: write every super-tile to two media at export
    /// and fall back to the second copy when the first is unreadable or
    /// fails checksum verification. Doubles archive volume for
    /// fault tolerance (the paper's media-unreliability answer).
    pub dual_copy: bool,
    /// Retry/backoff policy for tertiary reads.
    pub retry: RetryPolicy,
    /// Stall watchdog threshold for batched tertiary fetches, expressed
    /// as a multiple of the batcher's drain window: a queued fetch that
    /// survives this many drain passes without being served (it keeps
    /// requeueing through the retry/failover ladder) is flagged once via
    /// the `sched.stalls` counter and a `sched.stall` trace event naming
    /// the blocking medium. `0.0` disables the watchdog. Runs entirely
    /// on deterministic drain-pass counts, so chaos runs stay
    /// seed-reproducible.
    pub stall_window_mult: f64,
}

impl Default for HeavenConfig {
    fn default() -> Self {
        HeavenConfig {
            supertile_bytes: None,
            expected_query_bytes: 256 << 20,
            clustering: ClusteringStrategy::EStar(AccessPattern::Uniform),
            mem_cache_bytes: 64 << 20,
            disk_cache_bytes: 1 << 30,
            eviction: EvictionPolicy::Lru,
            prefetch: PrefetchPolicy::None,
            scheduling: true,
            medium_per_object: false,
            precompute: Vec::new(),
            compress: false,
            codec: CodecPolicy::default(),
            trace: TraceConfig::off(),
            cache_shards: 1,
            cross_session_batching: true,
            dual_copy: false,
            retry: RetryPolicy::default(),
            stall_window_mult: 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = HeavenConfig::default();
        assert!(c.supertile_bytes.is_none());
        assert!(c.scheduling);
        assert!(matches!(
            c.clustering,
            ClusteringStrategy::EStar(AccessPattern::Uniform)
        ));
        assert_eq!(c.prefetch, PrefetchPolicy::None);
        assert_eq!(c.trace, TraceConfig::off());
        assert!(!c.dual_copy);
        assert_eq!(c.retry.max_retries, 3);
        assert!(c.stall_window_mult > 0.0, "watchdog on by default");
        assert!(c.codec.forced.is_none());
        assert!(c.codec.raw_threshold > 0.0 && c.codec.raw_threshold < 1.0);
    }

    #[test]
    fn retry_backoff_is_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_s(0), 0.0);
        assert!((p.backoff_s(1) - 0.5).abs() < 1e-12);
        assert!((p.backoff_s(2) - 1.0).abs() < 1e-12);
        assert!((p.backoff_s(3) - 2.0).abs() < 1e-12);
    }
}
