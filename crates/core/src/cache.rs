//! The HEAVEN caching hierarchy (paper §3.7).
//!
//! Three levels: main-memory **tile cache** (decoded tiles, free access) →
//! secondary-storage **super-tile cache** (raw payloads, disk-cost access)
//! → tertiary storage. The super-tile cache supports pluggable eviction
//! strategies (§3.7.3): LRU, LFU, FIFO and a cost-aware policy weighting
//! the tertiary refetch cost per byte — a super-tile that is expensive to
//! re-fetch (deep on a rarely mounted medium) is kept longer.

use crate::supertile::SuperTileId;
use bytes::Bytes;
use heaven_array::{Tile, TileId};
use heaven_obs::{Counter, FloatCounter, Histogram, MetricsRegistry, TraceBus};
use heaven_tape::{DiskProfile, SimClock};
use std::collections::HashMap;
use std::fmt;

/// Eviction strategy of the super-tile cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least recently used.
    Lru,
    /// Least frequently used (ties broken by recency).
    Lfu,
    /// First in, first out.
    Fifo,
    /// Smallest (refetch cost × frequency / size) first.
    CostAware,
}

impl EvictionPolicy {
    /// All policies (for the eviction-strategy experiment, E8).
    pub fn all() -> [EvictionPolicy; 4] {
        [
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
            EvictionPolicy::Fifo,
            EvictionPolicy::CostAware,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "LRU",
            EvictionPolicy::Lfu => "LFU",
            EvictionPolicy::Fifo => "FIFO",
            EvictionPolicy::CostAware => "COST",
        }
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted.
    pub evictions: u64,
    /// Bytes served from the cache.
    pub bytes_served: u64,
    /// Simulated seconds of I/O charged by the cache (0 for the free
    /// main-memory tile cache).
    pub io_s: f64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when no lookups).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Difference of two snapshots (`self` minus `earlier`), underflow-safe
    /// like [`heaven_tape::TapeStats::since`].
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            bytes_served: self.bytes_served.saturating_sub(earlier.bytes_served),
            io_s: (self.io_s - earlier.io_s).max(0.0),
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} ratio={:.2} evictions={} served={}MB io={:.1}s",
            self.hits,
            self.misses,
            self.hit_ratio(),
            self.evictions,
            self.bytes_served >> 20,
            self.io_s,
        )
    }
}

/// Registry names of one cache instance's metrics.
#[derive(Debug, Clone, Copy)]
struct CacheMetricNames {
    hits: &'static str,
    misses: &'static str,
    evictions: &'static str,
    bytes_served: &'static str,
    io_s: &'static str,
    io_hist: &'static str,
}

const ST_CACHE_NAMES: CacheMetricNames = CacheMetricNames {
    hits: "cache.st.hits",
    misses: "cache.st.misses",
    evictions: "cache.st.evictions",
    bytes_served: "cache.st.bytes_served",
    io_s: "cache.st.io_s",
    io_hist: "cache.st.io_hist_s",
};

const MEM_CACHE_NAMES: CacheMetricNames = CacheMetricNames {
    hits: "cache.mem.hits",
    misses: "cache.mem.misses",
    evictions: "cache.mem.evictions",
    bytes_served: "cache.mem.bytes_served",
    io_s: "cache.mem.io_s",
    io_hist: "cache.mem.io_hist_s",
};

/// Metric handles backing [`CacheStats`]; the registry is the source of
/// truth and the struct is reconstructed on demand.
#[derive(Debug, Clone)]
struct CacheMetrics {
    names: CacheMetricNames,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    bytes_served: Counter,
    io_s: FloatCounter,
    /// Per-access disk-I/O duration distribution (simulated seconds).
    io_hist: Histogram,
}

impl CacheMetrics {
    fn new(registry: &MetricsRegistry, names: CacheMetricNames) -> CacheMetrics {
        CacheMetrics {
            names,
            hits: registry.counter(names.hits),
            misses: registry.counter(names.misses),
            evictions: registry.counter(names.evictions),
            bytes_served: registry.counter(names.bytes_served),
            io_s: registry.fcounter(names.io_s),
            io_hist: registry.histogram(names.io_hist),
        }
    }

    fn rebind(&mut self, registry: &MetricsRegistry) {
        let next = CacheMetrics::new(registry, self.names);
        next.hits.add(self.hits.get());
        next.misses.add(self.misses.get());
        next.evictions.add(self.evictions.get());
        next.bytes_served.add(self.bytes_served.get());
        next.io_s.add(self.io_s.get());
        next.io_hist.merge_from(&self.io_hist);
        *self = next;
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            bytes_served: self.bytes_served.get(),
            io_s: self.io_s.get(),
        }
    }
}

#[derive(Debug)]
struct StEntry {
    payload: Bytes,
    /// Accounted size in bytes (equals `payload.len()` for real entries;
    /// may exceed it for phantom entries used by paper-scale experiments).
    size: u64,
    last_access: u64,
    access_count: u64,
    insert_seq: u64,
    /// Estimated seconds to refetch from tertiary storage.
    refetch_cost_s: f64,
}

/// The disk-resident super-tile cache.
#[derive(Debug)]
pub struct SuperTileCache {
    capacity: u64,
    used: u64,
    policy: EvictionPolicy,
    entries: HashMap<SuperTileId, StEntry>,
    counter: u64,
    metrics: CacheMetrics,
    bus: TraceBus,
    disk: Option<(DiskProfile, SimClock)>,
}

impl SuperTileCache {
    /// Create a cache of `capacity` bytes. When `disk` is given, hits and
    /// stores charge disk I/O costs to the clock (the cache lives on
    /// secondary storage).
    pub fn new(
        capacity: u64,
        policy: EvictionPolicy,
        disk: Option<(DiskProfile, SimClock)>,
    ) -> SuperTileCache {
        SuperTileCache {
            capacity,
            used: 0,
            policy,
            entries: HashMap::new(),
            counter: 0,
            metrics: CacheMetrics::new(&MetricsRegistry::new(), ST_CACHE_NAMES),
            bus: TraceBus::noop(),
            disk,
        }
    }

    /// Attach the cache's counters to a shared metrics registry and its
    /// admit/evict events to a trace bus; values accumulated so far carry
    /// over.
    pub fn attach_obs(&mut self, registry: &MetricsRegistry, bus: TraceBus) {
        self.metrics.rebind(registry);
        self.bus = bus;
    }

    /// Cache statistics (a view over the metrics registry).
    pub fn stats(&self) -> CacheStats {
        self.metrics.stats()
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Whether a super-tile is cached (no stats/cost effect).
    pub fn contains(&self, st: SuperTileId) -> bool {
        self.entries.contains_key(&st)
    }

    /// Advance the clock by the disk access cost and return the seconds
    /// charged (0 for a memory-resident cache).
    fn charge(&self, bytes: u64) -> f64 {
        if let Some((profile, clock)) = &self.disk {
            let s = profile.access_time_s(bytes);
            clock.advance_s(s);
            s
        } else {
            0.0
        }
    }

    /// The current simulated time (0 for a memory-resident cache).
    fn now_s(&self) -> f64 {
        self.disk.as_ref().map(|(_, c)| c.now_s()).unwrap_or(0.0)
    }

    /// Look up a super-tile payload. The returned `Bytes` aliases the
    /// cached buffer — a hit bumps a refcount, it does not copy the
    /// payload (the simulated disk read is still charged).
    pub fn get(&mut self, st: SuperTileId) -> Option<Bytes> {
        self.counter += 1;
        let counter = self.counter;
        match self.entries.get_mut(&st) {
            Some(e) => {
                e.last_access = counter;
                e.access_count += 1;
                self.metrics.hits.inc();
                self.metrics.bytes_served.add(e.size);
                let size = e.size;
                let payload = e.payload.clone();
                let io = self.charge(size);
                self.metrics.io_s.add(io);
                if self.disk.is_some() {
                    self.metrics.io_hist.observe(io);
                }
                self.bus.event(
                    "cache.st.hit",
                    self.now_s(),
                    &[("st", st.into()), ("bytes", size.into())],
                );
                Some(payload)
            }
            None => {
                self.metrics.misses.inc();
                self.bus
                    .event("cache.st.miss", self.now_s(), &[("st", st.into())]);
                None
            }
        }
    }

    /// Insert a payload with its estimated tertiary refetch cost; evicts
    /// per policy until it fits. Payloads larger than the whole cache are
    /// not admitted. Accepts anything convertible to [`Bytes`]
    /// (`Vec<u8>` converts in O(1)).
    pub fn put(&mut self, st: SuperTileId, payload: impl Into<Bytes>, refetch_cost_s: f64) {
        let payload = payload.into();
        let size = payload.len() as u64;
        self.put_sized(st, payload, size, refetch_cost_s);
    }

    /// Insert a phantom entry: accounted as `size` bytes without holding
    /// them (paper-scale experiments). Lookups return an empty payload.
    pub fn put_phantom(&mut self, st: SuperTileId, size: u64, refetch_cost_s: f64) {
        self.put_sized(st, Bytes::new(), size, refetch_cost_s);
    }

    fn put_sized(&mut self, st: SuperTileId, payload: Bytes, size: u64, refetch_cost_s: f64) {
        if size > self.capacity {
            return;
        }
        if let Some(old) = self.entries.remove(&st) {
            self.used -= old.size;
        }
        while self.used + size > self.capacity {
            match self.pick_victim() {
                Some(victim) => {
                    let e = self.entries.remove(&victim).expect("victim exists");
                    self.used -= e.size;
                    self.metrics.evictions.inc();
                    self.bus.event(
                        "cache.st.evict",
                        self.now_s(),
                        &[
                            ("st", victim.into()),
                            ("bytes", e.size.into()),
                            ("policy", self.policy.name().into()),
                        ],
                    );
                }
                None => return,
            }
        }
        self.counter += 1;
        let io = self.charge(size);
        self.metrics.io_s.add(io);
        if self.disk.is_some() {
            self.metrics.io_hist.observe(io);
        }
        self.bus.event(
            "cache.st.admit",
            self.now_s(),
            &[
                ("st", st.into()),
                ("bytes", size.into()),
                ("refetch_s", refetch_cost_s.into()),
            ],
        );
        self.entries.insert(
            st,
            StEntry {
                payload,
                size,
                last_access: self.counter,
                access_count: 1,
                insert_seq: self.counter,
                refetch_cost_s,
            },
        );
        self.used += size;
    }

    fn pick_victim(&self) -> Option<SuperTileId> {
        let score = |e: &StEntry| -> f64 {
            match self.policy {
                EvictionPolicy::Lru => e.last_access as f64,
                EvictionPolicy::Lfu => e.access_count as f64 * 1e12 + e.last_access as f64,
                EvictionPolicy::Fifo => e.insert_seq as f64,
                EvictionPolicy::CostAware => {
                    // keep entries whose refetch is expensive per byte and
                    // that are used often; evict the cheapest-to-lose first
                    e.refetch_cost_s * e.access_count as f64 / (e.size.max(1) as f64)
                }
            }
        };
        self.entries
            .iter()
            .min_by(|(_, a), (_, b)| score(a).partial_cmp(&score(b)).expect("no NaN"))
            .map(|(&id, _)| id)
    }

    /// Drop an entry (e.g. after the super-tile was rewritten).
    pub fn invalidate(&mut self, st: SuperTileId) {
        if let Some(e) = self.entries.remove(&st) {
            self.used -= e.size;
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
    }
}

/// The main-memory tile cache: decoded tiles, LRU, no access cost.
#[derive(Debug)]
pub struct TileCache {
    capacity: u64,
    used: u64,
    entries: HashMap<TileId, (Tile, u64)>,
    counter: u64,
    metrics: CacheMetrics,
}

impl TileCache {
    /// Create a tile cache of `capacity` payload bytes.
    pub fn new(capacity: u64) -> TileCache {
        TileCache {
            capacity,
            used: 0,
            entries: HashMap::new(),
            counter: 0,
            metrics: CacheMetrics::new(&MetricsRegistry::new(), MEM_CACHE_NAMES),
        }
    }

    /// Attach the cache's counters to a shared metrics registry; values
    /// accumulated so far carry over.
    pub fn attach_obs(&mut self, registry: &MetricsRegistry) {
        self.metrics.rebind(registry);
    }

    /// Cache statistics (a view over the metrics registry).
    pub fn stats(&self) -> CacheStats {
        self.metrics.stats()
    }

    /// Look up a tile. The returned tile shares the cached payload (the
    /// clone is a refcount bump); a caller that mutates it detaches via
    /// copy-on-write without disturbing the cached copy.
    pub fn get(&mut self, id: TileId) -> Option<Tile> {
        self.counter += 1;
        let c = self.counter;
        match self.entries.get_mut(&id) {
            Some((t, last)) => {
                *last = c;
                self.metrics.hits.inc();
                self.metrics.bytes_served.add(t.payload_bytes());
                Some(t.clone())
            }
            None => {
                self.metrics.misses.inc();
                None
            }
        }
    }

    /// Insert a tile, evicting LRU entries as needed. The payload is
    /// frozen into shared form (O(1)) so subsequent `get`s are zero-copy.
    pub fn put(&mut self, mut tile: Tile) {
        tile.data.freeze_payload();
        let len = tile.payload_bytes();
        if len > self.capacity {
            return;
        }
        if let Some((old, _)) = self.entries.remove(&tile.id) {
            self.used -= old.payload_bytes();
        }
        while self.used + len > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(&id, _)| id);
            match victim {
                Some(v) => {
                    let (t, _) = self.entries.remove(&v).expect("victim exists");
                    self.used -= t.payload_bytes();
                    self.metrics.evictions.inc();
                }
                None => return,
            }
        }
        self.counter += 1;
        self.used += len;
        self.entries.insert(tile.id, (tile, self.counter));
    }

    /// Drop an entry.
    pub fn invalidate(&mut self, id: TileId) {
        if let Some((t, _)) = self.entries.remove(&id) {
            self.used -= t.payload_bytes();
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heaven_array::{CellType, MDArray, Minterval};

    fn payload(n: usize, fill: u8) -> Vec<u8> {
        vec![fill; n]
    }

    fn cache(cap: u64, policy: EvictionPolicy) -> SuperTileCache {
        SuperTileCache::new(cap, policy, None)
    }

    #[test]
    fn put_get_roundtrip() {
        let mut c = cache(1000, EvictionPolicy::Lru);
        c.put(1, payload(100, 0xAA), 30.0);
        assert_eq!(c.get(1).unwrap(), payload(100, 0xAA));
        assert!(c.get(2).is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn hits_alias_the_cached_buffer() {
        let mut c = cache(1000, EvictionPolicy::Lru);
        c.put(1, payload(100, 7), 1.0);
        let a = c.get(1).unwrap();
        let b = c.get(1).unwrap();
        assert_eq!(
            a.as_slice().as_ptr(),
            b.as_slice().as_ptr(),
            "st-cache hits must not copy the payload"
        );
        assert!(a.ref_count() >= 3); // cache entry + both handles
    }

    #[test]
    fn tile_cache_hits_share_payload() {
        let dom = Minterval::new(&[(0, 9)]).unwrap();
        let mut c = TileCache::new(1 << 20);
        c.put(Tile::new(1, 1, MDArray::zeros(dom, CellType::F64)));
        let a = c.get(1).unwrap();
        let b = c.get(1).unwrap();
        assert!(a.data.is_shared() && b.data.is_shared());
        let pa = a.data.shared_bytes().unwrap();
        let pb = b.data.shared_bytes().unwrap();
        assert_eq!(pa.as_slice().as_ptr(), pb.as_slice().as_ptr());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = cache(300, EvictionPolicy::Lru);
        c.put(1, payload(100, 1), 1.0);
        c.put(2, payload(100, 2), 1.0);
        c.put(3, payload(100, 3), 1.0);
        c.get(1); // 2 is now LRU
        c.put(4, payload(100, 4), 1.0);
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3) && c.contains(4));
    }

    #[test]
    fn fifo_evicts_oldest_insert() {
        let mut c = cache(300, EvictionPolicy::Fifo);
        c.put(1, payload(100, 1), 1.0);
        c.put(2, payload(100, 2), 1.0);
        c.put(3, payload(100, 3), 1.0);
        c.get(1); // does not matter for FIFO
        c.put(4, payload(100, 4), 1.0);
        assert!(!c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn lfu_keeps_frequent_entries() {
        let mut c = cache(300, EvictionPolicy::Lfu);
        c.put(1, payload(100, 1), 1.0);
        c.put(2, payload(100, 2), 1.0);
        c.put(3, payload(100, 3), 1.0);
        c.get(1);
        c.get(1);
        c.get(3);
        c.put(4, payload(100, 4), 1.0); // evicts 2 (count 1)
        assert!(!c.contains(2));
        assert!(c.contains(1) && c.contains(3));
    }

    #[test]
    fn cost_aware_keeps_expensive_refetches() {
        let mut c = cache(300, EvictionPolicy::CostAware);
        c.put(1, payload(100, 1), 120.0); // expensive to refetch
        c.put(2, payload(100, 2), 1.0); // cheap
        c.put(3, payload(100, 3), 60.0);
        c.put(4, payload(100, 4), 60.0); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn oversized_entry_not_admitted() {
        let mut c = cache(100, EvictionPolicy::Lru);
        c.put(1, payload(200, 1), 1.0);
        assert!(!c.contains(1));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = cache(1000, EvictionPolicy::Lru);
        c.put(1, payload(100, 1), 1.0);
        c.put(2, payload(100, 2), 1.0);
        c.invalidate(1);
        assert!(!c.contains(1));
        assert_eq!(c.used(), 100);
        c.clear();
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn disk_backed_cache_charges_time() {
        let clock = SimClock::new();
        let mut c = SuperTileCache::new(
            1 << 30,
            EvictionPolicy::Lru,
            Some((DiskProfile::scsi2003(), clock.clone())),
        );
        c.put(1, payload(30 << 20, 0), 10.0);
        let after_put = clock.now_s();
        assert!(after_put > 1.0);
        c.get(1);
        assert!(clock.now_s() > after_put + 0.9);
    }

    #[test]
    fn tile_cache_lru() {
        let dom = Minterval::new(&[(0, 9)]).unwrap();
        let mk = |id: TileId| Tile::new(id, 1, MDArray::zeros(dom.clone(), CellType::F64));
        let mut c = TileCache::new(200); // each tile 80 bytes
        c.put(mk(1));
        c.put(mk(2));
        c.get(1);
        c.put(mk(3)); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn attach_obs_carries_counters_and_emits_cache_events() {
        let clock = SimClock::new();
        let mut c = SuperTileCache::new(
            250,
            EvictionPolicy::Lru,
            Some((DiskProfile::scsi2003(), clock)),
        );
        c.put(1, payload(100, 1), 5.0);
        c.get(1);
        let registry = MetricsRegistry::new();
        let bus = TraceBus::ring(64);
        c.attach_obs(&registry, bus.clone());
        assert_eq!(registry.counter("cache.st.hits").get(), 1);
        assert!(registry.fcounter("cache.st.io_s").get() > 0.0);
        c.put(2, payload(100, 2), 5.0);
        c.put(3, payload(100, 3), 5.0); // evicts one entry
        assert_eq!(registry.counter("cache.st.evictions").get(), 1);
        let recs = bus.records();
        let evict = recs
            .iter()
            .find(|r| r.name == "cache.st.evict")
            .expect("evict event recorded");
        assert!(evict
            .fields
            .iter()
            .any(|(k, v)| *k == "policy" && format!("{v:?}").contains("LRU")));
        assert!(recs.iter().any(|r| r.name == "cache.st.admit"));
        assert_eq!(c.stats().evictions, 1, "stats view reads the registry");
    }

    #[test]
    fn cache_stats_since_and_display() {
        let a = CacheStats {
            hits: 5,
            misses: 2,
            evictions: 1,
            bytes_served: 100,
            io_s: 2.5,
        };
        let b = CacheStats {
            hits: 8,
            misses: 2,
            evictions: 1,
            bytes_served: 300,
            io_s: 4.0,
        };
        let d = b.since(&a);
        assert_eq!(d.hits, 3);
        assert!((d.io_s - 1.5).abs() < 1e-12);
        let wrong = a.since(&b); // clamps instead of underflowing
        assert_eq!(wrong.hits, 0);
        assert_eq!(wrong.io_s, 0.0);
        let shown = format!("{a}");
        assert!(shown.contains("hits=5"));
        assert!(shown.contains("io=2.5s"));
    }

    #[test]
    fn hit_ratio_math() {
        let mut c = cache(1000, EvictionPolicy::Lru);
        assert_eq!(c.stats().hit_ratio(), 0.0);
        c.put(1, payload(10, 0), 1.0);
        c.get(1);
        c.get(1);
        c.get(9);
        assert!((c.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }
}
