//! The HEAVEN caching hierarchy (paper §3.7).
//!
//! Three levels: main-memory **tile cache** (decoded tiles, free access) →
//! secondary-storage **super-tile cache** (raw payloads, disk-cost access)
//! → tertiary storage. The super-tile cache supports pluggable eviction
//! strategies (§3.7.3): LRU, LFU, FIFO and a cost-aware policy weighting
//! the tertiary refetch cost per byte — a super-tile that is expensive to
//! re-fetch (deep on a rarely mounted medium) is kept longer.
//!
//! Both caches are **lock-striped**: entries live in N shards selected by
//! a Fibonacci hash of the id, each shard behind its own cache-padded
//! mutex, so concurrent sessions touching different super-tiles never
//! serialize on one lock. All methods take `&self`; `new()` builds a
//! single shard (byte-identical behavior to the pre-concurrency cache)
//! and [`SuperTileCache::with_shards`] stripes for parallel load.
//! Eviction and capacity are per shard (total capacity divided evenly),
//! so `used() <= capacity()` holds at every instant. Time a caller spends
//! blocked on a busy stripe is recorded in `cache.shard_lock_wait_s`.

use crate::supertile::SuperTileId;
use bytes::Bytes;
use crossbeam::utils::CachePadded;
use heaven_array::{Tile, TileId};
use heaven_obs::{Counter, FloatCounter, Histogram, MetricsRegistry, TraceBus};
use heaven_tape::{DiskProfile, SimClock};
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::fmt;

/// Eviction strategy of the super-tile cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least recently used.
    Lru,
    /// Least frequently used (ties broken by recency).
    Lfu,
    /// First in, first out.
    Fifo,
    /// Smallest (refetch cost × frequency / size) first.
    CostAware,
}

impl EvictionPolicy {
    /// All policies (for the eviction-strategy experiment, E8).
    pub fn all() -> [EvictionPolicy; 4] {
        [
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
            EvictionPolicy::Fifo,
            EvictionPolicy::CostAware,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "LRU",
            EvictionPolicy::Lfu => "LFU",
            EvictionPolicy::Fifo => "FIFO",
            EvictionPolicy::CostAware => "COST",
        }
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted.
    pub evictions: u64,
    /// Bytes served from the cache.
    pub bytes_served: u64,
    /// Simulated seconds of I/O charged by the cache (0 for the free
    /// main-memory tile cache).
    pub io_s: f64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when no lookups).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Difference of two snapshots (`self` minus `earlier`), underflow-safe
    /// like [`heaven_tape::TapeStats::since`].
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            bytes_served: self.bytes_served.saturating_sub(earlier.bytes_served),
            io_s: (self.io_s - earlier.io_s).max(0.0),
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} ratio={:.2} evictions={} served={}MB io={:.1}s",
            self.hits,
            self.misses,
            self.hit_ratio(),
            self.evictions,
            self.bytes_served >> 20,
            self.io_s,
        )
    }
}

/// Registry names of one cache instance's metrics.
#[derive(Debug, Clone, Copy)]
struct CacheMetricNames {
    hits: &'static str,
    misses: &'static str,
    evictions: &'static str,
    bytes_served: &'static str,
    io_s: &'static str,
    io_hist: &'static str,
}

const ST_CACHE_NAMES: CacheMetricNames = CacheMetricNames {
    hits: "cache.st.hits",
    misses: "cache.st.misses",
    evictions: "cache.st.evictions",
    bytes_served: "cache.st.bytes_served",
    io_s: "cache.st.io_s",
    io_hist: "cache.st.io_hist_s",
};

const MEM_CACHE_NAMES: CacheMetricNames = CacheMetricNames {
    hits: "cache.mem.hits",
    misses: "cache.mem.misses",
    evictions: "cache.mem.evictions",
    bytes_served: "cache.mem.bytes_served",
    io_s: "cache.mem.io_s",
    io_hist: "cache.mem.io_hist_s",
};

/// Registry name of the shared stripe-wait total. Both caches fold into
/// the same counter: the interesting signal is "how much host time do
/// sessions lose to cache lock pressure", not which cache lost it.
pub const SHARD_LOCK_WAIT_NAME: &str = "cache.shard_lock_wait_s";

/// Metric handles backing [`CacheStats`]; the registry is the source of
/// truth and the struct is reconstructed on demand.
#[derive(Debug, Clone)]
struct CacheMetrics {
    names: CacheMetricNames,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    bytes_served: Counter,
    io_s: FloatCounter,
    /// Per-access disk-I/O duration distribution (simulated seconds).
    io_hist: Histogram,
    /// Host seconds spent blocked on a busy cache stripe.
    lock_wait_s: FloatCounter,
}

impl CacheMetrics {
    fn new(registry: &MetricsRegistry, names: CacheMetricNames) -> CacheMetrics {
        CacheMetrics {
            names,
            hits: registry.counter(names.hits),
            misses: registry.counter(names.misses),
            evictions: registry.counter(names.evictions),
            bytes_served: registry.counter(names.bytes_served),
            io_s: registry.fcounter(names.io_s),
            io_hist: registry.histogram(names.io_hist),
            lock_wait_s: registry.fcounter(SHARD_LOCK_WAIT_NAME),
        }
    }

    fn rebind(&mut self, registry: &MetricsRegistry) {
        let next = CacheMetrics::new(registry, self.names);
        next.hits.add(self.hits.get());
        next.misses.add(self.misses.get());
        next.evictions.add(self.evictions.get());
        next.bytes_served.add(self.bytes_served.get());
        next.io_s.add(self.io_s.get());
        next.io_hist.merge_from(&self.io_hist);
        next.lock_wait_s.add(self.lock_wait_s.get());
        *self = next;
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            bytes_served: self.bytes_served.get(),
            io_s: self.io_s.get(),
        }
    }
}

/// Fibonacci-hash shard index for an id among `n` (power-of-two) shards.
#[inline]
fn shard_index(id: u64, n: usize) -> usize {
    ((id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize) & (n - 1)
}

#[derive(Debug)]
struct StEntry {
    payload: Bytes,
    /// Accounted size in bytes (equals `payload.len()` for real entries;
    /// may exceed it for phantom entries used by paper-scale experiments).
    size: u64,
    last_access: u64,
    access_count: u64,
    insert_seq: u64,
    /// Estimated seconds to refetch from tertiary storage.
    refetch_cost_s: f64,
}

/// One lock stripe of the super-tile cache.
#[derive(Debug, Default)]
struct StShard {
    capacity: u64,
    used: u64,
    entries: HashMap<SuperTileId, StEntry>,
    counter: u64,
}

impl StShard {
    fn pick_victim(&self, policy: EvictionPolicy) -> Option<SuperTileId> {
        let score = |e: &StEntry| -> f64 {
            match policy {
                EvictionPolicy::Lru => e.last_access as f64,
                EvictionPolicy::Lfu => e.access_count as f64 * 1e12 + e.last_access as f64,
                EvictionPolicy::Fifo => e.insert_seq as f64,
                EvictionPolicy::CostAware => {
                    // keep entries whose refetch is expensive per byte and
                    // that are used often; evict the cheapest-to-lose first
                    e.refetch_cost_s * e.access_count as f64 / (e.size.max(1) as f64)
                }
            }
        };
        self.entries
            .iter()
            .min_by(|(_, a), (_, b)| score(a).partial_cmp(&score(b)).expect("no NaN"))
            .map(|(&id, _)| id)
    }
}

/// The disk-resident super-tile cache (lock-striped, shareable by `&self`
/// across session threads).
#[derive(Debug)]
pub struct SuperTileCache {
    capacity: u64,
    policy: EvictionPolicy,
    shards: Box<[CachePadded<Mutex<StShard>>]>,
    metrics: CacheMetrics,
    bus: TraceBus,
    disk: Option<(DiskProfile, SimClock)>,
}

impl SuperTileCache {
    /// Create a single-shard cache of `capacity` bytes — the exact
    /// behavior of the pre-concurrency cache. When `disk` is given, hits
    /// and stores charge disk I/O costs to the clock (the cache lives on
    /// secondary storage).
    pub fn new(
        capacity: u64,
        policy: EvictionPolicy,
        disk: Option<(DiskProfile, SimClock)>,
    ) -> SuperTileCache {
        SuperTileCache::with_shards(capacity, policy, disk, 1)
    }

    /// Create a cache striped over `shards` locks (rounded up to a power
    /// of two). Each stripe owns `capacity / shards` bytes, so the rolled
    /// up `used()` can never exceed `capacity()`.
    pub fn with_shards(
        capacity: u64,
        policy: EvictionPolicy,
        disk: Option<(DiskProfile, SimClock)>,
        shards: usize,
    ) -> SuperTileCache {
        let n = shards.max(1).next_power_of_two();
        let per_shard = capacity / n as u64;
        let shards: Box<[_]> = (0..n)
            .map(|_| {
                CachePadded::new(Mutex::new(StShard {
                    capacity: per_shard,
                    ..StShard::default()
                }))
            })
            .collect();
        SuperTileCache {
            capacity: per_shard * n as u64,
            policy,
            shards,
            metrics: CacheMetrics::new(&MetricsRegistry::new(), ST_CACHE_NAMES),
            bus: TraceBus::noop(),
            disk,
        }
    }

    /// Attach the cache's counters to a shared metrics registry and its
    /// admit/evict events to a trace bus; values accumulated so far carry
    /// over.
    pub fn attach_obs(&mut self, registry: &MetricsRegistry, bus: TraceBus) {
        self.metrics.rebind(registry);
        self.bus = bus;
    }

    /// Cache statistics (a view over the metrics registry).
    pub fn stats(&self) -> CacheStats {
        self.metrics.stats()
    }

    /// Bytes currently cached, rolled up across shards.
    pub fn used(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().used).sum()
    }

    /// Capacity in bytes (sum of the per-shard capacities).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Whether a super-tile is cached (no stats/cost effect).
    pub fn contains(&self, st: SuperTileId) -> bool {
        self.lock_shard(st).entries.contains_key(&st)
    }

    /// Lock the stripe owning `st`, folding any blocked host time into
    /// `cache.shard_lock_wait_s`.
    fn lock_shard(&self, st: SuperTileId) -> MutexGuard<'_, StShard> {
        let (guard, wait_s) = self.shards[shard_index(st, self.shards.len())].lock_timed();
        if wait_s > 0.0 {
            self.metrics.lock_wait_s.add(wait_s);
        }
        guard
    }

    /// Advance a clock by the disk access cost and return the seconds
    /// charged (0 for a memory-resident cache). Costs go to `lane` when
    /// given (a session's private time lane), else to the shared clock.
    fn charge(&self, bytes: u64, lane: Option<&SimClock>) -> f64 {
        if let Some((profile, clock)) = &self.disk {
            let s = profile.access_time_s(bytes);
            lane.unwrap_or(clock).advance_s(s);
            s
        } else {
            0.0
        }
    }

    /// The current simulated time (0 for a memory-resident cache).
    fn now_s(&self, lane: Option<&SimClock>) -> f64 {
        match (lane, &self.disk) {
            (Some(lane), _) => lane.now_s(),
            (None, Some((_, c))) => c.now_s(),
            (None, None) => 0.0,
        }
    }

    /// Look up a super-tile payload. The returned `Bytes` aliases the
    /// cached buffer — a hit bumps a refcount, it does not copy the
    /// payload (the simulated disk read is still charged).
    pub fn get(&self, st: SuperTileId) -> Option<Bytes> {
        self.get_impl(st, None)
    }

    /// [`SuperTileCache::get`] charging the disk cost to a session's
    /// private clock lane instead of the shared clock.
    pub fn get_clocked(&self, st: SuperTileId, lane: &SimClock) -> Option<Bytes> {
        self.get_impl(st, Some(lane))
    }

    fn get_impl(&self, st: SuperTileId, lane: Option<&SimClock>) -> Option<Bytes> {
        let mut shard = self.lock_shard(st);
        shard.counter += 1;
        let counter = shard.counter;
        match shard.entries.get_mut(&st) {
            Some(e) => {
                e.last_access = counter;
                e.access_count += 1;
                self.metrics.hits.inc();
                self.metrics.bytes_served.add(e.size);
                let size = e.size;
                let payload = e.payload.clone();
                let io = self.charge(size, lane);
                self.metrics.io_s.add(io);
                if self.disk.is_some() {
                    self.metrics.io_hist.observe(io);
                }
                self.bus.event(
                    "cache.st.hit",
                    self.now_s(lane),
                    &[("st", st.into()), ("bytes", size.into())],
                );
                Some(payload)
            }
            None => {
                self.metrics.misses.inc();
                self.bus
                    .event("cache.st.miss", self.now_s(lane), &[("st", st.into())]);
                None
            }
        }
    }

    /// Insert a payload with its estimated tertiary refetch cost; evicts
    /// per policy until it fits. Payloads larger than a shard are not
    /// admitted. Accepts anything convertible to [`Bytes`] (`Vec<u8>`
    /// converts in O(1)).
    pub fn put(&self, st: SuperTileId, payload: impl Into<Bytes>, refetch_cost_s: f64) {
        let payload = payload.into();
        let size = payload.len() as u64;
        self.put_sized(st, payload, size, refetch_cost_s, None);
    }

    /// [`SuperTileCache::put`] charging the disk cost to a session's
    /// private clock lane instead of the shared clock.
    pub fn put_clocked(
        &self,
        st: SuperTileId,
        payload: impl Into<Bytes>,
        refetch_cost_s: f64,
        lane: &SimClock,
    ) {
        let payload = payload.into();
        let size = payload.len() as u64;
        self.put_sized(st, payload, size, refetch_cost_s, Some(lane));
    }

    /// Insert a phantom entry: accounted as `size` bytes without holding
    /// them (paper-scale experiments). Lookups return an empty payload.
    pub fn put_phantom(&self, st: SuperTileId, size: u64, refetch_cost_s: f64) {
        self.put_sized(st, Bytes::new(), size, refetch_cost_s, None);
    }

    fn put_sized(
        &self,
        st: SuperTileId,
        payload: Bytes,
        size: u64,
        refetch_cost_s: f64,
        lane: Option<&SimClock>,
    ) {
        let mut shard = self.lock_shard(st);
        if size > shard.capacity {
            return;
        }
        if let Some(old) = shard.entries.remove(&st) {
            shard.used -= old.size;
        }
        while shard.used + size > shard.capacity {
            match shard.pick_victim(self.policy) {
                Some(victim) => {
                    let e = shard.entries.remove(&victim).expect("victim exists");
                    shard.used -= e.size;
                    self.metrics.evictions.inc();
                    self.bus.event(
                        "cache.st.evict",
                        self.now_s(lane),
                        &[
                            ("st", victim.into()),
                            ("bytes", e.size.into()),
                            ("policy", self.policy.name().into()),
                        ],
                    );
                }
                None => return,
            }
        }
        shard.counter += 1;
        let counter = shard.counter;
        let io = self.charge(size, lane);
        self.metrics.io_s.add(io);
        if self.disk.is_some() {
            self.metrics.io_hist.observe(io);
        }
        self.bus.event(
            "cache.st.admit",
            self.now_s(lane),
            &[
                ("st", st.into()),
                ("bytes", size.into()),
                ("refetch_s", refetch_cost_s.into()),
            ],
        );
        shard.entries.insert(
            st,
            StEntry {
                payload,
                size,
                last_access: counter,
                access_count: 1,
                insert_seq: counter,
                refetch_cost_s,
            },
        );
        shard.used += size;
    }

    /// Drop an entry (e.g. after the super-tile was rewritten).
    pub fn invalidate(&self, st: SuperTileId) {
        let mut shard = self.lock_shard(st);
        if let Some(e) = shard.entries.remove(&st) {
            shard.used -= e.size;
        }
    }

    /// Drop everything.
    pub fn clear(&self) {
        for stripe in self.shards.iter() {
            let mut shard = stripe.lock();
            shard.entries.clear();
            shard.used = 0;
        }
    }
}

/// One lock stripe of the tile cache.
#[derive(Debug, Default)]
struct MemShard {
    capacity: u64,
    used: u64,
    entries: HashMap<TileId, (Tile, u64)>,
    counter: u64,
}

/// The main-memory tile cache: decoded tiles, LRU, no access cost.
/// Lock-striped like [`SuperTileCache`]; `new()` is single-shard.
#[derive(Debug)]
pub struct TileCache {
    capacity: u64,
    shards: Box<[CachePadded<Mutex<MemShard>>]>,
    metrics: CacheMetrics,
}

impl TileCache {
    /// Create a single-shard tile cache of `capacity` payload bytes.
    pub fn new(capacity: u64) -> TileCache {
        TileCache::with_shards(capacity, 1)
    }

    /// Create a tile cache striped over `shards` locks (rounded up to a
    /// power of two), each owning `capacity / shards` bytes.
    pub fn with_shards(capacity: u64, shards: usize) -> TileCache {
        let n = shards.max(1).next_power_of_two();
        let per_shard = capacity / n as u64;
        let shards: Box<[_]> = (0..n)
            .map(|_| {
                CachePadded::new(Mutex::new(MemShard {
                    capacity: per_shard,
                    ..MemShard::default()
                }))
            })
            .collect();
        TileCache {
            capacity: per_shard * n as u64,
            shards,
            metrics: CacheMetrics::new(&MetricsRegistry::new(), MEM_CACHE_NAMES),
        }
    }

    /// Attach the cache's counters to a shared metrics registry; values
    /// accumulated so far carry over.
    pub fn attach_obs(&mut self, registry: &MetricsRegistry) {
        self.metrics.rebind(registry);
    }

    /// Cache statistics (a view over the metrics registry).
    pub fn stats(&self) -> CacheStats {
        self.metrics.stats()
    }

    /// Bytes currently cached, rolled up across shards.
    pub fn used(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().used).sum()
    }

    /// Capacity in bytes (sum of the per-shard capacities).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn lock_shard(&self, id: TileId) -> MutexGuard<'_, MemShard> {
        let (guard, wait_s) = self.shards[shard_index(id, self.shards.len())].lock_timed();
        if wait_s > 0.0 {
            self.metrics.lock_wait_s.add(wait_s);
        }
        guard
    }

    /// Look up a tile. The returned tile shares the cached payload (the
    /// clone is a refcount bump); a caller that mutates it detaches via
    /// copy-on-write without disturbing the cached copy.
    pub fn get(&self, id: TileId) -> Option<Tile> {
        let mut shard = self.lock_shard(id);
        shard.counter += 1;
        let c = shard.counter;
        match shard.entries.get_mut(&id) {
            Some((t, last)) => {
                *last = c;
                self.metrics.hits.inc();
                self.metrics.bytes_served.add(t.payload_bytes());
                Some(t.clone())
            }
            None => {
                self.metrics.misses.inc();
                None
            }
        }
    }

    /// Insert a tile, evicting LRU entries as needed. The payload is
    /// frozen into shared form (O(1)) so subsequent `get`s are zero-copy.
    pub fn put(&self, mut tile: Tile) {
        tile.data.freeze_payload();
        let len = tile.payload_bytes();
        let mut shard = self.lock_shard(tile.id);
        if len > shard.capacity {
            return;
        }
        if let Some((old, _)) = shard.entries.remove(&tile.id) {
            shard.used -= old.payload_bytes();
        }
        while shard.used + len > shard.capacity {
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(&id, _)| id);
            match victim {
                Some(v) => {
                    let (t, _) = shard.entries.remove(&v).expect("victim exists");
                    shard.used -= t.payload_bytes();
                    self.metrics.evictions.inc();
                }
                None => return,
            }
        }
        shard.counter += 1;
        let counter = shard.counter;
        shard.used += len;
        shard.entries.insert(tile.id, (tile, counter));
    }

    /// Drop an entry.
    pub fn invalidate(&self, id: TileId) {
        let mut shard = self.lock_shard(id);
        if let Some((t, _)) = shard.entries.remove(&id) {
            shard.used -= t.payload_bytes();
        }
    }

    /// Drop everything.
    pub fn clear(&self) {
        for stripe in self.shards.iter() {
            let mut shard = stripe.lock();
            shard.entries.clear();
            shard.used = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heaven_array::{CellType, MDArray, Minterval};

    fn payload(n: usize, fill: u8) -> Vec<u8> {
        vec![fill; n]
    }

    fn cache(cap: u64, policy: EvictionPolicy) -> SuperTileCache {
        SuperTileCache::new(cap, policy, None)
    }

    #[test]
    fn put_get_roundtrip() {
        let c = cache(1000, EvictionPolicy::Lru);
        c.put(1, payload(100, 0xAA), 30.0);
        assert_eq!(c.get(1).unwrap(), payload(100, 0xAA));
        assert!(c.get(2).is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn hits_alias_the_cached_buffer() {
        let c = cache(1000, EvictionPolicy::Lru);
        c.put(1, payload(100, 7), 1.0);
        let a = c.get(1).unwrap();
        let b = c.get(1).unwrap();
        assert_eq!(
            a.as_slice().as_ptr(),
            b.as_slice().as_ptr(),
            "st-cache hits must not copy the payload"
        );
        assert!(a.ref_count() >= 3); // cache entry + both handles
    }

    #[test]
    fn tile_cache_hits_share_payload() {
        let dom = Minterval::new(&[(0, 9)]).unwrap();
        let c = TileCache::new(1 << 20);
        c.put(Tile::new(1, 1, MDArray::zeros(dom, CellType::F64)));
        let a = c.get(1).unwrap();
        let b = c.get(1).unwrap();
        assert!(a.data.is_shared() && b.data.is_shared());
        let pa = a.data.shared_bytes().unwrap();
        let pb = b.data.shared_bytes().unwrap();
        assert_eq!(pa.as_slice().as_ptr(), pb.as_slice().as_ptr());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let c = cache(300, EvictionPolicy::Lru);
        c.put(1, payload(100, 1), 1.0);
        c.put(2, payload(100, 2), 1.0);
        c.put(3, payload(100, 3), 1.0);
        c.get(1); // 2 is now LRU
        c.put(4, payload(100, 4), 1.0);
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3) && c.contains(4));
    }

    #[test]
    fn fifo_evicts_oldest_insert() {
        let c = cache(300, EvictionPolicy::Fifo);
        c.put(1, payload(100, 1), 1.0);
        c.put(2, payload(100, 2), 1.0);
        c.put(3, payload(100, 3), 1.0);
        c.get(1); // does not matter for FIFO
        c.put(4, payload(100, 4), 1.0);
        assert!(!c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn lfu_keeps_frequent_entries() {
        let c = cache(300, EvictionPolicy::Lfu);
        c.put(1, payload(100, 1), 1.0);
        c.put(2, payload(100, 2), 1.0);
        c.put(3, payload(100, 3), 1.0);
        c.get(1);
        c.get(1);
        c.get(3);
        c.put(4, payload(100, 4), 1.0); // evicts 2 (count 1)
        assert!(!c.contains(2));
        assert!(c.contains(1) && c.contains(3));
    }

    #[test]
    fn cost_aware_keeps_expensive_refetches() {
        let c = cache(300, EvictionPolicy::CostAware);
        c.put(1, payload(100, 1), 120.0); // expensive to refetch
        c.put(2, payload(100, 2), 1.0); // cheap
        c.put(3, payload(100, 3), 60.0);
        c.put(4, payload(100, 4), 60.0); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn oversized_entry_not_admitted() {
        let c = cache(100, EvictionPolicy::Lru);
        c.put(1, payload(200, 1), 1.0);
        assert!(!c.contains(1));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn invalidate_and_clear() {
        let c = cache(1000, EvictionPolicy::Lru);
        c.put(1, payload(100, 1), 1.0);
        c.put(2, payload(100, 2), 1.0);
        c.invalidate(1);
        assert!(!c.contains(1));
        assert_eq!(c.used(), 100);
        c.clear();
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn disk_backed_cache_charges_time() {
        let clock = SimClock::new();
        let c = SuperTileCache::new(
            1 << 30,
            EvictionPolicy::Lru,
            Some((DiskProfile::scsi2003(), clock.clone())),
        );
        c.put(1, payload(30 << 20, 0), 10.0);
        let after_put = clock.now_s();
        assert!(after_put > 1.0);
        c.get(1);
        assert!(clock.now_s() > after_put + 0.9);
    }

    #[test]
    fn clocked_access_charges_the_lane_not_the_shared_clock() {
        let shared = SimClock::new();
        let c = SuperTileCache::new(
            1 << 30,
            EvictionPolicy::Lru,
            Some((DiskProfile::scsi2003(), shared.clone())),
        );
        let lane = shared.fork();
        c.put_clocked(1, payload(30 << 20, 0), 10.0, &lane);
        c.get_clocked(1, &lane);
        assert_eq!(
            shared.now_s(),
            0.0,
            "lane I/O must not move the shared clock"
        );
        assert!(lane.now_s() > 2.0);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn tile_cache_lru() {
        let dom = Minterval::new(&[(0, 9)]).unwrap();
        let mk = |id: TileId| Tile::new(id, 1, MDArray::zeros(dom.clone(), CellType::F64));
        let c = TileCache::new(200); // each tile 80 bytes
        c.put(mk(1));
        c.put(mk(2));
        c.get(1);
        c.put(mk(3)); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn sharded_cache_caps_every_stripe() {
        let c = SuperTileCache::with_shards(4000, EvictionPolicy::Lru, None, 4);
        assert_eq!(c.shard_count(), 4);
        assert_eq!(c.capacity(), 4000);
        for st in 0..64u64 {
            c.put(st, payload(250, st as u8), 1.0);
            assert!(c.used() <= c.capacity());
        }
        assert!(c.stats().evictions > 0, "64 x 250B must overflow 4 x 1000B");
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let c = SuperTileCache::with_shards(700, EvictionPolicy::Lru, None, 7);
        assert_eq!(c.shard_count(), 8);
        assert_eq!(c.capacity(), 696); // 8 * (700 / 8)
        let m = TileCache::with_shards(1 << 20, 3);
        assert_eq!(m.shard_count(), 4);
    }

    #[test]
    fn attach_obs_carries_counters_and_emits_cache_events() {
        let clock = SimClock::new();
        let mut c = SuperTileCache::new(
            250,
            EvictionPolicy::Lru,
            Some((DiskProfile::scsi2003(), clock)),
        );
        c.put(1, payload(100, 1), 5.0);
        c.get(1);
        let registry = MetricsRegistry::new();
        let bus = TraceBus::ring(64);
        c.attach_obs(&registry, bus.clone());
        assert_eq!(registry.counter("cache.st.hits").get(), 1);
        assert!(registry.fcounter("cache.st.io_s").get() > 0.0);
        c.put(2, payload(100, 2), 5.0);
        c.put(3, payload(100, 3), 5.0); // evicts one entry
        assert_eq!(registry.counter("cache.st.evictions").get(), 1);
        let recs = bus.records();
        let evict = recs
            .iter()
            .find(|r| r.name == "cache.st.evict")
            .expect("evict event recorded");
        assert!(evict
            .fields
            .iter()
            .any(|(k, v)| *k == "policy" && format!("{v:?}").contains("LRU")));
        assert!(recs.iter().any(|r| r.name == "cache.st.admit"));
        assert_eq!(c.stats().evictions, 1, "stats view reads the registry");
    }

    #[test]
    fn cache_stats_since_and_display() {
        let a = CacheStats {
            hits: 5,
            misses: 2,
            evictions: 1,
            bytes_served: 100,
            io_s: 2.5,
        };
        let b = CacheStats {
            hits: 8,
            misses: 2,
            evictions: 1,
            bytes_served: 300,
            io_s: 4.0,
        };
        let d = b.since(&a);
        assert_eq!(d.hits, 3);
        assert!((d.io_s - 1.5).abs() < 1e-12);
        let wrong = a.since(&b); // clamps instead of underflowing
        assert_eq!(wrong.hits, 0);
        assert_eq!(wrong.io_s, 0.0);
        let shown = format!("{a}");
        assert!(shown.contains("hits=5"));
        assert!(shown.contains("io=2.5s"));
    }

    #[test]
    fn hit_ratio_math() {
        let c = cache(1000, EvictionPolicy::Lru);
        assert_eq!(c.stats().hit_ratio(), 0.0);
        c.put(1, payload(10, 0), 1.0);
        c.get(1);
        c.get(1);
        c.get(9);
        assert!((c.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }
}
