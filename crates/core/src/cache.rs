//! The HEAVEN caching hierarchy (paper §3.7).
//!
//! Three levels: main-memory **tile cache** (decoded tiles, free access) →
//! secondary-storage **super-tile cache** (raw payloads, disk-cost access)
//! → tertiary storage. The super-tile cache supports pluggable eviction
//! strategies (§3.7.3): LRU, LFU, FIFO and a cost-aware policy weighting
//! the tertiary refetch cost per byte — a super-tile that is expensive to
//! re-fetch (deep on a rarely mounted medium) is kept longer.

use crate::supertile::SuperTileId;
use heaven_array::{Tile, TileId};
use heaven_tape::{DiskProfile, SimClock};
use std::collections::HashMap;

/// Eviction strategy of the super-tile cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least recently used.
    Lru,
    /// Least frequently used (ties broken by recency).
    Lfu,
    /// First in, first out.
    Fifo,
    /// Smallest (refetch cost × frequency / size) first.
    CostAware,
}

impl EvictionPolicy {
    /// All policies (for the eviction-strategy experiment, E8).
    pub fn all() -> [EvictionPolicy; 4] {
        [
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
            EvictionPolicy::Fifo,
            EvictionPolicy::CostAware,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "LRU",
            EvictionPolicy::Lfu => "LFU",
            EvictionPolicy::Fifo => "FIFO",
            EvictionPolicy::CostAware => "COST",
        }
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted.
    pub evictions: u64,
    /// Bytes served from the cache.
    pub bytes_served: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when no lookups).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct StEntry {
    payload: Vec<u8>,
    /// Accounted size in bytes (equals `payload.len()` for real entries;
    /// may exceed it for phantom entries used by paper-scale experiments).
    size: u64,
    last_access: u64,
    access_count: u64,
    insert_seq: u64,
    /// Estimated seconds to refetch from tertiary storage.
    refetch_cost_s: f64,
}

/// The disk-resident super-tile cache.
#[derive(Debug)]
pub struct SuperTileCache {
    capacity: u64,
    used: u64,
    policy: EvictionPolicy,
    entries: HashMap<SuperTileId, StEntry>,
    counter: u64,
    stats: CacheStats,
    disk: Option<(DiskProfile, SimClock)>,
}

impl SuperTileCache {
    /// Create a cache of `capacity` bytes. When `disk` is given, hits and
    /// stores charge disk I/O costs to the clock (the cache lives on
    /// secondary storage).
    pub fn new(
        capacity: u64,
        policy: EvictionPolicy,
        disk: Option<(DiskProfile, SimClock)>,
    ) -> SuperTileCache {
        SuperTileCache {
            capacity,
            used: 0,
            policy,
            entries: HashMap::new(),
            counter: 0,
            stats: CacheStats::default(),
            disk,
        }
    }

    /// Cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Whether a super-tile is cached (no stats/cost effect).
    pub fn contains(&self, st: SuperTileId) -> bool {
        self.entries.contains_key(&st)
    }

    fn charge(&self, bytes: u64) {
        if let Some((profile, clock)) = &self.disk {
            clock.advance_s(profile.access_time_s(bytes));
        }
    }

    /// Look up a super-tile payload.
    pub fn get(&mut self, st: SuperTileId) -> Option<Vec<u8>> {
        self.counter += 1;
        let counter = self.counter;
        match self.entries.get_mut(&st) {
            Some(e) => {
                e.last_access = counter;
                e.access_count += 1;
                self.stats.hits += 1;
                self.stats.bytes_served += e.size;
                let size = e.size;
                let payload = e.payload.clone();
                self.charge(size);
                Some(payload)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a payload with its estimated tertiary refetch cost; evicts
    /// per policy until it fits. Payloads larger than the whole cache are
    /// not admitted.
    pub fn put(&mut self, st: SuperTileId, payload: Vec<u8>, refetch_cost_s: f64) {
        let size = payload.len() as u64;
        self.put_sized(st, payload, size, refetch_cost_s);
    }

    /// Insert a phantom entry: accounted as `size` bytes without holding
    /// them (paper-scale experiments). Lookups return an empty payload.
    pub fn put_phantom(&mut self, st: SuperTileId, size: u64, refetch_cost_s: f64) {
        self.put_sized(st, Vec::new(), size, refetch_cost_s);
    }

    fn put_sized(&mut self, st: SuperTileId, payload: Vec<u8>, size: u64, refetch_cost_s: f64) {
        if size > self.capacity {
            return;
        }
        if let Some(old) = self.entries.remove(&st) {
            self.used -= old.size;
        }
        while self.used + size > self.capacity {
            match self.pick_victim() {
                Some(victim) => {
                    let e = self.entries.remove(&victim).expect("victim exists");
                    self.used -= e.size;
                    self.stats.evictions += 1;
                }
                None => return,
            }
        }
        self.counter += 1;
        self.charge(size);
        self.entries.insert(
            st,
            StEntry {
                payload,
                size,
                last_access: self.counter,
                access_count: 1,
                insert_seq: self.counter,
                refetch_cost_s,
            },
        );
        self.used += size;
    }

    fn pick_victim(&self) -> Option<SuperTileId> {
        let score = |e: &StEntry| -> f64 {
            match self.policy {
                EvictionPolicy::Lru => e.last_access as f64,
                EvictionPolicy::Lfu => {
                    e.access_count as f64 * 1e12 + e.last_access as f64
                }
                EvictionPolicy::Fifo => e.insert_seq as f64,
                EvictionPolicy::CostAware => {
                    // keep entries whose refetch is expensive per byte and
                    // that are used often; evict the cheapest-to-lose first
                    e.refetch_cost_s * e.access_count as f64 / (e.size.max(1) as f64)
                }
            }
        };
        self.entries
            .iter()
            .min_by(|(_, a), (_, b)| score(a).partial_cmp(&score(b)).expect("no NaN"))
            .map(|(&id, _)| id)
    }

    /// Drop an entry (e.g. after the super-tile was rewritten).
    pub fn invalidate(&mut self, st: SuperTileId) {
        if let Some(e) = self.entries.remove(&st) {
            self.used -= e.size;
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
    }
}

/// The main-memory tile cache: decoded tiles, LRU, no access cost.
#[derive(Debug)]
pub struct TileCache {
    capacity: u64,
    used: u64,
    entries: HashMap<TileId, (Tile, u64)>,
    counter: u64,
    stats: CacheStats,
}

impl TileCache {
    /// Create a tile cache of `capacity` payload bytes.
    pub fn new(capacity: u64) -> TileCache {
        TileCache {
            capacity,
            used: 0,
            entries: HashMap::new(),
            counter: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up a tile.
    pub fn get(&mut self, id: TileId) -> Option<Tile> {
        self.counter += 1;
        let c = self.counter;
        match self.entries.get_mut(&id) {
            Some((t, last)) => {
                *last = c;
                self.stats.hits += 1;
                self.stats.bytes_served += t.payload_bytes();
                Some(t.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a tile, evicting LRU entries as needed.
    pub fn put(&mut self, tile: Tile) {
        let len = tile.payload_bytes();
        if len > self.capacity {
            return;
        }
        if let Some((old, _)) = self.entries.remove(&tile.id) {
            self.used -= old.payload_bytes();
        }
        while self.used + len > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(&id, _)| id);
            match victim {
                Some(v) => {
                    let (t, _) = self.entries.remove(&v).expect("victim exists");
                    self.used -= t.payload_bytes();
                    self.stats.evictions += 1;
                }
                None => return,
            }
        }
        self.counter += 1;
        self.used += len;
        self.entries.insert(tile.id, (tile, self.counter));
    }

    /// Drop an entry.
    pub fn invalidate(&mut self, id: TileId) {
        if let Some((t, _)) = self.entries.remove(&id) {
            self.used -= t.payload_bytes();
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heaven_array::{CellType, MDArray, Minterval};

    fn payload(n: usize, fill: u8) -> Vec<u8> {
        vec![fill; n]
    }

    fn cache(cap: u64, policy: EvictionPolicy) -> SuperTileCache {
        SuperTileCache::new(cap, policy, None)
    }

    #[test]
    fn put_get_roundtrip() {
        let mut c = cache(1000, EvictionPolicy::Lru);
        c.put(1, payload(100, 0xAA), 30.0);
        assert_eq!(c.get(1), Some(payload(100, 0xAA)));
        assert_eq!(c.get(2), None);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = cache(300, EvictionPolicy::Lru);
        c.put(1, payload(100, 1), 1.0);
        c.put(2, payload(100, 2), 1.0);
        c.put(3, payload(100, 3), 1.0);
        c.get(1); // 2 is now LRU
        c.put(4, payload(100, 4), 1.0);
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3) && c.contains(4));
    }

    #[test]
    fn fifo_evicts_oldest_insert() {
        let mut c = cache(300, EvictionPolicy::Fifo);
        c.put(1, payload(100, 1), 1.0);
        c.put(2, payload(100, 2), 1.0);
        c.put(3, payload(100, 3), 1.0);
        c.get(1); // does not matter for FIFO
        c.put(4, payload(100, 4), 1.0);
        assert!(!c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn lfu_keeps_frequent_entries() {
        let mut c = cache(300, EvictionPolicy::Lfu);
        c.put(1, payload(100, 1), 1.0);
        c.put(2, payload(100, 2), 1.0);
        c.put(3, payload(100, 3), 1.0);
        c.get(1);
        c.get(1);
        c.get(3);
        c.put(4, payload(100, 4), 1.0); // evicts 2 (count 1)
        assert!(!c.contains(2));
        assert!(c.contains(1) && c.contains(3));
    }

    #[test]
    fn cost_aware_keeps_expensive_refetches() {
        let mut c = cache(300, EvictionPolicy::CostAware);
        c.put(1, payload(100, 1), 120.0); // expensive to refetch
        c.put(2, payload(100, 2), 1.0); // cheap
        c.put(3, payload(100, 3), 60.0);
        c.put(4, payload(100, 4), 60.0); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn oversized_entry_not_admitted() {
        let mut c = cache(100, EvictionPolicy::Lru);
        c.put(1, payload(200, 1), 1.0);
        assert!(!c.contains(1));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = cache(1000, EvictionPolicy::Lru);
        c.put(1, payload(100, 1), 1.0);
        c.put(2, payload(100, 2), 1.0);
        c.invalidate(1);
        assert!(!c.contains(1));
        assert_eq!(c.used(), 100);
        c.clear();
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn disk_backed_cache_charges_time() {
        let clock = SimClock::new();
        let mut c = SuperTileCache::new(
            1 << 30,
            EvictionPolicy::Lru,
            Some((DiskProfile::scsi2003(), clock.clone())),
        );
        c.put(1, payload(30 << 20, 0), 10.0);
        let after_put = clock.now_s();
        assert!(after_put > 1.0);
        c.get(1);
        assert!(clock.now_s() > after_put + 0.9);
    }

    #[test]
    fn tile_cache_lru() {
        let dom = Minterval::new(&[(0, 9)]).unwrap();
        let mk = |id: TileId| {
            Tile::new(id, 1, MDArray::zeros(dom.clone(), CellType::F64))
        };
        let mut c = TileCache::new(200); // each tile 80 bytes
        c.put(mk(1));
        c.put(mk(2));
        c.get(1);
        c.put(mk(3)); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn hit_ratio_math() {
        let mut c = cache(1000, EvictionPolicy::Lru);
        assert_eq!(c.stats().hit_ratio(), 0.0);
        c.put(1, payload(10, 0), 1.0);
        c.get(1);
        c.get(1);
        c.get(9);
        assert!((c.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }
}
