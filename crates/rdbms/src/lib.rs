#![warn(missing_docs)]
//! # heaven-rdbms — base RDBMS substrate
//!
//! RasDaMan delegates durable storage to a conventional RDBMS (Oracle,
//! IBM DB2) used as a BLOB + catalog store with transactions (paper §2.6,
//! Fig. 1.3). This crate provides that substrate from scratch: a simulated
//! page disk with cost accounting, an LRU buffer pool, WAL-backed
//! transactions with crash recovery, a page-based B+-tree, a BLOB store
//! (tiles live here), and slotted-page heap tables (catalogs live here).

pub mod blob;
pub mod btree;
pub mod buffer;
pub mod db;
pub mod disk;
pub mod error;
pub mod page;
pub mod table;
pub mod wal;

pub use blob::{BlobId, BlobStore};
pub use btree::BTree;
pub use buffer::{BufferPool, BufferStats};
pub use db::Database;
pub use disk::{DiskManager, IoStats};
pub use error::{DbError, Result};
pub use page::{Page, PageId, PAGE_SIZE};
pub use table::{RowId, Table};
pub use wal::{TxnId, Wal, WalRecord};
