//! Buffer pool: LRU page cache over the disk manager.

use crate::disk::DiskManager;
use crate::error::Result;
use crate::page::{Page, PageId};
use heaven_obs::{Counter, MetricsRegistry};
use std::collections::HashMap;

/// Buffer pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Accesses served from memory.
    pub hits: u64,
    /// Accesses that required a disk read.
    pub misses: u64,
    /// Dirty-page evictions (write-backs).
    pub evictions: u64,
    /// Dirty pages written back by explicit flushes.
    pub flushes: u64,
}

/// Metric handles backing [`BufferStats`]; the registry is the source of
/// truth and the struct is reconstructed on demand.
#[derive(Debug, Clone)]
struct BufferMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    flushes: Counter,
}

impl BufferMetrics {
    fn new(registry: &MetricsRegistry) -> BufferMetrics {
        BufferMetrics {
            hits: registry.counter("rdbms.page_hits"),
            misses: registry.counter("rdbms.page_misses"),
            evictions: registry.counter("rdbms.page_evictions"),
            flushes: registry.counter("rdbms.page_flushes"),
        }
    }

    fn rebind(&mut self, registry: &MetricsRegistry) {
        let next = BufferMetrics::new(registry);
        next.hits.add(self.hits.get());
        next.misses.add(self.misses.get());
        next.evictions.add(self.evictions.get());
        next.flushes.add(self.flushes.get());
        *self = next;
    }

    fn stats(&self) -> BufferStats {
        BufferStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            flushes: self.flushes.get(),
        }
    }
}

#[derive(Debug)]
struct Frame {
    page: Page,
    dirty: bool,
    last_used: u64,
}

/// An LRU buffer pool.
#[derive(Debug)]
pub struct BufferPool {
    disk: DiskManager,
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    counter: u64,
    metrics: BufferMetrics,
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`.
    pub fn new(disk: DiskManager, capacity: usize) -> BufferPool {
        BufferPool {
            disk,
            capacity: capacity.max(1),
            frames: HashMap::new(),
            counter: 0,
            metrics: BufferMetrics::new(&MetricsRegistry::new()),
        }
    }

    /// Attach the pool's counters to a shared metrics registry; values
    /// accumulated so far carry over.
    pub fn attach_obs(&mut self, registry: &MetricsRegistry) {
        self.metrics.rebind(registry);
    }

    /// Pool statistics (a view over the metrics registry).
    pub fn stats(&self) -> BufferStats {
        self.metrics.stats()
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &DiskManager {
        &self.disk
    }

    /// Mutable access to the underlying disk manager (page allocation).
    pub fn disk_mut(&mut self) -> &mut DiskManager {
        &mut self.disk
    }

    fn touch(&mut self) -> u64 {
        self.counter += 1;
        self.counter
    }

    fn ensure_resident(&mut self, id: PageId) -> Result<()> {
        if self.frames.contains_key(&id) {
            self.metrics.hits.inc();
            return Ok(());
        }
        self.metrics.misses.inc();
        let page = self.disk.read_page(id)?;
        self.admit(id, page, false)?;
        Ok(())
    }

    fn admit(&mut self, id: PageId, page: Page, dirty: bool) -> Result<()> {
        while self.frames.len() >= self.capacity {
            // Evict LRU.
            let victim = self
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(&id, _)| id)
                .expect("non-empty");
            let frame = self.frames.remove(&victim).expect("present");
            if frame.dirty {
                self.disk.write_page(victim, &frame.page)?;
                self.metrics.evictions.inc();
            }
        }
        let last_used = self.touch();
        self.frames.insert(
            id,
            Frame {
                page,
                dirty,
                last_used,
            },
        );
        Ok(())
    }

    /// Read a page (through the cache); returns a copy of its image.
    pub fn read(&mut self, id: PageId) -> Result<Page> {
        self.ensure_resident(id)?;
        let t = self.touch();
        let f = self.frames.get_mut(&id).expect("resident");
        f.last_used = t;
        Ok(f.page.clone())
    }

    /// Replace a page image (marks it dirty; written back on eviction or
    /// flush).
    pub fn write(&mut self, id: PageId, page: Page) -> Result<()> {
        if id >= self.disk.page_count() {
            return Err(crate::error::DbError::BadPage(id));
        }
        if let Some(f) = self.frames.get_mut(&id) {
            self.metrics.hits.inc();
            f.page = page;
            f.dirty = true;
            let t = self.touch();
            self.frames.get_mut(&id).unwrap().last_used = t;
            return Ok(());
        }
        self.metrics.misses.inc();
        self.admit(id, page, true)
    }

    /// Update a page in place via a closure (marks it dirty).
    pub fn update<R>(&mut self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        self.ensure_resident(id)?;
        let t = self.touch();
        let frame = self.frames.get_mut(&id).expect("resident");
        frame.last_used = t;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Write all dirty pages back to disk.
    pub fn flush_all(&mut self) -> Result<()> {
        let mut dirty: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, _)| id)
            .collect();
        dirty.sort_unstable(); // sequential write-back
        for id in dirty {
            let page = self.frames.get(&id).expect("present").page.clone();
            self.disk.write_page(id, &page)?;
            self.frames.get_mut(&id).expect("present").dirty = false;
            self.metrics.flushes.inc();
        }
        Ok(())
    }

    /// Drop every frame *without* writing dirty pages back — simulates a
    /// crash losing volatile state.
    pub fn drop_all_unflushed(&mut self) {
        self.frames.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heaven_tape::{DiskProfile, SimClock};

    fn pool(cap: usize) -> BufferPool {
        let mut disk = DiskManager::new(DiskProfile::scsi2003(), SimClock::new());
        for _ in 0..20 {
            disk.grow();
        }
        BufferPool::new(disk, cap)
    }

    #[test]
    fn read_caches_pages() {
        let mut b = pool(4);
        b.read(1).unwrap();
        b.read(1).unwrap();
        assert_eq!(b.stats().misses, 1);
        assert_eq!(b.stats().hits, 1);
    }

    #[test]
    fn writes_are_buffered_until_flush() {
        let mut b = pool(4);
        let mut p = Page::new();
        p.write_u64(0, 77);
        b.write(3, p).unwrap();
        let before = b.disk().stats().page_writes;
        b.flush_all().unwrap();
        assert_eq!(b.disk().stats().page_writes, before + 1);
        // after flush the disk has the data
        assert_eq!(b.disk_mut().read_page(3).unwrap().read_u64(0), 77);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let mut b = pool(2);
        for id in 1..=4u64 {
            b.update(id, |p| p.write_u64(0, id * 10)).unwrap();
        }
        assert!(b.stats().evictions >= 2);
        // Every page readable with correct contents (possibly from disk).
        for id in 1..=4u64 {
            assert_eq!(b.read(id).unwrap().read_u64(0), id * 10);
        }
    }

    #[test]
    fn crash_loses_unflushed_writes() {
        let mut b = pool(8);
        b.update(2, |p| p.write_u64(0, 123)).unwrap();
        b.drop_all_unflushed();
        assert_eq!(b.read(2).unwrap().read_u64(0), 0, "write was volatile");
    }

    #[test]
    fn update_returns_closure_result() {
        let mut b = pool(2);
        let v = b.update(1, |p| {
            p.write_u32(4, 9);
            p.read_u32(4) + 1
        });
        assert_eq!(v.unwrap(), 10);
    }

    #[test]
    fn write_to_unallocated_page_fails() {
        let mut b = pool(2);
        assert!(b.write(999, Page::new()).is_err());
    }

    #[test]
    fn attach_obs_shares_counters_with_registry() {
        let mut b = pool(4);
        b.read(1).unwrap();
        b.read(1).unwrap();
        let registry = MetricsRegistry::new();
        b.attach_obs(&registry);
        assert_eq!(registry.counter("rdbms.page_hits").get(), 1);
        assert_eq!(registry.counter("rdbms.page_misses").get(), 1);
        b.update(2, |p| p.write_u64(0, 5)).unwrap();
        b.flush_all().unwrap();
        assert_eq!(registry.counter("rdbms.page_flushes").get(), 1);
        assert_eq!(b.stats().flushes, 1, "stats view reads the registry");
    }
}
