//! Heap tables: variable-length records in slotted pages.
//!
//! The array DBMS keeps its catalogs (collections, object metadata,
//! precomputed-result entries) in heap tables of serialized records,
//! mirroring how RasDaMan keeps its metadata in relational tables of the
//! base RDBMS.

use crate::db::Database;
use crate::error::{DbError, Result};
use crate::page::{PageId, PAGE_SIZE};

const NEXT_OFF: usize = 0; // u64 next page
const COUNT_OFF: usize = 8; // u16 slot count
const DATA_START: usize = 16;
/// Each slot directory entry: record offset (u16) + record length (u16),
/// stored from the page end growing downwards.
const SLOT_SIZE: usize = 4;

/// Address of a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

/// A heap table of byte-string records.
#[derive(Debug, Clone, Copy)]
pub struct Table {
    first: PageId,
}

impl Table {
    /// Largest record that fits a fresh page.
    pub const MAX_RECORD: usize = PAGE_SIZE - DATA_START - SLOT_SIZE;

    /// Create an empty table.
    pub fn create(db: &mut Database) -> Result<Table> {
        let first = db.alloc_page()?;
        Ok(Table { first })
    }

    /// Re-open by first page id.
    pub fn open(first: PageId) -> Table {
        Table { first }
    }

    /// The first page id (persist to re-open).
    pub fn first_page(&self) -> PageId {
        self.first
    }

    /// Insert a record; returns its row id.
    pub fn insert(&self, db: &mut Database, record: &[u8]) -> Result<RowId> {
        if record.len() > Self::MAX_RECORD {
            return Err(DbError::RecordTooLarge {
                len: record.len(),
                max: Self::MAX_RECORD,
            });
        }
        let mut page_id = self.first;
        loop {
            let p = db.read_page(page_id)?;
            let count = p.read_u16(COUNT_OFF) as usize;
            // Free space: between end of record area and start of slot dir.
            let data_end = Self::data_end(&p, count);
            let dir_start = PAGE_SIZE - (count + 1) * SLOT_SIZE;
            if data_end + record.len() <= dir_start {
                let slot = count as u16;
                db.update_page(page_id, |p| {
                    p.as_mut_slice()[data_end..data_end + record.len()].copy_from_slice(record);
                    let entry_off = PAGE_SIZE - (count + 1) * SLOT_SIZE;
                    p.write_u16(entry_off, data_end as u16);
                    p.write_u16(entry_off + 2, record.len() as u16);
                    p.write_u16(COUNT_OFF, (count + 1) as u16);
                })?;
                return Ok(RowId {
                    page: page_id,
                    slot,
                });
            }
            let next = p.read_u64(NEXT_OFF);
            if next == 0 {
                let new_page = db.alloc_page()?;
                db.update_page(page_id, |p| p.write_u64(NEXT_OFF, new_page))?;
                page_id = new_page;
            } else {
                page_id = next;
            }
        }
    }

    fn data_end(p: &crate::page::Page, count: usize) -> usize {
        let mut end = DATA_START;
        for s in 0..count {
            let entry_off = PAGE_SIZE - (s + 1) * SLOT_SIZE;
            let off = p.read_u16(entry_off) as usize;
            let len = p.read_u16(entry_off + 2) as usize;
            end = end.max(off + len);
        }
        end
    }

    /// Fetch a record.
    pub fn get(&self, db: &mut Database, rid: RowId) -> Result<Vec<u8>> {
        let p = db.read_page(rid.page)?;
        let count = p.read_u16(COUNT_OFF);
        if rid.slot >= count {
            return Err(DbError::NoSuchRow {
                page: rid.page,
                slot: rid.slot,
            });
        }
        let entry_off = PAGE_SIZE - (rid.slot as usize + 1) * SLOT_SIZE;
        let off = p.read_u16(entry_off) as usize;
        let len = p.read_u16(entry_off + 2) as usize;
        if off == 0 {
            return Err(DbError::NoSuchRow {
                page: rid.page,
                slot: rid.slot,
            });
        }
        Ok(p.as_slice()[off..off + len].to_vec())
    }

    /// Delete a record (tombstones the slot; space is reclaimed only when
    /// the page empties completely — archive catalogs shrink rarely).
    pub fn delete(&self, db: &mut Database, rid: RowId) -> Result<()> {
        let p = db.read_page(rid.page)?;
        let count = p.read_u16(COUNT_OFF);
        if rid.slot >= count {
            return Err(DbError::NoSuchRow {
                page: rid.page,
                slot: rid.slot,
            });
        }
        let entry_off = PAGE_SIZE - (rid.slot as usize + 1) * SLOT_SIZE;
        if p.read_u16(entry_off) == 0 {
            return Err(DbError::NoSuchRow {
                page: rid.page,
                slot: rid.slot,
            });
        }
        db.update_page(rid.page, |p| {
            p.write_u16(entry_off, 0);
            p.write_u16(entry_off + 2, 0);
        })?;
        Ok(())
    }

    /// Scan all live records as `(row id, bytes)`.
    pub fn scan(&self, db: &mut Database) -> Result<Vec<(RowId, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut page_id = self.first;
        loop {
            let p = db.read_page(page_id)?;
            let count = p.read_u16(COUNT_OFF);
            for slot in 0..count {
                let entry_off = PAGE_SIZE - (slot as usize + 1) * SLOT_SIZE;
                let off = p.read_u16(entry_off) as usize;
                let len = p.read_u16(entry_off + 2) as usize;
                if off != 0 {
                    out.push((
                        RowId {
                            page: page_id,
                            slot,
                        },
                        p.as_slice()[off..off + len].to_vec(),
                    ));
                }
            }
            let next = p.read_u64(NEXT_OFF);
            if next == 0 {
                return Ok(out);
            }
            page_id = next;
        }
    }

    /// Number of live records.
    pub fn len(&self, db: &mut Database) -> Result<usize> {
        Ok(self.scan(db)?.len())
    }

    /// Whether the table has no live records.
    pub fn is_empty(&self, db: &mut Database) -> Result<bool> {
        Ok(self.len(db)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut db = Database::for_tests();
        let t = Table::create(&mut db).unwrap();
        let r1 = t.insert(&mut db, b"hello").unwrap();
        let r2 = t.insert(&mut db, b"world!").unwrap();
        assert_eq!(t.get(&mut db, r1).unwrap(), b"hello");
        assert_eq!(t.get(&mut db, r2).unwrap(), b"world!");
    }

    #[test]
    fn records_spill_to_new_pages() {
        let mut db = Database::for_tests();
        let t = Table::create(&mut db).unwrap();
        let rec = vec![7u8; 1000];
        let mut rids = Vec::new();
        for _ in 0..50 {
            rids.push(t.insert(&mut db, &rec).unwrap());
        }
        // More than one page used.
        let pages: std::collections::HashSet<PageId> = rids.iter().map(|r| r.page).collect();
        assert!(pages.len() > 1);
        for r in &rids {
            assert_eq!(t.get(&mut db, *r).unwrap(), rec);
        }
        assert_eq!(t.len(&mut db).unwrap(), 50);
    }

    #[test]
    fn delete_tombstones() {
        let mut db = Database::for_tests();
        let t = Table::create(&mut db).unwrap();
        let r1 = t.insert(&mut db, b"a").unwrap();
        let r2 = t.insert(&mut db, b"b").unwrap();
        t.delete(&mut db, r1).unwrap();
        assert!(t.get(&mut db, r1).is_err());
        assert!(t.delete(&mut db, r1).is_err());
        assert_eq!(t.get(&mut db, r2).unwrap(), b"b");
        let rows = t.scan(&mut db).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, b"b");
    }

    #[test]
    fn oversized_record_rejected() {
        let mut db = Database::for_tests();
        let t = Table::create(&mut db).unwrap();
        assert!(matches!(
            t.insert(&mut db, &vec![0u8; PAGE_SIZE]),
            Err(DbError::RecordTooLarge { .. })
        ));
        assert!(t.insert(&mut db, &vec![0u8; Table::MAX_RECORD]).is_ok());
    }

    #[test]
    fn bad_rowid_is_error() {
        let mut db = Database::for_tests();
        let t = Table::create(&mut db).unwrap();
        assert!(t
            .get(
                &mut db,
                RowId {
                    page: t.first_page(),
                    slot: 3
                }
            )
            .is_err());
    }
}
