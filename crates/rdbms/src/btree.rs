//! A page-based B+-tree mapping `u64` keys to `u64` values.
//!
//! Used by the array DBMS for its catalogs: tile id → BLOB id, object id →
//! metadata row, etc. Leaves are chained for range scans. Deletion removes
//! entries without rebalancing (underfull nodes are tolerated — the
//! workloads are append-mostly, matching an archive system).

use crate::db::Database;
use crate::error::{DbError, Result};
use crate::page::{Page, PageId, PAGE_SIZE};

const TYPE_OFF: usize = 0; // u8: 1 = leaf, 0 = inner
const COUNT_OFF: usize = 2; // u16
const NEXT_OFF: usize = 8; // u64: next leaf (leaf nodes)
const ENTRIES_OFF: usize = 16;

/// Max (key, value) pairs in a leaf.
const LEAF_CAP: usize = (PAGE_SIZE - ENTRIES_OFF) / 16 - 1;
/// Max keys in an inner node (children = keys + 1).
const INNER_CAP: usize = (PAGE_SIZE - ENTRIES_OFF - 8) / 16 - 1;

/// Result of a recursive insert: `(previous value, optional split as
/// (separator key, new right sibling page))`.
type InsertOutcome = (Option<u64>, Option<(u64, PageId)>);

/// A persistent B+-tree rooted at a page.
#[derive(Debug, Clone, Copy)]
pub struct BTree {
    root: PageId,
}

impl BTree {
    /// Create an empty tree; allocates the root leaf.
    pub fn create(db: &mut Database) -> Result<BTree> {
        let root = db.alloc_page()?;
        db.update_page(root, |p| {
            p.as_mut_slice()[TYPE_OFF] = 1;
            p.write_u16(COUNT_OFF, 0);
            p.write_u64(NEXT_OFF, 0);
        })?;
        Ok(BTree { root })
    }

    /// Re-open a tree by its root page (as recorded in a catalog).
    pub fn open(root: PageId) -> BTree {
        BTree { root }
    }

    /// The root page id (persist this to re-open the tree).
    pub fn root(&self) -> PageId {
        self.root
    }

    // -- page accessors -------------------------------------------------------

    fn is_leaf(p: &Page) -> bool {
        p.as_slice()[TYPE_OFF] == 1
    }

    fn count(p: &Page) -> usize {
        p.read_u16(COUNT_OFF) as usize
    }

    fn leaf_key(p: &Page, i: usize) -> u64 {
        p.read_u64(ENTRIES_OFF + i * 16)
    }

    fn leaf_val(p: &Page, i: usize) -> u64 {
        p.read_u64(ENTRIES_OFF + i * 16 + 8)
    }

    fn set_leaf_entry(p: &mut Page, i: usize, k: u64, v: u64) {
        p.write_u64(ENTRIES_OFF + i * 16, k);
        p.write_u64(ENTRIES_OFF + i * 16 + 8, v);
    }

    /// Inner layout: child0 at ENTRIES_OFF, then (key_i, child_{i+1}) pairs.
    fn inner_child(p: &Page, i: usize) -> PageId {
        if i == 0 {
            p.read_u64(ENTRIES_OFF)
        } else {
            p.read_u64(ENTRIES_OFF + 8 + (i - 1) * 16 + 8)
        }
    }

    fn inner_key(p: &Page, i: usize) -> u64 {
        p.read_u64(ENTRIES_OFF + 8 + i * 16)
    }

    fn set_inner_child0(p: &mut Page, c: PageId) {
        p.write_u64(ENTRIES_OFF, c);
    }

    fn set_inner_pair(p: &mut Page, i: usize, key: u64, child: PageId) {
        p.write_u64(ENTRIES_OFF + 8 + i * 16, key);
        p.write_u64(ENTRIES_OFF + 8 + i * 16 + 8, child);
    }

    // -- lookup ---------------------------------------------------------------

    /// Look up a key.
    pub fn get(&self, db: &mut Database, key: u64) -> Result<Option<u64>> {
        let mut page_id = self.root;
        loop {
            let p = db.read_page(page_id)?;
            if Self::is_leaf(&p) {
                let n = Self::count(&p);
                for i in 0..n {
                    let k = Self::leaf_key(&p, i);
                    if k == key {
                        return Ok(Some(Self::leaf_val(&p, i)));
                    }
                    if k > key {
                        return Ok(None);
                    }
                }
                return Ok(None);
            }
            page_id = Self::descend(&p, key);
        }
    }

    fn descend(p: &Page, key: u64) -> PageId {
        let n = Self::count(p);
        let mut i = 0;
        while i < n && key >= Self::inner_key(p, i) {
            i += 1;
        }
        Self::inner_child(p, i)
    }

    // -- insert ---------------------------------------------------------------

    /// Insert or replace a key; returns the previous value if present.
    pub fn insert(&mut self, db: &mut Database, key: u64, val: u64) -> Result<Option<u64>> {
        let (prev, split) = Self::insert_rec(db, self.root, key, val)?;
        if let Some((sep, right)) = split {
            // Grow a new root.
            let new_root = db.alloc_page()?;
            let old_root = self.root;
            db.update_page(new_root, |p| {
                p.as_mut_slice()[TYPE_OFF] = 0;
                p.write_u16(COUNT_OFF, 1);
                Self::set_inner_child0(p, old_root);
                Self::set_inner_pair(p, 0, sep, right);
            })?;
            self.root = new_root;
        }
        Ok(prev)
    }

    /// Recursive insert; returns (previous value, optional split as
    /// (separator key, new right sibling page)).
    fn insert_rec(db: &mut Database, page_id: PageId, key: u64, val: u64) -> Result<InsertOutcome> {
        let p = db.read_page(page_id)?;
        if Self::is_leaf(&p) {
            return Self::leaf_insert(db, page_id, key, val);
        }
        let child = Self::descend(&p, key);
        let (prev, split) = Self::insert_rec(db, child, key, val)?;
        let Some((sep, right)) = split else {
            return Ok((prev, None));
        };
        // Insert (sep, right) into this inner node.
        let mut p = db.read_page(page_id)?;
        let n = Self::count(&p);
        let mut pos = 0;
        while pos < n && Self::inner_key(&p, pos) < sep {
            pos += 1;
        }
        // shift pairs right
        for i in (pos..n).rev() {
            let k = Self::inner_key(&p, i);
            let c = Self::inner_child(&p, i + 1);
            Self::set_inner_pair(&mut p, i + 1, k, c);
        }
        Self::set_inner_pair(&mut p, pos, sep, right);
        p.write_u16(COUNT_OFF, (n + 1) as u16);
        if n < INNER_CAP {
            db.write_page(page_id, p)?;
            return Ok((prev, None));
        }
        // Split the inner node: middle key moves up.
        let total = n + 1;
        let mid = total / 2;
        let up_key = Self::inner_key(&p, mid);
        let right_id = db.alloc_page()?;
        let mut rp = Page::new();
        rp.as_mut_slice()[TYPE_OFF] = 0;
        let right_keys = total - mid - 1;
        Self::set_inner_child0(&mut rp, Self::inner_child(&p, mid + 1));
        for i in 0..right_keys {
            Self::set_inner_pair(
                &mut rp,
                i,
                Self::inner_key(&p, mid + 1 + i),
                Self::inner_child(&p, mid + 2 + i),
            );
        }
        rp.write_u16(COUNT_OFF, right_keys as u16);
        p.write_u16(COUNT_OFF, mid as u16);
        db.write_page(page_id, p)?;
        db.write_page(right_id, rp)?;
        Ok((prev, Some((up_key, right_id))))
    }

    fn leaf_insert(
        db: &mut Database,
        page_id: PageId,
        key: u64,
        val: u64,
    ) -> Result<InsertOutcome> {
        let mut p = db.read_page(page_id)?;
        let n = Self::count(&p);
        let mut pos = 0;
        while pos < n && Self::leaf_key(&p, pos) < key {
            pos += 1;
        }
        if pos < n && Self::leaf_key(&p, pos) == key {
            let prev = Self::leaf_val(&p, pos);
            Self::set_leaf_entry(&mut p, pos, key, val);
            db.write_page(page_id, p)?;
            return Ok((Some(prev), None));
        }
        // shift right
        for i in (pos..n).rev() {
            let (k, v) = (Self::leaf_key(&p, i), Self::leaf_val(&p, i));
            Self::set_leaf_entry(&mut p, i + 1, k, v);
        }
        Self::set_leaf_entry(&mut p, pos, key, val);
        p.write_u16(COUNT_OFF, (n + 1) as u16);
        if n < LEAF_CAP {
            db.write_page(page_id, p)?;
            return Ok((None, None));
        }
        // Split the leaf.
        let total = n + 1;
        let mid = total / 2;
        let right_id = db.alloc_page()?;
        let mut rp = Page::new();
        rp.as_mut_slice()[TYPE_OFF] = 1;
        for i in mid..total {
            let (k, v) = (Self::leaf_key(&p, i), Self::leaf_val(&p, i));
            Self::set_leaf_entry(&mut rp, i - mid, k, v);
        }
        rp.write_u16(COUNT_OFF, (total - mid) as u16);
        rp.write_u64(NEXT_OFF, p.read_u64(NEXT_OFF));
        p.write_u16(COUNT_OFF, mid as u16);
        p.write_u64(NEXT_OFF, right_id);
        let sep = Self::leaf_key(&rp, 0);
        db.write_page(page_id, p)?;
        db.write_page(right_id, rp)?;
        Ok((None, Some((sep, right_id))))
    }

    // -- delete ---------------------------------------------------------------

    /// Remove a key; returns its value if it was present. Nodes are not
    /// rebalanced (archive workloads are append-mostly).
    pub fn remove(&mut self, db: &mut Database, key: u64) -> Result<Option<u64>> {
        let mut page_id = self.root;
        loop {
            let p = db.read_page(page_id)?;
            if Self::is_leaf(&p) {
                let n = Self::count(&p);
                for i in 0..n {
                    if Self::leaf_key(&p, i) == key {
                        let val = Self::leaf_val(&p, i);
                        let mut p = p;
                        for j in i..n - 1 {
                            let (k, v) = (Self::leaf_key(&p, j + 1), Self::leaf_val(&p, j + 1));
                            Self::set_leaf_entry(&mut p, j, k, v);
                        }
                        p.write_u16(COUNT_OFF, (n - 1) as u16);
                        db.write_page(page_id, p)?;
                        return Ok(Some(val));
                    }
                }
                return Ok(None);
            }
            page_id = Self::descend(&p, key);
        }
    }

    // -- scans ----------------------------------------------------------------

    /// All `(key, value)` pairs with `lo <= key <= hi`, in key order.
    pub fn range(&self, db: &mut Database, lo: u64, hi: u64) -> Result<Vec<(u64, u64)>> {
        let mut out = Vec::new();
        // descend to the leaf containing lo
        let mut page_id = self.root;
        loop {
            let p = db.read_page(page_id)?;
            if Self::is_leaf(&p) {
                break;
            }
            page_id = Self::descend(&p, lo);
        }
        loop {
            let p = db.read_page(page_id)?;
            let n = Self::count(&p);
            for i in 0..n {
                let k = Self::leaf_key(&p, i);
                if k > hi {
                    return Ok(out);
                }
                if k >= lo {
                    out.push((k, Self::leaf_val(&p, i)));
                }
            }
            let next = p.read_u64(NEXT_OFF);
            if next == 0 {
                return Ok(out);
            }
            page_id = next;
        }
    }

    /// Number of entries (full scan).
    pub fn len(&self, db: &mut Database) -> Result<usize> {
        Ok(self.range(db, 0, u64::MAX)?.len())
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self, db: &mut Database) -> Result<bool> {
        Ok(self.len(db)? == 0)
    }

    /// Validate structural invariants (keys sorted, counts within caps).
    /// Used by property tests.
    pub fn check(&self, db: &mut Database) -> Result<()> {
        Self::check_rec(db, self.root, None, None)
    }

    fn check_rec(
        db: &mut Database,
        page_id: PageId,
        lo: Option<u64>,
        hi: Option<u64>,
    ) -> Result<()> {
        let p = db.read_page(page_id)?;
        let n = Self::count(&p);
        let in_bounds =
            |k: u64| lo.map(|l| k >= l).unwrap_or(true) && hi.map(|h| k < h).unwrap_or(true);
        if Self::is_leaf(&p) {
            if n > LEAF_CAP {
                return Err(DbError::Corrupt(format!("leaf overfull: {n}")));
            }
            for i in 0..n {
                let k = Self::leaf_key(&p, i);
                if !in_bounds(k) {
                    return Err(DbError::Corrupt(format!("leaf key {k} out of bounds")));
                }
                if i > 0 && Self::leaf_key(&p, i - 1) >= k {
                    return Err(DbError::Corrupt("leaf keys unsorted".into()));
                }
            }
            return Ok(());
        }
        if n == 0 || n > INNER_CAP {
            return Err(DbError::Corrupt(format!("inner count {n}")));
        }
        for i in 0..n {
            let k = Self::inner_key(&p, i);
            if !in_bounds(k) {
                return Err(DbError::Corrupt(format!("inner key {k} out of bounds")));
            }
            if i > 0 && Self::inner_key(&p, i - 1) >= k {
                return Err(DbError::Corrupt("inner keys unsorted".into()));
            }
        }
        for i in 0..=n {
            let child_lo = if i == 0 {
                lo
            } else {
                Some(Self::inner_key(&p, i - 1))
            };
            let child_hi = if i == n {
                hi
            } else {
                Some(Self::inner_key(&p, i))
            };
            Self::check_rec(db, Self::inner_child(&p, i), child_lo, child_hi)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_small() {
        let mut db = Database::for_tests();
        let mut t = BTree::create(&mut db).unwrap();
        assert_eq!(t.insert(&mut db, 5, 50).unwrap(), None);
        assert_eq!(t.insert(&mut db, 3, 30).unwrap(), None);
        assert_eq!(t.insert(&mut db, 9, 90).unwrap(), None);
        assert_eq!(t.get(&mut db, 3).unwrap(), Some(30));
        assert_eq!(t.get(&mut db, 5).unwrap(), Some(50));
        assert_eq!(t.get(&mut db, 9).unwrap(), Some(90));
        assert_eq!(t.get(&mut db, 4).unwrap(), None);
        // replace
        assert_eq!(t.insert(&mut db, 5, 55).unwrap(), Some(50));
        assert_eq!(t.get(&mut db, 5).unwrap(), Some(55));
    }

    #[test]
    fn bulk_inserts_force_splits_and_stay_consistent() {
        let mut db = Database::for_tests();
        let mut t = BTree::create(&mut db).unwrap();
        let n: u64 = 5000;
        // insert in a scrambled order
        for i in 0..n {
            let k = (i * 2654435761) % n;
            t.insert(&mut db, k, k * 2).unwrap();
        }
        t.check(&mut db).unwrap();
        for k in 0..n {
            assert_eq!(t.get(&mut db, k).unwrap(), Some(k * 2), "key {k}");
        }
        assert_eq!(t.len(&mut db).unwrap(), n as usize);
    }

    #[test]
    fn range_scan_in_order() {
        let mut db = Database::for_tests();
        let mut t = BTree::create(&mut db).unwrap();
        for k in (0..2000u64).rev() {
            t.insert(&mut db, k, k + 1).unwrap();
        }
        let r = t.range(&mut db, 100, 110).unwrap();
        let expect: Vec<(u64, u64)> = (100..=110).map(|k| (k, k + 1)).collect();
        assert_eq!(r, expect);
        let all = t.range(&mut db, 0, u64::MAX).unwrap();
        assert_eq!(all.len(), 2000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn remove_deletes_entries() {
        let mut db = Database::for_tests();
        let mut t = BTree::create(&mut db).unwrap();
        for k in 0..1500u64 {
            t.insert(&mut db, k, k).unwrap();
        }
        assert_eq!(t.remove(&mut db, 700).unwrap(), Some(700));
        assert_eq!(t.remove(&mut db, 700).unwrap(), None);
        assert_eq!(t.get(&mut db, 700).unwrap(), None);
        assert_eq!(t.len(&mut db).unwrap(), 1499);
        t.check(&mut db).unwrap();
    }

    #[test]
    fn reopen_by_root_page() {
        let mut db = Database::for_tests();
        let root;
        {
            let mut t = BTree::create(&mut db).unwrap();
            for k in 0..100u64 {
                t.insert(&mut db, k, k * 7).unwrap();
            }
            root = t.root();
        }
        let t2 = BTree::open(root);
        assert_eq!(t2.get(&mut db, 50).unwrap(), Some(350));
    }

    #[test]
    fn empty_tree_behaviour() {
        let mut db = Database::for_tests();
        let t = BTree::create(&mut db).unwrap();
        assert!(t.is_empty(&mut db).unwrap());
        assert_eq!(t.get(&mut db, 1).unwrap(), None);
        assert_eq!(t.range(&mut db, 0, 100).unwrap(), vec![]);
    }
}
