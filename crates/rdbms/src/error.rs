//! Error type for the RDBMS substrate.

use std::fmt;

/// Errors raised by the relational storage manager.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // struct-variant fields are self-describing
pub enum DbError {
    /// Page id outside the allocated file.
    BadPage(u64),
    /// Page-internal offset/length out of bounds.
    BadOffset {
        page: u64,
        offset: usize,
        len: usize,
    },
    /// Unknown BLOB id.
    NoSuchBlob(u64),
    /// Unknown transaction id.
    NoSuchTxn(u64),
    /// Operation requires an active transaction.
    NoActiveTxn,
    /// B-tree node corruption (invariant violation).
    Corrupt(String),
    /// A record was too large for a page.
    RecordTooLarge { len: usize, max: usize },
    /// Unknown row id.
    NoSuchRow { page: u64, slot: u16 },
    /// Key not found.
    KeyNotFound(u64),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::BadPage(p) => write!(f, "bad page id {p}"),
            DbError::BadOffset { page, offset, len } => {
                write!(f, "bad access on page {page}: offset {offset} len {len}")
            }
            DbError::NoSuchBlob(id) => write!(f, "no such blob {id}"),
            DbError::NoSuchTxn(id) => write!(f, "no such transaction {id}"),
            DbError::NoActiveTxn => write!(f, "no active transaction"),
            DbError::Corrupt(msg) => write!(f, "corruption: {msg}"),
            DbError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds page payload {max}")
            }
            DbError::NoSuchRow { page, slot } => {
                write!(f, "no such row: page {page} slot {slot}")
            }
            DbError::KeyNotFound(k) => write!(f, "key not found: {k}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Result alias for the RDBMS substrate.
pub type Result<T> = std::result::Result<T, DbError>;
