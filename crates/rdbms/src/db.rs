//! The `Database` facade: page allocation + buffered I/O + transactions.
//!
//! Transactions give the ACID-lite contract the array DBMS needs from its
//! base RDBMS (paper §1.1 lists "Transaktionsverwaltung (ACID-Paradigma)
//! und Recovery" among the DBMS benefits): page-level before-images support
//! abort; committed after-images go to the WAL and survive a simulated
//! crash of the buffer pool.

use crate::buffer::{BufferPool, BufferStats};
use crate::disk::{DiskManager, IoStats};
use crate::error::{DbError, Result};
use crate::page::{Page, PageId, META_PAGE};
use crate::wal::{TxnId, Wal, WalRecord};
use heaven_obs::{Field, TraceBus};
use heaven_tape::{DiskProfile, SimClock};
use std::collections::HashMap;

/// Offset in the meta page of the free-list head pointer.
const FREE_HEAD_OFF: usize = 0;

#[derive(Debug)]
struct ActiveTxn {
    id: TxnId,
    /// Before-images of pages first modified in this transaction.
    before: HashMap<PageId, Page>,
}

/// The storage-manager facade used by tables, B-trees and BLOBs.
#[derive(Debug)]
pub struct Database {
    buffer: BufferPool,
    wal: Wal,
    active: Option<ActiveTxn>,
    next_txn: TxnId,
    bus: TraceBus,
}

impl Database {
    /// Create a database on a fresh simulated disk.
    pub fn new(profile: DiskProfile, clock: SimClock, buffer_frames: usize) -> Database {
        let disk = DiskManager::new(profile, clock.clone());
        Database {
            buffer: BufferPool::new(disk, buffer_frames),
            wal: Wal::new(profile, clock),
            active: None,
            next_txn: 1,
            bus: TraceBus::noop(),
        }
    }

    /// In-memory database preset for tests: generous buffer, standard disk.
    pub fn for_tests() -> Database {
        Database::new(DiskProfile::scsi2003(), SimClock::new(), 1024)
    }

    /// Attach the database's counters to a shared metrics registry.
    pub fn attach_obs(&mut self, registry: &heaven_obs::MetricsRegistry) {
        self.buffer.attach_obs(registry);
        self.buffer.disk_mut().attach_obs(registry);
    }

    /// Attach the shared trace bus (commit / checkpoint / recovery events).
    pub fn attach_trace(&mut self, bus: TraceBus) {
        self.bus = bus;
    }

    /// The attached trace bus (no-op unless [`Database::attach_trace`]d).
    pub fn trace(&self) -> &TraceBus {
        &self.bus
    }

    /// Buffer-pool statistics.
    pub fn buffer_stats(&self) -> BufferStats {
        self.buffer.stats()
    }

    /// Disk I/O statistics.
    pub fn io_stats(&self) -> IoStats {
        self.buffer.disk().stats()
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> SimClock {
        self.buffer.disk().clock().clone()
    }

    /// Number of pages in the file.
    pub fn page_count(&self) -> u64 {
        self.buffer.disk().page_count()
    }

    // -- allocation ---------------------------------------------------------

    /// Allocate a page (from the free list, else by growing the file).
    /// The returned page is zeroed.
    pub fn alloc_page(&mut self) -> Result<PageId> {
        let head = self.buffer.read(META_PAGE)?.read_u64(FREE_HEAD_OFF);
        if head != 0 {
            let next = self.buffer.read(head)?.read_u64(0);
            self.buffer
                .update(META_PAGE, |m| m.write_u64(FREE_HEAD_OFF, next))?;
            self.write_page(head, Page::new())?;
            return Ok(head);
        }
        Ok(self.buffer.disk_mut().grow())
    }

    /// Return a page to the free list.
    pub fn free_page(&mut self, id: PageId) -> Result<()> {
        if id == META_PAGE || id >= self.page_count() {
            return Err(DbError::BadPage(id));
        }
        let head = self.buffer.read(META_PAGE)?.read_u64(FREE_HEAD_OFF);
        let mut p = Page::new();
        p.write_u64(0, head);
        self.write_page(id, p)?;
        self.buffer
            .update(META_PAGE, |m| m.write_u64(FREE_HEAD_OFF, id))?;
        Ok(())
    }

    // -- page I/O -------------------------------------------------------------

    /// Read a page image.
    pub fn read_page(&mut self, id: PageId) -> Result<Page> {
        self.buffer.read(id)
    }

    fn note_before_image(&mut self, id: PageId) -> Result<()> {
        let needs = match &self.active {
            Some(txn) => !txn.before.contains_key(&id),
            None => false,
        };
        if needs {
            let img = self.buffer.read(id)?;
            if let Some(txn) = self.active.as_mut() {
                txn.before.insert(id, img);
            }
        }
        Ok(())
    }

    /// Replace a page image.
    pub fn write_page(&mut self, id: PageId, page: Page) -> Result<()> {
        self.note_before_image(id)?;
        self.buffer.write(id, page)
    }

    /// Update a page in place.
    pub fn update_page<R>(&mut self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        self.note_before_image(id)?;
        self.buffer.update(id, f)
    }

    // -- transactions ---------------------------------------------------------

    /// Begin a transaction. Only one transaction may be active at a time
    /// (the import/export flows of the array DBMS are single-writer).
    pub fn begin(&mut self) -> Result<TxnId> {
        if self.active.is_some() {
            return Err(DbError::Corrupt("nested transaction".into()));
        }
        let id = self.next_txn;
        self.next_txn += 1;
        self.wal.append(WalRecord::Begin(id));
        self.active = Some(ActiveTxn {
            id,
            before: HashMap::new(),
        });
        Ok(id)
    }

    /// Whether a transaction is active.
    pub fn in_txn(&self) -> bool {
        self.active.is_some()
    }

    /// Commit: log after-images of all pages the transaction touched, then
    /// the commit record.
    pub fn commit(&mut self) -> Result<()> {
        let txn = self.active.take().ok_or(DbError::NoActiveTxn)?;
        let mut touched: Vec<PageId> = txn.before.keys().copied().collect();
        touched.sort_unstable();
        let pages = touched.len() as u64;
        for id in touched {
            let image = self.buffer.read(id)?;
            self.wal.append(WalRecord::PageImage {
                txn: txn.id,
                page: id,
                image: Box::new(image),
            });
        }
        self.wal.append(WalRecord::Commit(txn.id));
        self.bus.event(
            "rdbms.commit",
            self.clock().now_s(),
            &[("txn", Field::U64(txn.id)), ("pages", Field::U64(pages))],
        );
        Ok(())
    }

    /// Abort: restore all before-images.
    pub fn abort(&mut self) -> Result<()> {
        let txn = self.active.take().ok_or(DbError::NoActiveTxn)?;
        for (id, img) in txn.before {
            self.buffer.write(id, img)?;
        }
        self.wal.append(WalRecord::Abort(txn.id));
        Ok(())
    }

    // -- durability -----------------------------------------------------------

    /// Checkpoint: flush all dirty pages and truncate the log.
    pub fn checkpoint(&mut self) -> Result<()> {
        let wal_records = self.wal.len() as u64;
        let t0 = self.clock().now_s();
        self.buffer.flush_all()?;
        self.wal.truncate();
        self.bus.event(
            "rdbms.checkpoint",
            self.clock().now_s(),
            &[
                ("wal_records", Field::U64(wal_records)),
                ("cost_s", Field::F64(self.clock().now_s() - t0)),
            ],
        );
        Ok(())
    }

    /// Simulate a crash: volatile buffer contents vanish; an in-flight
    /// transaction is implicitly aborted (its records never committed).
    pub fn crash(&mut self) {
        self.active = None;
        self.buffer.drop_all_unflushed();
    }

    /// Recover after a crash: redo all committed page images from the WAL.
    pub fn recover(&mut self) -> Result<()> {
        let mut pages = 0u64;
        for (id, image) in self.wal.redo_images() {
            // Write through to disk directly; the page may post-date the
            // current file end if the crash lost the grow as well.
            while id >= self.buffer.disk().page_count() {
                self.buffer.disk_mut().grow();
            }
            self.buffer.disk_mut().write_page(id, &image)?;
            pages += 1;
        }
        self.buffer.drop_all_unflushed();
        self.bus.event(
            "rdbms.recover",
            self.clock().now_s(),
            &[("pages", Field::U64(pages))],
        );
        Ok(())
    }

    /// WAL size in records (visible for tests and statistics).
    pub fn wal_len(&self) -> usize {
        self.wal.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuses_pages() {
        let mut db = Database::for_tests();
        let a = db.alloc_page().unwrap();
        let b = db.alloc_page().unwrap();
        assert_ne!(a, b);
        db.free_page(a).unwrap();
        let c = db.alloc_page().unwrap();
        assert_eq!(c, a, "freed page is reused");
        // Reused page is zeroed.
        assert_eq!(db.read_page(c).unwrap().read_u64(0), 0);
    }

    #[test]
    fn cannot_free_meta_or_unallocated() {
        let mut db = Database::for_tests();
        assert!(db.free_page(META_PAGE).is_err());
        assert!(db.free_page(1234).is_err());
    }

    #[test]
    fn abort_restores_before_images() {
        let mut db = Database::for_tests();
        let p = db.alloc_page().unwrap();
        db.update_page(p, |pg| pg.write_u64(0, 1)).unwrap();
        db.begin().unwrap();
        db.update_page(p, |pg| pg.write_u64(0, 2)).unwrap();
        assert_eq!(db.read_page(p).unwrap().read_u64(0), 2);
        db.abort().unwrap();
        assert_eq!(db.read_page(p).unwrap().read_u64(0), 1);
    }

    #[test]
    fn commit_then_crash_then_recover_preserves_data() {
        let mut db = Database::for_tests();
        let p = db.alloc_page().unwrap();
        db.begin().unwrap();
        db.update_page(p, |pg| pg.write_u64(0, 42)).unwrap();
        db.commit().unwrap();
        db.crash();
        db.recover().unwrap();
        assert_eq!(db.read_page(p).unwrap().read_u64(0), 42);
    }

    #[test]
    fn uncommitted_changes_do_not_survive_crash() {
        let mut db = Database::for_tests();
        let p = db.alloc_page().unwrap();
        db.checkpoint().unwrap(); // page exists durably, zeroed
        db.begin().unwrap();
        db.update_page(p, |pg| pg.write_u64(0, 99)).unwrap();
        // no commit
        db.crash();
        db.recover().unwrap();
        assert_eq!(db.read_page(p).unwrap().read_u64(0), 0);
    }

    #[test]
    fn nested_transactions_rejected() {
        let mut db = Database::for_tests();
        db.begin().unwrap();
        assert!(db.begin().is_err());
        db.commit().unwrap();
        assert!(db.commit().is_err());
        assert!(db.abort().is_err());
    }

    #[test]
    fn checkpoint_truncates_wal() {
        let mut db = Database::for_tests();
        let p = db.alloc_page().unwrap();
        db.begin().unwrap();
        db.update_page(p, |pg| pg.write_u64(8, 5)).unwrap();
        db.commit().unwrap();
        assert!(db.wal_len() > 0);
        db.checkpoint().unwrap();
        assert_eq!(db.wal_len(), 0);
        // data still readable after a crash: it was flushed
        db.crash();
        db.recover().unwrap();
        assert_eq!(db.read_page(p).unwrap().read_u64(8), 5);
    }
}
