//! The simulated database disk: a page file with I/O cost accounting.
//!
//! RasDaMan delegates durable storage to the base RDBMS, which sits on
//! secondary storage. Page reads and writes charge seek + transfer costs to
//! the shared simulated clock (the same clock the tape library uses, so
//! export/retrieval experiments account for both tiers).

use crate::error::{DbError, Result};
use crate::page::{Page, PageId, PAGE_SIZE};
use heaven_obs::{Histogram, MetricsRegistry};
use heaven_tape::{DiskProfile, SimClock};

/// I/O statistics of the database disk.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoStats {
    /// Physical page reads.
    pub page_reads: u64,
    /// Physical page writes.
    pub page_writes: u64,
    /// Seconds of simulated disk time.
    pub io_s: f64,
}

/// An in-memory page file with simulated access cost.
#[derive(Debug)]
pub struct DiskManager {
    profile: DiskProfile,
    clock: SimClock,
    pages: Vec<Page>,
    stats: IoStats,
    /// Sequential-access optimization: last accessed page id.
    last_page: Option<PageId>,
    /// Per-page-I/O duration distribution (simulated seconds).
    io_hist: Histogram,
}

impl DiskManager {
    /// Create an empty page file containing only the meta page.
    pub fn new(profile: DiskProfile, clock: SimClock) -> DiskManager {
        DiskManager {
            profile,
            clock,
            pages: vec![Page::new()],
            stats: IoStats::default(),
            last_page: None,
            io_hist: MetricsRegistry::new().histogram("rdbms.page_io_hist_s"),
        }
    }

    /// Attach the disk's I/O histogram to a shared metrics registry;
    /// observations accumulated so far carry over.
    pub fn attach_obs(&mut self, registry: &MetricsRegistry) {
        let next = registry.histogram("rdbms.page_io_hist_s");
        next.merge_from(&self.io_hist);
        self.io_hist = next;
    }

    /// Number of pages in the file.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Extend the file by one zeroed page; returns its id.
    pub fn grow(&mut self) -> PageId {
        self.pages.push(Page::new());
        (self.pages.len() - 1) as PageId
    }

    fn charge(&mut self, page: PageId) {
        // Sequential accesses skip the seek.
        let seek = match self.last_page {
            Some(last) if last + 1 == page || last == page => 0.0,
            _ => self.profile.seek_s,
        };
        let t = seek + PAGE_SIZE as f64 / self.profile.transfer_bps;
        self.clock.advance_s(t);
        self.stats.io_s += t;
        self.io_hist.observe(t);
        self.last_page = Some(page);
    }

    /// Read a page from disk.
    pub fn read_page(&mut self, id: PageId) -> Result<Page> {
        if id as usize >= self.pages.len() {
            return Err(DbError::BadPage(id));
        }
        self.charge(id);
        self.stats.page_reads += 1;
        Ok(self.pages[id as usize].clone())
    }

    /// Write a page to disk.
    pub fn write_page(&mut self, id: PageId, page: &Page) -> Result<()> {
        if id as usize >= self.pages.len() {
            return Err(DbError::BadPage(id));
        }
        self.charge(id);
        self.stats.page_writes += 1;
        self.pages[id as usize] = page.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm() -> DiskManager {
        DiskManager::new(DiskProfile::scsi2003(), SimClock::new())
    }

    #[test]
    fn grow_read_write() {
        let mut d = dm();
        let p1 = d.grow();
        assert_eq!(p1, 1);
        let mut page = Page::new();
        page.write_u64(0, 99);
        d.write_page(p1, &page).unwrap();
        let back = d.read_page(p1).unwrap();
        assert_eq!(back.read_u64(0), 99);
        assert_eq!(d.stats().page_reads, 1);
        assert_eq!(d.stats().page_writes, 1);
    }

    #[test]
    fn bad_page_is_error() {
        let mut d = dm();
        assert!(matches!(d.read_page(57), Err(DbError::BadPage(57))));
        assert!(d.write_page(57, &Page::new()).is_err());
    }

    #[test]
    fn io_charges_time() {
        let clock = SimClock::new();
        let mut d = DiskManager::new(DiskProfile::scsi2003(), clock.clone());
        let p = d.grow();
        d.write_page(p, &Page::new()).unwrap();
        assert!(clock.now_s() > 0.0);
    }

    #[test]
    fn sequential_access_skips_seek() {
        let clock = SimClock::new();
        let mut d = DiskManager::new(DiskProfile::scsi2003(), clock.clone());
        let a = d.grow();
        let b = d.grow();
        d.read_page(a).unwrap();
        let t0 = clock.now_s();
        d.read_page(b).unwrap(); // sequential: no seek
        let dt_seq = clock.now_s() - t0;
        let t1 = clock.now_s();
        d.read_page(a).unwrap(); // backwards: seek
        let dt_rand = clock.now_s() - t1;
        assert!(dt_rand > dt_seq);
    }
}
