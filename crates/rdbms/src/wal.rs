//! Write-ahead log with redo records.
//!
//! The substrate provides the ACID-lite durability RasDaMan gets from its
//! base RDBMS: committed page images are logged before the data pages are
//! (lazily) written, so a crash that loses buffered pages can be repaired
//! by replaying the log. Log appends charge sequential-write costs.

use crate::page::{Page, PageId, PAGE_SIZE};
use heaven_tape::{DiskProfile, SimClock};

/// Transaction identifier.
pub type TxnId = u64;

/// One log record.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// Transaction start.
    Begin(TxnId),
    /// After-image of a page written by the transaction.
    PageImage {
        /// The writing transaction.
        txn: TxnId,
        /// The page written.
        page: PageId,
        /// The full page image after the write.
        image: Box<Page>,
    },
    /// Transaction commit (records before this are durable once this is).
    Commit(TxnId),
    /// Transaction abort.
    Abort(TxnId),
}

/// An append-only write-ahead log.
#[derive(Debug)]
pub struct Wal {
    records: Vec<WalRecord>,
    profile: DiskProfile,
    clock: SimClock,
    /// Bytes appended (for statistics).
    bytes: u64,
}

impl Wal {
    /// Create an empty log charging costs to `clock`.
    pub fn new(profile: DiskProfile, clock: SimClock) -> Wal {
        Wal {
            records: Vec::new(),
            profile,
            clock,
            bytes: 0,
        }
    }

    /// Number of records in the log.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Bytes appended so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Append a record (sequential write: transfer cost only).
    pub fn append(&mut self, rec: WalRecord) {
        let len = match &rec {
            WalRecord::PageImage { .. } => PAGE_SIZE as u64 + 24,
            _ => 16,
        };
        self.bytes += len;
        self.clock.advance_s(len as f64 / self.profile.transfer_bps);
        self.records.push(rec);
    }

    /// Iterate over all records.
    pub fn records(&self) -> impl Iterator<Item = &WalRecord> {
        self.records.iter()
    }

    /// The set of committed transactions.
    pub fn committed(&self) -> std::collections::HashSet<TxnId> {
        self.records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit(t) => Some(*t),
                _ => None,
            })
            .collect()
    }

    /// Redo pass: the latest committed after-image of each page, in log
    /// order. Returns `(page, image)` pairs to re-apply.
    pub fn redo_images(&self) -> Vec<(PageId, Page)> {
        let committed = self.committed();
        let mut out: Vec<(PageId, Page)> = Vec::new();
        for r in &self.records {
            if let WalRecord::PageImage { txn, page, image } = r {
                if committed.contains(txn) {
                    out.push((*page, (**image).clone()));
                }
            }
        }
        out
    }

    /// Truncate the log (after a checkpoint).
    pub fn truncate(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal() -> Wal {
        Wal::new(DiskProfile::scsi2003(), SimClock::new())
    }

    #[test]
    fn committed_set_tracks_commits_only() {
        let mut w = wal();
        w.append(WalRecord::Begin(1));
        w.append(WalRecord::Begin(2));
        w.append(WalRecord::Commit(1));
        w.append(WalRecord::Abort(2));
        let c = w.committed();
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
    }

    #[test]
    fn redo_skips_uncommitted() {
        let mut w = wal();
        let mut p = Page::new();
        p.write_u64(0, 5);
        w.append(WalRecord::Begin(1));
        w.append(WalRecord::PageImage {
            txn: 1,
            page: 3,
            image: Box::new(p.clone()),
        });
        w.append(WalRecord::Commit(1));
        w.append(WalRecord::Begin(2));
        w.append(WalRecord::PageImage {
            txn: 2,
            page: 4,
            image: Box::new(Page::new()),
        });
        // txn 2 never commits
        let redo = w.redo_images();
        assert_eq!(redo.len(), 1);
        assert_eq!(redo[0].0, 3);
        assert_eq!(redo[0].1.read_u64(0), 5);
    }

    #[test]
    fn appends_cost_time_and_bytes() {
        let clock = SimClock::new();
        let mut w = Wal::new(DiskProfile::scsi2003(), clock.clone());
        w.append(WalRecord::Begin(1));
        w.append(WalRecord::PageImage {
            txn: 1,
            page: 0,
            image: Box::new(Page::new()),
        });
        assert!(w.bytes() > PAGE_SIZE as u64);
        assert!(clock.now_s() > 0.0);
    }

    #[test]
    fn truncate_empties_log() {
        let mut w = wal();
        w.append(WalRecord::Begin(1));
        w.truncate();
        assert!(w.is_empty());
    }
}
