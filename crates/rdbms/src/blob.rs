//! BLOB storage: byte strings of arbitrary length as page chains.
//!
//! RasDaMan stores every tile as a BLOB in the base RDBMS (paper §2.6.3).
//! A BLOB is a chain of pages; a B+-tree directory maps BLOB ids to chain
//! heads. Range reads walk only the pages covering the range.

use crate::btree::BTree;
use crate::db::Database;
use crate::error::{DbError, Result};
use crate::page::{PageId, PAGE_SIZE};

/// Identifier of a BLOB.
pub type BlobId = u64;

const FIRST_HDR: usize = 16; // next (8) + total_len (8)
const CONT_HDR: usize = 8; // next (8)
const FIRST_CAP: usize = PAGE_SIZE - FIRST_HDR;
const CONT_CAP: usize = PAGE_SIZE - CONT_HDR;

/// A BLOB store with a B+-tree directory.
#[derive(Debug, Clone, Copy)]
pub struct BlobStore {
    dir: BTree,
    // The next id is kept in the directory under the reserved key 0
    // (BLOB ids start at 1), so a reopened store continues correctly.
}

impl BlobStore {
    /// Create a fresh store.
    pub fn create(db: &mut Database) -> Result<BlobStore> {
        let mut dir = BTree::create(db)?;
        dir.insert(db, 0, 1)?; // next id
        Ok(BlobStore { dir })
    }

    /// Re-open a store by its directory root page.
    pub fn open(dir_root: PageId) -> BlobStore {
        BlobStore {
            dir: BTree::open(dir_root),
        }
    }

    /// The directory root page (persist to re-open).
    pub fn dir_root(&self) -> PageId {
        self.dir.root()
    }

    fn alloc_id(&mut self, db: &mut Database) -> Result<BlobId> {
        let id = self
            .dir
            .get(db, 0)?
            .ok_or(DbError::Corrupt("blob store missing id counter".into()))?;
        self.dir.insert(db, 0, id + 1)?;
        Ok(id)
    }

    /// Store a BLOB; returns its id.
    pub fn put(&mut self, db: &mut Database, data: &[u8]) -> Result<BlobId> {
        let id = self.alloc_id(db)?;
        let first = db.alloc_page()?;
        self.dir.insert(db, id, first)?;
        // Write the first page.
        let head = data.len().min(FIRST_CAP);
        let total = data.len() as u64;
        let mut rest = &data[head..];
        let mut next_needed = !rest.is_empty();
        let mut next_page = if next_needed { db.alloc_page()? } else { 0 };
        db.update_page(first, |p| {
            p.write_u64(0, next_page);
            p.write_u64(8, total);
            p.as_mut_slice()[FIRST_HDR..FIRST_HDR + head].copy_from_slice(&data[..head]);
        })?;
        // Continuation pages.
        let mut cur = next_page;
        while next_needed {
            let take = rest.len().min(CONT_CAP);
            let chunk = &rest[..take];
            rest = &rest[take..];
            next_needed = !rest.is_empty();
            next_page = if next_needed { db.alloc_page()? } else { 0 };
            db.update_page(cur, |p| {
                p.write_u64(0, next_page);
                p.as_mut_slice()[CONT_HDR..CONT_HDR + take].copy_from_slice(chunk);
            })?;
            cur = next_page;
        }
        Ok(id)
    }

    /// Length of a BLOB in bytes.
    pub fn len(&self, db: &mut Database, id: BlobId) -> Result<u64> {
        let first = self.first_page(db, id)?;
        Ok(db.read_page(first)?.read_u64(8))
    }

    fn first_page(&self, db: &mut Database, id: BlobId) -> Result<PageId> {
        if id == 0 {
            return Err(DbError::NoSuchBlob(0));
        }
        self.dir.get(db, id)?.ok_or(DbError::NoSuchBlob(id))
    }

    /// Read a whole BLOB.
    pub fn get(&self, db: &mut Database, id: BlobId) -> Result<Vec<u8>> {
        let len = self.len(db, id)?;
        self.get_range(db, id, 0, len)
    }

    /// Read `len` bytes starting at byte `offset`.
    pub fn get_range(
        &self,
        db: &mut Database,
        id: BlobId,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>> {
        let first = self.first_page(db, id)?;
        let fp = db.read_page(first)?;
        let total = fp.read_u64(8);
        if offset + len > total {
            return Err(DbError::BadOffset {
                page: first,
                offset: offset as usize,
                len: len as usize,
            });
        }
        if len == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(len as usize);
        let mut remaining = len;
        let mut skip = offset;
        // First page.
        let head = (total as usize).min(FIRST_CAP) as u64;
        if skip < head {
            let take = (head - skip).min(remaining);
            out.extend_from_slice(
                &fp.as_slice()[FIRST_HDR + skip as usize..FIRST_HDR + (skip + take) as usize],
            );
            remaining -= take;
            skip = 0;
        } else {
            skip -= head;
        }
        let mut cur = fp.read_u64(0);
        while remaining > 0 {
            if cur == 0 {
                return Err(DbError::Corrupt(format!("blob {id} chain truncated")));
            }
            let p = db.read_page(cur)?;
            let cap = CONT_CAP as u64;
            if skip < cap {
                let take = (cap - skip).min(remaining);
                out.extend_from_slice(
                    &p.as_slice()[CONT_HDR + skip as usize..CONT_HDR + (skip + take) as usize],
                );
                remaining -= take;
                skip = 0;
            } else {
                skip -= cap;
            }
            cur = p.read_u64(0);
        }
        Ok(out)
    }

    /// Delete a BLOB and free its pages.
    pub fn delete(&mut self, db: &mut Database, id: BlobId) -> Result<()> {
        let first = self.first_page(db, id)?;
        let mut cur = first;
        while cur != 0 {
            let next = db.read_page(cur)?.read_u64(0);
            db.free_page(cur)?;
            cur = next;
        }
        self.dir.remove(db, id)?;
        Ok(())
    }

    /// Ids of all stored BLOBs.
    pub fn ids(&self, db: &mut Database) -> Result<Vec<BlobId>> {
        Ok(self
            .dir
            .range(db, 1, u64::MAX)?
            .into_iter()
            .map(|(k, _)| k)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn small_blob_roundtrip() {
        let mut db = Database::for_tests();
        let mut bs = BlobStore::create(&mut db).unwrap();
        let data = pattern(100);
        let id = bs.put(&mut db, &data).unwrap();
        assert_eq!(bs.get(&mut db, id).unwrap(), data);
        assert_eq!(bs.len(&mut db, id).unwrap(), 100);
    }

    #[test]
    fn multi_page_blob_roundtrip() {
        let mut db = Database::for_tests();
        let mut bs = BlobStore::create(&mut db).unwrap();
        let data = pattern(3 * PAGE_SIZE + 123);
        let id = bs.put(&mut db, &data).unwrap();
        assert_eq!(bs.get(&mut db, id).unwrap(), data);
    }

    #[test]
    fn range_reads_cross_page_boundaries() {
        let mut db = Database::for_tests();
        let mut bs = BlobStore::create(&mut db).unwrap();
        let data = pattern(4 * PAGE_SIZE);
        let id = bs.put(&mut db, &data).unwrap();
        // a range straddling the first/second page boundary
        let off = FIRST_CAP as u64 - 10;
        let got = bs.get_range(&mut db, id, off, 100).unwrap();
        assert_eq!(got, data[off as usize..off as usize + 100]);
        // a range deep in the chain
        let off = (FIRST_CAP + 2 * CONT_CAP + 50) as u64;
        let got = bs.get_range(&mut db, id, off, 200).unwrap();
        assert_eq!(got, data[off as usize..off as usize + 200]);
    }

    #[test]
    fn out_of_range_read_fails() {
        let mut db = Database::for_tests();
        let mut bs = BlobStore::create(&mut db).unwrap();
        let id = bs.put(&mut db, &pattern(100)).unwrap();
        assert!(bs.get_range(&mut db, id, 90, 20).is_err());
    }

    #[test]
    fn delete_frees_pages_for_reuse() {
        let mut db = Database::for_tests();
        let mut bs = BlobStore::create(&mut db).unwrap();
        let id = bs.put(&mut db, &pattern(5 * PAGE_SIZE)).unwrap();
        let pages_before = db.page_count();
        bs.delete(&mut db, id).unwrap();
        assert!(matches!(bs.get(&mut db, id), Err(DbError::NoSuchBlob(_))));
        // A same-sized blob reuses the freed pages: the file does not grow.
        bs.put(&mut db, &pattern(5 * PAGE_SIZE)).unwrap();
        assert_eq!(db.page_count(), pages_before);
    }

    #[test]
    fn ids_are_distinct_and_listable() {
        let mut db = Database::for_tests();
        let mut bs = BlobStore::create(&mut db).unwrap();
        let a = bs.put(&mut db, b"aa").unwrap();
        let b = bs.put(&mut db, b"bb").unwrap();
        assert_ne!(a, b);
        let ids = bs.ids(&mut db).unwrap();
        assert!(ids.contains(&a) && ids.contains(&b));
    }

    #[test]
    fn zero_length_range_reads_are_empty() {
        let mut db = Database::for_tests();
        let mut bs = BlobStore::create(&mut db).unwrap();
        let id = bs.put(&mut db, &pattern(3 * PAGE_SIZE)).unwrap();
        // zero-length reads at any offset, including past the first page
        for off in [0u64, 100, FIRST_CAP as u64 + 5, (3 * PAGE_SIZE - 1) as u64] {
            assert_eq!(bs.get_range(&mut db, id, off, 0).unwrap(), Vec::<u8>::new());
        }
    }

    #[test]
    fn empty_blob_roundtrip() {
        let mut db = Database::for_tests();
        let mut bs = BlobStore::create(&mut db).unwrap();
        let id = bs.put(&mut db, &[]).unwrap();
        assert_eq!(bs.len(&mut db, id).unwrap(), 0);
        assert_eq!(bs.get(&mut db, id).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn blob_survives_commit_crash_recover() {
        let mut db = Database::for_tests();
        db.begin().unwrap();
        let mut bs = BlobStore::create(&mut db).unwrap();
        let data = pattern(2 * PAGE_SIZE);
        let id = bs.put(&mut db, &data).unwrap();
        db.commit().unwrap();
        db.crash();
        db.recover().unwrap();
        assert_eq!(bs.get(&mut db, id).unwrap(), data);
    }
}
