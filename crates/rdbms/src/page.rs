//! Pages: the unit of disk I/O and buffering.

/// Size of one page in bytes (8 KiB, the classical RDBMS default).
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within the database file.
pub type PageId = u64;

/// The reserved meta page holding allocator state.
pub const META_PAGE: PageId = 0;

/// An in-memory page image.
#[derive(Clone)]
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Page {
            bytes: Box::new([0u8; PAGE_SIZE]),
        }
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

impl Page {
    /// A zeroed page.
    pub fn new() -> Page {
        Page::default()
    }

    /// Immutable view of the page bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..]
    }

    /// Mutable view of the page bytes.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.bytes[..]
    }

    /// Read a little-endian u64 at `off`.
    pub fn read_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Write a little-endian u64 at `off`.
    pub fn write_u64(&mut self, off: usize, v: u64) {
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian u32 at `off`.
    pub fn read_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().unwrap())
    }

    /// Write a little-endian u32 at `off`.
    pub fn write_u32(&mut self, off: usize, v: u32) {
        self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian u16 at `off`.
    pub fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.bytes[off..off + 2].try_into().unwrap())
    }

    /// Write a little-endian u16 at `off`.
    pub fn write_u16(&mut self, off: usize, v: u16) {
        self.bytes[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_accessors_roundtrip() {
        let mut p = Page::new();
        p.write_u64(0, 0xDEAD_BEEF_CAFE_BABE);
        p.write_u32(100, 42);
        p.write_u16(200, 7);
        assert_eq!(p.read_u64(0), 0xDEAD_BEEF_CAFE_BABE);
        assert_eq!(p.read_u32(100), 42);
        assert_eq!(p.read_u16(200), 7);
    }

    #[test]
    fn fresh_page_is_zeroed() {
        let p = Page::new();
        assert!(p.as_slice().iter().all(|&b| b == 0));
        assert_eq!(p.as_slice().len(), PAGE_SIZE);
    }
}
