//! Pages: the unit of disk I/O and buffering.

use std::sync::Arc;

/// Size of one page in bytes (8 KiB, the classical RDBMS default).
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within the database file.
pub type PageId = u64;

/// The reserved meta page holding allocator state.
pub const META_PAGE: PageId = 0;

/// An in-memory page image.
///
/// The image is refcounted: `clone` is a pointer bump, so the buffer pool
/// can hand out page copies without duplicating 8 KiB per access. Mutation
/// goes through [`Page::as_mut_slice`] / the `write_*` accessors, which
/// detach a private copy first if the image is shared (copy-on-write).
#[derive(Clone)]
pub struct Page {
    bytes: Arc<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Page {
            bytes: Arc::new([0u8; PAGE_SIZE]),
        }
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

impl Page {
    /// A zeroed page.
    pub fn new() -> Page {
        Page::default()
    }

    /// Immutable view of the page bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..]
    }

    /// Mutable view of the page bytes (copy-on-write: detaches a private
    /// image if this one is shared with other handles).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut Arc::make_mut(&mut self.bytes)[..]
    }

    /// Whether other handles share this image (diagnostics).
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.bytes) > 1
    }

    /// Read a little-endian u64 at `off`.
    pub fn read_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Write a little-endian u64 at `off`.
    pub fn write_u64(&mut self, off: usize, v: u64) {
        Arc::make_mut(&mut self.bytes)[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian u32 at `off`.
    pub fn read_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().unwrap())
    }

    /// Write a little-endian u32 at `off`.
    pub fn write_u32(&mut self, off: usize, v: u32) {
        Arc::make_mut(&mut self.bytes)[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian u16 at `off`.
    pub fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.bytes[off..off + 2].try_into().unwrap())
    }

    /// Write a little-endian u16 at `off`.
    pub fn write_u16(&mut self, off: usize, v: u16) {
        Arc::make_mut(&mut self.bytes)[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_accessors_roundtrip() {
        let mut p = Page::new();
        p.write_u64(0, 0xDEAD_BEEF_CAFE_BABE);
        p.write_u32(100, 42);
        p.write_u16(200, 7);
        assert_eq!(p.read_u64(0), 0xDEAD_BEEF_CAFE_BABE);
        assert_eq!(p.read_u32(100), 42);
        assert_eq!(p.read_u16(200), 7);
    }

    #[test]
    fn clone_shares_until_write() {
        let mut a = Page::new();
        a.write_u64(0, 11);
        let mut b = a.clone();
        assert!(a.is_shared() && b.is_shared());
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
        b.write_u64(0, 22);
        assert!(!a.is_shared() && !b.is_shared());
        assert_eq!(a.read_u64(0), 11, "CoW must not affect the sibling");
        assert_eq!(b.read_u64(0), 22);
    }

    #[test]
    fn fresh_page_is_zeroed() {
        let p = Page::new();
        assert!(p.as_slice().iter().all(|&b| b == 0));
        assert_eq!(p.as_slice().len(), PAGE_SIZE);
    }
}
