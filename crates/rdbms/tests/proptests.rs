//! Property-based tests of the RDBMS substrate: B+-tree vs a model map,
//! BLOB store roundtrips, transaction atomicity.

use heaven_rdbms::{BTree, BlobStore, Database};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..300, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u64..300).prop_map(Op::Remove),
        (0u64..300).prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_model(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut db = Database::for_tests();
        let mut tree = BTree::create(&mut db).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let prev = tree.insert(&mut db, k, v).unwrap();
                    prop_assert_eq!(prev, model.insert(k, v));
                }
                Op::Remove(k) => {
                    let prev = tree.remove(&mut db, k).unwrap();
                    prop_assert_eq!(prev, model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&mut db, k).unwrap(), model.get(&k).copied());
                }
            }
        }
        tree.check(&mut db).unwrap();
        let all = tree.range(&mut db, 0, u64::MAX).unwrap();
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn blob_roundtrip_any_size(len in 0usize..40_000, fill in any::<u8>()) {
        let mut db = Database::for_tests();
        let mut bs = BlobStore::create(&mut db).unwrap();
        let data: Vec<u8> = (0..len).map(|i| fill.wrapping_add(i as u8)).collect();
        let id = bs.put(&mut db, &data).unwrap();
        prop_assert_eq!(bs.len(&mut db, id).unwrap(), len as u64);
        prop_assert_eq!(bs.get(&mut db, id).unwrap(), data);
    }

    #[test]
    fn blob_range_reads_match_slices(
        len in 100usize..20_000,
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let mut db = Database::for_tests();
        let mut bs = BlobStore::create(&mut db).unwrap();
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let id = bs.put(&mut db, &data).unwrap();
        let start = ((len as f64 * start_frac) as usize).min(len - 1);
        let take = ((len - start) as f64 * len_frac) as usize;
        let got = bs.get_range(&mut db, id, start as u64, take as u64).unwrap();
        prop_assert_eq!(got, &data[start..start + take]);
    }

    #[test]
    fn aborted_writes_never_visible(
        committed in any::<u64>(),
        aborted in any::<u64>(),
    ) {
        let mut db = Database::for_tests();
        let page = db.alloc_page().unwrap();
        db.begin().unwrap();
        db.update_page(page, |p| p.write_u64(0, committed)).unwrap();
        db.commit().unwrap();
        db.begin().unwrap();
        db.update_page(page, |p| p.write_u64(0, aborted)).unwrap();
        db.abort().unwrap();
        prop_assert_eq!(db.read_page(page).unwrap().read_u64(0), committed);
        // and after crash + recovery the committed value survives
        db.crash();
        db.recover().unwrap();
        prop_assert_eq!(db.read_page(page).unwrap().read_u64(0), committed);
    }
}
