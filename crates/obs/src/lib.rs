//! # heaven-obs — simulated-time tracing and unified metrics
//!
//! HEAVEN's evaluation (paper Ch. 4) is an exercise in attributing query
//! latency to hierarchy levels: media exchange vs. locate vs. transfer
//! vs. disk cache vs. memory cache. This crate provides the shared
//! observability spine for that attribution:
//!
//! * [`TraceBus`] — a span/event bus whose primary timestamps are
//!   **simulated seconds** from the `SimClock` (wall-clock is carried as
//!   a secondary field), so traces are deterministic and replayable.
//!   The record→sink fast path is allocation-free and lock-free: names
//!   intern to [`Sym`] ids, records are fixed-size POD values in a
//!   seqlock ring, and the JSONL sink serializes drained batches off the
//!   hot path. [`TraceConfig`] adds per-[`Subsystem`] levels, head
//!   sampling of query spans, and always-keep-slow tail capture.
//! * [`MetricsRegistry`] — named monotonic counters, float counters
//!   (simulated seconds), gauges, and histograms. Component stat structs
//!   (`TapeStats`, `CacheStats`, …) remain public views reconstructed
//!   from these metrics.
//! * [`QueryBreakdown`] — a per-query report of time and bytes per
//!   hierarchy level plus media exchanges, surfaced by
//!   `Heaven::last_query_breakdown()` and the `rasql_shell` `\timing`
//!   toggle.
//!
//! The crate is deliberately **zero-dependency** (it sits below
//! `heaven-tape` in the crate graph); callers pass `sim_now` timestamps
//! explicitly.

pub mod breakdown;
pub mod json;
pub mod metrics;
pub mod sym;
pub mod trace;

pub use breakdown::QueryBreakdown;
pub use metrics::{
    bucket_index, bucket_upper_bound, escape_label_value, Counter, Exemplar, FloatCounter, Gauge,
    HistSnapshot, HistSummary, Histogram, MetricValue, MetricsRegistry, NUM_BUCKETS,
};
pub use sym::{Subsystem, Sym};
pub use trace::{
    check_well_nested, Field, RecordKind, SpanGuard, SpanId, TraceBus, TraceConfig, TraceLevel,
    TraceRecord, TraceSink,
};
