//! Per-query latency attribution across the storage hierarchy.
//!
//! A [`QueryBreakdown`] splits one query's simulated elapsed time into
//! the hierarchy levels the paper's evaluation reasons about — memory
//! tile cache, disk super-tile cache, base-DBMS disk I/O, and the
//! tertiary tape components (media exchange, locate, transfer, rewind,
//! shelf) — together with the bytes served per level and the number of
//! media exchanges. `other_s` absorbs any simulated time the known
//! levels do not account for, so the levels always sum to the observed
//! `SimClock` delta.

use std::fmt;

use crate::json;

/// Where one query's simulated time and bytes went.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryBreakdown {
    /// Free-form description (normally the query text or region).
    pub label: String,
    /// Simulated seconds from query start to completion.
    pub total_s: f64,

    /// Memory tile-cache hits (no simulated cost by construction).
    pub mem_hits: u64,
    /// Bytes served from the memory tile cache.
    pub mem_bytes: u64,

    /// Simulated seconds charged by the disk super-tile cache.
    pub disk_cache_s: f64,
    /// Disk super-tile cache hits.
    pub disk_cache_hits: u64,
    /// Bytes served from the disk super-tile cache.
    pub disk_cache_bytes: u64,

    /// Simulated seconds of base-DBMS page I/O.
    pub dbms_io_s: f64,

    /// Simulated seconds exchanging media (robot arm / drive swaps).
    pub tape_exchange_s: f64,
    /// Simulated seconds locating (seeking) on tape.
    pub tape_locate_s: f64,
    /// Simulated seconds transferring from tape.
    pub tape_transfer_s: f64,
    /// Simulated seconds rewinding before an unmount.
    pub tape_rewind_s: f64,
    /// Simulated seconds fetching shelved media back into the robot.
    pub shelf_s: f64,

    /// Bytes read from tertiary media.
    pub tape_bytes: u64,
    /// Media exchanges performed (mounts).
    pub media_exchanges: u64,
    /// Super-tiles fetched from tape.
    pub tape_fetches: u64,
    /// Payload bytes memcpy'd materializing the result (the
    /// `heaven.bytes_copied` delta over this query).
    pub bytes_copied: u64,

    /// Simulated time not attributed to any known level.
    pub other_s: f64,
}

impl QueryBreakdown {
    /// Total tape time across all tertiary components.
    pub fn tape_s(&self) -> f64 {
        self.tape_exchange_s
            + self.tape_locate_s
            + self.tape_transfer_s
            + self.tape_rewind_s
            + self.shelf_s
    }

    /// Sum of all per-level times; equals `total_s` up to float rounding.
    pub fn levels_sum_s(&self) -> f64 {
        self.disk_cache_s + self.dbms_io_s + self.tape_s() + self.other_s
    }

    /// Serialize as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"label\":");
        json::write_str(&mut out, &self.label);
        let pairs_f = [
            ("total_s", self.total_s),
            ("disk_cache_s", self.disk_cache_s),
            ("dbms_io_s", self.dbms_io_s),
            ("tape_exchange_s", self.tape_exchange_s),
            ("tape_locate_s", self.tape_locate_s),
            ("tape_transfer_s", self.tape_transfer_s),
            ("tape_rewind_s", self.tape_rewind_s),
            ("shelf_s", self.shelf_s),
            ("other_s", self.other_s),
        ];
        for (k, v) in pairs_f {
            out.push(',');
            json::write_str(&mut out, k);
            out.push(':');
            json::write_f64(&mut out, v);
        }
        let pairs_u = [
            ("mem_hits", self.mem_hits),
            ("mem_bytes", self.mem_bytes),
            ("disk_cache_hits", self.disk_cache_hits),
            ("disk_cache_bytes", self.disk_cache_bytes),
            ("tape_bytes", self.tape_bytes),
            ("media_exchanges", self.media_exchanges),
            ("tape_fetches", self.tape_fetches),
            ("bytes_copied", self.bytes_copied),
        ];
        for (k, v) in pairs_u {
            out.push(',');
            json::write_str(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push('}');
        out
    }
}

fn pct(part: f64, total: f64) -> f64 {
    if total > 0.0 {
        100.0 * part / total
    } else {
        0.0
    }
}

impl fmt::Display for QueryBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "query breakdown: {}", self.label)?;
        writeln!(f, "  total                {:>12.6} s", self.total_s)?;
        writeln!(
            f,
            "  memory tile cache    {:>12.6} s  ({} hits, {} B)",
            0.0, self.mem_hits, self.mem_bytes
        )?;
        writeln!(
            f,
            "  disk st cache        {:>12.6} s  ({:5.1}%, {} hits, {} B)",
            self.disk_cache_s,
            pct(self.disk_cache_s, self.total_s),
            self.disk_cache_hits,
            self.disk_cache_bytes
        )?;
        writeln!(
            f,
            "  dbms page I/O        {:>12.6} s  ({:5.1}%)",
            self.dbms_io_s,
            pct(self.dbms_io_s, self.total_s)
        )?;
        writeln!(
            f,
            "  tape exchange        {:>12.6} s  ({:5.1}%, {} exchanges)",
            self.tape_exchange_s,
            pct(self.tape_exchange_s, self.total_s),
            self.media_exchanges
        )?;
        writeln!(
            f,
            "  tape locate          {:>12.6} s  ({:5.1}%)",
            self.tape_locate_s,
            pct(self.tape_locate_s, self.total_s)
        )?;
        writeln!(
            f,
            "  tape transfer        {:>12.6} s  ({:5.1}%, {} B, {} super-tiles)",
            self.tape_transfer_s,
            pct(self.tape_transfer_s, self.total_s),
            self.tape_bytes,
            self.tape_fetches
        )?;
        writeln!(
            f,
            "  tape rewind          {:>12.6} s  ({:5.1}%)",
            self.tape_rewind_s,
            pct(self.tape_rewind_s, self.total_s)
        )?;
        writeln!(
            f,
            "  shelf fetch          {:>12.6} s  ({:5.1}%)",
            self.shelf_s,
            pct(self.shelf_s, self.total_s)
        )?;
        writeln!(
            f,
            "  other                {:>12.6} s  ({:5.1}%)",
            self.other_s,
            pct(self.other_s, self.total_s)
        )?;
        write!(f, "  bytes copied         {:>12} B", self.bytes_copied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_sum_matches_total() {
        let b = QueryBreakdown {
            label: "q".into(),
            total_s: 10.0,
            disk_cache_s: 1.0,
            dbms_io_s: 2.0,
            tape_exchange_s: 3.0,
            tape_locate_s: 1.5,
            tape_transfer_s: 1.25,
            tape_rewind_s: 0.75,
            shelf_s: 0.25,
            other_s: 0.25,
            ..QueryBreakdown::default()
        };
        assert!((b.levels_sum_s() - b.total_s).abs() < 1e-12);
    }

    #[test]
    fn json_and_display_contain_levels() {
        let b = QueryBreakdown {
            label: "select".into(),
            total_s: 1.0,
            tape_transfer_s: 1.0,
            ..QueryBreakdown::default()
        };
        assert!(b.to_json().contains("\"tape_transfer_s\":1"));
        let shown = format!("{b}");
        assert!(shown.contains("tape transfer"));
        assert!(shown.contains("100.0%"));
    }
}
